#!/usr/bin/env bash
# Tier-1 verification: build, test, format, lint. Everything here must pass
# offline (the workspace has no external dependencies; Criterion benches
# live outside the workspace in crates/bench).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "CI OK"
