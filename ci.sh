#!/usr/bin/env bash
# Tier-1 verification: build, test, format, lint. Everything here must pass
# offline (the workspace has no external dependencies; benchmarks are the
# dependency-free `harness bench` subcommand).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release --workspace"
cargo build --release --workspace

echo "== cargo test -q"
cargo test -q

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "== cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "== harness lint (chrono-lint: zero unwaived findings)"
./target/release/harness lint

echo "== harness model-check (exhaustive PageFlags lifecycle vs golden)"
./target/release/harness model-check

echo "== harness race-check (exhaustive shard-interleaving model + injected-bug self-test)"
./target/release/harness race-check

echo "== harness fuzz smoke (32 seeds x 2000 ops, fixed base)"
./target/release/harness fuzz --seeds 32 --ops 2000 --seed-base 0x5EED0000

echo "== harness fuzz migration-stress (write-abort/backpressure paths, tiny in-flight tables)"
./target/release/harness fuzz --migration-stress --seeds 32 --ops 2000

echo "== harness fuzz fault-storm (poison/quarantine/capacity paths under storm-rate FaultPlans)"
./target/release/harness fuzz --fault-storm --seeds 32 --ops 2000

echo "== harness fuzz tenant-storm (cross-shard invariants + admission rejects, mixed policies)"
./target/release/harness fuzz --tenant-storm --seeds 32

echo "== harness fuzz three-tier (tier-chain op schedules over DRAM+CXL+PMem)"
./target/release/harness fuzz --three-tier --seeds 32 --ops 2000

echo "== harness fuzz tier-chaos (offline/evacuate/rejoin arcs under canonical3/storm3)"
./target/release/harness fuzz --tier-chaos --seeds 32 --ops 2000

echo "== tier_failover example (failure-domain arc end to end, throughput bar asserted)"
cargo run --release --example tier_failover

echo "== harness run thread-invariance (same seed, 1 vs 4 worker threads)"
d1=$(./target/release/harness run --tenants 200 --millis 5 --threads 1 | awk '/digest:/{print $2}')
d4=$(./target/release/harness run --tenants 200 --millis 5 --threads 4 | awk '/digest:/{print $2}')
if [[ -z "$d1" || "$d1" != "$d4" ]]; then
  echo "thread-invariance FAILED: 1-thread digest '$d1' != 4-thread digest '$d4'"
  exit 1
fi
echo "   digest $d1 identical at 1 and 4 threads"

echo "== harness fuzz self-test (injected bug must be caught and shrunk)"
./target/release/harness fuzz --self-test

echo "== harness verify (determinism + metamorphic + goldens)"
./target/release/harness verify

# Reduced-scale perf smoke: validates the committed BENCH_*.json schema and
# fails on a >25 % end-to-end throughput regression. Wall-clock dependent,
# so slow or loaded machines can skip it.
if [[ "${CHRONO_SKIP_BENCH:-0}" == "1" ]]; then
  echo "== harness bench --quick --check (skipped: CHRONO_SKIP_BENCH=1)"
else
  echo "== harness bench --quick --check (throughput vs committed baseline)"
  ./target/release/harness bench --quick --check
fi

echo "CI OK"
