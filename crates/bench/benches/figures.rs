//! One benchmark group per paper table/figure: each runs the same experiment
//! cell the `harness` binary uses, at reduced scale, so `cargo bench`
//! regenerates (and times) every artifact end to end.

use bench::{BENCH_RUN_MS, BENCH_SCAN_MS};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use harness::experiments::{
    fig1, fig10, fig11, fig12, fig13, fig2, fig6, fig8, fig9, figb, tables,
};
use harness::runner::{PolicyKind, Scale};
use sim_clock::Nanos;
use tiered_mem::PageSize;
use workloads::KvFlavor;

fn bench_scale() -> Scale {
    Scale {
        scan_period: Nanos::from_millis(BENCH_SCAN_MS),
        scan_step: 512,
        run_for: Nanos::from_millis(BENCH_RUN_MS),
        memtis_sample_period: 2048,
    }
}

fn cfg(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_tables(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("tables");
    g.bench_function("table1", |b| b.iter(|| black_box(tables::table1())));
    g.bench_function("table2", |b| b.iter(|| black_box(tables::table2())));
    g.finish();
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig1");
    g.sample_size(10);
    let scale = bench_scale();
    g.bench_function("region_frequency_profile", |b| {
        b.iter(|| black_box(fig1::run(&scale)))
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig2");
    g.sample_size(10);
    let scale = bench_scale();
    g.bench_function("fig2b_pebs_bins", |b| {
        b.iter(|| black_box(fig2::run_2b(&scale)))
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig6");
    g.sample_size(10);
    let scale = bench_scale();
    for kind in [PolicyKind::LinuxNb, PolicyKind::Chrono] {
        g.bench_function(format!("pmbench_cell_{}", kind.name()), |b| {
            b.iter(|| black_box(fig6::run_cell(kind, &scale, 4, 1024, 6_500, 0.7)))
        });
    }
    g.finish();
}

fn bench_fig7_fig8(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig7_fig8");
    g.sample_size(10);
    let scale = bench_scale();
    g.bench_function("runtime_characteristics_chrono", |b| {
        b.iter(|| black_box(fig8::metrics_for(PolicyKind::Chrono, &scale)))
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig9");
    g.sample_size(10);
    let scale = bench_scale();
    g.bench_function("tenant_histories_chrono", |b| {
        b.iter(|| black_box(fig9::histories(PolicyKind::Chrono, &scale, 4)))
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig10");
    g.sample_size(10);
    let scale = bench_scale();
    g.bench_function("sensitivity_cell_scan_period", |b| {
        b.iter(|| black_box(fig10::sensitivity_cell(&scale, "scan-period", 1.0)))
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig11");
    g.sample_size(10);
    let scale = bench_scale();
    g.bench_function("graph500_exec_chrono", |b| {
        b.iter(|| {
            black_box(fig11::exec_time(
                PolicyKind::Chrono,
                &scale,
                2_048,
                4_096,
                PageSize::Base,
            ))
        })
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig12");
    g.sample_size(10);
    let scale = bench_scale();
    g.bench_function("kvstore_cell_chrono", |b| {
        b.iter(|| {
            black_box(fig12::run_cell(
                PolicyKind::Chrono,
                &scale,
                KvFlavor::Memcached,
                0.5,
            ))
        })
    });
    g.finish();
}

fn bench_fig13(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("fig13");
    g.sample_size(10);
    let scale = bench_scale();
    g.bench_function("ablation_cell_basic", |b| {
        b.iter(|| black_box(fig13::run_cell(PolicyKind::ChronoBasic, &scale, 0.7)))
    });
    g.finish();
}

fn bench_figb(c: &mut Criterion) {
    let mut g = cfg(c).benchmark_group("figb");
    g.bench_function("b1_density_family", |b| {
        b.iter(|| black_box(figb::run_b1()))
    });
    g.bench_function("b2_efficiency_surface", |b| {
        b.iter(|| black_box(figb::run_b2()))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_tables,
    bench_fig1,
    bench_fig2,
    bench_fig6,
    bench_fig7_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_figb
);
criterion_main!(figures);
