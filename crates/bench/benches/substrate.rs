//! Microbenchmarks of the simulation substrate's hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sim_clock::{DetRng, Nanos};
use tiered_mem::{MigrateMode, PageSize, SystemConfig, TierId, TieredSystem, Vpn};
use tiering_policies::PebsSampler;
use workloads::{AccessPattern, GaussianPattern, Workload};
use workloads::{PmbenchConfig, PmbenchWorkload};

fn bench_access_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("access_path");
    g.throughput(Throughput::Elements(1));

    let mut sys = TieredSystem::new(SystemConfig::quarter_fast(16_384));
    let pid = sys.add_process(8_192, PageSize::Base);
    for i in 0..8_192 {
        sys.access(pid, Vpn(i), false);
    }
    let mut rng = DetRng::seed(1);
    g.bench_function("resident_read", |b| {
        b.iter(|| {
            let vpn = Vpn(rng.below(8_192) as u32);
            black_box(sys.access(pid, vpn, false))
        })
    });
    g.bench_function("resident_write", |b| {
        b.iter(|| {
            let vpn = Vpn(rng.below(8_192) as u32);
            black_box(sys.access(pid, vpn, true))
        })
    });
    g.finish();
}

fn bench_migration(c: &mut Criterion) {
    let mut g = c.benchmark_group("migration");
    let mut sys = TieredSystem::new(SystemConfig::dram_pmem(8_192, 8_192));
    let pid = sys.add_process(8_192, PageSize::Base);
    for i in 0..8_192 {
        sys.access(pid, Vpn(i), false);
    }
    let mut next = 0u32;
    g.bench_function("base_page_round_trip", |b| {
        b.iter(|| {
            let vpn = Vpn(next % 8_192);
            next += 1;
            let e = sys.process(pid).space.entry(vpn);
            let to = e.tier().other();
            black_box(sys.migrate(pid, vpn, to, MigrateMode::Async)).ok();
        })
    });
    g.finish();
}

fn bench_scan_walk(c: &mut Criterion) {
    let mut g = c.benchmark_group("ticking_scan");
    g.throughput(Throughput::Elements(1024));
    let mut sys = TieredSystem::new(SystemConfig::quarter_fast(16_384));
    let pid = sys.add_process(8_192, PageSize::Base);
    for i in 0..8_192 {
        sys.access(pid, Vpn(i), false);
    }
    let mut cursor = Vpn(0);
    g.bench_function("walk_and_mark_1024_pages", |b| {
        b.iter(|| {
            cursor = sys
                .process_mut(pid)
                .space
                .walk_range(cursor, 1024, |_v, e| {
                    e.flags.set(tiered_mem::PageFlags::PROT_NONE);
                    e.policy_word = 42;
                });
            black_box(cursor)
        })
    });
    g.finish();
}

fn bench_lru(c: &mut Criterion) {
    let mut g = c.benchmark_group("lru");
    let mut sys = TieredSystem::new(SystemConfig::quarter_fast(16_384));
    let pid = sys.add_process(8_192, PageSize::Base);
    for i in 0..8_192 {
        sys.access(pid, Vpn(i), false);
    }
    g.bench_function("age_active_64", |b| {
        b.iter(|| black_box(sys.age_active_list(TierId::Fast, 64)))
    });
    g.bench_function("pop_and_reinsert_victim", |b| {
        b.iter(|| {
            if let Some((p, v)) = sys.pop_inactive_victim(TierId::Fast) {
                sys.lru_insert(p, v, tiered_mem::LruKind::Inactive);
            }
        })
    });
    g.finish();
}

fn bench_pebs(c: &mut Criterion) {
    let mut g = c.benchmark_group("pebs");
    g.throughput(Throughput::Elements(1));
    let mut sampler = PebsSampler::new(997, 3);
    g.bench_function("observe", |b| b.iter(|| black_box(sampler.observe())));
    g.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    g.throughput(Throughput::Elements(1));
    let mut pattern = GaussianPattern::paper_default(65_536);
    let mut rng = DetRng::seed(5);
    g.bench_function("gaussian_sample", |b| {
        b.iter(|| black_box(pattern.sample(&mut rng)))
    });
    let mut pm = PmbenchWorkload::new(PmbenchConfig::paper_skewed(65_536, 0.7, 6));
    g.bench_function("pmbench_next_access", |b| {
        b.iter(|| black_box(pm.next_access()))
    });
    g.finish();
}

fn bench_heatmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("dcsc_math");
    let mut fast = chrono_core::HeatMap::new(28);
    let mut slow = chrono_core::HeatMap::new(28);
    let mut rng = DetRng::seed(7);
    for _ in 0..1000 {
        fast.add(rng.index(28), rng.unit_f64() * 10.0);
        slow.add(rng.index(28), rng.unit_f64() * 10.0);
    }
    g.bench_function("identify_overlap", |b| {
        b.iter(|| {
            black_box(chrono_core::heatmap::identify_overlap(
                &fast, &slow, 10_000.0,
            ))
        })
    });
    g.bench_function("theory_efficiency_n2", |b| {
        b.iter(|| black_box(chrono_core::theory::efficiency(2, 0.7)))
    });
    let _ = Nanos::ZERO;
    g.finish();
}

criterion_group!(
    benches,
    bench_access_path,
    bench_migration,
    bench_scan_walk,
    bench_lru,
    bench_pebs,
    bench_workload_generation,
    bench_heatmap
);
criterion_main!(benches);
