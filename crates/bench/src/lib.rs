//! Benchmark-support crate. The Criterion harnesses live in `benches/`:
//!
//! - `substrate`: microbenchmarks of the mechanisms every policy exercises
//!   (the access path, migration, scanning, LRU maintenance, PEBS sampling,
//!   heat-map math).
//! - `figures`: one benchmark group per paper table/figure, running the same
//!   experiment cells as the `harness` binary at reduced scale.

/// Reduced-scale run length used by the figure benches, in simulated
/// milliseconds — small enough that a Criterion sample completes in tens of
/// milliseconds of host time, large enough to span several scan periods.
pub const BENCH_RUN_MS: u64 = 120;

/// Scan period used by the figure benches (keeps ≥4 scan periods per run).
pub const BENCH_SCAN_MS: u64 = 25;
