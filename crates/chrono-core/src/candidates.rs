//! The promotion candidate set (Section 3.1.2).
//!
//! The kernel implementation indexes candidates in an XArray for low-latency
//! lookup and small footprint ("less than 32 KB per active process"); the
//! simulator uses a dense [`PidVpnTable`] with the same role: remembering
//! which pages passed earlier CIT rounds and how many consecutive rounds
//! they have survived. A round count of 0 means "not a candidate", so the
//! table needs no occupancy bits, and row-major traversal is `(pid, vpn)`
//! address-ordered by construction — the same bit-deterministic iteration
//! the original `BTreeMap` implementation guaranteed (the chrono-lint
//! `hash-iter` rule), without its per-access tree descent.

use tiered_mem::{ProcessId, Vpn};

use crate::flat::PidVpnTable;

/// Tracks candidate pages and their surviving round counts.
#[derive(Debug, Default)]
pub struct CandidateSet {
    /// `[pid][vpn]` -> consecutive surviving rounds; 0 = not a candidate.
    rounds: PidVpnTable<u32>,
    len: usize,
}

impl CandidateSet {
    /// Creates an empty set.
    pub fn new() -> CandidateSet {
        CandidateSet::default()
    }

    /// Records that `(pid, vpn)` passed one more CIT round; returns the new
    /// consecutive-round count.
    pub fn pass_round(&mut self, pid: ProcessId, vpn: Vpn) -> u32 {
        let c = self.rounds.slot_mut(pid, vpn);
        if *c == 0 {
            self.len += 1;
        }
        *c += 1;
        *c
    }

    /// Current round count for a page (0 if not a candidate).
    #[inline]
    pub fn rounds(&self, pid: ProcessId, vpn: Vpn) -> u32 {
        self.rounds.get(pid, vpn).copied().unwrap_or(0)
    }

    /// Drops a page (its CIT exceeded the threshold, or it was promoted or
    /// demoted). Returns whether it was present.
    pub fn remove(&mut self, pid: ProcessId, vpn: Vpn) -> bool {
        match self.rounds.get_mut(pid, vpn) {
            Some(c) if *c > 0 => {
                *c = 0;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Whether the page is currently a candidate.
    #[inline]
    pub fn contains(&self, pid: ProcessId, vpn: Vpn) -> bool {
        self.rounds(pid, vpn) > 0
    }

    /// Number of candidates tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate memory footprint in bytes (the paper bounds it at ~32 KB
    /// per process; experiments assert the same order here).
    pub fn approx_bytes(&self) -> usize {
        self.rounds.approx_bytes()
    }

    /// Iterates candidates in `(pid, vpn)` address order with their round
    /// counts. Deterministic by construction (row-major over a dense table),
    /// so callers may drain or sample the set without perturbing trace
    /// digests.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, Vpn, u32)> + '_ {
        self.rounds.rows().iter().enumerate().flat_map(|(p, row)| {
            row.iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(move |(v, &c)| (ProcessId(p as u16), Vpn(v as u32), c))
        })
    }

    /// Clears all candidates.
    pub fn clear(&mut self) {
        self.rounds.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pv(p: u16, v: u32) -> (ProcessId, Vpn) {
        (ProcessId(p), Vpn(v))
    }

    #[test]
    fn rounds_accumulate() {
        let mut s = CandidateSet::new();
        let (p, v) = pv(1, 100);
        assert_eq!(s.rounds(p, v), 0);
        assert_eq!(s.pass_round(p, v), 1);
        assert_eq!(s.pass_round(p, v), 2);
        assert_eq!(s.rounds(p, v), 2);
        assert!(s.contains(p, v));
    }

    #[test]
    fn remove_resets() {
        let mut s = CandidateSet::new();
        let (p, v) = pv(0, 7);
        s.pass_round(p, v);
        assert!(s.remove(p, v));
        assert!(!s.remove(p, v));
        assert_eq!(s.rounds(p, v), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn pages_are_keyed_per_process() {
        let mut s = CandidateSet::new();
        s.pass_round(ProcessId(1), Vpn(5));
        assert!(!s.contains(ProcessId(2), Vpn(5)));
        assert!(s.contains(ProcessId(1), Vpn(5)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn iteration_is_address_ordered() {
        // Insertion order deliberately scrambled: the ordered backing map
        // must hand candidates back sorted by (pid, vpn) regardless, which
        // is what keeps every same-seed trace digest stable.
        let mut s = CandidateSet::new();
        for (p, v) in [(3u16, 9u32), (0, 44), (3, 2), (1, 7), (0, 1)] {
            s.pass_round(ProcessId(p), Vpn(v));
        }
        let order: Vec<(u16, u32)> = s.iter().map(|(p, v, _)| (p.0, v.0)).collect();
        assert_eq!(order, vec![(0, 1), (0, 44), (1, 7), (3, 2), (3, 9)]);
    }

    #[test]
    fn footprint_stays_small_for_typical_candidate_counts() {
        let mut s = CandidateSet::new();
        // The paper bounds the promotion-queue feed to ~hundreds of pages
        // per period; even 1k candidates must stay tens of KB.
        for i in 0..1000 {
            s.pass_round(ProcessId(0), Vpn(i));
        }
        assert!(s.approx_bytes() < 64 * 1024);
    }
}
