//! Cascaded Chrono over an N-tier chain.
//!
//! A [`CascadeChrono`] stacks one [`ChronoPolicy`] per adjacent tier pair of
//! the chain's managed tiers: pair `i` promotes `TierId(i+1) → TierId(i)`
//! and demotes the other way, so pages climb or sink one hop at a time —
//! the chain never teleports a page across an intermediate tier. Each pair
//! keeps its own CIT classification, candidate filter, promotion queue with
//! per-edge rate limit, DCSC heat-map pair, and thrashing monitor; the
//! cascade's job is pure routing:
//!
//! - **Events** carry the owning pair's index in the token's 32-bit arg
//!   (the `tag` every pair stamps into what it schedules).
//! - **Scan faults** go to the pair whose lower tier holds the page (the
//!   pair whose Ticking-scan poisoned the PTE).
//! - **Probe faults** go to the pair with the outstanding probe — a middle
//!   tier is sampled by two pairs, so PTE state alone is ambiguous.
//! - **Migration failures** are drained once per event and offered to every
//!   pair; each pair keeps only its own promotion edge's records.
//!
//! The two-tier configuration is exactly one pair and behaves identically
//! to a standalone [`ChronoPolicy`].

use tiered_mem::{AccessResult, ProcessId, TieredSystem, Vpn, MAX_TIERS};
use tiering_policies::{decode_token, TieringPolicy};

use crate::config::ChronoConfig;
use crate::policy::{ChronoPolicy, EV_MIGRATE};
use crate::queue::QueueFlow;
use crate::resilience::RetryFlow;

/// Cascaded Chrono: one [`ChronoPolicy`] per adjacent pair of managed tiers.
pub struct CascadeChrono {
    pairs: Vec<ChronoPolicy>,
    name: &'static str,
}

impl CascadeChrono {
    /// Builds a cascade over `tiers` managed tiers (so `tiers - 1` pairs).
    /// Every pair runs the same configuration; deeper pairs decorrelate
    /// their DCSC victim sampling by offsetting the RNG seed.
    pub fn new(cfg: ChronoConfig, tiers: usize) -> CascadeChrono {
        assert!(
            (2..=MAX_TIERS).contains(&tiers),
            "cascade needs 2..={MAX_TIERS} managed tiers, got {tiers}"
        );
        let pairs = (0..tiers - 1)
            .map(|i| {
                let mut pair_cfg = cfg.clone();
                pair_cfg.seed = cfg.seed.wrapping_add(i as u64 * 0x9E37_79B9);
                ChronoPolicy::new_pair(
                    pair_cfg,
                    tiered_mem::TierId(i as u8),
                    tiered_mem::TierId(i as u8 + 1),
                    i as u32,
                )
            })
            .collect::<Vec<_>>();
        let name = if pairs.len() == 1 {
            pairs[0].name()
        } else {
            "Chrono-DCSC"
        };
        CascadeChrono { pairs, name }
    }

    /// Builds the cascade sized to a system's managed tier count.
    pub fn for_system(cfg: ChronoConfig, sys: &TieredSystem) -> CascadeChrono {
        CascadeChrono::new(cfg, sys.config().num_tiers())
    }

    /// The per-pair policies, top edge first.
    pub fn pairs(&self) -> &[ChronoPolicy] {
        &self.pairs
    }

    /// Per-pair promotion-queue flow snapshots (for invariant checks).
    pub fn queue_flows(&self) -> Vec<QueueFlow> {
        self.pairs.iter().map(|p| p.queue_flow()).collect()
    }

    /// Per-pair retry flow snapshots (for invariant checks).
    pub fn retry_flows(&self) -> Vec<RetryFlow> {
        self.pairs.iter().map(|p| p.retry_flow()).collect()
    }
}

impl TieringPolicy for CascadeChrono {
    fn name(&self) -> &'static str {
        self.name
    }

    fn init(&mut self, sys: &mut TieredSystem) {
        for p in &mut self.pairs {
            p.init(sys);
        }
    }

    fn on_event(&mut self, sys: &mut TieredSystem, token: u64) {
        let (kind, _pid, tag) = decode_token(token);
        if kind == EV_MIGRATE {
            // The failure channel is a single global drain; pull it once and
            // offer every record to every pair (each keeps only its edge's).
            let failures = sys.take_migration_failures();
            if !failures.is_empty() {
                let now = sys.clock.now();
                for p in &mut self.pairs {
                    p.ingest_failures(failures.iter().copied(), now);
                }
            }
        }
        self.pairs[tag as usize].on_event(sys, token);
    }

    fn on_hint_fault(
        &mut self,
        sys: &mut TieredSystem,
        pid: ProcessId,
        vpn: Vpn,
        write: bool,
        res: &AccessResult,
    ) {
        if res.probed_fault {
            let pte = sys.process(pid).space.pte_page(vpn);
            // The pair that armed the probe owns both rounds; fall back to
            // the pair whose lower tier holds the page if the record is
            // gone (e.g. the probe expired between rounds).
            let owner = self
                .pairs
                .iter()
                .position(|p| p.has_outstanding_probe(pid, pte))
                .or_else(|| self.pairs.iter().position(|p| p.tier_pair().1 == res.tier));
            if let Some(i) = owner {
                self.pairs[i].on_hint_fault(sys, pid, vpn, write, res);
            }
            return;
        }
        // Scan fault: the poisoning pair is the one scanning this tier —
        // tier t is the lower tier of pair t-1. Faults on the top tier have
        // no scanning pair and are ignored (as the standalone policy does).
        let t = res.tier.index();
        if t >= 1 && t <= self.pairs.len() {
            self.pairs[t - 1].on_hint_fault(sys, pid, vpn, write, res);
        }
    }

    fn on_access(&mut self, sys: &mut TieredSystem, pid: ProcessId, vpn: Vpn, write: bool) {
        for p in &mut self.pairs {
            p.on_access(sys, pid, vpn, write);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::Nanos;
    use tiered_mem::{PageSize, SystemConfig, TierId};
    use tiering_policies::{DriverConfig, SimulationDriver};
    use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

    fn test_config() -> ChronoConfig {
        ChronoConfig {
            p_victim: 0.002,
            ..ChronoConfig::scaled(Nanos::from_millis(50), 512)
        }
    }

    fn run_cascade(syscfg: SystemConfig, run_ms: u64) -> (TieredSystem, CascadeChrono) {
        let mut sys = TieredSystem::new(syscfg);
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = CascadeChrono::for_system(test_config(), &sys);
        SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(run_ms),
            ..Default::default()
        })
        .run(&mut sys, &mut wls, &mut policy);
        (sys, policy)
    }

    #[test]
    fn two_tier_cascade_matches_standalone_chrono_exactly() {
        // The cascade with one pair must be bit-identical to the standalone
        // policy: same access count, same promotion/demotion totals, same
        // FMAR bits.
        let (casc_sys, _) = run_cascade(SystemConfig::dram_pmem(1024, 4096), 300);
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(1024, 4096));
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = ChronoPolicy::new(test_config());
        SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(300),
            ..Default::default()
        })
        .run(&mut sys, &mut wls, &mut policy);
        assert_eq!(casc_sys.stats.promoted_pages, sys.stats.promoted_pages);
        assert_eq!(casc_sys.stats.demoted_pages, sys.stats.demoted_pages);
        assert_eq!(casc_sys.stats.hint_faults, sys.stats.hint_faults);
        assert_eq!(casc_sys.stats.fmar().to_bits(), sys.stats.fmar().to_bits());
    }

    #[test]
    fn three_tier_cascade_migrates_on_both_edges() {
        let (sys, policy) = run_cascade(SystemConfig::three_tier(768, 1536, 4096), 500);
        assert_eq!(policy.pairs().len(), 2);
        assert!(sys.stats.promoted_pages > 0, "no promotions at all");
        // Both pairs must have seen scan faults land (their classifiers ran).
        for (i, p) in policy.pairs().iter().enumerate() {
            let (below, above) = p.scan_fault_split();
            assert!(below + above > 0, "pair {i} never classified a fault");
        }
        // Queue flow conserves on every edge.
        for (i, f) in policy.queue_flows().iter().enumerate() {
            assert!(f.conserved(), "pair {i} queue flow: {f:?}");
        }
        for (i, f) in policy.retry_flows().iter().enumerate() {
            assert!(f.conserved(), "pair {i} retry flow: {f:?}");
        }
    }

    #[test]
    fn three_tier_steady_state_populates_all_tiers() {
        let (sys, _policy) = run_cascade(SystemConfig::three_tier(768, 1536, 4096), 500);
        for t in 0..3 {
            assert!(
                sys.used_frames(TierId(t)) > 0,
                "tier {t} empty at steady state"
            );
        }
        // The hot set should concentrate on top: the top tier runs fuller
        // (relative to capacity) than the bottom.
        let occ =
            |t: u8| sys.used_frames(TierId(t)) as f64 / sys.total_frames(TierId(t)).max(1) as f64;
        assert!(
            occ(0) > occ(2),
            "top occupancy {:.2} should exceed bottom {:.2}",
            occ(0),
            occ(2)
        );
    }

    #[test]
    fn cascade_name_reflects_shape() {
        let two = CascadeChrono::new(test_config(), 2);
        assert_eq!(two.name(), "Chrono");
        let three = CascadeChrono::new(test_config(), 3);
        assert_eq!(three.name(), "Chrono-DCSC");
        assert_eq!(three.pairs().len(), 2);
        assert_eq!(three.pairs()[0].tier_pair(), (TierId(0), TierId(1)));
        assert_eq!(three.pairs()[1].tier_pair(), (TierId(1), TierId(2)));
    }
}
