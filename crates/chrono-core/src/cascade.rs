//! Cascaded Chrono over an N-tier chain.
//!
//! A [`CascadeChrono`] stacks one [`ChronoPolicy`] per adjacent tier pair of
//! the chain's managed tiers: pair `i` promotes `TierId(i+1) → TierId(i)`
//! and demotes the other way, so pages climb or sink one hop at a time —
//! the chain never teleports a page across an intermediate tier. Each pair
//! keeps its own CIT classification, candidate filter, promotion queue with
//! per-edge rate limit, DCSC heat-map pair, and thrashing monitor; the
//! cascade's job is pure routing:
//!
//! - **Events** carry the owning pair's index in the token's 32-bit arg
//!   (the `tag` every pair stamps into what it schedules).
//! - **Scan faults** go to the pair whose lower tier holds the page (the
//!   pair whose Ticking-scan poisoned the PTE).
//! - **Probe faults** go to the pair with the outstanding probe — a middle
//!   tier is sampled by two pairs, so PTE state alone is ambiguous.
//! - **Migration failures** are drained once per event and offered to every
//!   pair; each pair keeps only its own promotion edge's records.
//!
//! The two-tier configuration is exactly one pair and behaves identically
//! to a standalone [`ChronoPolicy`].

use tiered_mem::{AccessResult, ProcessId, TierHealth, TierId, TieredSystem, Vpn, MAX_TIERS};
use tiering_policies::{decode_token, TieringPolicy};

use crate::config::ChronoConfig;
use crate::policy::{ChronoPolicy, EV_MIGRATE};
use crate::queue::QueueFlow;
use crate::resilience::RetryFlow;

/// Cascaded Chrono: one [`ChronoPolicy`] per adjacent pair of managed tiers.
pub struct CascadeChrono {
    pairs: Vec<ChronoPolicy>,
    /// Pairs whose lower tier is spliced out of the chain: their events
    /// reschedule without doing work until the tier rejoins.
    suspended: Vec<bool>,
    /// Whether any pair is currently suspended or retargeted, so healthy
    /// runs pay one boolean check per event and nothing else.
    rerouted: bool,
    name: &'static str,
}

impl CascadeChrono {
    /// Builds a cascade over `tiers` managed tiers (so `tiers - 1` pairs).
    /// Every pair runs the same configuration; deeper pairs decorrelate
    /// their DCSC victim sampling by offsetting the RNG seed.
    pub fn new(cfg: ChronoConfig, tiers: usize) -> CascadeChrono {
        assert!(
            (2..=MAX_TIERS).contains(&tiers),
            "cascade needs 2..={MAX_TIERS} managed tiers, got {tiers}"
        );
        let pairs = (0..tiers - 1)
            .map(|i| {
                let mut pair_cfg = cfg.clone();
                pair_cfg.seed = cfg.seed.wrapping_add(i as u64 * 0x9E37_79B9);
                ChronoPolicy::new_pair(
                    pair_cfg,
                    tiered_mem::TierId(i as u8),
                    tiered_mem::TierId(i as u8 + 1),
                    i as u32,
                )
            })
            .collect::<Vec<_>>();
        let name = if pairs.len() == 1 {
            pairs[0].name()
        } else {
            "Chrono-DCSC"
        };
        CascadeChrono {
            suspended: vec![false; pairs.len()],
            rerouted: false,
            pairs,
            name,
        }
    }

    /// Builds the cascade sized to a system's managed tier count.
    pub fn for_system(cfg: ChronoConfig, sys: &TieredSystem) -> CascadeChrono {
        CascadeChrono::new(cfg, sys.config().num_tiers())
    }

    /// The per-pair policies, top edge first.
    pub fn pairs(&self) -> &[ChronoPolicy] {
        &self.pairs
    }

    /// Per-pair promotion-queue flow snapshots (for invariant checks).
    pub fn queue_flows(&self) -> Vec<QueueFlow> {
        self.pairs.iter().map(|p| p.queue_flow()).collect()
    }

    /// Per-pair retry flow snapshots (for invariant checks).
    pub fn retry_flows(&self) -> Vec<RetryFlow> {
        self.pairs.iter().map(|p| p.retry_flow()).collect()
    }

    /// Which pairs are currently suspended (lower tier spliced out).
    pub fn suspended_pairs(&self) -> &[bool] {
        &self.suspended
    }

    /// Re-derives per-pair routing from the substrate's tier health.
    ///
    /// Pair `i` always keeps its lower tier `i + 1` — scan-fault routing
    /// and every piece of per-pair scan state key on the lower tier. When
    /// that tier is spliced out the pair suspends (abandoning its retries
    /// and deferred work, tripping its breaker); otherwise its *upper* is
    /// retargeted to the nearest non-spliced tier at or above its home
    /// position, which is exactly the splice edge the substrate's
    /// `route_allowed` accepts. An all-Online chain restores every pair to
    /// its home edge and this becomes a single boolean check per event.
    fn sync_tier_health(&mut self, sys: &mut TieredSystem) {
        let health = sys.tier_health_all().to_vec();
        let any_unhealthy = health.iter().any(|h| !matches!(h, TierHealth::Online));
        if !any_unhealthy && !self.rerouted {
            return;
        }
        let mut rerouted = false;
        for i in 0..self.pairs.len() {
            let lower_out = health[i + 1].spliced_out();
            if lower_out && !self.suspended[i] {
                self.pairs[i].on_edge_down(sys);
            }
            self.suspended[i] = lower_out;
            let mut t = i;
            while t > 0 && health[t].spliced_out() {
                t -= 1;
            }
            let target = TierId(t as u8);
            if self.pairs[i].tier_pair().0 != target {
                self.pairs[i].retarget_upper(target);
            }
            rerouted |= lower_out || t != i;
        }
        self.rerouted = rerouted;
    }
}

impl TieringPolicy for CascadeChrono {
    fn name(&self) -> &'static str {
        self.name
    }

    fn init(&mut self, sys: &mut TieredSystem) {
        for p in &mut self.pairs {
            p.init(sys);
        }
    }

    fn on_event(&mut self, sys: &mut TieredSystem, token: u64) {
        self.sync_tier_health(sys);
        let (kind, _pid, tag) = decode_token(token);
        if kind == EV_MIGRATE {
            // The failure channel is a single global drain; pull it once and
            // offer every record to every pair (each keeps only its edge's).
            let failures = sys.take_migration_failures();
            if !failures.is_empty() {
                let now = sys.clock.now();
                for p in &mut self.pairs {
                    p.ingest_failures(failures.iter().copied(), now);
                }
            }
        }
        if self.suspended[tag as usize] {
            self.pairs[tag as usize].suspend_tick(sys, token);
        } else {
            self.pairs[tag as usize].on_event(sys, token);
        }
    }

    fn on_hint_fault(
        &mut self,
        sys: &mut TieredSystem,
        pid: ProcessId,
        vpn: Vpn,
        write: bool,
        res: &AccessResult,
    ) {
        if res.probed_fault {
            let pte = sys.process(pid).space.pte_page(vpn);
            // The pair that armed the probe owns both rounds; fall back to
            // the pair whose lower tier holds the page if the record is
            // gone (e.g. the probe expired between rounds).
            let owner = self
                .pairs
                .iter()
                .position(|p| p.has_outstanding_probe(pid, pte))
                .or_else(|| self.pairs.iter().position(|p| p.tier_pair().1 == res.tier));
            if let Some(i) = owner {
                if !self.suspended[i] {
                    self.pairs[i].on_hint_fault(sys, pid, vpn, write, res);
                }
            }
            return;
        }
        // Scan fault: the poisoning pair is the one scanning this tier —
        // tier t is the lower tier of pair t-1. Faults on the top tier have
        // no scanning pair and are ignored (as the standalone policy does).
        let t = res.tier.index();
        if t >= 1 && t <= self.pairs.len() && !self.suspended[t - 1] {
            self.pairs[t - 1].on_hint_fault(sys, pid, vpn, write, res);
        }
    }

    fn on_access(&mut self, sys: &mut TieredSystem, pid: ProcessId, vpn: Vpn, write: bool) {
        for p in &mut self.pairs {
            p.on_access(sys, pid, vpn, write);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::Nanos;
    use tiered_mem::{PageSize, SystemConfig, TierId};
    use tiering_policies::{DriverConfig, SimulationDriver};
    use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

    fn test_config() -> ChronoConfig {
        ChronoConfig {
            p_victim: 0.002,
            ..ChronoConfig::scaled(Nanos::from_millis(50), 512)
        }
    }

    fn run_cascade(syscfg: SystemConfig, run_ms: u64) -> (TieredSystem, CascadeChrono) {
        let mut sys = TieredSystem::new(syscfg);
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = CascadeChrono::for_system(test_config(), &sys);
        SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(run_ms),
            ..Default::default()
        })
        .run(&mut sys, &mut wls, &mut policy);
        (sys, policy)
    }

    #[test]
    fn two_tier_cascade_matches_standalone_chrono_exactly() {
        // The cascade with one pair must be bit-identical to the standalone
        // policy: same access count, same promotion/demotion totals, same
        // FMAR bits.
        let (casc_sys, _) = run_cascade(SystemConfig::dram_pmem(1024, 4096), 300);
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(1024, 4096));
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = ChronoPolicy::new(test_config());
        SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(300),
            ..Default::default()
        })
        .run(&mut sys, &mut wls, &mut policy);
        assert_eq!(casc_sys.stats.promoted_pages, sys.stats.promoted_pages);
        assert_eq!(casc_sys.stats.demoted_pages, sys.stats.demoted_pages);
        assert_eq!(casc_sys.stats.hint_faults, sys.stats.hint_faults);
        assert_eq!(casc_sys.stats.fmar().to_bits(), sys.stats.fmar().to_bits());
    }

    #[test]
    fn three_tier_cascade_migrates_on_both_edges() {
        let (sys, policy) = run_cascade(SystemConfig::three_tier(768, 1536, 4096), 500);
        assert_eq!(policy.pairs().len(), 2);
        assert!(sys.stats.promoted_pages > 0, "no promotions at all");
        // Both pairs must have seen scan faults land (their classifiers ran).
        for (i, p) in policy.pairs().iter().enumerate() {
            let (below, above) = p.scan_fault_split();
            assert!(below + above > 0, "pair {i} never classified a fault");
        }
        // Queue flow conserves on every edge.
        for (i, f) in policy.queue_flows().iter().enumerate() {
            assert!(f.conserved(), "pair {i} queue flow: {f:?}");
        }
        for (i, f) in policy.retry_flows().iter().enumerate() {
            assert!(f.conserved(), "pair {i} retry flow: {f:?}");
        }
    }

    #[test]
    fn three_tier_steady_state_populates_all_tiers() {
        let (sys, _policy) = run_cascade(SystemConfig::three_tier(768, 1536, 4096), 500);
        for t in 0..3 {
            assert!(
                sys.used_frames(TierId(t)) > 0,
                "tier {t} empty at steady state"
            );
        }
        // The hot set should concentrate on top: the top tier runs fuller
        // (relative to capacity) than the bottom.
        let occ =
            |t: u8| sys.used_frames(TierId(t)) as f64 / sys.total_frames(TierId(t)).max(1) as f64;
        assert!(
            occ(0) > occ(2),
            "top occupancy {:.2} should exceed bottom {:.2}",
            occ(0),
            occ(2)
        );
    }

    fn run_cascade_with_plan(
        mut syscfg: SystemConfig,
        plan: tiered_mem::FaultPlan,
        run_ms: u64,
    ) -> (TieredSystem, CascadeChrono) {
        syscfg.fault_plan = Some(plan);
        run_cascade(syscfg, run_ms)
    }

    fn mid_tier_outage_plan(seed: u64) -> tiered_mem::FaultPlan {
        use tiered_mem::{TierEvent, TierEventKind};
        let mut plan = tiered_mem::FaultPlan::inert(seed);
        plan.tier_events = vec![
            TierEvent {
                at: Nanos::from_millis(200),
                tier: TierId(1),
                kind: TierEventKind::Offline {
                    deadline: Nanos::from_millis(220),
                },
            },
            TierEvent {
                at: Nanos::from_millis(350),
                tier: TierId(1),
                kind: TierEventKind::Online,
            },
        ];
        plan
    }

    #[test]
    fn mid_tier_offline_evacuates_splices_and_rejoins() {
        let topo = || SystemConfig::three_tier(768, 1536, 4096);
        let healthy = run_cascade(topo(), 500).0.stats.fmar();
        let (sys, policy) = run_cascade_with_plan(topo(), mid_tier_outage_plan(5), 500);
        // The outage actually ran: pages were drained off the mid tier and
        // every evacuated page is accounted for exactly once.
        let s = &sys.stats;
        assert!(s.evacuated_pages > 0, "no evacuation happened");
        assert_eq!(
            s.evacuated_pages,
            s.evac_rehomed_pages
                + s.evac_swapped_pages
                + s.evac_faulted_pages
                + sys.in_flight_evac_pages(),
            "evacuation flow not conserved: {s:?}"
        );
        assert!(s.tier_health_transitions > 0);
        // The failing edge (pair 0, lower tier 1) tripped its breaker on
        // the way down; the surviving edge never tripped.
        assert!(
            policy.pairs()[0].breaker_trips() > 0,
            "edge 0 never tripped"
        );
        assert_eq!(
            policy.pairs()[1].breaker_trips(),
            0,
            "only the failing edge may trip"
        );
        // After the rejoin the chain healed: no pair suspended, the lower
        // pair promotes to its home tier again, and the mid tier repopulated.
        assert!(policy.suspended_pairs().iter().all(|s| !s));
        assert_eq!(policy.pairs()[1].tier_pair(), (TierId(1), TierId(2)));
        assert!(
            sys.used_frames(TierId(1)) > 0,
            "mid tier empty after rejoin"
        );
        // Losing a tier for 30% of the run costs some fast-tier hit rate,
        // but the acceptance bar holds: at least 75% of fault-free FMAR.
        let faulty = sys.stats.fmar();
        assert!(
            faulty >= healthy * 0.75,
            "FMAR {faulty} fell below 75% of fault-free {healthy}"
        );
        for (i, f) in policy.queue_flows().iter().enumerate() {
            assert!(f.conserved(), "pair {i} queue flow: {f:?}");
        }
        for (i, f) in policy.retry_flows().iter().enumerate() {
            assert!(f.conserved(), "pair {i} retry flow: {f:?}");
        }
    }

    #[test]
    fn retry_flow_stays_conserved_on_a_dying_edge() {
        // Transient copy faults keep the retry pools busy while the mid
        // tier dies and rejoins: every pool must still balance
        // `failed == retried + abandoned + pending` afterwards.
        let mut plan = mid_tier_outage_plan(7);
        plan.copy_transient = 0.3;
        let (sys, policy) =
            run_cascade_with_plan(SystemConfig::three_tier(768, 1536, 4096), plan, 500);
        assert!(sys.stats.transient_copy_faults > 0, "no faults injected");
        for (i, f) in policy.retry_flows().iter().enumerate() {
            assert!(f.conserved(), "pair {i} retry flow: {f:?}");
        }
        assert!(policy.suspended_pairs().iter().all(|s| !s));
    }

    #[test]
    fn cascade_name_reflects_shape() {
        let two = CascadeChrono::new(test_config(), 2);
        assert_eq!(two.name(), "Chrono");
        let three = CascadeChrono::new(test_config(), 3);
        assert_eq!(three.name(), "Chrono-DCSC");
        assert_eq!(three.pairs().len(), 2);
        assert_eq!(three.pairs()[0].tier_pair(), (TierId(0), TierId(1)));
        assert_eq!(three.pairs()[1].tier_pair(), (TierId(1), TierId(2)));
    }
}
