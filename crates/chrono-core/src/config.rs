//! Chrono's configurable parameters (the paper's Table 2).

use sim_clock::Nanos;

/// How the CIT threshold and promotion rate limit are managed (Section 3.2).
#[derive(Debug, Clone, PartialEq)]
pub enum TuningMode {
    /// Fixed threshold and rate limit (no adaptation; ablation baseline).
    Manual {
        /// Fixed CIT threshold.
        cit_threshold: Nanos,
        /// Fixed promotion rate limit in bytes/second.
        rate_limit: u64,
    },
    /// Semi-automatic: the user fixes the rate limit, Chrono adapts the CIT
    /// threshold with the δ-step update (Section 3.2.1).
    SemiAuto {
        /// User-provided promotion rate limit in bytes/second.
        rate_limit: u64,
    },
    /// Fully automatic DCSC statistics-based tuning (Section 3.2.2) —
    /// Chrono's default: both threshold and rate limit are derived from the
    /// per-tier CIT heat maps.
    Dcsc,
}

/// Chrono configuration. Defaults reproduce Table 2, with time values
/// interpreted in simulated time (experiments scale them together with the
/// simulated run lengths; see DESIGN.md §1).
#[derive(Debug, Clone)]
pub struct ChronoConfig {
    /// Ticking-scan period: one full pass over each address space
    /// (Table 2: 60 s).
    pub scan_period: Nanos,
    /// Pages marked per Ticking-scan event (Table 2: 256 MB = 65536 pages).
    pub scan_step_pages: u32,
    /// Fraction of pages probed per DCSC round (Table 2: 0.003 %).
    pub p_victim: f64,
    /// Number of CIT heat-map buckets (Table 2: 28).
    pub buckets: usize,
    /// Finest CIT bucket granularity (Section 4: 1 ms; bucket `i` covers
    /// `[2^(i−1), 2^i)` of this unit).
    pub finest_cit: Nanos,
    /// Adaptation step δ for the semi-auto threshold update (Table 2: 0.5).
    pub delta_step: f64,
    /// Initial CIT threshold (Table 2: 1000 ms, auto-tuned thereafter).
    pub initial_cit_threshold: Nanos,
    /// Initial promotion rate limit (Table 2: 100 MB/s, auto-tuned).
    pub initial_rate_limit: u64,
    /// Candidate-filtering rounds (Section 3.1.2: 2; ablations use 1 and 3).
    pub filter_rounds: u32,
    /// Tuning mode (default: DCSC).
    pub tuning: TuningMode,
    /// DCSC statistical-scan interval (Section 3.2.2: per-second probing).
    pub dcsc_interval: Nanos,
    /// Promotion-queue drain interval.
    pub migrate_interval: Nanos,
    /// Proactive-demotion check interval.
    pub demote_interval: Nanos,
    /// Thrashing ratio above which the rate limit is halved (Section 3.3.2).
    pub thrash_threshold: f64,
    /// Exponential decay applied to heat maps per DCSC aggregation.
    pub heatmap_decay: f64,
    /// RNG seed (victim selection).
    pub seed: u64,
    /// Retries allowed per transiently failed promotion before giving up.
    pub retry_max_attempts: u32,
    /// First-retry backoff; doubles per attempt (bounded exponential).
    pub retry_backoff_base: Nanos,
    /// Pending-retry pool bound; overflow is abandoned, not queued.
    pub retry_pool_cap: usize,
    /// Migration-failure ratio above which the promotion circuit breaker
    /// opens for a period.
    pub breaker_threshold: f64,
    /// Minimum attempts in a period before the breaker may trip (small
    /// samples produce meaningless ratios).
    pub breaker_min_attempts: u64,
    /// Consecutive starved DCSC rounds (after the first successful tune,
    /// with fault damage present) before degrading to semi-auto tuning.
    pub dcsc_starved_rounds: u32,
    /// HybridTier-style per-region tracker switch: regions whose hint-fault
    /// overhead exceeds a fixed share of the scan period flip from
    /// fault-based CIT tracking to a cheaper sampled-frequency mode for the
    /// next period (and back when the pressure subsides). Off by default —
    /// the two-tier goldens pin the pure-CIT behaviour.
    pub adaptive_tracking: bool,
}

impl Default for ChronoConfig {
    fn default() -> ChronoConfig {
        ChronoConfig {
            scan_period: Nanos::from_secs(60),
            scan_step_pages: 65_536,
            p_victim: 0.003 / 100.0,
            buckets: 28,
            finest_cit: Nanos::from_millis(1),
            delta_step: 0.5,
            initial_cit_threshold: Nanos::from_millis(1000),
            initial_rate_limit: 100 * 1024 * 1024,
            filter_rounds: 2,
            tuning: TuningMode::Dcsc,
            dcsc_interval: Nanos::from_secs(1),
            migrate_interval: Nanos::from_millis(100),
            demote_interval: Nanos::from_millis(500),
            thrash_threshold: 0.2,
            heatmap_decay: 0.98,
            seed: 0xC1207,
            retry_max_attempts: 3,
            retry_backoff_base: Nanos::from_millis(100),
            retry_pool_cap: 1 << 12,
            breaker_threshold: 0.5,
            breaker_min_attempts: 16,
            dcsc_starved_rounds: 8,
            adaptive_tracking: false,
        }
    }
}

impl ChronoConfig {
    /// A configuration scaled for simulations that compress the paper's
    /// minutes-long runs into `scan_period`-sized epochs: every time-based
    /// parameter keeps its ratio to the scan period.
    pub fn scaled(scan_period: Nanos, scan_step_pages: u32) -> ChronoConfig {
        let ms = scan_period.as_nanos() / 1_000_000;
        ChronoConfig {
            scan_period,
            scan_step_pages,
            // DCSC probes ~60× per scan period (1 s vs 60 s in the paper).
            dcsc_interval: Nanos(scan_period.as_nanos() / 60).max(Nanos(1)),
            migrate_interval: Nanos(scan_period.as_nanos() / 600).max(Nanos(1)),
            demote_interval: Nanos(scan_period.as_nanos() / 120).max(Nanos(1)),
            // Threshold starts at one scan period (paper: 1000 ms ≈ 1/60 of
            // the 60 s period; we start high and let tuning pull it down).
            initial_cit_threshold: Nanos::from_millis(ms / 60).max(Nanos::from_millis(1)),
            // Finest bucket keeps the 1 ms : 60 s ratio to the scan period.
            finest_cit: Nanos(scan_period.as_nanos() / 60_000).max(Nanos(1_000)),
            // Retry at drain-interval granularity so backoff steps line up
            // with migrate events.
            retry_backoff_base: Nanos(scan_period.as_nanos() / 600).max(Nanos(1)),
            ..ChronoConfig::default()
        }
    }

    /// The Fig 13 ablation variants.
    pub fn variant_basic(mut self) -> ChronoConfig {
        self.filter_rounds = 1;
        self.tuning = TuningMode::SemiAuto {
            rate_limit: 120 * 1024 * 1024,
        };
        self
    }

    /// Two-round filtering with semi-auto tuning (Fig 13 "Chrono-twice").
    pub fn variant_twice(mut self) -> ChronoConfig {
        self.filter_rounds = 2;
        self.tuning = TuningMode::SemiAuto {
            rate_limit: 120 * 1024 * 1024,
        };
        self
    }

    /// Three-round filtering (Fig 13 "Chrono-thrice").
    pub fn variant_thrice(mut self) -> ChronoConfig {
        self.filter_rounds = 3;
        self.tuning = TuningMode::SemiAuto {
            rate_limit: 120 * 1024 * 1024,
        };
        self
    }

    /// Full Chrono: two rounds + DCSC (Fig 13 "Chrono-full", the default).
    pub fn variant_full(mut self) -> ChronoConfig {
        self.filter_rounds = 2;
        self.tuning = TuningMode::Dcsc;
        self
    }

    /// Semi-auto with an expert-chosen rate limit (Fig 13 "Chrono-manual").
    pub fn variant_manual(mut self, rate_limit: u64) -> ChronoConfig {
        self.filter_rounds = 2;
        self.tuning = TuningMode::SemiAuto { rate_limit };
        self
    }

    /// The CIT bucket index for a CIT value: bucket `i` covers
    /// `[2^(i−1), 2^i)` finest-granularity units, with bucket 0 for values
    /// below one unit (Section 4).
    pub fn bucket_of(&self, cit: Nanos) -> usize {
        let units = cit.as_nanos() / self.finest_cit.as_nanos().max(1);
        if units == 0 {
            return 0;
        }
        let b = 64 - units.leading_zeros() as usize; // floor(log2)+1
                                                     // `buckets - 1` underflows on a zero-bucket config; treat it as a
                                                     // single-bucket map (validate() clamps real configurations).
        b.min(self.buckets.saturating_sub(1))
    }

    /// Clamps degenerate parameters to usable values: a CIT histogram needs
    /// at least one bucket (`bucket_of`/`HeatMap::add` otherwise have no
    /// index to clamp to). Called by `ChronoPolicy::new`, so a zero-bucket
    /// configuration rounds up instead of underflowing deep in the policy.
    pub fn validate(mut self) -> ChronoConfig {
        self.buckets = self.buckets.max(1);
        self
    }

    /// The lower-bound CIT of a bucket (inverse of [`ChronoConfig::bucket_of`]).
    pub fn bucket_floor(&self, bucket: usize) -> Nanos {
        if bucket == 0 {
            return Nanos::ZERO;
        }
        Nanos(self.finest_cit.as_nanos() << (bucket - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = ChronoConfig::default();
        assert_eq!(c.scan_period, Nanos::from_secs(60));
        assert_eq!(c.scan_step_pages, 65_536); // 256 MB of base pages
        assert!((c.p_victim - 3e-5).abs() < 1e-12);
        assert_eq!(c.buckets, 28);
        assert!((c.delta_step - 0.5).abs() < 1e-12);
        assert_eq!(c.initial_cit_threshold, Nanos::from_millis(1000));
        assert_eq!(c.initial_rate_limit, 100 * 1024 * 1024);
        assert_eq!(c.filter_rounds, 2);
        assert_eq!(c.tuning, TuningMode::Dcsc);
    }

    #[test]
    fn bucket_mapping_is_log2_of_ms() {
        let c = ChronoConfig::default();
        assert_eq!(c.bucket_of(Nanos::ZERO), 0);
        assert_eq!(c.bucket_of(Nanos::from_micros(500)), 0);
        assert_eq!(c.bucket_of(Nanos::from_millis(1)), 1);
        assert_eq!(c.bucket_of(Nanos::from_millis(2)), 2);
        assert_eq!(c.bucket_of(Nanos::from_millis(3)), 2);
        assert_eq!(c.bucket_of(Nanos::from_millis(4)), 3);
        // 2^27 ms (the paper's 37.3 h example) saturates at the last bucket.
        assert_eq!(c.bucket_of(Nanos::from_millis(1 << 27)), 27);
    }

    #[test]
    fn bucket_floor_inverts_bucket_of() {
        let c = ChronoConfig::default();
        for b in 1..c.buckets - 1 {
            let floor = c.bucket_floor(b);
            assert_eq!(c.bucket_of(floor), b, "bucket {}", b);
            // Just below the floor belongs to the previous bucket.
            assert_eq!(c.bucket_of(Nanos(floor.as_nanos() - 1)), b - 1);
        }
    }

    #[test]
    fn zero_bucket_config_does_not_underflow() {
        // Regression: `bucket_of` computed `buckets - 1` unconditionally, so
        // any nonzero CIT under a zero-bucket config wrapped/panicked.
        let c = ChronoConfig {
            buckets: 0,
            ..ChronoConfig::default()
        };
        assert_eq!(c.bucket_of(Nanos::ZERO), 0);
        assert_eq!(c.bucket_of(Nanos::from_millis(1)), 0);
        assert_eq!(c.bucket_of(Nanos::from_secs(3600)), 0);
        // validate() rounds the config up to a single usable bucket.
        assert_eq!(c.validate().buckets, 1);
    }

    #[test]
    fn single_bucket_config_maps_everything_to_zero() {
        let c = ChronoConfig {
            buckets: 1,
            ..ChronoConfig::default()
        };
        assert_eq!(c.bucket_of(Nanos::ZERO), 0);
        assert_eq!(c.bucket_of(Nanos::from_millis(17)), 0);
        assert_eq!(c.bucket_floor(0), Nanos::ZERO);
    }

    #[test]
    fn validate_keeps_sane_configs_unchanged() {
        let c = ChronoConfig::default().validate();
        assert_eq!(c.buckets, 28);
    }

    #[test]
    fn scaled_config_keeps_ratios() {
        let c = ChronoConfig::scaled(Nanos::from_millis(600), 512);
        assert_eq!(c.scan_period, Nanos::from_millis(600));
        assert_eq!(c.dcsc_interval, Nanos::from_millis(10));
        assert!(c.finest_cit >= Nanos(1_000));
    }

    #[test]
    fn variants_set_rounds_and_tuning() {
        let base = ChronoConfig::default();
        assert_eq!(base.clone().variant_basic().filter_rounds, 1);
        assert_eq!(base.clone().variant_twice().filter_rounds, 2);
        assert_eq!(base.clone().variant_thrice().filter_rounds, 3);
        assert_eq!(base.clone().variant_full().tuning, TuningMode::Dcsc);
        match base.variant_manual(7).tuning {
            TuningMode::SemiAuto { rate_limit } => assert_eq!(rate_limit, 7),
            other => panic!("unexpected {:?}", other),
        }
    }
}
