//! procfs-style runtime controls.
//!
//! The paper's implementation exposes "`procfs` controllers that allow
//! system managers to configure parameters manually as they need"
//! (Section 4). This module is the equivalent surface: string-keyed get/set
//! of the live policy parameters, suitable for wiring to a CLI, a config
//! file, or an actual procfs shim.
//!
//! Supported keys (values parse/format as decimal strings):
//!
//! | key | meaning | unit |
//! |---|---|---|
//! | `cit_threshold_ms`    | classification threshold | milliseconds |
//! | `rate_limit_mbps`     | promotion rate limit | MB/s |
//! | `scan_period_ms`      | Ticking-scan period (read-only) | milliseconds |
//! | `scan_step_pages`     | pages per scan chunk (read-only) | pages |
//! | `p_victim_percent`    | DCSC sampling ratio | percent |
//! | `delta_step`          | semi-auto adaption step | — |
//! | `thrash_threshold`    | rate-halving thrash ratio | — |
//! | `filter_rounds`       | candidate-filter rounds (read-only) | — |

use sim_clock::Nanos;

use crate::policy::ChronoPolicy;

/// Errors from the control surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlError {
    /// No such parameter.
    UnknownKey(String),
    /// The value failed to parse or was out of range.
    InvalidValue(String),
    /// The parameter can only be read at run time.
    ReadOnly(String),
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::UnknownKey(k) => write!(f, "unknown parameter '{}'", k),
            ControlError::InvalidValue(v) => write!(f, "invalid value '{}'", v),
            ControlError::ReadOnly(k) => write!(f, "parameter '{}' is read-only", k),
        }
    }
}

impl std::error::Error for ControlError {}

/// The control keys, in display order.
pub const KEYS: [&str; 8] = [
    "cit_threshold_ms",
    "rate_limit_mbps",
    "scan_period_ms",
    "scan_step_pages",
    "p_victim_percent",
    "delta_step",
    "thrash_threshold",
    "filter_rounds",
];

impl ChronoPolicy {
    /// Reads a control parameter as a string.
    pub fn get_param(&self, key: &str) -> Result<String, ControlError> {
        Ok(match key {
            "cit_threshold_ms" => format!("{:.3}", self.cit_threshold().as_nanos() as f64 / 1e6),
            "rate_limit_mbps" => format!("{}", self.rate_limit() / (1024 * 1024)),
            "scan_period_ms" => format!("{}", self.config().scan_period.as_millis()),
            "scan_step_pages" => format!("{}", self.config().scan_step_pages),
            "p_victim_percent" => format!("{:.4}", self.config().p_victim * 100.0),
            "delta_step" => format!("{}", self.config().delta_step),
            "thrash_threshold" => format!("{}", self.config().thrash_threshold),
            "filter_rounds" => format!("{}", self.config().filter_rounds),
            other => return Err(ControlError::UnknownKey(other.to_string())),
        })
    }

    /// Writes a control parameter from a string.
    pub fn set_param(&mut self, key: &str, value: &str) -> Result<(), ControlError> {
        let parse_f64 = |v: &str| -> Result<f64, ControlError> {
            v.parse::<f64>()
                .map_err(|_| ControlError::InvalidValue(v.to_string()))
        };
        match key {
            "cit_threshold_ms" => {
                let ms = parse_f64(value)?;
                if ms.is_nan() || ms <= 0.0 {
                    return Err(ControlError::InvalidValue(value.to_string()));
                }
                // lint:allow(timestamp-cast) f64→u64 ms→ns conversion, not a
                // narrowing: the value is operator input validated above.
                self.force_cit_threshold(Nanos((ms * 1e6) as u64));
            }
            "rate_limit_mbps" => {
                let mb = parse_f64(value)?;
                if mb.is_nan() || mb <= 0.0 {
                    return Err(ControlError::InvalidValue(value.to_string()));
                }
                self.force_rate_limit((mb * 1024.0 * 1024.0) as u64);
            }
            "p_victim_percent" => {
                let pct = parse_f64(value)?;
                if !(0.0..=100.0).contains(&pct) {
                    return Err(ControlError::InvalidValue(value.to_string()));
                }
                self.config_mut().p_victim = pct / 100.0;
            }
            "delta_step" => {
                let d = parse_f64(value)?;
                if !(0.0..=1.0).contains(&d) {
                    return Err(ControlError::InvalidValue(value.to_string()));
                }
                self.config_mut().delta_step = d;
            }
            "thrash_threshold" => {
                let t = parse_f64(value)?;
                if !(0.0..=1.0).contains(&t) {
                    return Err(ControlError::InvalidValue(value.to_string()));
                }
                self.config_mut().thrash_threshold = t;
            }
            "scan_period_ms" | "scan_step_pages" | "filter_rounds" => {
                return Err(ControlError::ReadOnly(key.to_string()));
            }
            other => return Err(ControlError::UnknownKey(other.to_string())),
        }
        Ok(())
    }

    /// Renders every parameter, procfs-directory style.
    pub fn dump_params(&self) -> String {
        KEYS.iter()
            .map(|k| format!("{} = {}", k, self.get_param(k).expect("known key")))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChronoConfig;

    fn policy() -> ChronoPolicy {
        ChronoPolicy::new(ChronoConfig::default())
    }

    #[test]
    fn get_reports_table2_defaults() {
        let p = policy();
        assert_eq!(p.get_param("cit_threshold_ms").unwrap(), "1000.000");
        assert_eq!(p.get_param("rate_limit_mbps").unwrap(), "100");
        assert_eq!(p.get_param("scan_period_ms").unwrap(), "60000");
        assert_eq!(p.get_param("filter_rounds").unwrap(), "2");
    }

    #[test]
    fn set_and_read_back() {
        let mut p = policy();
        p.set_param("cit_threshold_ms", "250").unwrap();
        assert_eq!(p.get_param("cit_threshold_ms").unwrap(), "250.000");
        p.set_param("rate_limit_mbps", "64").unwrap();
        assert_eq!(p.get_param("rate_limit_mbps").unwrap(), "64");
        p.set_param("thrash_threshold", "0.3").unwrap();
        assert_eq!(p.get_param("thrash_threshold").unwrap(), "0.3");
    }

    #[test]
    fn rejects_unknown_and_invalid() {
        let mut p = policy();
        assert!(matches!(
            p.set_param("bogus", "1"),
            Err(ControlError::UnknownKey(_))
        ));
        assert!(matches!(
            p.set_param("cit_threshold_ms", "-5"),
            Err(ControlError::InvalidValue(_))
        ));
        assert!(matches!(
            p.set_param("delta_step", "nan-ish"),
            Err(ControlError::InvalidValue(_))
        ));
        assert!(matches!(
            p.get_param("nope"),
            Err(ControlError::UnknownKey(_))
        ));
    }

    #[test]
    fn structural_keys_are_read_only() {
        let mut p = policy();
        assert!(matches!(
            p.set_param("scan_period_ms", "10"),
            Err(ControlError::ReadOnly(_))
        ));
        assert!(matches!(
            p.set_param("filter_rounds", "3"),
            Err(ControlError::ReadOnly(_))
        ));
    }

    #[test]
    fn dump_lists_every_key() {
        let p = policy();
        let dump = p.dump_params();
        for k in KEYS {
            assert!(dump.contains(k), "missing {}", k);
        }
    }
}
