//! Dense per-`(pid, vpn)` tables for hot-path policy state.
//!
//! The kernel implementation indexes per-page policy state in an XArray; the
//! first simulator cut used `BTreeMap<u64, _>` keyed by `pid << 32 | vpn`,
//! which costs a pointer-chasing tree descent on every probe fault and every
//! candidate-round check — both on the measured hot paths of `harness bench`.
//! Virtual address spaces here are small and dense (a few thousand pages per
//! process), so a flat two-level vector — row per pid, slot per vpn — turns
//! each lookup into two bounds-checked indexes while keeping iteration in
//! exactly the `(pid, vpn)` order the old ordered map guaranteed. That order
//! is what keeps same-seed trace digests byte-stable (the chrono-lint
//! `hash-iter` rule), so it is part of this type's contract, not an accident.

use tiered_mem::{ProcessId, Vpn};

/// A grow-on-write table addressed by `(pid, vpn)`.
///
/// Slots spring into existence as `T::default()`; occupancy semantics (what
/// "absent" means) belong to the caller, which keeps reads free of any
/// tombstone bookkeeping.
#[derive(Debug, Default, Clone)]
pub struct PidVpnTable<T> {
    rows: Vec<Vec<T>>,
}

impl<T: Default + Clone> PidVpnTable<T> {
    /// Creates an empty table.
    pub fn new() -> PidVpnTable<T> {
        PidVpnTable { rows: Vec::new() }
    }

    /// The slot for `(pid, vpn)`, or `None` if that slot was never grown.
    #[inline]
    pub fn get(&self, pid: ProcessId, vpn: Vpn) -> Option<&T> {
        self.rows.get(pid.0 as usize)?.get(vpn.0 as usize)
    }

    /// Mutable slot access without growth.
    #[inline]
    pub fn get_mut(&mut self, pid: ProcessId, vpn: Vpn) -> Option<&mut T> {
        self.rows.get_mut(pid.0 as usize)?.get_mut(vpn.0 as usize)
    }

    /// Mutable slot access, growing the table with defaults as needed.
    /// Growth is amortized: rows double like any `Vec`, so an ascending
    /// sweep of vpns costs O(1) per new slot.
    #[inline]
    pub fn slot_mut(&mut self, pid: ProcessId, vpn: Vpn) -> &mut T {
        let p = pid.0 as usize;
        if p >= self.rows.len() {
            self.rows.resize_with(p + 1, Vec::new);
        }
        let row = &mut self.rows[p];
        let v = vpn.0 as usize;
        if v >= row.len() {
            row.resize(v + 1, T::default());
        }
        &mut row[v]
    }

    /// The backing rows, indexed by pid. Iterating rows in order and slots
    /// within each row in order yields `(pid, vpn)`-ascending traversal.
    pub fn rows(&self) -> &[Vec<T>] {
        &self.rows
    }

    /// Drops every slot (rows keep their capacity for reuse).
    pub fn clear(&mut self) {
        for row in &mut self.rows {
            row.clear();
        }
    }

    /// Approximate memory footprint of the backing storage in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.capacity() * std::mem::size_of::<T>())
            .sum::<usize>()
            + self.rows.capacity() * std::mem::size_of::<Vec<T>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pv(p: u16, v: u32) -> (ProcessId, Vpn) {
        (ProcessId(p), Vpn(v))
    }

    #[test]
    fn reads_never_grow() {
        let mut t: PidVpnTable<u32> = PidVpnTable::new();
        let (p, v) = pv(3, 100);
        assert_eq!(t.get(p, v), None);
        assert_eq!(t.get_mut(p, v), None);
        assert_eq!(t.approx_bytes(), 0);
    }

    #[test]
    fn slot_mut_grows_with_defaults() {
        let mut t: PidVpnTable<u32> = PidVpnTable::new();
        let (p, v) = pv(1, 5);
        *t.slot_mut(p, v) = 7;
        assert_eq!(t.get(p, v), Some(&7));
        // Interior slots materialised as defaults, earlier pids as empty rows.
        assert_eq!(t.get(pv(1, 0).0, pv(1, 0).1), Some(&0));
        assert_eq!(t.get(pv(0, 0).0, pv(0, 0).1), None);
    }

    #[test]
    fn clear_keeps_capacity_but_drops_slots() {
        let mut t: PidVpnTable<u32> = PidVpnTable::new();
        *t.slot_mut(ProcessId(0), Vpn(63)) = 1;
        let bytes = t.approx_bytes();
        t.clear();
        assert_eq!(t.get(ProcessId(0), Vpn(63)), None);
        assert!(t.approx_bytes() >= bytes);
    }

    #[test]
    fn rows_iterate_in_pid_vpn_order() {
        let mut t: PidVpnTable<u32> = PidVpnTable::new();
        for (p, v) in [(3u16, 9u32), (0, 44), (3, 2), (1, 7), (0, 1)] {
            *t.slot_mut(ProcessId(p), Vpn(v)) = 1;
        }
        let order: Vec<(usize, usize)> = t
            .rows()
            .iter()
            .enumerate()
            .flat_map(|(p, row)| {
                row.iter()
                    .enumerate()
                    .filter(|(_, &c)| c != 0)
                    .map(move |(v, _)| (p, v))
            })
            .collect();
        assert_eq!(order, vec![(0, 1), (0, 44), (1, 7), (3, 2), (3, 9)]);
    }
}
