//! Per-tier CIT heat maps and overlap identification (Section 3.2.2).
//!
//! DCSC probes deposit `(CIT bucket, page weight)` samples into one heat map
//! per tier. Because probes cover only P % of pages, sample counts are
//! scaled up to estimated page populations before the maps are compared.
//! The *overlap point* is the CIT cutoff at which the combined population of
//! hotter pages just fills the fast tier; slow-tier pages hotter than the
//! cutoff are *misplaced* and drive the promotion rate limit.

/// A bucketed CIT distribution with exponential aging.
#[derive(Debug, Clone)]
pub struct HeatMap {
    counts: Vec<f64>,
}

impl HeatMap {
    /// Creates an empty heat map with `buckets` CIT levels.
    pub fn new(buckets: usize) -> HeatMap {
        HeatMap {
            counts: vec![0.0; buckets],
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Adds a sample of `pages` pages at CIT bucket `bucket`. Huge-page
    /// samples redistribute to base-page equivalents by the caller shifting
    /// the bucket (+9 for 2 MiB, Section 3.4) and passing `pages = 512`.
    pub fn add(&mut self, bucket: usize, pages: f64) {
        // A zero-bucket map has nowhere to put the sample; `len() - 1` would
        // underflow. Dropping it matches `hotter_than`'s view of an empty map.
        let Some(last) = self.counts.len().checked_sub(1) else {
            return;
        };
        self.counts[bucket.min(last)] += pages;
    }

    /// Ages every bucket by `decay` (0–1), so stale distribution mass fades
    /// as workloads shift.
    pub fn decay(&mut self, decay: f64) {
        for c in &mut self.counts {
            *c *= decay;
        }
    }

    /// Total (weighted) page mass in the map.
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// Page mass with CIT bucket strictly below `bucket` (hotter than it).
    pub fn hotter_than(&self, bucket: usize) -> f64 {
        self.counts[..bucket.min(self.counts.len())].iter().sum()
    }

    /// Scales all counts so `total()` becomes `target` (sample → population
    /// extrapolation). No-op on an empty map.
    pub fn scaled_to(&self, target: f64) -> HeatMap {
        let t = self.total();
        if t <= 0.0 {
            return self.clone();
        }
        let k = target / t;
        HeatMap {
            counts: self.counts.iter().map(|c| c * k).collect(),
        }
    }

    /// Raw bucket values.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }
}

/// Result of comparing the two tiers' heat maps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overlap {
    /// Bucket index of the overlap point: pages hotter than this belong in
    /// the fast tier.
    pub cutoff_bucket: usize,
    /// Estimated slow-tier pages hotter than the cutoff (misplaced, should
    /// be promoted).
    pub misplaced_slow_pages: f64,
    /// Misplaced pages as a fraction of the fast tier's capacity.
    pub misplacement_ratio: f64,
}

/// Identifies the overlap point between the fast- and slow-tier CIT
/// populations: walk buckets hot→cold accumulating combined page mass until
/// the fast-tier capacity is filled.
///
/// `fast_map` and `slow_map` must already be scaled to page populations.
pub fn identify_overlap(
    fast_map: &HeatMap,
    slow_map: &HeatMap,
    fast_capacity_pages: f64,
) -> Overlap {
    debug_assert_eq!(fast_map.buckets(), slow_map.buckets());
    let buckets = fast_map.buckets();
    let mut acc = 0.0;
    let mut cutoff = buckets; // nothing overflows: everything may stay hot
    for b in 0..buckets {
        let level = fast_map.counts()[b] + slow_map.counts()[b];
        if acc + level > fast_capacity_pages {
            cutoff = b;
            break;
        }
        acc += level;
    }
    // Slow pages hotter than the cutoff should have been in the fast tier.
    let misplaced = slow_map.hotter_than(cutoff)
        + if cutoff < buckets {
            // Partial credit for the boundary bucket: the fraction of it
            // that would still fit goes to the slow tier proportionally.
            let level = fast_map.counts()[cutoff] + slow_map.counts()[cutoff];
            if level > 0.0 {
                let fit = (fast_capacity_pages - acc).max(0.0).min(level);
                fit * slow_map.counts()[cutoff] / level
            } else {
                0.0
            }
        } else {
            0.0
        };
    Overlap {
        cutoff_bucket: cutoff,
        misplaced_slow_pages: misplaced,
        misplacement_ratio: if fast_capacity_pages > 0.0 {
            misplaced / fast_capacity_pages
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut m = HeatMap::new(8);
        m.add(2, 10.0);
        m.add(5, 5.0);
        assert_eq!(m.total(), 15.0);
        assert_eq!(m.hotter_than(3), 10.0);
        assert_eq!(m.hotter_than(8), 15.0);
    }

    #[test]
    fn add_clamps_to_last_bucket() {
        let mut m = HeatMap::new(4);
        m.add(100, 1.0);
        assert_eq!(m.counts()[3], 1.0);
    }

    #[test]
    fn zero_bucket_map_drops_samples() {
        // Regression: `add` computed `len() - 1` unconditionally and
        // underflowed on an empty map.
        let mut m = HeatMap::new(0);
        m.add(0, 5.0);
        m.add(100, 5.0);
        assert_eq!(m.buckets(), 0);
        assert_eq!(m.total(), 0.0);
        assert_eq!(m.hotter_than(0), 0.0);
        assert_eq!(m.hotter_than(7), 0.0);
        m.decay(0.5);
        let o = identify_overlap(&m.clone(), &m, 100.0);
        assert_eq!(o.cutoff_bucket, 0);
        assert_eq!(o.misplaced_slow_pages, 0.0);
    }

    #[test]
    fn single_bucket_map_takes_everything() {
        let mut m = HeatMap::new(1);
        m.add(0, 2.0);
        m.add(27, 3.0);
        assert_eq!(m.counts()[0], 5.0);
        assert_eq!(m.hotter_than(0), 0.0);
        assert_eq!(m.hotter_than(1), 5.0);
    }

    #[test]
    fn decay_ages_uniformly() {
        let mut m = HeatMap::new(4);
        m.add(1, 10.0);
        m.decay(0.5);
        assert_eq!(m.counts()[1], 5.0);
    }

    #[test]
    fn scaling_extrapolates_population() {
        let mut m = HeatMap::new(4);
        m.add(0, 1.0);
        m.add(2, 3.0);
        let s = m.scaled_to(400.0);
        assert!((s.total() - 400.0).abs() < 1e-9);
        assert!((s.counts()[0] - 100.0).abs() < 1e-9);
        assert!((s.counts()[2] - 300.0).abs() < 1e-9);
    }

    #[test]
    fn scaling_empty_map_is_noop() {
        let m = HeatMap::new(4);
        assert_eq!(m.scaled_to(100.0).total(), 0.0);
    }

    #[test]
    fn overlap_finds_cutoff_where_fast_fills() {
        // Fast tier: 100 pages capacity. Hot pages (bucket 0-1): 40 fast +
        // 40 slow = 80. Bucket 2 has 60 more → cutoff at bucket 2.
        let mut fast = HeatMap::new(8);
        let mut slow = HeatMap::new(8);
        fast.add(0, 20.0);
        fast.add(1, 20.0);
        slow.add(0, 20.0);
        slow.add(1, 20.0);
        fast.add(2, 30.0);
        slow.add(2, 30.0);
        slow.add(6, 500.0); // cold mass, irrelevant
        let o = identify_overlap(&fast, &slow, 100.0);
        assert_eq!(o.cutoff_bucket, 2);
        // 40 slow pages strictly hotter + boundary credit 20×(30/60)=10.
        assert!((o.misplaced_slow_pages - 50.0).abs() < 1e-9);
        assert!((o.misplacement_ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn overlap_when_everything_fits() {
        // Capacity exceeds the whole population: every slow page could (and
        // should) live in the fast tier, so all of them count as misplaced.
        let mut fast = HeatMap::new(4);
        let mut slow = HeatMap::new(4);
        fast.add(0, 10.0);
        slow.add(1, 10.0);
        let o = identify_overlap(&fast, &slow, 1000.0);
        assert_eq!(o.cutoff_bucket, 4);
        assert_eq!(o.misplaced_slow_pages, 10.0);
    }

    #[test]
    fn overlap_with_perfect_placement_is_zero() {
        // All hot mass already in fast, all cold in slow.
        let mut fast = HeatMap::new(8);
        let mut slow = HeatMap::new(8);
        fast.add(0, 100.0);
        slow.add(7, 900.0);
        let o = identify_overlap(&fast, &slow, 100.0);
        assert!(o.misplaced_slow_pages < 1e-9);
    }

    #[test]
    fn overlap_with_inverted_placement_is_total() {
        // All hot mass in slow; fast full of cold pages.
        let mut fast = HeatMap::new(8);
        let mut slow = HeatMap::new(8);
        slow.add(0, 100.0);
        fast.add(7, 100.0);
        let o = identify_overlap(&fast, &slow, 100.0);
        // Bucket 0 (100 slow pages) exactly fills capacity; the cold fast
        // mass at bucket 7 overflows, so every hot slow page is misplaced.
        assert_eq!(o.cutoff_bucket, 7);
        assert!((o.misplaced_slow_pages - 100.0).abs() < 1e-9);
    }

    #[test]
    fn hotter_than_excludes_the_cutoff_bucket_itself() {
        // `hotter_than(b)` is strictly below b: mass *in* the cutoff bucket
        // is not "hotter than" it, only buckets 0..b count.
        let mut m = HeatMap::new(8);
        m.add(2, 10.0);
        m.add(3, 20.0);
        assert_eq!(m.hotter_than(3), 10.0); // bucket 3's own mass excluded
        assert_eq!(m.hotter_than(4), 30.0);
        assert_eq!(m.hotter_than(0), 0.0);
        // Out-of-range cutoffs clamp instead of panicking.
        assert_eq!(m.hotter_than(100), 30.0);
    }

    #[test]
    fn overlap_cutoff_boundary_mass_gets_partial_credit_only() {
        // The off-by-one trap at the cutoff: with capacity 10 and bucket 0
        // holding exactly 10 combined pages, the walk must pass bucket 0
        // (10 > 10 is false) and cut at bucket 1, so bucket 0's slow mass is
        // fully misplaced and bucket 1's counts only for the space left (0).
        let mut fast = HeatMap::new(4);
        let mut slow = HeatMap::new(4);
        fast.add(0, 5.0);
        slow.add(0, 5.0);
        slow.add(1, 7.0);
        let o = identify_overlap(&fast, &slow, 10.0);
        assert_eq!(o.cutoff_bucket, 1);
        // All 5 slow pages of bucket 0 misplaced, none of bucket 1 (no room).
        assert!((o.misplaced_slow_pages - 5.0).abs() < 1e-9);
        // One page more of capacity admits exactly one bucket-1 slow page.
        let o = identify_overlap(&fast, &slow, 11.0);
        assert_eq!(o.cutoff_bucket, 1);
        assert!((o.misplaced_slow_pages - 6.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_of_empty_maps_is_empty() {
        let fast = HeatMap::new(8);
        let slow = HeatMap::new(8);
        let o = identify_overlap(&fast, &slow, 100.0);
        assert_eq!(o.cutoff_bucket, 8); // nothing overflows
        assert_eq!(o.misplaced_slow_pages, 0.0);
        assert_eq!(o.misplacement_ratio, 0.0);
        // Zero capacity with mass present must not divide by zero.
        let mut slow = HeatMap::new(8);
        slow.add(0, 10.0);
        let o = identify_overlap(&fast, &slow, 0.0);
        assert_eq!(o.cutoff_bucket, 0);
        assert_eq!(o.misplacement_ratio, 0.0);
    }

    #[test]
    fn overlap_with_all_mass_in_one_bucket() {
        // Everything (fast and slow) at the same heat: the cutoff lands on
        // that bucket and the partial credit splits the remaining capacity
        // proportionally to the slow share of the bucket.
        let mut fast = HeatMap::new(8);
        let mut slow = HeatMap::new(8);
        fast.add(4, 60.0);
        slow.add(4, 40.0);
        let o = identify_overlap(&fast, &slow, 50.0);
        assert_eq!(o.cutoff_bucket, 4);
        // fit = 50 of 100; slow share 40 % → 20 misplaced slow pages.
        assert!((o.misplaced_slow_pages - 20.0).abs() < 1e-9);
        assert!((o.misplacement_ratio - 0.4).abs() < 1e-9);
    }

    #[test]
    fn misplaced_pages_never_exceed_slow_total() {
        // Randomized property (deterministic seeds): for arbitrary maps and
        // capacities, 0 ≤ misplaced_slow_pages ≤ slow.total().
        use sim_clock::DetRng;
        for seed in 0..256u64 {
            let mut rng = DetRng::seed(0x4EA7_1000 + seed);
            let buckets = 1 + rng.below(16) as usize;
            let mut fast = HeatMap::new(buckets);
            let mut slow = HeatMap::new(buckets);
            for _ in 0..rng.below(32) {
                fast.add(rng.below(buckets as u64) as usize, rng.below(1000) as f64);
            }
            for _ in 0..rng.below(32) {
                slow.add(rng.below(buckets as u64) as usize, rng.below(1000) as f64);
            }
            let capacity = rng.below(4000) as f64;
            let o = identify_overlap(&fast, &slow, capacity);
            assert!(
                o.misplaced_slow_pages >= -1e-9,
                "seed {seed}: negative misplacement {}",
                o.misplaced_slow_pages
            );
            assert!(
                o.misplaced_slow_pages <= slow.total() + 1e-9,
                "seed {seed}: misplaced {} > slow total {}",
                o.misplaced_slow_pages,
                slow.total()
            );
            assert!(o.cutoff_bucket <= buckets, "seed {seed}: cutoff range");
        }
    }
}
