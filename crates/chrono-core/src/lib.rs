#![warn(missing_docs)]
//! Chrono: meticulous hotness measurement and flexible page migration.
//!
//! This crate implements the paper's contribution as a [`ChronoPolicy`]
//! running on the `tiered-mem` substrate:
//!
//! - **Captured Idle Time (CIT)** — Section 3.1.1: the Ticking-scan poisons
//!   slow-tier PTEs and records the scan timestamp; the next fault's
//!   timestamp minus the scan timestamp estimates the page's access
//!   interval, decoupling frequency resolution from the scan rate.
//! - **Conditional promotion** — Section 3.1.2: two-round candidate
//!   filtering (a max-of-rounds estimator, [`theory`] proves it the minimum-
//!   variance unbiased choice) plus a rate-limited promotion queue.
//! - **Adaptive parameter tuning** — Section 3.2: the semi-automatic
//!   `TH_{i+1} = (1 − δ + δ·r)·TH_i` threshold update, and the fully
//!   automatic **DCSC** (Dynamic CIT Statistic Collection): random victim
//!   probing of both tiers into per-tier CIT [`heatmap::HeatMap`]s, overlap
//!   identification, and misplacement-driven rate-limit derivation.
//! - **Proactive demotion** — Section 3.3: the promotion-aware `pro`
//!   watermark and the page [`thrash::ThrashingMonitor`].
//! - **Huge-page support** — Section 3.4: threshold scaling (`TH/512`) and
//!   heat-map bucket redistribution (+9 buckets).

pub mod candidates;
pub mod cascade;
pub mod config;
pub mod controls;
pub mod flat;
pub mod heatmap;
pub mod limits;
pub mod policy;
pub mod queue;
pub mod resilience;
pub mod theory;
pub mod thrash;
pub mod tracker;
pub mod tuning;

pub use candidates::CandidateSet;
pub use cascade::CascadeChrono;
pub use config::{ChronoConfig, TuningMode};
pub use controls::ControlError;
pub use flat::PidVpnTable;
pub use heatmap::HeatMap;
pub use limits::LimitEnforcer;
pub use policy::ChronoPolicy;
pub use queue::{PromotionQueue, QueueFlow};
pub use resilience::{BreakerTransition, MigrationBreaker, RetryEntry, RetryFlow, RetryPool};
pub use thrash::ThrashingMonitor;
pub use tracker::RegionTracker;
