//! cgroup memory-limit enforcement via slow-tier reclamation.
//!
//! Section 3.3.1: "Chrono [accommodates] user-defined memory limits (e.g.
//! cgroups memory.limit), while prioritizing the retention of hot pages in
//! the fast tier. When memory limits are reached, Chrono initiates slow-tier
//! reclamation to relieve memory pressure while maintaining the placement
//! for hot pages." The enforcer therefore swaps out *slow-tier* pages of
//! over-limit processes, preferring pages whose accessed bit is clear, and
//! never touches the fast tier.

use tiered_mem::{PageFlags, ProcessId, TierId, TieredSystem, Vpn};

/// Per-process reclamation cursors for limit enforcement.
#[derive(Debug, Default)]
pub struct LimitEnforcer {
    cursors: Vec<u32>,
}

impl LimitEnforcer {
    /// Creates an enforcer.
    pub fn new() -> LimitEnforcer {
        LimitEnforcer::default()
    }

    /// Reclaims until every confined process is back under its limit, or
    /// `budget` swap-outs have been spent. Returns pages swapped out.
    pub fn enforce(&mut self, sys: &mut TieredSystem, mut budget: u32) -> u64 {
        let mut reclaimed = 0u64;
        let pids: Vec<ProcessId> = sys.pids().collect();
        self.cursors.resize(pids.len(), 0);
        for pid in pids {
            while sys.over_limit_frames(pid) > 0 && budget > 0 {
                match self.pick_slow_victim(sys, pid) {
                    Some(vpn) => {
                        budget -= 1;
                        if let Ok(pages) = sys.swap_out(pid, vpn) {
                            reclaimed += pages as u64;
                        }
                    }
                    None => break, // nothing reclaimable from the slow tier
                }
            }
        }
        reclaimed
    }

    /// Finds a slow-tier page of `pid` to reclaim: two passes from a
    /// rotating cursor — first idle pages (accessed bit clear), then any
    /// slow page — so hot fast-tier placement is never disturbed.
    fn pick_slow_victim(&mut self, sys: &TieredSystem, pid: ProcessId) -> Option<Vpn> {
        let space = &sys.process(pid).space;
        let pages = space.pages();
        if pages == 0 {
            return None;
        }
        let cursor = &mut self.cursors[pid.0 as usize];
        for require_idle in [true, false] {
            let mut pos = *cursor % pages;
            for _ in 0..pages {
                let vpn = Vpn(pos);
                let pte = space.pte_page(vpn);
                let e = space.entry(pte);
                let idle_ok = !require_idle || !e.flags.has(PageFlags::ACCESSED);
                if e.present() && e.tier() == TierId::SLOW && idle_ok {
                    *cursor = (pos + 1) % pages;
                    return Some(pte);
                }
                pos = (pos + 1) % pages;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::{PageSize, SystemConfig};

    fn overfull_system() -> (TieredSystem, ProcessId) {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(32, 256));
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        (sys, pid)
    }

    #[test]
    fn enforce_brings_process_under_limit() {
        let (mut sys, pid) = overfull_system();
        sys.set_memory_limit(pid, Some(100));
        let mut enf = LimitEnforcer::new();
        let reclaimed = enf.enforce(&mut sys, 1024);
        assert_eq!(reclaimed, 28);
        assert_eq!(sys.over_limit_frames(pid), 0);
        assert_eq!(sys.stats.swapped_out_pages, 28);
    }

    #[test]
    fn enforcement_never_touches_the_fast_tier() {
        let (mut sys, pid) = overfull_system();
        let fast_before = sys.used_frames(TierId::FAST);
        sys.set_memory_limit(pid, Some(60));
        LimitEnforcer::new().enforce(&mut sys, 1024);
        assert_eq!(sys.used_frames(TierId::FAST), fast_before);
        // The limit may be unreachable without touching fast pages; the
        // enforcer must stop rather than evict hot placement.
        assert!(sys.over_limit_frames(pid) <= fast_before);
    }

    #[test]
    fn budget_caps_reclamation() {
        let (mut sys, pid) = overfull_system();
        sys.set_memory_limit(pid, Some(50));
        let reclaimed = LimitEnforcer::new().enforce(&mut sys, 5);
        assert_eq!(reclaimed, 5);
    }

    #[test]
    fn idle_pages_are_reclaimed_first() {
        let (mut sys, pid) = overfull_system();
        // Touch a slow page so its accessed bit is set.
        let hot_slow = Vpn(120);
        sys.access(pid, hot_slow, false);
        sys.set_memory_limit(pid, Some(127));
        LimitEnforcer::new().enforce(&mut sys, 1);
        // The single reclaimed page must not be the recently touched one.
        assert!(sys.process(pid).space.entry(hot_slow).present());
    }

    #[test]
    fn unconfined_processes_are_untouched() {
        let (mut sys, _pid) = overfull_system();
        let reclaimed = LimitEnforcer::new().enforce(&mut sys, 1024);
        assert_eq!(reclaimed, 0);
    }
}
