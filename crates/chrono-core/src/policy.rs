//! The Chrono tiering policy (Section 3).
//!
//! Wires the pieces together on the `TieringPolicy` hooks:
//!
//! - **Ticking-scan** events poison slow-tier PTEs and stamp the scan time
//!   into the page's 4-byte policy word (microsecond resolution).
//! - **Hint faults** compute CIT and run the candidate filter; pages passing
//!   `filter_rounds` consecutive rounds under the threshold enter the
//!   rate-limited promotion queue. Faults on `PG_probed` pages instead feed
//!   the DCSC heat maps (two-round probing, max-of-rounds CIT).
//! - **Migrate** events drain the queue at the rate limit.
//! - **Demote** events enforce the `pro` watermark and flag demoted pages
//!   for the thrashing monitor.
//! - **Tune** events run the semi-automatic threshold update and the
//!   thrashing check; **DCSC** events expire/issue probes and derive both
//!   threshold and rate limit from heat-map overlap.

use sim_clock::{DetRng, Nanos};
use tiered_mem::{
    scan_budget_pages, AccessResult, LruKind, MigrateError, MigrateMode, MigrationFailure,
    PageFlags, ProcessId, TierId, TieredSystem, Vpn, BASE_PAGE_BYTES, HUGE_2M_PAGES,
};
use tiering_policies::{decode_token, encode_token, ScanCursor, TieringPolicy};
use tiering_trace::{PolicyTraceState, TraceEvent};

use crate::candidates::CandidateSet;
use crate::config::{ChronoConfig, TuningMode};
use crate::flat::PidVpnTable;
use crate::heatmap::{identify_overlap, HeatMap};
use crate::limits::LimitEnforcer;
use crate::queue::{PendingPromotion, PromotionQueue};
use crate::resilience::{MigrationBreaker, RetryFlow, RetryPool};
use crate::thrash::ThrashingMonitor;
use crate::tracker::RegionTracker;
use crate::tuning;

pub(crate) const EV_SCAN: u16 = 1;
pub(crate) const EV_MIGRATE: u16 = 2;
pub(crate) const EV_DEMOTE: u16 = 3;
pub(crate) const EV_TUNE: u16 = 4;
pub(crate) const EV_DCSC: u16 = 5;

/// Promotion-queue capacity bound (entries).
const QUEUE_CAP: usize = 1 << 18;
/// Probes older than this many scan periods are expired as cold: a page
/// idle across multiple full passes is cold at any threshold the tuner can
/// pick, and binning it at its idle age keeps the cold mass in the maps.
const PROBE_EXPIRY_PERIODS: u64 = 2;

fn now_us(t: Nanos) -> u32 {
    // lint:allow(timestamp-cast) intentional modular stamp: the 4-byte CIT
    // word wraps by design and every consumer reads it with wrapping_sub.
    (t.as_nanos() / 1_000) as u32
}

/// CIT from the 4-byte policy word: modular distance in µs space. The word
/// wraps every ~71.6 simulated minutes, so a plain subtraction of the
/// widened stamp goes wrong past 4295 s; `wrapping_sub` stays correct for
/// any interval shorter than one full wrap.
fn cit_from_word(fault_time: Nanos, word: u32) -> Nanos {
    Nanos(now_us(fault_time).wrapping_sub(word) as u64 * 1_000)
}

/// The Chrono policy.
///
/// An instance manages one adjacent tier pair: promotion moves
/// `lower → upper`, demotion `upper → lower`. The standalone two-tier
/// policy is the `FAST`/`SLOW` pair; [`crate::cascade::CascadeChrono`]
/// stacks one instance per edge of a longer [`tiered_mem::TierChain`].
pub struct ChronoPolicy {
    cfg: ChronoConfig,
    name: &'static str,
    /// Promotion destination tier of the managed pair.
    upper: TierId,
    /// Scan-tracked source tier of the managed pair.
    lower: TierId,
    /// Token tag stamped into every scheduled event so a cascade can route
    /// the token back to the owning pair (0 for the standalone policy).
    tag: u32,
    cursors: Vec<ScanCursor>,
    candidates: CandidateSet,
    queue: PromotionQueue,
    /// Drained entries the migration engine refused with `Backpressure`,
    /// retried ahead of the next batch (they were already counted dequeued,
    /// so queue-flow conservation is unaffected).
    deferred: Vec<PendingPromotion>,
    thrash: ThrashingMonitor,
    /// Backoff retries for transiently failed promotion copies.
    retry: RetryPool,
    /// Pauses the promotion queue when the copy-failure ratio spikes.
    breaker: MigrationBreaker,
    /// Deferred entries dropped by re-validation (stale CIT, moved tier, or
    /// already in flight) instead of being replayed blindly.
    stale_deferred_dropped: u64,
    /// DCSC fell back to semi-auto tuning after sustained probe starvation.
    degraded: bool,
    /// Consecutive starved DCSC tune rounds (with fault damage present).
    dcsc_starved: u32,
    /// Whether DCSC has produced at least one successful tune — starvation
    /// before first light is warm-up, not degradation.
    dcsc_tuned_once: bool,
    limits: LimitEnforcer,
    /// Per-tier CIT heat maps (population-weighted samples).
    heat: [HeatMap; 2],
    /// First-round CITs of outstanding probes, a dense `[pid][vpn]` table
    /// (`None` = no first round recorded). Flat rather than an ordered map:
    /// this is read and written on the probe-fault hot path, and row-major
    /// traversal stays deterministic if a drain is ever added.
    probe_first: PidVpnTable<Option<Nanos>>,
    /// Outstanding probes: (pid, vpn, issue time).
    probes: Vec<(ProcessId, Vpn, Nanos)>,
    cit_threshold: Nanos,
    /// Latest DCSC overlap point (bucket floor), anchoring the threshold.
    overlap_floor: Option<Nanos>,
    /// Ceiling the thrashing monitor imposes on the DCSC-derived rate limit.
    /// The monitor halves the queue's rate directly, but DCSC recomputes the
    /// rate from overlap `scan_period / dcsc_interval` times per period,
    /// which would erase the halving within a fraction of a period; holding
    /// the halved rate as a ceiling until the next quiet period makes the
    /// Section 3.3 response actually last "the next period".
    thrash_ceiling: Option<u64>,
    rng: DetRng,
    /// Latest DCSC misplacement ratio, carried into period trace samples.
    last_overlap_ratio: f64,
    threshold_history: Vec<(Nanos, f64)>,
    rate_history: Vec<(Nanos, f64)>,
    /// Optional CIT sample capture for the Fig 10a experiment.
    pub collect_cit_samples: bool,
    cit_samples: Vec<(ProcessId, Vpn, Nanos)>,
    scan_faults_below: u64,
    scan_faults_above: u64,
    /// HybridTier-style per-region tracker switch (present only when
    /// `cfg.adaptive_tracking` is on): regions whose hint-fault overhead
    /// spikes flip to a sampled-frequency mode and skip Ticking-scan
    /// poisoning for a period.
    tracker: Option<RegionTracker>,
}

impl ChronoPolicy {
    /// Creates a Chrono instance from a configuration (the two-tier
    /// `FAST`/`SLOW` pair).
    pub fn new(cfg: ChronoConfig) -> ChronoPolicy {
        ChronoPolicy::new_pair(cfg, TierId::FAST, TierId::SLOW, 0)
    }

    /// Creates a Chrono instance managing one adjacent tier pair of a
    /// cascade. Every event token it schedules carries `tag` so
    /// [`crate::cascade::CascadeChrono`] can route the event back here;
    /// `new` is the `(FAST, SLOW, 0)` special case and reproduces the
    /// historical two-tier behaviour bit for bit.
    pub fn new_pair(cfg: ChronoConfig, upper: TierId, lower: TierId, tag: u32) -> ChronoPolicy {
        let cfg = cfg.validate();
        let rate = match cfg.tuning {
            TuningMode::Manual { rate_limit, .. } | TuningMode::SemiAuto { rate_limit } => {
                rate_limit
            }
            TuningMode::Dcsc => cfg.initial_rate_limit,
        };
        let threshold = match cfg.tuning {
            TuningMode::Manual { cit_threshold, .. } => cit_threshold,
            _ => cfg.initial_cit_threshold,
        };
        let name = match (&cfg.tuning, cfg.filter_rounds) {
            (TuningMode::Dcsc, 2) => "Chrono",
            (TuningMode::Dcsc, _) => "Chrono-full",
            (TuningMode::SemiAuto { .. }, 1) => "Chrono-basic",
            (TuningMode::SemiAuto { .. }, 2) => "Chrono-twice",
            (TuningMode::SemiAuto { .. }, 3) => "Chrono-thrice",
            (TuningMode::Manual { .. }, _) => "Chrono-manual",
            _ => "Chrono-variant",
        };
        ChronoPolicy {
            rng: DetRng::seed(cfg.seed),
            queue: PromotionQueue::new(rate, QUEUE_CAP),
            heat: [HeatMap::new(cfg.buckets), HeatMap::new(cfg.buckets)],
            cit_threshold: threshold,
            retry: RetryPool::new(cfg.retry_max_attempts, cfg.retry_pool_cap),
            breaker: MigrationBreaker::new(cfg.breaker_threshold, cfg.breaker_min_attempts),
            tracker: cfg.adaptive_tracking.then(RegionTracker::new),
            upper,
            lower,
            tag,
            stale_deferred_dropped: 0,
            degraded: false,
            dcsc_starved: 0,
            dcsc_tuned_once: false,
            cfg,
            name,
            overlap_floor: None,
            thrash_ceiling: None,
            last_overlap_ratio: 0.0,
            cursors: Vec::new(),
            candidates: CandidateSet::new(),
            deferred: Vec::new(),
            thrash: ThrashingMonitor::new(),
            limits: LimitEnforcer::new(),
            probe_first: PidVpnTable::new(),
            probes: Vec::new(),
            threshold_history: Vec::new(),
            rate_history: Vec::new(),
            collect_cit_samples: false,
            cit_samples: Vec::new(),
            scan_faults_below: 0,
            scan_faults_above: 0,
        }
    }

    /// The default configuration (Table 2), scaled to a scan period.
    pub fn with_scan_period(scan_period: Nanos, scan_step_pages: u32) -> ChronoPolicy {
        ChronoPolicy::new(ChronoConfig::scaled(scan_period, scan_step_pages))
    }

    /// Current CIT threshold.
    pub fn cit_threshold(&self) -> Nanos {
        self.cit_threshold
    }

    /// Current promotion rate limit in bytes/second.
    pub fn rate_limit(&self) -> u64 {
        self.queue.rate_limit()
    }

    /// The live configuration.
    pub fn config(&self) -> &ChronoConfig {
        &self.cfg
    }

    /// Mutable access to tunable configuration fields (the procfs control
    /// surface; structural parameters must not be changed mid-run).
    pub fn config_mut(&mut self) -> &mut ChronoConfig {
        &mut self.cfg
    }

    /// Overrides the CIT threshold (procfs control); adaptive tuning will
    /// continue from the new value unless the mode is `Manual`.
    pub fn force_cit_threshold(&mut self, threshold: Nanos) {
        self.cit_threshold = threshold;
    }

    /// Overrides the promotion rate limit (procfs control).
    pub fn force_rate_limit(&mut self, bytes_per_sec: u64) {
        self.queue.set_rate_limit(bytes_per_sec);
    }

    /// CIT-threshold history as `(time, threshold in ms)` (Fig 10b).
    pub fn threshold_history(&self) -> &[(Nanos, f64)] {
        &self.threshold_history
    }

    /// Rate-limit history as `(time, MB/s)` (Fig 10c).
    pub fn rate_history(&self) -> &[(Nanos, f64)] {
        &self.rate_history
    }

    /// Means of the first `head` and last `tail` entries of a tuning
    /// history, clamped to however many samples a short run produced.
    /// Returns `None` for an empty history instead of panicking, so
    /// trend checks stay safe on runs with fewer than `head + tail`
    /// tune periods.
    pub fn history_trend(history: &[(Nanos, f64)], head: usize, tail: usize) -> Option<(f64, f64)> {
        if history.is_empty() {
            return None;
        }
        let mean = |s: &[(Nanos, f64)]| s.iter().map(|&(_, v)| v).sum::<f64>() / s.len() as f64;
        let head = head.clamp(1, history.len());
        let tail = tail.clamp(1, history.len());
        Some((
            mean(&history[..head]),
            mean(&history[history.len() - tail..]),
        ))
    }

    /// Captured `(pid, page, CIT)` samples (Fig 10a; enable
    /// [`ChronoPolicy::collect_cit_samples`]).
    pub fn cit_samples(&self) -> &[(ProcessId, Vpn, Nanos)] {
        &self.cit_samples
    }

    /// The per-tier heat maps (fast = index 0).
    pub fn heat_maps(&self) -> &[HeatMap; 2] {
        &self.heat
    }

    /// Lifetime thrashing events.
    pub fn thrash_events(&self) -> u64 {
        self.thrash.total_thrash_events()
    }

    /// Ticking-scan fault classification tally: `(below, above)` the CIT
    /// threshold over the policy's lifetime — the raw selectivity of the
    /// classifier.
    pub fn scan_fault_split(&self) -> (u64, u64) {
        (self.scan_faults_below, self.scan_faults_above)
    }

    /// Promotion-queue statistics: (enqueued, dequeued, dropped) pages.
    pub fn queue_stats(&self) -> (u64, u64, u64) {
        (
            self.queue.enqueued_pages(),
            self.queue.dequeued_pages(),
            self.queue.dropped_pages(),
        )
    }

    /// Promotion-queue flow snapshot for invariant checking
    /// (`offered == dequeued + dropped + queued`, immune to the tuner's
    /// per-period `take_enqueued` reset).
    pub fn queue_flow(&self) -> crate::queue::QueueFlow {
        self.queue.flow()
    }

    /// Retry-pool flow snapshot for invariant checking
    /// (`failed == retried + abandoned + pending`).
    pub fn retry_flow(&self) -> RetryFlow {
        self.retry.flow()
    }

    /// Whether the promotion circuit breaker is currently open.
    pub fn breaker_open(&self) -> bool {
        self.breaker.is_open()
    }

    /// Times the circuit breaker has tripped over the run.
    pub fn breaker_trips(&self) -> u64 {
        self.breaker.total_trips()
    }

    /// Whether DCSC has degraded to semi-auto tuning (probe starvation).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Deferred promotions dropped by re-validation instead of replayed.
    pub fn stale_deferred_dropped(&self) -> u64 {
        self.stale_deferred_dropped
    }

    /// The `(upper, lower)` tier pair this instance manages.
    pub fn tier_pair(&self) -> (TierId, TierId) {
        (self.upper, self.lower)
    }

    /// Whether a DCSC probe issued by this instance is still outstanding on
    /// `pte`. The cascade uses this to route probe faults on a shared
    /// middle tier to the pair that armed the PTE.
    pub fn has_outstanding_probe(&self, pid: ProcessId, pte: Vpn) -> bool {
        self.probes.iter().any(|&(p, v, _)| p == pid && v == pte)
    }

    /// The per-region tracker, when `adaptive_tracking` is on.
    pub fn region_tracker(&self) -> Option<&RegionTracker> {
        self.tracker.as_ref()
    }

    /// The effective threshold for a mapping unit (huge blocks scale by
    /// 1/512, Section 3.4).
    fn effective_threshold(&self, sys: &TieredSystem, pid: ProcessId, pte: Vpn) -> Nanos {
        if sys.process(pid).space.is_huge_mapped(pte) {
            tuning::huge_threshold(self.cit_threshold)
        } else {
            self.cit_threshold
        }
    }

    fn unit_pages(sys: &TieredSystem, pid: ProcessId, pte: Vpn) -> u32 {
        if sys.process(pid).space.is_huge_mapped(pte) {
            HUGE_2M_PAGES
        } else {
            1
        }
    }

    // ----- Ticking-scan ----------------------------------------------------

    fn ticking_scan(&mut self, sys: &mut TieredSystem, pid: ProcessId) {
        let Self {
            cursors,
            tracker,
            lower,
            ..
        } = self;
        let lower = *lower;
        let tracker = tracker.as_ref();
        let cur = &mut cursors[pid.0 as usize];
        let stamp = now_us(sys.clock.now());
        let mut visited = 0u64;
        cur.cursor = sys
            .process_mut(pid)
            .space
            .walk_range(cur.cursor, cur.step_pages, |vpn, e| {
                visited += 1;
                // Only lower-tier pages are unmap-tracked by the Ticking-scan;
                // upper-tier CIT statistics come from DCSC probes. Regions the
                // tracker flipped to sampled-frequency mode are left unpoisoned:
                // their hotness comes from access sampling, not hint faults.
                if e.tier() == lower
                    && !e.flags.has(PageFlags::PROT_NONE)
                    && tracker.is_none_or(|t| !t.is_sampled(pid, vpn))
                {
                    e.flags.set(PageFlags::PROT_NONE);
                    e.policy_word = stamp;
                }
            });
        sys.charge_scan(pid, visited.max(1));
        let now = sys.clock.now();
        sys.trace.emit(now, || TraceEvent::Scan {
            pid: pid.0,
            visited,
        });
        let interval = cur.event_interval;
        sys.schedule_in(interval, encode_token(EV_SCAN, pid.0, self.tag));
    }

    // ----- Fault paths -----------------------------------------------------

    fn handle_probe_fault(
        &mut self,
        sys: &mut TieredSystem,
        pid: ProcessId,
        pte: Vpn,
        cit: Nanos,
        now: Nanos,
    ) {
        match self.probe_first.get_mut(pid, pte).and_then(Option::take) {
            None => {
                // First probe round: remember the CIT and re-arm the PTE for
                // the second round (two-round CIT generation, Fig 5 step 2).
                *self.probe_first.slot_mut(pid, pte) = Some(cit);
                let e = sys.process_mut(pid).space.entry_mut(pte);
                e.flags.set(PageFlags::PROT_NONE);
                e.policy_word = now_us(now);
            }
            Some(first) => {
                let final_cit = first.max(cit);
                self.deposit_heat_sample(sys, pid, pte, final_cit);
                let e = sys.process_mut(pid).space.entry_mut(pte);
                e.flags.clear(PageFlags::PROBED);
            }
        }
    }

    /// Adds a completed probe measurement to the owning tier's heat map,
    /// applying the huge-page bucket redistribution (+9, counted as 512
    /// base pages).
    fn deposit_heat_sample(&mut self, sys: &TieredSystem, pid: ProcessId, pte: Vpn, cit: Nanos) {
        let e = sys.process(pid).space.entry(pte);
        let tier = e.tier();
        let huge = sys.process(pid).space.is_huge_mapped(pte);
        let (bucket, pages) = if huge {
            (self.cfg.bucket_of(cit) + 9, HUGE_2M_PAGES as f64)
        } else {
            (self.cfg.bucket_of(cit), 1.0)
        };
        // Local pair index (upper = 0), not the global tier index: a page
        // that migrated away from the pair between probe issue and
        // completion still bins into the lower map.
        self.heat[usize::from(tier != self.upper)].add(bucket, pages);
    }

    fn handle_scan_fault(&mut self, sys: &mut TieredSystem, pid: ProcessId, pte: Vpn, cit: Nanos) {
        let e = sys.process(pid).space.entry(pte);
        if e.tier() != self.lower {
            return;
        }
        if let Some(t) = &mut self.tracker {
            t.record_fault(pid, pte);
        }
        if self.collect_cit_samples && self.cit_samples.len() < 1 << 20 {
            self.cit_samples.push((pid, pte, cit));
        }
        let was_demoted = e.flags.has(PageFlags::DEMOTED);
        let queued = e.flags.has(PageFlags::CANDIDATE);
        let threshold = self.effective_threshold(sys, pid, pte);
        let unit = Self::unit_pages(sys, pid, pte);
        let now = sys.clock.now();
        sys.trace.emit(now, || TraceEvent::HintFault {
            pid: pid.0,
            vpn: pte.0,
            cit,
            below_threshold: cit <= threshold,
        });

        if cit <= threshold {
            self.scan_faults_below += 1;
            if was_demoted {
                // A recently demoted page re-qualifying is a thrashing event.
                self.thrash.record_thrash(unit as u64);
                sys.stats.thrash_events += 1;
                sys.trace
                    .emit(now, || TraceEvent::Thrash { pages: unit as u64 });
                sys.process_mut(pid)
                    .space
                    .entry_mut(pte)
                    .flags
                    .clear(PageFlags::DEMOTED);
            }
            let rounds = self.candidates.pass_round(pid, pte);
            if rounds >= self.cfg.filter_rounds && !queued {
                self.candidates.remove(pid, pte);
                if self.queue.enqueue(PendingPromotion {
                    pid,
                    vpn: pte,
                    pages: unit,
                }) {
                    sys.trace.emit(now, || TraceEvent::Enqueue {
                        pid: pid.0,
                        vpn: pte.0,
                        pages: unit,
                    });
                    sys.process_mut(pid)
                        .space
                        .entry_mut(pte)
                        .flags
                        .set(PageFlags::CANDIDATE);
                }
            }
        } else {
            self.scan_faults_above += 1;
            // CIT above threshold: the page fails filtering and starts over.
            self.candidates.remove(pid, pte);
        }
    }

    // ----- Daemons ---------------------------------------------------------

    /// Whether a deferred or retried promotion is still worth issuing: the
    /// page must still sit on the slow tier, not already be in flight, and
    /// its idle time since the last scan stamp must still clear the
    /// *current* CIT threshold — entries queued under yesterday's threshold
    /// age out instead of replaying blindly.
    fn revalidate(&self, sys: &TieredSystem, pid: ProcessId, vpn: Vpn, now: Nanos) -> bool {
        let e = sys.process(pid).space.entry(vpn);
        if e.tier() != self.lower || e.flags.has(PageFlags::MIGRATING) {
            return false;
        }
        cit_from_word(now, e.policy_word) <= self.effective_threshold(sys, pid, vpn)
    }

    /// Drains asynchronous copy-failure reports from the substrate into the
    /// retry pool (transient faults) or straight to abandonment (poisoned
    /// destination frames), feeding the circuit breaker either way.
    fn ingest_copy_failures(&mut self, sys: &mut TieredSystem, now: Nanos) {
        let failures = sys.take_migration_failures();
        self.ingest_failures(failures, now);
    }

    /// Feeds failure records into the retry machinery. The standalone policy
    /// drains them straight from the system; a cascade drains once and
    /// routes each record to every pair, so each call must filter down to
    /// its own promotion edge.
    pub(crate) fn ingest_failures(
        &mut self,
        failures: impl IntoIterator<Item = MigrationFailure>,
        now: Nanos,
    ) {
        for f in failures {
            if f.to != self.upper || f.from != self.lower {
                // A failed demotion leaves the page on the upper tier where
                // the next proactive-demote pass re-picks it (and another
                // pair's failures are not this pair's business); only this
                // edge's failed promotions need explicit retry state.
                continue;
            }
            self.breaker.record_failures(1);
            match f.reason {
                MigrateError::CopyFault => {
                    self.retry.record_failure(
                        f.pid,
                        f.head,
                        f.unit,
                        now,
                        self.cfg.retry_backoff_base,
                    );
                }
                _ => self.retry.record_permanent_failure(),
            }
        }
    }

    /// Issues retries whose backoff elapsed, re-validating each first.
    fn drain_retries(&mut self, sys: &mut TieredSystem, now: Nanos) {
        for e in self.retry.take_due(now) {
            if !self.revalidate(sys, e.pid, e.vpn, now) {
                sys.process_mut(e.pid)
                    .space
                    .entry_mut(e.vpn)
                    .flags
                    .clear(PageFlags::CANDIDATE);
                self.retry.mark_abandoned(e);
                continue;
            }
            sys.trace.emit(now, || TraceEvent::Retry {
                pid: e.pid.0,
                vpn: e.vpn.0,
                attempt: e.attempt,
            });
            self.breaker.record_attempts(1);
            let attempt = if e.pages > 1 {
                sys.migrate(e.pid, e.vpn, self.upper, MigrateMode::Async)
            } else {
                sys.begin_migrate(e.pid, e.vpn, self.upper, MigrateMode::Async)
            };
            let r = match attempt {
                Err(MigrateError::NoSpace) => {
                    sys.promote_with_reclaim_to(e.pid, e.vpn, self.upper, MigrateMode::Async)
                }
                Err(MigrateError::Backpressure) => {
                    // No attempt charged: just wait another backoff step.
                    self.retry.defer(e, now + self.cfg.retry_backoff_base);
                    continue;
                }
                other => other,
            };
            match r {
                Ok(pages) => {
                    self.thrash.record_promotion(pages as u64);
                    self.retry.mark_retried(e);
                }
                Err(MigrateError::CopyFault) => {
                    // The synchronous compat path rolled another transient
                    // fault: this retry was issued (counted), and the fresh
                    // failure re-enters the pool against the same budget.
                    self.breaker.record_failures(1);
                    self.retry.mark_retried(e);
                    self.retry.record_failure(
                        e.pid,
                        e.vpn,
                        e.pages,
                        now,
                        self.cfg.retry_backoff_base,
                    );
                }
                Err(MigrateError::Poisoned) => {
                    self.breaker.record_failures(1);
                    self.retry.mark_abandoned(e);
                }
                Err(_) => self.retry.mark_abandoned(e),
            }
        }
    }

    fn drain_promotions(&mut self, sys: &mut TieredSystem) {
        let now = sys.clock.now();
        self.ingest_copy_failures(sys, now);
        if self.breaker.is_open() {
            // Tripped: issue nothing for a period and let in-flight work
            // settle; queued entries and pending retries simply wait.
            sys.schedule_in(
                self.cfg.migrate_interval,
                encode_token(EV_MIGRATE, 0, self.tag),
            );
            return;
        }
        self.drain_retries(sys, now);
        // Entries refused with `Backpressure` last drain go first, ahead of
        // the fresh rate-limited batch, preserving promotion order — but
        // only after re-validation: the deferral wait may have outdated
        // them (moved tier, in flight again, or no longer hot under the
        // current threshold).
        let mut batch = Vec::new();
        for p in std::mem::take(&mut self.deferred) {
            if self.revalidate(sys, p.pid, p.vpn, now) {
                batch.push(p);
            } else {
                self.stale_deferred_dropped += 1;
                self.candidates.remove(p.pid, p.vpn);
                sys.process_mut(p.pid)
                    .space
                    .entry_mut(p.vpn)
                    .flags
                    .clear(PageFlags::CANDIDATE);
            }
        }
        batch.extend(self.queue.drain(self.cfg.migrate_interval));
        let mut i = 0;
        while i < batch.len() {
            let p = batch[i];
            i += 1;
            let e = sys.process_mut(p.pid).space.entry_mut(p.vpn);
            e.flags.clear(PageFlags::CANDIDATE);
            if e.tier() != self.lower {
                continue; // already moved (e.g. by reclaim interactions)
            }
            if e.flags.has(PageFlags::MIGRATING) {
                continue; // already in flight from a previous drain
            }
            // Huge units take the synchronous compat path: a 2 MiB copy is
            // in flight for hundreds of microseconds, long enough that a
            // hot block is all but guaranteed to take a write and abort
            // (Nomad falls back to classic migration in exactly this
            // case). Base pages copy in microseconds and ride the async
            // in-flight channel.
            self.breaker.record_attempts(1);
            let attempt = if p.pages > 1 {
                sys.migrate(p.pid, p.vpn, self.upper, MigrateMode::Async)
            } else {
                sys.begin_migrate(p.pid, p.vpn, self.upper, MigrateMode::Async)
            };
            let r = match attempt {
                Err(MigrateError::NoSpace) => {
                    sys.promote_with_reclaim_to(p.pid, p.vpn, self.upper, MigrateMode::Async)
                }
                Err(MigrateError::Backpressure) => {
                    // The in-flight table (or its copy backlog) is full:
                    // stop issuing and carry the rest of the batch over to
                    // the next drain instead of burning the rate budget on
                    // rejections.
                    self.deferred.extend(batch.drain(i - 1..));
                    break;
                }
                other => other,
            };
            match r {
                Ok(pages) => self.thrash.record_promotion(pages as u64),
                Err(MigrateError::CopyFault) => {
                    self.breaker.record_failures(1);
                    self.retry.record_failure(
                        p.pid,
                        p.vpn,
                        p.pages,
                        now,
                        self.cfg.retry_backoff_base,
                    );
                }
                Err(MigrateError::Poisoned) => {
                    self.breaker.record_failures(1);
                    self.retry.record_permanent_failure();
                }
                Err(_) => {}
            }
        }
        sys.schedule_in(
            self.cfg.migrate_interval,
            encode_token(EV_MIGRATE, 0, self.tag),
        );
    }

    fn proactive_demote(&mut self, sys: &mut TieredSystem) {
        // Age the upper-tier LRU at scan-period timescale so the inactive
        // list reflects period-granularity coldness.
        let age_budget = scan_budget_pages(
            sys.total_frames(self.upper),
            self.cfg.demote_interval,
            self.cfg.scan_period,
        );
        sys.age_active_list(self.upper, age_budget.max(16));
        // cgroup memory limits first: reclaim slow-tier pages of confined
        // processes to swap, keeping hot fast-tier placement intact. This
        // is global work, so in a cascade only the top pair runs it.
        if self.upper == TierId::FAST {
            self.limits.enforce(sys, 512);
        }
        // The system watermarks are sized for the top tier; deeper pairs of
        // a cascade hold a fixed 1/32 free-frame headroom on their upper
        // tier instead so one-hop promotions from below always find room.
        let (high, target) = if self.upper == TierId::FAST {
            (sys.watermarks.high, sys.watermarks.pro)
        } else {
            let h = (sys.total_frames(self.upper) / 32).max(1);
            (h, h)
        };
        if sys.free_frames(self.upper) < high {
            let stamp = now_us(sys.clock.now());
            let mut budget = 4096u32;
            while sys.free_frames(self.upper) < target && budget > 0 {
                budget -= 1;
                let Some((vp, vv)) = sys.pop_inactive_victim(self.upper) else {
                    break;
                };
                if sys.migrate(vp, vv, self.lower, MigrateMode::Async).is_ok() {
                    // Arm the thrashing monitor: flag, re-poison, and let the
                    // demotion timestamp stand in for the scan timestamp.
                    let e = sys.process_mut(vp).space.entry_mut(vv);
                    e.flags.set(PageFlags::DEMOTED | PageFlags::PROT_NONE);
                    e.policy_word = stamp;
                    self.candidates.remove(vp, vv);
                }
            }
        }
        sys.schedule_in(
            self.cfg.demote_interval,
            encode_token(EV_DEMOTE, 0, self.tag),
        );
    }

    fn tune_period(&mut self, sys: &mut TieredSystem) {
        let now = sys.clock.now();
        // In the adaptive modes the enqueue counter is reset every period
        // (by `take_enqueued` below), so this snapshot is the per-period
        // enqueue count the trace layer wants.
        let enqueued_this_period = self.queue.enqueued_pages();
        // Thrashing check first: it modulates the rate limit for the period.
        if self.thrash.end_period(self.cfg.thrash_threshold) {
            self.queue.halve_rate_limit();
            self.thrash_ceiling = Some(self.queue.rate_limit());
        } else {
            self.thrash_ceiling = None;
        }
        // Circuit-breaker period: pause the promotion queue for a period
        // when the copy-failure ratio spiked, resume after a quiet one.
        if let Some(t) = self.breaker.end_period() {
            sys.trace.emit(now, || TraceEvent::Breaker {
                open: t.open,
                failure_ratio: t.failure_ratio,
            });
        }
        // Threshold feedback (both adaptive modes): converge the enqueue
        // rate to the rate limit. In semi-auto the rate limit is the user's;
        // in DCSC mode it is the misplacement-derived one, and the threshold
        // stays anchored to the heat-map overlap point (the CIT-sample
        // quantile systematically *under*-estimates the marginal page's
        // access period — exponential inter-access gaps have a fat left
        // tail — so the anchor is a one-sided bracket, not the target).
        let target_rate = match self.cfg.tuning {
            TuningMode::SemiAuto { rate_limit } => Some(rate_limit),
            TuningMode::Dcsc => Some(self.queue.rate_limit()),
            TuningMode::Manual { .. } => None,
        };
        if let Some(rate_limit) = target_rate {
            let enqueued = self.queue.take_enqueued();
            let period_secs = self.cfg.scan_period.as_secs_f64();
            let enqueue_rate = enqueued as f64 * BASE_PAGE_BYTES as f64 / period_secs;
            let mut th = tuning::semi_auto_update(
                self.cit_threshold,
                rate_limit,
                enqueue_rate,
                self.cfg.delta_step,
                self.cfg.scan_period,
            );
            if let (TuningMode::Dcsc, Some(floor)) = (&self.cfg.tuning, self.overlap_floor) {
                // DCSC derives the threshold too (Section 3.2.2): blend the
                // semi-auto result toward the overlap point once per period,
                // so the classifier converges on the CIT of the fast tier's
                // marginal page while the feedback above still reacts to the
                // enqueue rate within the period.
                th = tuning::dcsc_threshold_update(th, floor, self.cfg.scan_period);
            }
            self.cit_threshold = th;
        }
        // Tracker period boundary: regions re-decide their mode from the
        // fault/sample pressure observed this period.
        if let Some(t) = &mut self.tracker {
            t.end_period();
        }
        // Keep the pro watermark sized to the current rate limit. The
        // watermarks belong to the top tier, so only the top pair retunes.
        if self.upper == TierId::FAST {
            let total_fast = sys.total_frames(TierId::FAST);
            sys.watermarks
                .retune_pro(total_fast, self.cfg.scan_period, self.queue.rate_limit());
        }
        self.threshold_history
            .push((now, self.cit_threshold.as_nanos() as f64 / 1e6));
        self.rate_history
            .push((now, self.queue.rate_limit() as f64 / (1024.0 * 1024.0)));
        let threshold = self.cit_threshold;
        let rate = self.queue.rate_limit();
        sys.trace.emit(now, || TraceEvent::Tune {
            cit_threshold: threshold,
            rate_limit_bps: rate,
        });
        // The per-period trace sample is a single global record; in a
        // cascade the top pair owns it.
        if self.upper == TierId::FAST {
            sys.trace_period(PolicyTraceState {
                cit_threshold: threshold,
                rate_limit_bps: rate,
                queue_depth: self.queue.len() as u64,
                enqueued_pages: enqueued_this_period,
                dequeued_pages: self.queue.dequeued_pages(),
                dropped_pages: self.queue.dropped_pages(),
                heat_overlap_ratio: self.last_overlap_ratio,
            });
        }
        sys.schedule_in(self.cfg.scan_period, encode_token(EV_TUNE, 0, self.tag));
    }

    fn dcsc_round(&mut self, sys: &mut TieredSystem) {
        let now = sys.clock.now();
        self.expire_stale_probes(sys, now);
        for m in &mut self.heat {
            m.decay(self.cfg.heatmap_decay);
        }
        self.issue_probes(sys, now);
        if self.cfg.tuning == TuningMode::Dcsc {
            let tuned = self.dcsc_tune(sys);
            self.note_dcsc_outcome(sys, tuned);
        }
        sys.schedule_in(self.cfg.dcsc_interval, encode_token(EV_DCSC, 0, self.tag));
    }

    /// Tracks DCSC probe starvation. Frame poisoning and capacity shrink
    /// can hold the heat maps under the tuning floor indefinitely (the
    /// sampled population shrank, probed pages got offlined mid-round);
    /// after `dcsc_starved_rounds` consecutive dry rounds — counted only
    /// once DCSC has tuned at least once (warm-up is not starvation) and
    /// only when fault damage is actually present (fault-free runs are
    /// untouched) — the tuner degrades to semi-auto mode anchored at the
    /// last DCSC-derived rate limit, keeping the δ-step threshold feedback
    /// alive instead of freezing the threshold at a stale value.
    fn note_dcsc_outcome(&mut self, sys: &TieredSystem, tuned: bool) {
        if tuned {
            self.dcsc_tuned_once = true;
            self.dcsc_starved = 0;
            return;
        }
        let damaged = sys.stats.quarantined_frames + sys.stats.offlined_frames > 0;
        if !self.dcsc_tuned_once || !damaged {
            return;
        }
        self.dcsc_starved += 1;
        if self.dcsc_starved >= self.cfg.dcsc_starved_rounds && !self.degraded {
            self.degraded = true;
            self.cfg.tuning = TuningMode::SemiAuto {
                rate_limit: self.queue.rate_limit(),
            };
        }
    }

    /// Probes that never faulted within the expiry window measure very cold
    /// pages; count their elapsed idle age as the CIT so the cold mass is
    /// represented in the heat maps.
    fn expire_stale_probes(&mut self, sys: &mut TieredSystem, now: Nanos) {
        let expiry = Nanos(self.cfg.scan_period.as_nanos() * PROBE_EXPIRY_PERIODS);
        let mut keep = Vec::with_capacity(self.probes.len());
        let probes = std::mem::take(&mut self.probes);
        for (pid, pte, issued) in probes {
            let e = sys.process(pid).space.entry(pte);
            if !e.flags.has(PageFlags::PROBED) {
                // Completed (already counted) or aborted by a migration that
                // cleared `PG_probed`; drop any stale first-round CIT so a
                // future probe of this page starts fresh.
                if let Some(s) = self.probe_first.get_mut(pid, pte) {
                    *s = None;
                }
                continue;
            }
            if now.saturating_sub(issued) >= expiry {
                let age = now.saturating_sub(issued);
                self.deposit_heat_sample(sys, pid, pte, age);
                let e = sys.process_mut(pid).space.entry_mut(pte);
                e.flags.clear(PageFlags::PROBED | PageFlags::PROT_NONE);
                if let Some(s) = self.probe_first.get_mut(pid, pte) {
                    *s = None;
                }
            } else {
                keep.push((pid, pte, issued));
            }
        }
        self.probes = keep;
    }

    fn issue_probes(&mut self, sys: &mut TieredSystem, now: Nanos) {
        let total_pages: u64 = sys
            .pids()
            .map(|p| sys.process(p).space.pages() as u64)
            .sum();
        if total_pages == 0 {
            return;
        }
        let n = ((total_pages as f64 * self.cfg.p_victim).ceil() as u64).max(4);
        let stamp = now_us(now);
        let mut issued = 0u64;
        // Random (pid, vpn) draws; a few misses (unmapped pages) are fine —
        // the sampling stays unbiased over mapped pages.
        for _ in 0..n * 4 {
            if issued >= n {
                break;
            }
            let target = self.rng.below(total_pages);
            let (pid, vpn) = {
                let mut acc = 0u64;
                let mut found = (ProcessId(0), Vpn(0));
                for p in sys.pids() {
                    let pages = sys.process(p).space.pages() as u64;
                    if target < acc + pages {
                        found = (p, Vpn((target - acc) as u32));
                        break;
                    }
                    acc += pages;
                }
                found
            };
            let pte = sys.process(pid).space.pte_page(vpn);
            let e = sys.process(pid).space.entry(pte);
            if !e.present() || e.flags.has_any(PageFlags::PROT_NONE | PageFlags::PROBED) {
                continue;
            }
            // A cascade pair only samples its own two tiers (never rejects
            // anything in the two-tier configuration, where every resident
            // page sits on one of the pair).
            if e.tier() != self.upper && e.tier() != self.lower {
                continue;
            }
            let e = sys.process_mut(pid).space.entry_mut(pte);
            e.flags.set(PageFlags::PROBED | PageFlags::PROT_NONE);
            e.policy_word = stamp;
            self.probes.push((pid, pte, now));
            issued += 1;
        }
        // Probe issuing is cheap kernel work (random PTE pokes).
        sys.stats.kernel_time += Nanos(150).scale(issued.max(1));
    }

    fn dcsc_tune(&mut self, sys: &mut TieredSystem) -> bool {
        let fast_pop = sys.used_frames(self.upper) as f64;
        let slow_pop = sys.used_frames(self.lower) as f64;
        if self.heat[0].total() < 8.0 || self.heat[1].total() < 8.0 {
            return false; // not enough probe mass yet
        }
        let fast_map = self.heat[0].scaled_to(fast_pop);
        let slow_map = self.heat[1].scaled_to(slow_pop);
        let capacity = sys.total_frames(self.upper) as f64;
        let overlap = identify_overlap(&fast_map, &slow_map, capacity);
        self.last_overlap_ratio = overlap.misplacement_ratio;
        let now = sys.clock.now();
        sys.trace.emit(now, || TraceEvent::DcscOverlap {
            cutoff_bucket: overlap.cutoff_bucket as u32,
            misplaced_pages: overlap.misplaced_slow_pages,
            misplacement_ratio: overlap.misplacement_ratio,
        });

        let rate = tuning::dcsc_rate_limit(&overlap, self.cfg.scan_period);
        let rate = rate.min(self.thrash_ceiling.unwrap_or(u64::MAX));
        self.queue.set_rate_limit(rate);

        let cutoff = self
            .cfg
            .bucket_floor(overlap.cutoff_bucket.min(self.cfg.buckets - 1));
        let anchor = if cutoff == Nanos::ZERO {
            self.cfg.finest_cit
        } else {
            cutoff
        };
        self.overlap_floor = Some(anchor);
        true
    }

    // ----- Tier failure domains --------------------------------------------

    /// Retargets the promotion destination (cascade splice around an
    /// offline tier). Scan cursors, the candidate filter, and the promotion
    /// queue all key on the unchanged lower tier, so they stay valid —
    /// only where promotions land (and where demotions come from) moves.
    pub(crate) fn retarget_upper(&mut self, upper: TierId) {
        self.upper = upper;
    }

    /// The pair's promotion edge died (its lower tier went offline):
    /// pending retries and deferred entries reference pages the substrate
    /// is evacuating, so they are abandoned/dropped — each through its
    /// normal flow-conserving exit — and the breaker is force-tripped so
    /// the edge resumes through the usual quiet-period recovery.
    pub(crate) fn on_edge_down(&mut self, sys: &mut TieredSystem) {
        self.retry.abandon_pending();
        for p in std::mem::take(&mut self.deferred) {
            self.stale_deferred_dropped += 1;
            self.candidates.remove(p.pid, p.vpn);
            sys.process_mut(p.pid)
                .space
                .entry_mut(p.vpn)
                .flags
                .clear(PageFlags::CANDIDATE);
        }
        if let Some(t) = self.breaker.trip() {
            let now = sys.clock.now();
            sys.trace.emit(now, || TraceEvent::Breaker {
                open: t.open,
                failure_ratio: t.failure_ratio,
            });
        }
    }

    /// Reschedule-only event service for a suspended pair: the token cycle
    /// must keep turning so the pair resumes seamlessly when its lower tier
    /// rejoins, but no scanning, promotion, demotion, or tuning runs.
    pub(crate) fn suspend_tick(&mut self, sys: &mut TieredSystem, token: u64) {
        let (kind, pid_raw, _) = decode_token(token);
        let interval = match kind {
            EV_SCAN => self.cursors[pid_raw as usize].event_interval,
            EV_MIGRATE => self.cfg.migrate_interval,
            EV_DEMOTE => self.cfg.demote_interval,
            EV_TUNE => self.cfg.scan_period,
            EV_DCSC => self.cfg.dcsc_interval,
            _ => unreachable!("unknown Chrono event {kind}"),
        };
        sys.schedule_in(interval, encode_token(kind, pid_raw, self.tag));
    }
}

impl TieringPolicy for ChronoPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn init(&mut self, sys: &mut TieredSystem) {
        self.cursors.clear();
        for pid in sys.pids().collect::<Vec<_>>() {
            let pages = sys.process(pid).space.pages();
            let cursor = ScanCursor::new(pages, self.cfg.scan_step_pages, self.cfg.scan_period);
            sys.schedule_in(
                cursor.event_interval,
                encode_token(EV_SCAN, pid.0, self.tag),
            );
            if let Some(t) = &mut self.tracker {
                t.ensure_process(pid, pages);
            }
            self.cursors.push(cursor);
        }
        sys.schedule_in(
            self.cfg.migrate_interval,
            encode_token(EV_MIGRATE, 0, self.tag),
        );
        sys.schedule_in(
            self.cfg.demote_interval,
            encode_token(EV_DEMOTE, 0, self.tag),
        );
        sys.schedule_in(self.cfg.scan_period, encode_token(EV_TUNE, 0, self.tag));
        if self.cfg.tuning == TuningMode::Dcsc {
            sys.schedule_in(self.cfg.dcsc_interval, encode_token(EV_DCSC, 0, self.tag));
        }
        if self.upper == TierId::FAST {
            let total_fast = sys.total_frames(TierId::FAST);
            sys.watermarks
                .retune_pro(total_fast, self.cfg.scan_period, self.queue.rate_limit());
        }
    }

    fn on_event(&mut self, sys: &mut TieredSystem, token: u64) {
        let (kind, pid_raw, _) = decode_token(token);
        match kind {
            EV_SCAN => self.ticking_scan(sys, ProcessId(pid_raw)),
            EV_MIGRATE => self.drain_promotions(sys),
            EV_DEMOTE => self.proactive_demote(sys),
            EV_TUNE => self.tune_period(sys),
            EV_DCSC => self.dcsc_round(sys),
            _ => unreachable!("unknown Chrono event {}", kind),
        }
    }

    fn on_hint_fault(
        &mut self,
        sys: &mut TieredSystem,
        pid: ProcessId,
        vpn: Vpn,
        _write: bool,
        res: &AccessResult,
    ) {
        let pte = sys.process(pid).space.pte_page(vpn);
        let cit = cit_from_word(
            res.fault_time,
            sys.process(pid).space.entry(pte).policy_word,
        );
        if res.probed_fault {
            self.handle_probe_fault(sys, pid, pte, cit, res.fault_time);
        } else {
            self.handle_scan_fault(sys, pid, pte, cit);
        }
    }

    fn on_access(&mut self, sys: &mut TieredSystem, pid: ProcessId, vpn: Vpn, _write: bool) {
        // Sampled-frequency mode (adaptive tracking only): regions whose
        // fault overhead flipped them out of CIT tracking estimate hotness
        // from a deterministic access-stride sample instead. A lower-tier
        // page accumulating enough sampled hits within a period enqueues
        // directly — it already proved the equivalent of the filter rounds.
        let Some(tracker) = &mut self.tracker else {
            return;
        };
        if !tracker.observe(pid, vpn) {
            return;
        }
        let pte = sys.process(pid).space.pte_page(vpn);
        let e = sys.process(pid).space.entry(pte);
        if e.tier() != self.lower || e.flags.has_any(PageFlags::CANDIDATE | PageFlags::MIGRATING) {
            return;
        }
        if !tracker.record_sampled_hit(pid, pte, self.cfg.filter_rounds) {
            return;
        }
        let unit = Self::unit_pages(sys, pid, pte);
        if self.queue.enqueue(PendingPromotion {
            pid,
            vpn: pte,
            pages: unit,
        }) {
            sys.process_mut(pid)
                .space
                .entry_mut(pte)
                .flags
                .set(PageFlags::CANDIDATE);
        }
    }
}

/// Re-inserts a demoted page at the inactive tail; exposed for tests that
/// need to manipulate LRU state alongside Chrono's flags.
pub fn reinsert_inactive(sys: &mut TieredSystem, pid: ProcessId, vpn: Vpn) {
    sys.lru_insert(pid, vpn, LruKind::Inactive);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tiered_mem::{FaultPlan, PageSize, SystemConfig};
    use tiering_policies::{DriverConfig, SimulationDriver};
    use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

    fn test_config() -> ChronoConfig {
        ChronoConfig {
            p_victim: 0.002, // denser probing for small test systems
            ..ChronoConfig::scaled(Nanos::from_millis(50), 512)
        }
    }

    fn run_chrono(cfg: ChronoConfig, run_ms: u64) -> (TieredSystem, ChronoPolicy) {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(1024, 4096));
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = ChronoPolicy::new(cfg);
        policy.collect_cit_samples = true;
        SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(run_ms),
            ..Default::default()
        })
        .run(&mut sys, &mut wls, &mut policy);
        (sys, policy)
    }

    #[test]
    fn chrono_promotes_and_demotes() {
        let (sys, policy) = run_chrono(test_config(), 400);
        assert!(sys.stats.promoted_pages > 0, "no promotions");
        assert!(sys.stats.demoted_pages > 0, "no proactive demotions");
        let (enq, deq, _) = policy.queue_stats();
        assert!(deq > 0 && deq <= enq + policy.queue.dequeued_pages());
    }

    #[test]
    fn cit_samples_are_collected_and_plausible() {
        let (_sys, policy) = run_chrono(test_config(), 400);
        let samples = policy.cit_samples();
        assert!(samples.len() > 100, "only {} CIT samples", samples.len());
        // CITs are bounded by the run length.
        assert!(samples
            .iter()
            .all(|(_, _, cit)| *cit <= Nanos::from_millis(400)));
    }

    #[test]
    fn chrono_beats_linux_nb_on_fmar() {
        let (chrono_sys, _) = run_chrono(test_config(), 500);
        let nb_sys = {
            let mut sys = TieredSystem::new(SystemConfig::dram_pmem(1024, 4096));
            let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
            sys.add_process(w.address_space_pages(), PageSize::Base);
            let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
            let mut policy = tiering_policies::LinuxNumaBalancing::new(
                tiering_policies::linux_nb::LinuxNbConfig {
                    scan_period: Nanos::from_millis(50),
                    scan_step_pages: 512,
                    promote_tier_frac_per_period: 0.23,
                },
            );
            SimulationDriver::new(DriverConfig {
                run_for: Nanos::from_millis(500),
                ..Default::default()
            })
            .run(&mut sys, &mut wls, &mut policy);
            sys
        };
        assert!(
            chrono_sys.stats.fmar() > nb_sys.stats.fmar(),
            "Chrono {} vs NB {}",
            chrono_sys.stats.fmar(),
            nb_sys.stats.fmar()
        );
    }

    #[test]
    fn dcsc_populates_heat_maps_and_tunes() {
        let (_sys, policy) = run_chrono(test_config(), 500);
        assert!(policy.heat_maps()[0].total() > 0.0, "fast heat map empty");
        assert!(policy.heat_maps()[1].total() > 0.0, "slow heat map empty");
        assert!(!policy.threshold_history().is_empty());
        assert!(!policy.rate_history().is_empty());
    }

    #[test]
    fn semi_auto_threshold_moves() {
        let cfg = test_config().variant_twice();
        let (_sys, policy) = run_chrono(cfg.clone(), 500);
        assert!(
            policy.cit_threshold() != cfg.initial_cit_threshold,
            "semi-auto tuning never adjusted the threshold"
        );
    }

    #[test]
    fn manual_mode_keeps_threshold_fixed() {
        let mut cfg = test_config();
        cfg.tuning = TuningMode::Manual {
            cit_threshold: Nanos::from_millis(5),
            rate_limit: 50 * 1024 * 1024,
        };
        let (_sys, policy) = run_chrono(cfg, 300);
        assert_eq!(policy.cit_threshold(), Nanos::from_millis(5));
        // The thrashing monitor may halve the configured rate, but nothing
        // may raise it in manual mode.
        assert!(policy.rate_limit() <= 50 * 1024 * 1024);
    }

    #[test]
    fn candidate_filtering_requires_two_rounds() {
        // With 2-round filtering, promoted pages must be well below the
        // number of scan faults on slow pages (each promotion needs ≥2).
        let (sys, policy) = run_chrono(test_config(), 300);
        let (enq, _, _) = (
            policy.queue.enqueued_pages() + policy.queue.dequeued_pages(),
            0,
            0,
        );
        assert!(sys.stats.hint_faults > enq, "filtering did not gate faults");
    }

    #[test]
    fn basic_variant_enqueues_more_readily_than_thrice() {
        let total_enq = |cfg: ChronoConfig| {
            let (_sys, p) = run_chrono(cfg, 300);
            p.queue.enqueued_pages() + p.queue.dequeued_pages()
        };
        let basic = total_enq(test_config().variant_basic());
        let thrice = total_enq(test_config().variant_thrice());
        assert!(
            basic > thrice,
            "1-round ({}) should enqueue more than 3-round ({})",
            basic,
            thrice
        );
    }

    #[test]
    fn demoted_pages_carry_monitor_state() {
        let (sys, _policy) = run_chrono(test_config(), 400);
        // Some demoted page should exist with the DEMOTED flag + PROT_NONE
        // (armed) or have been re-promoted (flag cleared). Just assert the
        // mechanism ran: demotions happened and thrash accounting is sane.
        assert!(sys.stats.demoted_pages > 0);
    }

    #[test]
    fn cit_survives_policy_word_wrap() {
        // The 4-byte µs policy word wraps every 2^32 µs (~71.6 min). A page
        // stamped 10 µs before the wrap and faulting 6 µs after it has a
        // 16 µs CIT; widening the word and subtracting would instead produce
        // a huge bogus interval (or zero under saturation).
        let word = u32::MAX - 9; // stamp: 10 µs before wrap
        let fault = Nanos((u32::MAX as u64 + 7) * 1_000); // 6 µs after wrap
        assert_eq!(cit_from_word(fault, word), Nanos(16_000));
        // Non-wrapping intervals are unchanged.
        assert_eq!(
            cit_from_word(Nanos::from_millis(5), now_us(Nanos::from_millis(2))),
            Nanos::from_millis(3)
        );
    }

    #[test]
    fn pro_watermark_sits_above_high() {
        let (sys, _policy) = run_chrono(test_config(), 200);
        assert!(sys.watermarks.pro >= sys.watermarks.high);
        assert!(sys.watermarks.well_ordered());
    }

    fn run_chrono_faulty(plan: FaultPlan, run_ms: u64) -> (TieredSystem, ChronoPolicy) {
        let mut syscfg = SystemConfig::dram_pmem(1024, 4096);
        syscfg.fault_plan = Some(plan);
        let mut sys = TieredSystem::new(syscfg);
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = ChronoPolicy::new(test_config());
        SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(run_ms),
            ..Default::default()
        })
        .run(&mut sys, &mut wls, &mut policy);
        (sys, policy)
    }

    /// Regression (deferred-promotion staleness): entries parked by
    /// `Backpressure` must be re-validated against the *current* CIT
    /// threshold before replay — a stale one is dropped, a fresh one
    /// promotes.
    #[test]
    fn stale_deferred_promotions_age_out() {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(64, 256));
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        let mut cfg = test_config();
        cfg.tuning = TuningMode::Manual {
            cit_threshold: Nanos::from_millis(1),
            rate_limit: 100 * 1024 * 1024,
        };
        let mut policy = ChronoPolicy::new(cfg);
        sys.clock.advance(Nanos::from_millis(20));
        let now = sys.clock.now();
        let fresh = Vpn(100); // slow tier (first 56 pages went fast)
        let stale = Vpn(101);
        {
            let e = sys.process_mut(pid).space.entry_mut(fresh);
            e.policy_word = now_us(now); // scanned just now: CIT 0
            e.flags.set(PageFlags::CANDIDATE);
        }
        {
            let e = sys.process_mut(pid).space.entry_mut(stale);
            e.policy_word = now_us(now - Nanos::from_millis(10)); // CIT 10 ms
            e.flags.set(PageFlags::CANDIDATE);
        }
        policy.deferred.push(PendingPromotion {
            pid,
            vpn: fresh,
            pages: 1,
        });
        policy.deferred.push(PendingPromotion {
            pid,
            vpn: stale,
            pages: 1,
        });
        policy.on_event(&mut sys, encode_token(EV_MIGRATE, 0, 0));
        assert_eq!(policy.stale_deferred_dropped(), 1);
        assert!(
            sys.process(pid)
                .space
                .entry(fresh)
                .flags
                .has(PageFlags::MIGRATING),
            "fresh deferred entry must replay"
        );
        let e = sys.process(pid).space.entry(stale);
        assert_eq!(e.tier(), TierId::SLOW, "stale entry must not promote");
        assert!(!e.flags.has(PageFlags::MIGRATING));
        assert!(!e.flags.has(PageFlags::CANDIDATE), "flag cleared on drop");
    }

    /// Deferred entries that moved tier or re-entered flight are likewise
    /// dropped, not replayed.
    #[test]
    fn moved_or_inflight_deferred_promotions_are_dropped() {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(64, 256));
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        let mut policy = ChronoPolicy::new(test_config());
        let moved = Vpn(0); // fast tier already
        let inflight = Vpn(100);
        let now = sys.clock.now();
        sys.process_mut(pid).space.entry_mut(inflight).policy_word = now_us(now);
        sys.begin_migrate(pid, inflight, TierId::FAST, MigrateMode::Async)
            .unwrap();
        for vpn in [moved, inflight] {
            policy
                .deferred
                .push(PendingPromotion { pid, vpn, pages: 1 });
        }
        policy.on_event(&mut sys, encode_token(EV_MIGRATE, 0, 0));
        assert_eq!(policy.stale_deferred_dropped(), 2);
    }

    #[test]
    fn transient_faults_feed_the_retry_pool() {
        let mut plan = FaultPlan::inert(11);
        plan.copy_transient = 0.3;
        let (sys, policy) = run_chrono_faulty(plan, 400);
        let f = policy.retry_flow();
        assert!(f.failed > 0, "no copy faults landed: {:?}", f);
        assert!(f.retried > 0, "no retries issued: {:?}", f);
        assert!(f.conserved(), "{:?}", f);
        assert!(sys.stats.transient_copy_faults > 0);
        // Despite the fault rate the policy still made forward progress.
        assert!(sys.stats.promoted_pages > 0);
    }

    #[test]
    fn total_copy_failure_trips_the_breaker() {
        let mut plan = FaultPlan::inert(12);
        plan.copy_transient = 1.0;
        let (sys, policy) = run_chrono_faulty(plan, 400);
        assert!(
            policy.breaker_trips() > 0,
            "100% copy failure must trip the breaker (faults: {})",
            sys.stats.transient_copy_faults
        );
        assert!(policy.retry_flow().conserved(), "{:?}", policy.retry_flow());
        // Nothing can complete a promotion under total failure.
        assert_eq!(sys.stats.promoted_pages, 0);
    }

    #[test]
    fn poison_faults_are_abandoned_not_retried() {
        let mut plan = FaultPlan::inert(13);
        plan.copy_poison = 1.0;
        let (sys, policy) = run_chrono_faulty(plan, 300);
        let f = policy.retry_flow();
        assert!(f.conserved(), "{:?}", f);
        assert_eq!(f.failed, f.abandoned, "permanent faults never retry");
        assert_eq!(f.retried, 0);
        assert!(sys.stats.quarantined_frames >= sys.stats.poisoned_copy_faults);
    }

    #[test]
    fn dcsc_degrades_to_semi_auto_after_starvation() {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(64, 192));
        let pid = sys.add_process(16, PageSize::Base);
        sys.access(pid, Vpn(0), false);
        let mut cfg = test_config();
        cfg.dcsc_starved_rounds = 3;
        let mut policy = ChronoPolicy::new(cfg);
        // Warm-up starvation counts nothing, with or without damage.
        policy.note_dcsc_outcome(&sys, false);
        assert!(!policy.is_degraded());
        policy.note_dcsc_outcome(&sys, true); // first successful tune
                                              // Dry rounds without fault damage also count nothing.
        for _ in 0..5 {
            policy.note_dcsc_outcome(&sys, false);
        }
        assert!(!policy.is_degraded(), "fault-free runs must never degrade");
        // Poison a resident frame: damage present, three dry rounds degrade.
        let pfn = sys.process(pid).space.entry(Vpn(0)).pfn;
        assert!(sys.poison_frame(TierId::FAST, pfn));
        for _ in 0..3 {
            policy.note_dcsc_outcome(&sys, false);
        }
        assert!(policy.is_degraded());
        match policy.config().tuning {
            TuningMode::SemiAuto { .. } => {}
            ref other => panic!("degraded mode should be semi-auto, got {:?}", other),
        }
    }

    #[test]
    fn chrono_survives_canonical_fault_storm_within_throughput_margin() {
        // The acceptance scenario: 1% transient copy faults, 0.01% poison,
        // one mid-run 25% fast-tier shrink — Chrono must complete without
        // panicking and keep FMAR within 15% of the fault-free run.
        let healthy = run_chrono(test_config(), 400).0.stats.fmar();
        let mut plan = FaultPlan::inert(0xC4A05);
        plan.copy_transient = 0.01;
        plan.copy_poison = 0.0001;
        plan.capacity_events = vec![tiered_mem::CapacityEvent {
            at: Nanos::from_millis(200),
            kind: tiered_mem::CapacityKind::ShrinkFastFraction(0.25),
        }];
        let (sys, policy) = run_chrono_faulty(plan, 400);
        let faulty = sys.stats.fmar();
        assert!(
            faulty >= healthy * 0.85,
            "faulty FMAR {} fell more than 15% under fault-free {}",
            faulty,
            healthy
        );
        assert!(policy.retry_flow().conserved(), "{:?}", policy.retry_flow());
        assert!(sys.stats.offlined_frames > 0, "shrink never fired");
    }
}
