//! The rate-limited promotion queue (Section 3.1.2).
//!
//! Promotion-ready pages are enqueued; an asynchronous drain migrates them
//! at the configured rate limit (bytes/second), tracking enqueue/dequeue
//! counts for the semi-automatic tuner and preventing migration storms.

use std::collections::VecDeque;

use sim_clock::Nanos;
use tiered_mem::{ProcessId, Vpn, BASE_PAGE_BYTES};

/// A pending promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingPromotion {
    /// Owning process.
    pub pid: ProcessId,
    /// PTE page (base page or huge-block head).
    pub vpn: Vpn,
    /// Base pages the promotion will move (512 for a huge block).
    pub pages: u32,
}

/// The rate-limited promotion queue.
#[derive(Debug)]
pub struct PromotionQueue {
    queue: VecDeque<PendingPromotion>,
    rate_limit: u64,
    enqueued_pages: u64,
    dequeued_pages: u64,
    dropped_pages: u64,
    max_len: usize,
    /// Fractional page budget carried between drain windows, so rate limits
    /// below one page per window still make progress.
    credit_pages: f64,
}

impl PromotionQueue {
    /// Creates a queue with the given rate limit (bytes/second) and a bound
    /// on queued entries (overflow beyond it is dropped and counted — the
    /// queue must not grow without bound when tuning lags the workload).
    pub fn new(rate_limit: u64, max_len: usize) -> PromotionQueue {
        PromotionQueue {
            queue: VecDeque::new(),
            rate_limit,
            enqueued_pages: 0,
            dequeued_pages: 0,
            dropped_pages: 0,
            max_len,
            credit_pages: 0.0,
        }
    }

    /// Current rate limit in bytes/second.
    pub fn rate_limit(&self) -> u64 {
        self.rate_limit
    }

    /// Updates the rate limit (tuning).
    pub fn set_rate_limit(&mut self, bytes_per_sec: u64) {
        self.rate_limit = bytes_per_sec.max(1);
    }

    /// Halves the rate limit (the thrashing monitor's response).
    pub fn halve_rate_limit(&mut self) {
        self.rate_limit = (self.rate_limit / 2).max(1024 * 1024);
    }

    /// Enqueues a promotion; returns false (and counts a drop) on overflow.
    pub fn enqueue(&mut self, p: PendingPromotion) -> bool {
        if self.queue.len() >= self.max_len {
            self.dropped_pages += p.pages as u64;
            return false;
        }
        self.enqueued_pages += p.pages as u64;
        self.queue.push_back(p);
        true
    }

    /// Pages allowed to migrate in a drain window of `interval` (fractional;
    /// remainders accumulate across windows via the credit counter).
    pub fn budget_pages(&self, interval: Nanos) -> f64 {
        let bytes = self.rate_limit as f64 * interval.as_secs_f64();
        bytes / BASE_PAGE_BYTES as f64
    }

    /// Dequeues promotions worth one window of rate-limit budget, carrying
    /// unused credit forward (capped at one window) so low rates still move
    /// pages eventually.
    pub fn drain(&mut self, interval: Nanos) -> Vec<PendingPromotion> {
        let window = self.budget_pages(interval);
        self.credit_pages = (self.credit_pages + window).min(window.max(1024.0) * 2.0);
        let mut out = Vec::new();
        while self.credit_pages >= 1.0 {
            let Some(front) = self.queue.front() else {
                break;
            };
            if front.pages as f64 > self.credit_pages {
                break; // keep the oversized entry until enough credit accrues
            }
            let p = self.queue.pop_front().expect("front was just peeked");
            self.credit_pages -= p.pages as f64;
            self.dequeued_pages += p.pages as u64;
            out.push(p);
        }
        if self.queue.is_empty() {
            // Idle queues don't bank credit for later bursts.
            self.credit_pages = self.credit_pages.min(1.0);
        }
        out
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total base pages ever enqueued.
    pub fn enqueued_pages(&self) -> u64 {
        self.enqueued_pages
    }

    /// Total base pages ever dequeued (migration-started).
    pub fn dequeued_pages(&self) -> u64 {
        self.dequeued_pages
    }

    /// Total base pages dropped on overflow.
    pub fn dropped_pages(&self) -> u64 {
        self.dropped_pages
    }

    /// Takes and resets the enqueue counter (per-period rate measurement for
    /// the semi-auto tuner).
    pub fn take_enqueued(&mut self) -> u64 {
        std::mem::take(&mut self.enqueued_pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(vpn: u32, pages: u32) -> PendingPromotion {
        PendingPromotion {
            pid: ProcessId(0),
            vpn: Vpn(vpn),
            pages,
        }
    }

    #[test]
    fn budget_follows_rate_and_interval() {
        // 100 MB/s for 100 ms = 10 MB = 2560 pages.
        let q = PromotionQueue::new(100 * 1024 * 1024, 1 << 20);
        assert!((q.budget_pages(Nanos::from_millis(100)) - 2560.0).abs() < 1e-6);
    }

    #[test]
    fn drain_respects_budget() {
        // 4096 bytes/s → 1 page per second.
        let mut q = PromotionQueue::new(4096, 1024);
        for i in 0..5 {
            q.enqueue(p(i, 1));
        }
        let got = q.drain(Nanos::from_secs(2));
        assert_eq!(got.len(), 2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.dequeued_pages(), 2);
    }

    #[test]
    fn drain_is_fifo() {
        let mut q = PromotionQueue::new(1 << 30, 1024);
        q.enqueue(p(1, 1));
        q.enqueue(p(2, 1));
        let got = q.drain(Nanos::from_secs(1));
        assert_eq!(got[0].vpn, Vpn(1));
        assert_eq!(got[1].vpn, Vpn(2));
    }

    #[test]
    fn oversized_huge_entry_waits_but_first_entry_goes() {
        // Budget 600 pages; a 512-page huge block fits, the second must wait.
        let mut q = PromotionQueue::new((600 * 4096) as u64, 1024);
        q.enqueue(p(0, 512));
        q.enqueue(p(512, 512));
        let got = q.drain(Nanos::from_secs(1));
        assert_eq!(got.len(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut q = PromotionQueue::new(4096, 2);
        assert!(q.enqueue(p(0, 1)));
        assert!(q.enqueue(p(1, 1)));
        assert!(!q.enqueue(p(2, 1)));
        assert_eq!(q.dropped_pages(), 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn take_enqueued_resets_counter() {
        let mut q = PromotionQueue::new(4096, 16);
        q.enqueue(p(0, 3));
        assert_eq!(q.take_enqueued(), 3);
        assert_eq!(q.take_enqueued(), 0);
        assert_eq!(q.enqueued_pages(), 0);
    }

    #[test]
    fn halve_has_a_floor() {
        let mut q = PromotionQueue::new(3 * 1024 * 1024, 16);
        q.halve_rate_limit();
        assert_eq!(q.rate_limit(), 3 * 1024 * 1024 / 2);
        for _ in 0..20 {
            q.halve_rate_limit();
        }
        assert_eq!(q.rate_limit(), 1024 * 1024);
    }
}
