//! The rate-limited promotion queue (Section 3.1.2).
//!
//! Promotion-ready pages are enqueued; an asynchronous drain migrates them
//! at the configured rate limit (bytes/second), tracking enqueue/dequeue
//! counts for the semi-automatic tuner and preventing migration storms.

use std::collections::VecDeque;

use sim_clock::Nanos;
use tiered_mem::{ProcessId, Vpn, BASE_PAGE_BYTES};

/// A pending promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingPromotion {
    /// Owning process.
    pub pid: ProcessId,
    /// PTE page (base page or huge-block head).
    pub vpn: Vpn,
    /// Base pages the promotion will move (512 for a huge block).
    pub pages: u32,
}

/// Flow-conservation snapshot of a [`PromotionQueue`].
///
/// Every page offered to the queue is accounted exactly once:
/// `offered == dequeued + dropped + queued`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFlow {
    /// Lifetime base pages offered via `enqueue` (accepted or dropped);
    /// never reset, unlike the per-period enqueue counter.
    pub offered_pages: u64,
    /// Lifetime base pages dequeued (migration-started).
    pub dequeued_pages: u64,
    /// Lifetime base pages dropped on overflow.
    pub dropped_pages: u64,
    /// Base pages sitting in the queue right now (recounted from entries).
    pub queued_pages: u64,
}

impl QueueFlow {
    /// Whether the flow balances: `offered == dequeued + dropped + queued`.
    pub fn conserved(&self) -> bool {
        self.offered_pages == self.dequeued_pages + self.dropped_pages + self.queued_pages
    }
}

/// The rate-limited promotion queue.
#[derive(Debug)]
pub struct PromotionQueue {
    queue: VecDeque<PendingPromotion>,
    rate_limit: u64,
    enqueued_pages: u64,
    dequeued_pages: u64,
    dropped_pages: u64,
    offered_pages: u64,
    max_len: usize,
    /// Fractional page budget carried between drain windows, so rate limits
    /// below one page per window still make progress.
    credit_pages: f64,
}

impl PromotionQueue {
    /// Creates a queue with the given rate limit (bytes/second) and a bound
    /// on queued entries (overflow beyond it is dropped and counted — the
    /// queue must not grow without bound when tuning lags the workload).
    pub fn new(rate_limit: u64, max_len: usize) -> PromotionQueue {
        PromotionQueue {
            queue: VecDeque::new(),
            rate_limit,
            enqueued_pages: 0,
            dequeued_pages: 0,
            dropped_pages: 0,
            offered_pages: 0,
            max_len,
            credit_pages: 0.0,
        }
    }

    /// Current rate limit in bytes/second.
    pub fn rate_limit(&self) -> u64 {
        self.rate_limit
    }

    /// Updates the rate limit (tuning).
    pub fn set_rate_limit(&mut self, bytes_per_sec: u64) {
        self.rate_limit = bytes_per_sec.max(1);
    }

    /// Halves the rate limit (the thrashing monitor's response).
    pub fn halve_rate_limit(&mut self) {
        self.rate_limit = (self.rate_limit / 2).max(1024 * 1024);
    }

    /// Enqueues a promotion; returns false (and counts a drop) on overflow.
    pub fn enqueue(&mut self, p: PendingPromotion) -> bool {
        self.offered_pages += p.pages as u64;
        if self.queue.len() >= self.max_len {
            self.dropped_pages += p.pages as u64;
            return false;
        }
        self.enqueued_pages += p.pages as u64;
        self.queue.push_back(p);
        true
    }

    /// Pages allowed to migrate in a drain window of `interval` (fractional;
    /// remainders accumulate across windows via the credit counter).
    pub fn budget_pages(&self, interval: Nanos) -> f64 {
        let bytes = self.rate_limit as f64 * interval.as_secs_f64();
        bytes / BASE_PAGE_BYTES as f64
    }

    /// Dequeues promotions worth one window of rate-limit budget, carrying
    /// unused credit forward so low rates still move pages eventually.
    ///
    /// Credit banks at most two windows (floor: one page), so a small drain
    /// window can never release a burst far past the configured rate. The one
    /// exception is an oversized head entry — a huge block wider than the
    /// cap — which may bank up to exactly its own size: enough to release it
    /// after `pages/window` drains (preserving the long-run rate), never a
    /// burst beyond it.
    pub fn drain(&mut self, interval: Nanos) -> Vec<PendingPromotion> {
        let window = self.budget_pages(interval);
        let head_pages = self.queue.front().map_or(0.0, |p| p.pages as f64);
        let cap = (2.0 * window).max(1.0).max(head_pages);
        self.credit_pages = (self.credit_pages + window).min(cap);
        let mut out = Vec::new();
        while self.credit_pages >= 1.0 {
            let Some(front) = self.queue.front() else {
                break;
            };
            if front.pages as f64 > self.credit_pages {
                break; // keep the oversized entry until enough credit accrues
            }
            let p = self.queue.pop_front().expect("front was just peeked");
            self.credit_pages -= p.pages as f64;
            self.dequeued_pages += p.pages as u64;
            out.push(p);
        }
        if self.queue.is_empty() {
            // Idle queues don't bank credit for later bursts.
            self.credit_pages = self.credit_pages.min(1.0);
        }
        out
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total base pages ever enqueued.
    pub fn enqueued_pages(&self) -> u64 {
        self.enqueued_pages
    }

    /// Total base pages ever dequeued (migration-started).
    pub fn dequeued_pages(&self) -> u64 {
        self.dequeued_pages
    }

    /// Total base pages dropped on overflow.
    pub fn dropped_pages(&self) -> u64 {
        self.dropped_pages
    }

    /// Takes and resets the enqueue counter (per-period rate measurement for
    /// the semi-auto tuner).
    pub fn take_enqueued(&mut self) -> u64 {
        std::mem::take(&mut self.enqueued_pages)
    }

    /// Base pages currently queued, recounted from the actual entries so the
    /// flow check cross-validates the lifetime counters against queue content.
    pub fn queued_pages(&self) -> u64 {
        self.queue.iter().map(|p| p.pages as u64).sum()
    }

    /// Lifetime base pages offered via `enqueue`, including dropped ones.
    pub fn offered_pages(&self) -> u64 {
        self.offered_pages
    }

    /// Flow-conservation snapshot (`offered == dequeued + dropped + queued`).
    pub fn flow(&self) -> QueueFlow {
        QueueFlow {
            offered_pages: self.offered_pages,
            dequeued_pages: self.dequeued_pages,
            dropped_pages: self.dropped_pages,
            queued_pages: self.queued_pages(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(vpn: u32, pages: u32) -> PendingPromotion {
        PendingPromotion {
            pid: ProcessId(0),
            vpn: Vpn(vpn),
            pages,
        }
    }

    #[test]
    fn budget_follows_rate_and_interval() {
        // 100 MB/s for 100 ms = 10 MB = 2560 pages.
        let q = PromotionQueue::new(100 * 1024 * 1024, 1 << 20);
        assert!((q.budget_pages(Nanos::from_millis(100)) - 2560.0).abs() < 1e-6);
    }

    #[test]
    fn drain_respects_budget() {
        // 4096 bytes/s → 1 page per second.
        let mut q = PromotionQueue::new(4096, 1024);
        for i in 0..5 {
            q.enqueue(p(i, 1));
        }
        let got = q.drain(Nanos::from_secs(2));
        assert_eq!(got.len(), 2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.dequeued_pages(), 2);
    }

    #[test]
    fn drain_is_fifo() {
        let mut q = PromotionQueue::new(1 << 30, 1024);
        q.enqueue(p(1, 1));
        q.enqueue(p(2, 1));
        let got = q.drain(Nanos::from_secs(1));
        assert_eq!(got[0].vpn, Vpn(1));
        assert_eq!(got[1].vpn, Vpn(2));
    }

    #[test]
    fn oversized_huge_entry_waits_but_first_entry_goes() {
        // Budget 600 pages; a 512-page huge block fits, the second must wait.
        let mut q = PromotionQueue::new((600 * 4096) as u64, 1024);
        q.enqueue(p(0, 512));
        q.enqueue(p(512, 512));
        let got = q.drain(Nanos::from_secs(1));
        assert_eq!(got.len(), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut q = PromotionQueue::new(4096, 2);
        assert!(q.enqueue(p(0, 1)));
        assert!(q.enqueue(p(1, 1)));
        assert!(!q.enqueue(p(2, 1)));
        assert_eq!(q.dropped_pages(), 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn take_enqueued_resets_counter() {
        let mut q = PromotionQueue::new(4096, 16);
        q.enqueue(p(0, 3));
        assert_eq!(q.take_enqueued(), 3);
        assert_eq!(q.take_enqueued(), 0);
        assert_eq!(q.enqueued_pages(), 0);
    }

    #[test]
    fn credit_cannot_bank_past_two_windows() {
        // Regression: the old cap was `window.max(1024.0) * 2.0`, which let a
        // 2-page window bank 2048 pages of credit behind a blocked huge head
        // and release four huge blocks in one burst. With the window-scaled
        // cap, a single drain releases at most one oversized head.
        let mut q = PromotionQueue::new((2 * 4096) as u64, 1 << 16); // 2 pages/s
        for i in 0..8 {
            q.enqueue(p(i * 512, 512));
        }
        let mut max_burst = 0usize;
        for _ in 0..4096 {
            let got = q.drain(Nanos::from_secs(1)); // window = 2 pages
            let pages: usize = got.iter().map(|e| e.pages as usize).sum();
            max_burst = max_burst.max(pages);
        }
        assert_eq!(max_burst, 512, "one huge block per burst, never more");
        // 4096 s at 2 pages/s funds exactly the 8 × 512 enqueued pages.
        assert_eq!(q.dequeued_pages(), 8 * 512);
    }

    #[test]
    fn long_run_conservation_over_1000_windows() {
        // 100 pages/s drained in 10 ms windows for 1000 windows (10 s):
        // dequeued must stay within rate × elapsed + one window of slack.
        let rate_pages_per_sec = 100.0;
        let mut q = PromotionQueue::new((rate_pages_per_sec * 4096.0) as u64, 1 << 16);
        let window = Nanos::from_millis(10);
        let mut elapsed = 0.0f64;
        for i in 0..1000u32 {
            // Keep the queue saturated so drains are always budget-limited.
            for j in 0..4 {
                q.enqueue(p(i * 4 + j, 1));
            }
            q.drain(window);
            elapsed += window.as_secs_f64();
            let budget = rate_pages_per_sec * elapsed + q.budget_pages(window);
            assert!(
                (q.dequeued_pages() as f64) <= budget,
                "window {}: dequeued {} > budget {}",
                i,
                q.dequeued_pages(),
                budget
            );
        }
        // The queue was never empty, so the full budget was also used.
        assert!(q.dequeued_pages() as f64 >= rate_pages_per_sec * elapsed - 2.0);
        assert!(q.flow().conserved(), "{:?}", q.flow());
    }

    #[test]
    fn flow_conserves_across_drops_and_drains() {
        let mut q = PromotionQueue::new(1 << 30, 4);
        for i in 0..6 {
            q.enqueue(p(i, 3)); // two of these overflow
        }
        q.drain(Nanos::from_secs(1));
        let f = q.flow();
        assert!(f.conserved(), "{:?}", f);
        assert_eq!(f.offered_pages, 18);
        assert_eq!(f.dropped_pages, 6);
        // take_enqueued (the tuner's per-period reset) must not disturb flow.
        q.enqueue(p(10, 2));
        q.take_enqueued();
        assert!(q.flow().conserved(), "{:?}", q.flow());
    }

    #[test]
    fn halve_has_a_floor() {
        let mut q = PromotionQueue::new(3 * 1024 * 1024, 16);
        q.halve_rate_limit();
        assert_eq!(q.rate_limit(), 3 * 1024 * 1024 / 2);
        for _ in 0..20 {
            q.halve_rate_limit();
        }
        assert_eq!(q.rate_limit(), 1024 * 1024);
    }
}
