//! Migration-failure resilience: bounded-backoff retries and a promotion
//! circuit breaker.
//!
//! The substrate's fault plan can fail migration copies transiently
//! (retryable) or permanently (the destination frame is poisoned). The
//! policy responds on two timescales:
//!
//! - A [`RetryPool`] re-attempts transiently failed promotions with bounded
//!   exponential backoff, re-validating each entry against the *current*
//!   CIT threshold before replay so stale entries age out instead of
//!   promoting yesterday's hot set.
//! - A [`MigrationBreaker`] watches the per-period migration-failure ratio
//!   and pauses the promotion queue for a period when it trips — the same
//!   measure/trip/recover shape as the Section 3.3 thrashing monitor, but
//!   keyed on copy failures instead of re-promotions.
//!
//! Both are pure counters-and-queues: no clocks of their own, no RNG. In a
//! fault-free run neither ever observes a failure, so neither perturbs the
//! policy's behaviour or its determinism digests.

use std::collections::BTreeMap;

use sim_clock::Nanos;
use tiered_mem::{ProcessId, Vpn};

fn key(pid: ProcessId, vpn: Vpn) -> u64 {
    (pid.0 as u64) << 32 | vpn.0 as u64
}

/// One promotion awaiting its backoff-delayed retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryEntry {
    /// Owning process.
    pub pid: ProcessId,
    /// PTE page of the failed unit.
    pub vpn: Vpn,
    /// Base pages the promotion moves.
    pub pages: u32,
    /// Which retry this is (1 = first retry).
    pub attempt: u32,
    /// Earliest time the retry may be issued.
    pub next_at: Nanos,
}

/// Flow-conservation snapshot of a [`RetryPool`].
///
/// Every recorded failure is accounted exactly once:
/// `failed == retried + abandoned + pending`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryFlow {
    /// Failure events ever recorded (one per failed copy, not per page).
    pub failed: u64,
    /// Failures whose retry was successfully re-issued.
    pub retried: u64,
    /// Failures given up on: permanent faults, attempt-budget exhaustion,
    /// pool overflow, or re-validation rejects.
    pub abandoned: u64,
    /// Failures still waiting in the pool.
    pub pending: u64,
}

impl RetryFlow {
    /// Whether the flow balances: `failed == retried + abandoned + pending`.
    pub fn conserved(&self) -> bool {
        self.failed == self.retried + self.abandoned + self.pending
    }
}

/// Bounded exponential-backoff retry pool for transiently failed promotions.
#[derive(Debug)]
pub struct RetryPool {
    entries: Vec<RetryEntry>,
    /// Attempts charged so far per page; survives a successful re-issue so
    /// a page that keeps failing burns through its budget across rounds.
    attempts: BTreeMap<u64, u32>,
    failed: u64,
    retried: u64,
    abandoned: u64,
    max_attempts: u32,
    cap: usize,
}

impl RetryPool {
    /// Creates a pool allowing `max_attempts` retries per page and holding
    /// at most `cap` pending entries.
    pub fn new(max_attempts: u32, cap: usize) -> RetryPool {
        RetryPool {
            entries: Vec::new(),
            attempts: BTreeMap::new(),
            failed: 0,
            retried: 0,
            abandoned: 0,
            max_attempts,
            cap,
        }
    }

    /// Records a transient copy failure. Schedules a retry at
    /// `now + base << (attempt-1)` and returns its attempt number, or
    /// `None` (counted abandoned) when the page's attempt budget or the
    /// pool capacity is exhausted.
    pub fn record_failure(
        &mut self,
        pid: ProcessId,
        vpn: Vpn,
        pages: u32,
        now: Nanos,
        base: Nanos,
    ) -> Option<u32> {
        self.failed += 1;
        let k = key(pid, vpn);
        let prior = self.attempts.get(&k).copied().unwrap_or(0);
        if prior >= self.max_attempts || self.entries.len() >= self.cap {
            self.abandoned += 1;
            self.attempts.remove(&k);
            return None;
        }
        let attempt = prior + 1;
        self.attempts.insert(k, attempt);
        let backoff = Nanos(base.as_nanos().saturating_mul(1 << (attempt - 1).min(32)));
        self.entries.push(RetryEntry {
            pid,
            vpn,
            pages,
            attempt,
            next_at: now + backoff,
        });
        Some(attempt)
    }

    /// Records a permanent failure (poisoned frame): counted failed and
    /// immediately abandoned — there is nothing to retry onto.
    pub fn record_permanent_failure(&mut self) {
        self.failed += 1;
        self.abandoned += 1;
    }

    /// Takes every entry whose backoff has elapsed, preserving insertion
    /// order. The caller must settle each via [`RetryPool::mark_retried`],
    /// [`RetryPool::mark_abandoned`], or [`RetryPool::defer`].
    pub fn take_due(&mut self, now: Nanos) -> Vec<RetryEntry> {
        let mut due = Vec::new();
        let mut keep = Vec::with_capacity(self.entries.len());
        for e in self.entries.drain(..) {
            if e.next_at <= now {
                due.push(e);
            } else {
                keep.push(e);
            }
        }
        self.entries = keep;
        due
    }

    /// A due entry's retry was re-issued.
    pub fn mark_retried(&mut self, _e: RetryEntry) {
        self.retried += 1;
    }

    /// A due entry failed re-validation or re-issue; its attempt history is
    /// cleared so a future failure of the same page starts fresh.
    pub fn mark_abandoned(&mut self, e: RetryEntry) {
        self.abandoned += 1;
        self.attempts.remove(&key(e.pid, e.vpn));
    }

    /// A due entry could not be issued yet (backpressure): push it back
    /// with a new wake-up time, without charging an attempt.
    pub fn defer(&mut self, mut e: RetryEntry, next_at: Nanos) {
        e.next_at = next_at;
        self.entries.push(e);
    }

    /// Abandons every pending entry at once (the edge they would retry on
    /// died). Each drained entry moves from pending to abandoned, so the
    /// flow stays conserved, and its attempt history is cleared like any
    /// other abandonment. Returns how many entries were dropped.
    pub fn abandon_pending(&mut self) -> usize {
        let n = self.entries.len();
        for e in std::mem::take(&mut self.entries) {
            self.abandoned += 1;
            self.attempts.remove(&key(e.pid, e.vpn));
        }
        n
    }

    /// Entries currently waiting.
    pub fn pending(&self) -> usize {
        self.entries.len()
    }

    /// Flow snapshot (`failed == retried + abandoned + pending`).
    pub fn flow(&self) -> RetryFlow {
        RetryFlow {
            failed: self.failed,
            retried: self.retried,
            abandoned: self.abandoned,
            pending: self.entries.len() as u64,
        }
    }
}

/// A breaker state transition produced by [`MigrationBreaker::end_period`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerTransition {
    /// `true` when the breaker just opened (promotions pause).
    pub open: bool,
    /// The failure ratio of the period that drove the transition.
    pub failure_ratio: f64,
}

/// Per-period migration-failure circuit breaker.
///
/// Counts policy-issued migration attempts and copy failures within a tune
/// period; trips open when the failure ratio exceeds the threshold over a
/// minimum sample size, pausing the promotion queue. An open breaker sees a
/// quiet period (no attempts issued) and closes again — a one-period pause
/// per trip, mirroring the thrashing monitor's halve-for-a-period response.
#[derive(Debug)]
pub struct MigrationBreaker {
    attempts: u64,
    failures: u64,
    open: bool,
    total_trips: u64,
    threshold: f64,
    min_attempts: u64,
}

impl MigrationBreaker {
    /// Creates a closed breaker tripping above `threshold` once a period
    /// has at least `min_attempts` attempts.
    pub fn new(threshold: f64, min_attempts: u64) -> MigrationBreaker {
        MigrationBreaker {
            attempts: 0,
            failures: 0,
            open: false,
            total_trips: 0,
            threshold,
            min_attempts: min_attempts.max(1),
        }
    }

    /// Records issued migration attempts.
    pub fn record_attempts(&mut self, n: u64) {
        self.attempts += n;
    }

    /// Records copy failures.
    pub fn record_failures(&mut self, n: u64) {
        self.failures += n;
    }

    /// Whether promotions are currently paused.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Times the breaker has tripped over its lifetime.
    pub fn total_trips(&self) -> u64 {
        self.total_trips
    }

    /// The current period's failure ratio (0 with no attempts).
    pub fn ratio(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.failures as f64 / self.attempts as f64
        }
    }

    /// Force-opens the breaker (the edge it guards went down), regardless
    /// of the period's counters. Returns a transition when it was closed;
    /// an already-open breaker trips silently. Recovery is the usual quiet
    /// period via [`MigrationBreaker::end_period`].
    pub fn trip(&mut self) -> Option<BreakerTransition> {
        self.attempts = 0;
        self.failures = 0;
        if self.open {
            return None;
        }
        self.open = true;
        self.total_trips += 1;
        Some(BreakerTransition {
            open: true,
            failure_ratio: 1.0,
        })
    }

    /// Ends the period: resets counters and returns a transition when the
    /// breaker changed state.
    pub fn end_period(&mut self) -> Option<BreakerTransition> {
        let ratio = self.ratio();
        let trip = self.attempts >= self.min_attempts && ratio > self.threshold;
        self.attempts = 0;
        self.failures = 0;
        if trip && !self.open {
            self.open = true;
            self.total_trips += 1;
            Some(BreakerTransition {
                open: true,
                failure_ratio: ratio,
            })
        } else if !trip && self.open {
            self.open = false;
            Some(BreakerTransition {
                open: false,
                failure_ratio: ratio,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> RetryPool {
        RetryPool::new(3, 16)
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let mut p = pool();
        let base = Nanos(100);
        for (expect_attempt, expect_backoff) in [(1u32, 100u64), (2, 200), (3, 400)] {
            let a = p
                .record_failure(ProcessId(1), Vpn(7), 1, Nanos(1_000), base)
                .unwrap();
            assert_eq!(a, expect_attempt);
            let due = p.take_due(Nanos(1_000 + expect_backoff));
            assert_eq!(due.len(), 1, "attempt {} not due on time", a);
            assert_eq!(due[0].next_at, Nanos(1_000 + expect_backoff));
            p.mark_retried(due[0]);
        }
        // Fourth failure exhausts the budget.
        assert_eq!(
            p.record_failure(ProcessId(1), Vpn(7), 1, Nanos(1_000), base),
            None
        );
        let f = p.flow();
        assert!(f.conserved(), "{:?}", f);
        assert_eq!(f.retried, 3);
        assert_eq!(f.abandoned, 1);
    }

    #[test]
    fn not_due_entries_stay_pending() {
        let mut p = pool();
        p.record_failure(ProcessId(0), Vpn(1), 1, Nanos(0), Nanos(500));
        assert!(p.take_due(Nanos(499)).is_empty());
        assert_eq!(p.pending(), 1);
        assert_eq!(p.take_due(Nanos(500)).len(), 1);
    }

    #[test]
    fn overflow_abandons() {
        let mut p = RetryPool::new(3, 2);
        for i in 0..3 {
            p.record_failure(ProcessId(0), Vpn(i), 1, Nanos(0), Nanos(1));
        }
        let f = p.flow();
        assert!(f.conserved(), "{:?}", f);
        assert_eq!(f.pending, 2);
        assert_eq!(f.abandoned, 1);
    }

    #[test]
    fn permanent_failures_are_abandoned_immediately() {
        let mut p = pool();
        p.record_permanent_failure();
        let f = p.flow();
        assert!(f.conserved(), "{:?}", f);
        assert_eq!(f.failed, 1);
        assert_eq!(f.abandoned, 1);
    }

    #[test]
    fn defer_keeps_flow_balanced() {
        let mut p = pool();
        p.record_failure(ProcessId(0), Vpn(1), 1, Nanos(0), Nanos(10));
        let due = p.take_due(Nanos(10));
        p.defer(due[0], Nanos(50));
        assert!(p.flow().conserved(), "{:?}", p.flow());
        assert!(p.take_due(Nanos(49)).is_empty());
        let due = p.take_due(Nanos(50));
        assert_eq!(due[0].attempt, 1, "deferral charges no attempt");
        p.mark_abandoned(due[0]);
        // Abandonment cleared the history: the next failure is attempt 1.
        let a = p.record_failure(ProcessId(0), Vpn(1), 1, Nanos(60), Nanos(10));
        assert_eq!(a, Some(1));
    }

    #[test]
    fn breaker_trips_and_recovers() {
        let mut b = MigrationBreaker::new(0.5, 4);
        b.record_attempts(10);
        b.record_failures(6);
        let t = b.end_period().expect("must trip");
        assert!(t.open);
        assert!((t.failure_ratio - 0.6).abs() < 1e-12);
        assert!(b.is_open());
        assert_eq!(b.total_trips(), 1);
        // Quiet period while open: closes again.
        let t = b.end_period().expect("must close");
        assert!(!t.open);
        assert!(!b.is_open());
        // Steady healthy periods produce no transitions.
        b.record_attempts(10);
        assert_eq!(b.end_period(), None);
    }

    #[test]
    fn abandon_pending_conserves_flow_and_clears_history() {
        let mut p = pool();
        p.record_failure(ProcessId(0), Vpn(1), 1, Nanos(0), Nanos(10));
        p.record_failure(ProcessId(0), Vpn(2), 1, Nanos(0), Nanos(10));
        assert_eq!(p.abandon_pending(), 2);
        let f = p.flow();
        assert!(f.conserved(), "{:?}", f);
        assert_eq!(f.pending, 0);
        assert_eq!(f.abandoned, 2);
        // Histories cleared: the pages fail fresh at attempt 1.
        assert_eq!(
            p.record_failure(ProcessId(0), Vpn(1), 1, Nanos(20), Nanos(10)),
            Some(1)
        );
    }

    #[test]
    fn trip_force_opens_once_and_recovers_quietly() {
        let mut b = MigrationBreaker::new(0.5, 4);
        let t = b.trip().expect("closed breaker must transition");
        assert!(t.open);
        assert!(b.is_open());
        assert_eq!(b.total_trips(), 1);
        // Tripping again while open is a silent no-op.
        assert_eq!(b.trip(), None);
        assert_eq!(b.total_trips(), 1);
        // A quiet period closes it as usual.
        let t = b.end_period().expect("must close");
        assert!(!t.open);
    }

    #[test]
    fn breaker_needs_minimum_samples() {
        let mut b = MigrationBreaker::new(0.5, 8);
        b.record_attempts(4);
        b.record_failures(4); // 100% but only 4 samples
        assert_eq!(b.end_period(), None);
        assert!(!b.is_open());
    }
}
