//! Appendix B: the theory behind candidate filtering.
//!
//! B.1 — *Lower measurement variance*: with `n` i.i.d. CIT samples
//! `t_i ~ U[0, T0]` of a page with access period `T0`, both the mean-value
//! estimator `T1 = (2/n) Σ t_i` and the max-value estimator
//! `T2 = ((n+1)/n) max t_i` are unbiased, but
//! `D(T1) = T0²/(3n)` while `D(T2) = T0²/(n(n+2))` — the maximum (which is
//! what requiring *every* round's CIT below the threshold implements) has
//! strictly lower variance, and is in fact the MVUE by Lehmann–Scheffé.
//!
//! B.2 — *Higher selection efficiency*: with page-density model `h(x, α)`
//! over normalized access period `x = t/TH`, the expected cold-page leakage
//! after `n` rounds is `S(n) = ∫₁^∞ h(x) x⁻ⁿ dx`, the real-hot ratio
//! `R(n) = 1/(1+S(n))`, and the efficiency `E(n) = R(n)/n`. For the uniform
//! density (`α = 1`) `E(n) = (n−1)/n²`, maximized at `n = 2`; numeric
//! integration shows `n = 2` wins across the realistic `α` range — the
//! justification for two-round filtering (and Fig B1/B2).

/// Variance of the mean-value estimator: `T0²/(3n)`.
pub fn mean_estimator_variance(t0: f64, n: u32) -> f64 {
    assert!(n > 0);
    t0 * t0 / (3.0 * n as f64)
}

/// Variance of the max-value estimator: `T0²/(n(n+2))`.
pub fn max_estimator_variance(t0: f64, n: u32) -> f64 {
    assert!(n > 0);
    t0 * t0 / (n as f64 * (n as f64 + 2.0))
}

/// The unnormalized page-density kernel of Eq. 11:
/// `x^(1-1/α) · α^(αx + 1/(αx))`, defined for `x > 0`, `0 < α ≤ 1`.
fn h_kernel(x: f64, alpha: f64) -> f64 {
    debug_assert!(x > 0.0);
    x.powf(1.0 - 1.0 / alpha) * alpha.powf(alpha * x + 1.0 / (alpha * x))
}

/// The normalization constant `C_α` making `∫₀¹ h(x, α) dx = 1`.
pub fn h_normalizer(alpha: f64) -> f64 {
    integrate(|x| h_kernel(x, alpha), 1e-9, 1.0, 20_000)
}

/// The normalized page density `h(x, α)` (Fig B1).
pub fn h_density(x: f64, alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha <= 1.0, "α must be in (0, 1]");
    assert!(x > 0.0, "x must be positive");
    h_kernel(x, alpha) / h_normalizer(alpha)
}

/// Cold-page leakage `S(n) = ∫₁^∞ h(x, α) x⁻ⁿ dx` for `n ≥ 2` scan rounds.
pub fn s_leakage(n: u32, alpha: f64) -> f64 {
    assert!(n >= 1);
    let c = h_normalizer(alpha);
    // The integrand decays at least as fast as x^-n (and exponentially for
    // α < 1); [1, 200] captures it to far beyond f64 display precision.
    integrate(
        |x| h_kernel(x, alpha) / c * x.powi(-(n as i32)),
        1.0,
        200.0,
        40_000,
    )
}

/// Real-hot-page ratio `R(n) = 1/(1 + S(n))`.
pub fn r_ratio(n: u32, alpha: f64) -> f64 {
    1.0 / (1.0 + s_leakage(n, alpha))
}

/// Promotion efficiency `E(n) = R(n)/n` (Fig B2).
pub fn efficiency(n: u32, alpha: f64) -> f64 {
    r_ratio(n, alpha) / n as f64
}

/// Closed-form efficiency for the uniform density (`α = 1`): `(n−1)/n²`.
pub fn efficiency_uniform_closed_form(n: u32) -> f64 {
    (n as f64 - 1.0) / (n as f64 * n as f64)
}

/// The `n` (within 2..=max_n) maximizing `E(n, α)`.
///
/// `n = 1` is excluded as the paper does in Fig B2: a single sample gives
/// the maximum-variance estimate (Appendix B.1), and for the uniform density
/// `S(1)` diverges, so one-round selection is dominated on stability grounds
/// before efficiency even enters.
pub fn best_round_count(alpha: f64, max_n: u32) -> u32 {
    (2..=max_n)
        .max_by(|a, b| {
            efficiency(*a, alpha)
                .partial_cmp(&efficiency(*b, alpha))
                .expect("efficiencies are finite")
        })
        .expect("non-empty range")
}

/// Composite Simpson integration on `[a, b]` with `steps` (even) intervals.
fn integrate<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, steps: usize) -> f64 {
    let steps = if steps.is_multiple_of(2) {
        steps
    } else {
        steps + 1
    };
    let h = (b - a) / steps as f64;
    let mut acc = f(a) + f(b);
    for i in 1..steps {
        let x = a + i as f64 * h;
        acc += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    acc * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::DetRng;

    #[test]
    fn estimator_variances_match_closed_forms_by_monte_carlo() {
        let t0 = 10.0;
        let n = 3;
        let trials = 200_000;
        let mut rng = DetRng::seed(42);
        let (mut mean_sq, mut mean_sum) = (0.0, 0.0);
        let (mut max_sq, mut max_sum) = (0.0, 0.0);
        for _ in 0..trials {
            let samples: Vec<f64> = (0..n).map(|_| rng.unit_f64() * t0).collect();
            let t1 = 2.0 * samples.iter().sum::<f64>() / n as f64;
            let t2 = (n as f64 + 1.0) / n as f64 * samples.iter().cloned().fold(f64::MIN, f64::max);
            mean_sum += t1;
            mean_sq += t1 * t1;
            max_sum += t2;
            max_sq += t2 * t2;
        }
        let t = trials as f64;
        let var_mean = mean_sq / t - (mean_sum / t).powi(2);
        let var_max = max_sq / t - (max_sum / t).powi(2);
        // Both unbiased…
        assert!((mean_sum / t - t0).abs() < 0.05, "{}", mean_sum / t);
        assert!((max_sum / t - t0).abs() < 0.05, "{}", max_sum / t);
        // …and the variances match the closed forms within Monte-Carlo noise.
        assert!((var_mean - mean_estimator_variance(t0, n as u32)).abs() < 0.3);
        assert!((var_max - max_estimator_variance(t0, n as u32)).abs() < 0.3);
    }

    #[test]
    fn max_estimator_has_lower_variance_for_all_n() {
        for n in 1..20 {
            assert!(
                max_estimator_variance(1.0, n) <= mean_estimator_variance(1.0, n) + 1e-12,
                "n = {}",
                n
            );
        }
        // Strictly lower from n = 2 on.
        assert!(max_estimator_variance(1.0, 2) < mean_estimator_variance(1.0, 2));
    }

    #[test]
    fn h_density_normalizes_on_unit_interval() {
        for alpha in [0.25, 0.4, 0.6, 0.9, 1.0] {
            let c = h_normalizer(alpha);
            assert!(c > 0.0);
            let total = integrate(|x| h_density(x, alpha), 1e-9, 1.0, 20_000);
            assert!((total - 1.0).abs() < 1e-6, "α = {}: {}", alpha, total);
        }
    }

    #[test]
    fn alpha_one_density_is_uniform() {
        // h(x, 1) = x^0 · 1^(…) = 1 before normalization → density 1 (up to
        // the integrator's 1e-9 lower cutoff).
        for x in [0.1, 0.5, 0.9, 1.5] {
            assert!((h_density(x, 1.0) - 1.0).abs() < 1e-6, "x = {}", x);
        }
    }

    #[test]
    fn smaller_alpha_means_peakier_hot_density() {
        // The paper: "the maximum of h gets higher when α is smaller".
        let peak = |alpha: f64| -> f64 {
            (1..100)
                .map(|i| h_density(i as f64 / 100.0 * 5.0 + 1e-6, alpha))
                .fold(f64::MIN, f64::max)
        };
        assert!(peak(0.25) > peak(0.6));
        assert!(peak(0.6) > peak(1.0));
    }

    #[test]
    fn uniform_efficiency_matches_closed_form() {
        for n in 2..8 {
            let numeric = efficiency(n, 1.0);
            let closed = efficiency_uniform_closed_form(n);
            assert!(
                (numeric - closed).abs() < 1e-3,
                "n = {}: numeric {} vs closed {}",
                n,
                numeric,
                closed
            );
        }
    }

    #[test]
    fn two_rounds_is_optimal_for_realistic_alphas() {
        for alpha in [0.3, 0.4, 0.6, 0.9, 1.0] {
            assert_eq!(best_round_count(alpha, 7), 2, "α = {}", alpha);
        }
    }

    #[test]
    fn single_round_loses_under_the_uniform_density() {
        // For α = 1, S(1) = ∫ x⁻¹ dx diverges (E(1) → 0 as the closed form
        // (n−1)/n² says); even the bounded numeric integral keeps E(1) well
        // below E(2). For peaky densities (small α) one round *can* look
        // efficient on this metric — the paper excludes n = 1 on variance
        // grounds (Appendix B.1), not efficiency.
        assert!(efficiency(2, 1.0) > efficiency(1, 1.0));
        assert_eq!(efficiency_uniform_closed_form(1), 0.0);
    }

    #[test]
    fn simpson_integrates_polynomials_exactly() {
        let val = integrate(|x| x * x, 0.0, 3.0, 100);
        assert!((val - 9.0).abs() < 1e-9);
    }
}
