//! The page thrashing monitor (Section 3.3.2).
//!
//! Recently demoted pages are flagged `demoted`, immediately re-poisoned
//! with `PROT_NONE`, and their demotion timestamp substitutes for the scan
//! timestamp. If such a page qualifies as a promotion candidate again within
//! a scan period, that is a *thrashing event*; when the per-period thrashing
//! ratio exceeds the threshold (default 20 %), the promotion rate limit is
//! halved for the next period.

/// Per-period thrashing accounting.
#[derive(Debug, Default)]
pub struct ThrashingMonitor {
    thrash_events: u64,
    promotions: u64,
    total_thrash_events: u64,
}

impl ThrashingMonitor {
    /// Creates a monitor with zeroed counters.
    pub fn new() -> ThrashingMonitor {
        ThrashingMonitor::default()
    }

    /// Records a promotion (denominator of the thrashing ratio).
    pub fn record_promotion(&mut self, pages: u64) {
        self.promotions += pages;
    }

    /// Records a thrashing event: a recently demoted page re-qualified as a
    /// promotion candidate.
    pub fn record_thrash(&mut self, pages: u64) {
        self.thrash_events += pages;
        self.total_thrash_events += pages;
    }

    /// The current period's thrashing ratio (0 when nothing was promoted).
    pub fn ratio(&self) -> f64 {
        if self.promotions == 0 {
            0.0
        } else {
            self.thrash_events as f64 / self.promotions as f64
        }
    }

    /// Ends the period: returns whether the ratio exceeded `threshold`
    /// (the caller halves the rate limit if so) and resets period counters.
    pub fn end_period(&mut self, threshold: f64) -> bool {
        let exceeded = self.ratio() > threshold;
        self.thrash_events = 0;
        self.promotions = 0;
        exceeded
    }

    /// Lifetime thrashing events (for reporting).
    pub fn total_thrash_events(&self) -> u64 {
        self.total_thrash_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_computes_per_period() {
        let mut m = ThrashingMonitor::new();
        m.record_promotion(100);
        m.record_thrash(30);
        assert!((m.ratio() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn no_promotions_means_no_thrashing_signal() {
        let mut m = ThrashingMonitor::new();
        m.record_thrash(10);
        assert_eq!(m.ratio(), 0.0);
        assert!(!m.end_period(0.2));
    }

    #[test]
    fn end_period_detects_and_resets() {
        let mut m = ThrashingMonitor::new();
        m.record_promotion(100);
        m.record_thrash(25);
        assert!(m.end_period(0.2), "25% > 20% must trigger");
        // Counters reset; a calm period does not trigger.
        m.record_promotion(100);
        m.record_thrash(5);
        assert!(!m.end_period(0.2));
        assert_eq!(m.total_thrash_events(), 30);
    }

    #[test]
    fn boundary_is_strict() {
        let mut m = ThrashingMonitor::new();
        m.record_promotion(100);
        m.record_thrash(20);
        assert!(!m.end_period(0.2), "exactly 20% must not trigger");
    }
}
