//! HybridTier-style per-region tracker switch.
//!
//! Fault-based CIT tracking is precise but charges a hint fault per tracked
//! access; a region taking thousands of faults per period pays more in fault
//! overhead than the placement information is worth. The tracker partitions
//! each address space into fixed [`REGION_PAGES`] regions and, at every tune
//! period, flips regions whose observed fault count crossed
//! [`FAULT_SWITCH_THRESHOLD`] into a *sampled-frequency* mode: the
//! Ticking-scan stops poisoning their PTEs, and hotness is instead estimated
//! from a deterministic 1-in-[`SAMPLE_STRIDE`] access sample (a PEBS-like
//! counter, the same idiom Memtis/FlexMem use). Regions whose sampled
//! activity subsides below [`SAMPLE_REVERT_THRESHOLD`] flip back the next
//! period. Both decisions are pure functions of per-period counters, so runs
//! stay bit-reproducible.

use std::collections::BTreeMap;

use tiered_mem::{ProcessId, Vpn};

/// Base pages per tracked region.
pub const REGION_PAGES: u32 = 1024;
/// Deterministic sampling stride in sampled regions: one in this many
/// observed accesses is inspected.
pub const SAMPLE_STRIDE: u64 = 64;
/// Hint faults per region per tune period above which fault-based tracking
/// is deemed too expensive and the region flips to sampled mode.
pub const FAULT_SWITCH_THRESHOLD: u32 = REGION_PAGES / 4;
/// Sampled hits per region per period below which a sampled region reverts
/// to fault-based tracking.
pub const SAMPLE_REVERT_THRESHOLD: u32 = 4;

/// One region's per-period tracking state.
#[derive(Debug, Clone, Copy, Default)]
struct Region {
    /// Currently in sampled-frequency mode (fault-based otherwise).
    sampled: bool,
    /// Hint faults observed this period (fault mode).
    faults: u32,
    /// Stride-sampled accesses observed this period (sampled mode).
    samples: u32,
}

/// Per-region tracker state for every process the policy scans.
#[derive(Debug, Default)]
pub struct RegionTracker {
    /// `[pid][region]` states; processes the policy never initialised are
    /// simply untracked (always fault mode).
    regions: Vec<Vec<Region>>,
    /// Global access counter driving the deterministic sampling stride.
    counter: u64,
    /// Sampled-hit accumulators per `(pid, pte)`, reset each period. A
    /// `BTreeMap` keeps any future iteration order deterministic.
    hits: BTreeMap<(u16, u32), u32>,
    /// Lifetime mode flips (either direction).
    mode_switches: u64,
}

impl RegionTracker {
    /// An empty tracker.
    pub fn new() -> RegionTracker {
        RegionTracker::default()
    }

    /// Registers a process's address-space size, allocating its regions.
    pub fn ensure_process(&mut self, pid: ProcessId, pages: u32) {
        let idx = pid.0 as usize;
        if self.regions.len() <= idx {
            self.regions.resize(idx + 1, Vec::new());
        }
        let n = pages.div_ceil(REGION_PAGES) as usize;
        if self.regions[idx].len() < n {
            self.regions[idx].resize(n, Region::default());
        }
    }

    fn region(&self, pid: ProcessId, vpn: Vpn) -> Option<&Region> {
        self.regions
            .get(pid.0 as usize)?
            .get((vpn.0 / REGION_PAGES) as usize)
    }

    fn region_mut(&mut self, pid: ProcessId, vpn: Vpn) -> Option<&mut Region> {
        self.regions
            .get_mut(pid.0 as usize)?
            .get_mut((vpn.0 / REGION_PAGES) as usize)
    }

    /// Whether `vpn`'s region is in sampled-frequency mode (the Ticking-scan
    /// skips poisoning there).
    pub fn is_sampled(&self, pid: ProcessId, vpn: Vpn) -> bool {
        self.region(pid, vpn).is_some_and(|r| r.sampled)
    }

    /// Records a hint fault landing in `pte`'s region (fault-overhead
    /// accounting for the switch decision).
    pub fn record_fault(&mut self, pid: ProcessId, pte: Vpn) {
        if let Some(r) = self.region_mut(pid, pte) {
            if !r.sampled {
                r.faults = r.faults.saturating_add(1);
            }
        }
    }

    /// Observes one access. Returns `true` on the stride-selected accesses
    /// that land in a sampled region — the caller then inspects the page.
    pub fn observe(&mut self, pid: ProcessId, vpn: Vpn) -> bool {
        self.counter += 1;
        if !self.counter.is_multiple_of(SAMPLE_STRIDE) {
            return false;
        }
        match self.region_mut(pid, vpn) {
            Some(r) if r.sampled => {
                r.samples = r.samples.saturating_add(1);
                true
            }
            _ => false,
        }
    }

    /// Accumulates a sampled hit on `pte`; returns `true` once the page has
    /// collected `rounds` hits this period (the sampled-mode analogue of
    /// passing the candidate filter), resetting its accumulator.
    pub fn record_sampled_hit(&mut self, pid: ProcessId, pte: Vpn, rounds: u32) -> bool {
        let c = self.hits.entry((pid.0, pte.0)).or_insert(0);
        *c += 1;
        if *c >= rounds.max(1) {
            self.hits.remove(&(pid.0, pte.0));
            true
        } else {
            false
        }
    }

    /// Period boundary: re-decides every region's mode from this period's
    /// counters, then resets them.
    pub fn end_period(&mut self) {
        for per_pid in &mut self.regions {
            for r in per_pid.iter_mut() {
                if !r.sampled && r.faults > FAULT_SWITCH_THRESHOLD {
                    r.sampled = true;
                    self.mode_switches += 1;
                } else if r.sampled && r.samples < SAMPLE_REVERT_THRESHOLD {
                    r.sampled = false;
                    self.mode_switches += 1;
                }
                r.faults = 0;
                r.samples = 0;
            }
        }
        self.hits.clear();
    }

    /// Regions currently in sampled-frequency mode.
    pub fn sampled_regions(&self) -> usize {
        self.regions.iter().flatten().filter(|r| r.sampled).count()
    }

    /// Lifetime mode flips in either direction.
    pub fn mode_switches(&self) -> u64 {
        self.mode_switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u16) -> ProcessId {
        ProcessId(n)
    }

    #[test]
    fn regions_flip_on_fault_pressure_and_revert_when_quiet() {
        let mut t = RegionTracker::new();
        t.ensure_process(p(0), 4 * REGION_PAGES);
        for _ in 0..=FAULT_SWITCH_THRESHOLD {
            t.record_fault(p(0), Vpn(REGION_PAGES)); // region 1
        }
        t.end_period();
        assert!(t.is_sampled(p(0), Vpn(REGION_PAGES)));
        assert!(
            !t.is_sampled(p(0), Vpn(0)),
            "quiet regions stay fault-based"
        );
        assert_eq!(t.sampled_regions(), 1);
        assert_eq!(t.mode_switches(), 1);
        // No sampled activity the next period: the region reverts.
        t.end_period();
        assert!(!t.is_sampled(p(0), Vpn(REGION_PAGES)));
        assert_eq!(t.mode_switches(), 2);
    }

    #[test]
    fn sampled_region_with_activity_stays_sampled() {
        let mut t = RegionTracker::new();
        t.ensure_process(p(0), REGION_PAGES);
        for _ in 0..=FAULT_SWITCH_THRESHOLD {
            t.record_fault(p(0), Vpn(0));
        }
        t.end_period();
        assert!(t.is_sampled(p(0), Vpn(0)));
        // Enough strided accesses to clear the revert floor.
        let need = SAMPLE_REVERT_THRESHOLD as u64 * SAMPLE_STRIDE;
        let mut hits = 0;
        for _ in 0..need {
            if t.observe(p(0), Vpn(7)) {
                hits += 1;
            }
        }
        assert_eq!(hits, SAMPLE_REVERT_THRESHOLD as u64);
        t.end_period();
        assert!(
            t.is_sampled(p(0), Vpn(0)),
            "active region must stay sampled"
        );
    }

    #[test]
    fn observe_samples_exactly_one_in_stride() {
        let mut t = RegionTracker::new();
        t.ensure_process(p(0), REGION_PAGES);
        // Force the region sampled.
        for _ in 0..=FAULT_SWITCH_THRESHOLD {
            t.record_fault(p(0), Vpn(0));
        }
        t.end_period();
        let n = 10 * SAMPLE_STRIDE;
        let hits = (0..n).filter(|_| t.observe(p(0), Vpn(3))).count() as u64;
        assert_eq!(hits, 10);
    }

    #[test]
    fn faults_in_sampled_regions_do_not_accumulate() {
        let mut t = RegionTracker::new();
        t.ensure_process(p(0), REGION_PAGES);
        for _ in 0..=FAULT_SWITCH_THRESHOLD {
            t.record_fault(p(0), Vpn(0));
        }
        t.end_period();
        assert!(t.is_sampled(p(0), Vpn(0)));
        // Stray faults while sampled (e.g. pre-existing poisoned PTEs) must
        // not count toward a future switch decision.
        for _ in 0..=FAULT_SWITCH_THRESHOLD {
            t.record_fault(p(0), Vpn(0));
        }
        // Keep it sampled through this boundary via activity.
        for _ in 0..SAMPLE_REVERT_THRESHOLD as u64 * SAMPLE_STRIDE {
            t.observe(p(0), Vpn(0));
        }
        t.end_period();
        // Revert (no activity), and the stray faults left no residue.
        t.end_period();
        assert!(!t.is_sampled(p(0), Vpn(0)));
        t.end_period();
        assert!(!t.is_sampled(p(0), Vpn(0)));
    }

    #[test]
    fn sampled_hits_reach_rounds_then_reset() {
        let mut t = RegionTracker::new();
        assert!(!t.record_sampled_hit(p(0), Vpn(1), 2));
        assert!(t.record_sampled_hit(p(0), Vpn(1), 2));
        // Accumulator reset after firing.
        assert!(!t.record_sampled_hit(p(0), Vpn(1), 2));
        // Zero rounds is clamped to one.
        assert!(t.record_sampled_hit(p(0), Vpn(2), 0));
    }

    #[test]
    fn untracked_processes_are_inert() {
        let mut t = RegionTracker::new();
        assert!(!t.is_sampled(p(3), Vpn(0)));
        t.record_fault(p(3), Vpn(0));
        assert!(!t.observe(p(3), Vpn(0)));
        t.end_period();
        assert_eq!(t.sampled_regions(), 0);
    }
}
