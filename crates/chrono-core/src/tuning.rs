//! Parameter tuning arithmetic (Section 3.2).
//!
//! Pure functions implementing the semi-automatic threshold update and the
//! DCSC-derived parameter formulas, separated from the policy so their
//! numerics can be tested against the paper's equations directly.

use sim_clock::Nanos;
use tiered_mem::BASE_PAGE_BYTES;

use crate::heatmap::Overlap;

/// Bounds on the auto-tuned CIT threshold relative to the scan period: the
/// threshold must stay measurable (greater than zero) and below the point
/// where every scanned page qualifies.
const MIN_THRESHOLD_FRAC: f64 = 1.0 / 65_536.0;
const MAX_THRESHOLD_FRAC: f64 = 4.0;

/// One semi-automatic threshold update (Section 3.2.1):
///
/// ```text
/// r_i = RateLimit / EnqueueRate,   TH_{i+1} = (1 − δ + δ·r_i) · TH_i
/// ```
///
/// `rate_limit` and `enqueue_rate` are in bytes/second. When nothing was
/// enqueued the threshold grows by the maximum step (r capped at 2) so a
/// too-strict threshold recovers; the result is clamped to sane bounds
/// relative to `scan_period`.
pub fn semi_auto_update(
    threshold: Nanos,
    rate_limit: u64,
    enqueue_rate: f64,
    delta: f64,
    scan_period: Nanos,
) -> Nanos {
    let r = if enqueue_rate <= 0.0 {
        2.0
    } else {
        (rate_limit as f64 / enqueue_rate).min(2.0)
    };
    let factor = 1.0 - delta + delta * r;
    clamp_threshold(threshold.scale_f64(factor), scan_period)
}

/// Clamps a threshold to `[scan_period/65536, 4×scan_period]`.
pub fn clamp_threshold(threshold: Nanos, scan_period: Nanos) -> Nanos {
    let min = scan_period.scale_f64(MIN_THRESHOLD_FRAC).max(Nanos(1));
    let max = scan_period.scale_f64(MAX_THRESHOLD_FRAC);
    Nanos(threshold.as_nanos().clamp(min.as_nanos(), max.as_nanos()))
}

/// DCSC rate-limit derivation (Section 3.2.2): the misplacement ratio times
/// the memory consumption, divided by the Ticking-scan period — i.e. move
/// the misplaced mass within one scan period. Returned in bytes/second,
/// clamped to `[1 MB/s, 16 GB/s]`.
pub fn dcsc_rate_limit(overlap: &Overlap, scan_period: Nanos) -> u64 {
    let bytes = overlap.misplaced_slow_pages * BASE_PAGE_BYTES as f64;
    let secs = scan_period.as_secs_f64().max(1e-9);
    let rate = bytes / secs;
    (rate as u64).clamp(1024 * 1024, 16 * 1024 * 1024 * 1024)
}

/// Exponentially smoothed threshold move toward the DCSC overlap point, so
/// single noisy probe rounds don't whipsaw the classifier.
pub fn dcsc_threshold_update(current: Nanos, overlap_point: Nanos, scan_period: Nanos) -> Nanos {
    let blended = Nanos((current.as_nanos() + overlap_point.as_nanos()) / 2);
    clamp_threshold(blended, scan_period)
}

/// Huge-page threshold scaling (Section 3.4): `TH_2MB = TH_4KB / 512`.
pub fn huge_threshold(base_threshold: Nanos) -> Nanos {
    Nanos((base_threshold.as_nanos() / 512).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SP: Nanos = Nanos(60_000_000_000); // 60 s scan period

    #[test]
    fn balanced_rate_keeps_threshold() {
        // r = 1 → factor 1 regardless of δ.
        let th = Nanos::from_millis(200);
        let out = semi_auto_update(th, 1000, 1000.0, 0.5, SP);
        assert_eq!(out, th);
    }

    #[test]
    fn overload_shrinks_threshold() {
        // Enqueue rate double the limit → r = 0.5, δ = 0.5 → factor 0.75.
        let th = Nanos::from_millis(1000);
        let out = semi_auto_update(th, 1000, 2000.0, 0.5, SP);
        assert_eq!(out, Nanos::from_millis(750));
    }

    #[test]
    fn underload_grows_threshold() {
        // Enqueue rate half the limit → r = 2 → factor 1.5.
        let th = Nanos::from_millis(100);
        let out = semi_auto_update(th, 1000, 500.0, 0.5, SP);
        assert_eq!(out, Nanos::from_millis(150));
    }

    #[test]
    fn idle_queue_grows_at_max_step() {
        let th = Nanos::from_millis(100);
        let out = semi_auto_update(th, 1000, 0.0, 0.5, SP);
        assert_eq!(out, Nanos::from_millis(150));
    }

    #[test]
    fn delta_scales_the_step() {
        // Same r = 0.5 with δ = 0.1 → factor 0.95 (slower convergence, the
        // Fig 10d sensitivity behaviour).
        let th = Nanos::from_millis(1000);
        let out = semi_auto_update(th, 1000, 2000.0, 0.1, SP);
        assert_eq!(out, Nanos::from_millis(950));
    }

    #[test]
    fn threshold_is_clamped() {
        let tiny = semi_auto_update(Nanos(1), 1, 1e12, 0.5, SP);
        assert!(tiny >= Nanos(SP.as_nanos() / 65_536));
        let huge = semi_auto_update(Nanos(u64::MAX / 8), 1000, 0.0, 0.5, SP);
        assert!(huge <= SP.scale_f64(4.0));
    }

    #[test]
    fn rate_limit_moves_misplaced_mass_per_period() {
        let o = Overlap {
            cutoff_bucket: 5,
            misplaced_slow_pages: 25_600.0, // 100 MB
            misplacement_ratio: 0.5,
        };
        // 100 MB over 1 s → ~100 MB/s.
        let rl = dcsc_rate_limit(&o, Nanos::from_secs(1));
        assert_eq!(rl, 100 * 1024 * 1024 * 4096 / 4096);
    }

    #[test]
    fn rate_limit_clamps_low_and_high() {
        let small = Overlap {
            cutoff_bucket: 0,
            misplaced_slow_pages: 0.0,
            misplacement_ratio: 0.0,
        };
        assert_eq!(dcsc_rate_limit(&small, Nanos::from_secs(1)), 1024 * 1024);
        let big = Overlap {
            cutoff_bucket: 0,
            misplaced_slow_pages: 1e12,
            misplacement_ratio: 1e6,
        };
        assert_eq!(
            dcsc_rate_limit(&big, Nanos::from_secs(1)),
            16 * 1024 * 1024 * 1024
        );
    }

    #[test]
    fn dcsc_threshold_blends_halfway() {
        let out = dcsc_threshold_update(Nanos::from_millis(400), Nanos::from_millis(200), SP);
        assert_eq!(out, Nanos::from_millis(300));
    }

    #[test]
    fn huge_scaling_divides_by_512() {
        assert_eq!(
            huge_threshold(Nanos::from_millis(512)),
            Nanos::from_millis(1)
        );
        assert_eq!(huge_threshold(Nanos(100)), Nanos(1)); // floor at 1 ns
    }
}
