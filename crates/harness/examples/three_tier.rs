//! Three-tier showcase: cascaded Chrono-DCSC vs TPP-3 on the DRAM+CXL+PMem
//! chain, reporting per-tier residency and per-edge migration counts.
//!
//! ```text
//! cargo run --release -p harness --example three_tier
//! ```
//!
//! The run is deterministic (seeded workload, sim-clock time), so the
//! numbers printed here are reproducible across hosts. The assertions at
//! the bottom make the demo double as a smoke test: every tier must hold
//! pages and both chain edges must have carried migrations for both
//! policies, or the cascade is degenerate.

use harness::runner::run_policy;
use harness::{PolicyKind, Scale, Topology};
use sim_clock::Nanos;
use tiered_mem::{PageSize, TierId};
use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

const TIER_NAMES: [&str; 3] = ["DRAM", "CXL", "PMem"];

fn main() {
    let scale = Scale {
        run_for: Nanos::from_millis(400),
        topology: Topology::ThreeTier,
        ..Scale::default_scale()
    };
    let pages = 4096u32;
    // 1/8 DRAM : 1/4 CXL : 5/8 PMem of a pool sized 1.25× the working set,
    // so the hot set fights for a fast tier much smaller than itself.
    let total_frames = pages + pages / 4;

    for kind in [PolicyKind::Chrono, PolicyKind::Tpp] {
        let run = run_policy(kind, &scale, total_frames, PageSize::Base, None, || {
            vec![Box::new(PmbenchWorkload::new(PmbenchConfig::paper_skewed(
                pages, 0.7, 42,
            ))) as Box<dyn Workload>]
        });
        let s = &run.sys.stats;
        println!(
            "{} on three-tier: {} accesses, throughput {:.0}/s, fmar {:.3}",
            kind.name(),
            run.result.accesses,
            run.throughput(),
            s.fmar()
        );
        for t in 0..3u8 {
            println!(
                "  tier {t} {:4}  {:>5} frames resident  {:>9} accesses served",
                TIER_NAMES[t as usize],
                run.sys.used_frames(TierId(t)),
                s.tier_accesses(TierId(t)),
            );
        }
        for e in 0..2usize {
            println!(
                "  edge {}  {:4} <-> {:4}  {:>7} pages promoted  {:>7} pages demoted",
                e,
                TIER_NAMES[e],
                TIER_NAMES[e + 1],
                s.promoted_per_edge[e],
                s.demoted_per_edge[e],
            );
        }
        println!();

        assert!(
            run.result.accesses > 100_000,
            "{}: run too short to mean anything",
            kind.name()
        );
        for t in 0..3u8 {
            assert!(
                run.sys.used_frames(TierId(t)) > 0,
                "{}: tier {t} ({}) holds no pages",
                kind.name(),
                TIER_NAMES[t as usize]
            );
        }
        assert!(
            s.promoted_per_edge[0] > 0 && s.demoted_per_edge[0] > 0,
            "{}: top edge carried no two-way traffic",
            kind.name()
        );
        assert!(
            s.promoted_per_edge[1] + s.demoted_per_edge[1] > 0,
            "{}: deep edge never migrated — the cascade is degenerate",
            kind.name()
        );
    }
    println!("ok: both policies drove every tier and both chain edges");
}
