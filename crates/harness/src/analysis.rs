//! `harness lint`, `harness model-check`, and `harness race-check`: the CI
//! entry points into the `tiering-analysis` layer.
//!
//! ```text
//! harness lint [--all] [--rules] [--json]
//! harness model-check [--bless]
//! harness race-check [--bless]
//! ```
//!
//! `lint` runs chrono-lint over the workspace against the committed waiver
//! baseline and fails on any unwaived finding or stale baseline entry
//! (`--all` also prints the waived findings; `--rules` prints the rule
//! catalog; `--json` emits the machine-readable findings document instead
//! of text). `model-check` enumerates the exact reachable `PageFlags`
//! lifecycle set, asserts every reachable state legal and every declared
//! transition live, and diffs the rendered reachability report against the
//! committed golden (`--bless` rewrites it); it then does the same for the
//! tier failure-domain lifecycle model (own golden, plus the injected
//! `Offline`-with-residency self-test, which must be caught or the checker
//! itself is broken). `race-check` is the chrono-race
//! gate: the exhaustive shard-interleaving exploration (convergence +
//! slot-flow conservation on every schedule, diffed against its golden)
//! plus the injected arrival-order-grants self-test, which must *fail* to
//! converge or the checker itself is broken.

use tiering_analysis::{
    baseline_path, check_health_model, check_model, check_races, describe_health_state,
    findings_to_json, golden_path, health_legality_rules, health_transitions, legality_rules,
    lint_workspace, race_configs, race_golden_path, render_health_report, render_race_report,
    render_report, tier_health, tier_health_golden_path, transitions, workspace_root, Finding,
    GrantRule, RULES,
};

/// Removes `--flag` from `args`, reporting whether it was present.
fn take_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return false;
    };
    args.remove(pos);
    true
}

/// The `--rules` catalog, one line per rule. Pure so the output-sync test
/// can hold it against [`RULES`].
pub fn render_rules() -> String {
    let mut out = String::new();
    for (name, what) in RULES {
        out.push_str(&format!("{name:20} {what}\n"));
    }
    out
}

/// `harness lint [--all] [--rules] [--json]`. Returns the process exit code.
pub fn run_lint(mut args: Vec<String>) -> i32 {
    let show_all = take_bool_flag(&mut args, "--all");
    let show_rules = take_bool_flag(&mut args, "--rules");
    let json = take_bool_flag(&mut args, "--json");
    if let Some(unknown) = args.first() {
        eprintln!("lint: unknown argument '{unknown}'");
        return 2;
    }
    if show_rules {
        print!("{}", render_rules());
        return 0;
    }

    let baseline = std::fs::read_to_string(baseline_path()).unwrap_or_default();
    let report = match lint_workspace(&workspace_root(), &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: cannot scan workspace: {e}");
            return 1;
        }
    };

    let unwaived: Vec<&Finding> = report.unwaived().collect();
    if json {
        print!("{}", findings_to_json(&report));
        return if unwaived.is_empty() && report.stale_baseline.is_empty() {
            0
        } else {
            1
        };
    }
    for f in &report.findings {
        if show_all || f.waived == tiering_analysis::lint::Waived::No {
            println!("{f}");
        }
    }
    for stale in &report.stale_baseline {
        println!("stale baseline entry (matches nothing): {stale}");
    }
    let waived = report.findings.len() - unwaived.len();
    println!(
        "lint: {} files, {} finding(s) ({} waived, {} unwaived), {} stale baseline entr(ies)",
        report.files_scanned,
        report.findings.len(),
        waived,
        unwaived.len(),
        report.stale_baseline.len()
    );
    if unwaived.is_empty() && report.stale_baseline.is_empty() {
        0
    } else {
        1
    }
}

/// `harness model-check [--bless]`. Returns the process exit code.
pub fn run_model_check(mut args: Vec<String>) -> i32 {
    let bless = take_bool_flag(&mut args, "--bless");
    if let Some(unknown) = args.first() {
        eprintln!("model-check: unknown argument '{unknown}'");
        return 2;
    }

    let ts = transitions();
    let rules = legality_rules();
    let report = check_model(&ts, &rules);
    println!(
        "model-check: {} transitions, {} legality rules, {} reachable states",
        ts.len(),
        rules.len(),
        report.reachable.len()
    );

    let mut failed = false;
    for (s, rule) in &report.illegal {
        println!(
            "ILLEGAL reachable state {:05x} ({}) violates {rule}",
            s,
            tiered_mem::PageFlags::from_bits((s & tiered_mem::PageFlags::MASK as u32) as u16)
                .describe()
        );
        failed = true;
    }
    for name in &report.dead_transitions {
        println!("DEAD transition {name}: never fired from any reachable state");
        failed = true;
    }

    let rendered = render_report(&report);
    let golden = golden_path();
    if bless {
        if let Some(dir) = golden.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&golden, &rendered) {
            eprintln!("model-check: cannot write {}: {e}", golden.display());
            return 1;
        }
        println!("blessed {}", golden.display());
    } else {
        match std::fs::read_to_string(&golden) {
            Ok(committed) if committed == rendered => {
                println!("golden {} ok", golden.display());
            }
            Ok(_) => {
                println!(
                    "golden {} DIFFERS from the computed reachable set; \
                     inspect with `harness model-check --bless` + git diff",
                    golden.display()
                );
                failed = true;
            }
            Err(e) => {
                println!("golden {} unreadable ({e}); run --bless", golden.display());
                failed = true;
            }
        }
    }

    // Second pillar of the same gate: the tier failure-domain lifecycle
    // model, with its own golden and its own must-fail self-test.
    let hts = health_transitions();
    let hrules = health_legality_rules();
    let hreport = check_health_model(&hts, &hrules);
    println!(
        "model-check: tier-health: {} transitions, {} legality rules, {} reachable states",
        hts.len(),
        hrules.len(),
        hreport.reachable.len()
    );
    for (s, rule) in &hreport.illegal {
        println!(
            "ILLEGAL reachable tier state {:02x} ({}) violates {rule}",
            s,
            describe_health_state(*s)
        );
        failed = true;
    }
    for name in &hreport.dead_transitions {
        println!("DEAD tier-health transition {name}: never fired from any reachable state");
        failed = true;
    }

    let hrendered = render_health_report(&hreport);
    let hgolden = tier_health_golden_path();
    if bless {
        if let Err(e) = std::fs::write(&hgolden, &hrendered) {
            eprintln!("model-check: cannot write {}: {e}", hgolden.display());
            return 1;
        }
        println!("blessed {}", hgolden.display());
    } else {
        match std::fs::read_to_string(&hgolden) {
            Ok(committed) if committed == hrendered => {
                println!("golden {} ok", hgolden.display());
            }
            Ok(_) => {
                println!(
                    "golden {} DIFFERS from the computed reachable set; \
                     inspect with `harness model-check --bless` + git diff",
                    hgolden.display()
                );
                failed = true;
            }
            Err(e) => {
                println!("golden {} unreadable ({e}); run --bless", hgolden.display());
                failed = true;
            }
        }
    }

    // Self-test: a finish_offline that skips the drained-and-idle guard
    // must be caught as Offline-with-residency, or the checker is dead
    // weight.
    let mut buggy = health_transitions();
    buggy.push(tier_health::HealthTransition {
        name: "buggy_finish_offline_without_drain",
        apply: |s| {
            if tier_health::health_of(s) == tier_health::EVACUATING
                && tier_health::residency_of(s) > 0
            {
                vec![tier_health::pack(
                    tier_health::OFFLINE,
                    tier_health::residency_of(s),
                    tier_health::inflight_of(s),
                )]
            } else {
                vec![]
            }
        },
    });
    let injected = check_health_model(&buggy, &hrules);
    if injected
        .illegal
        .iter()
        .any(|(_, rule)| *rule == "offline_holds_nothing")
    {
        println!("model-check: tier-health self-test ok (Offline-with-residency caught)");
    } else {
        println!(
            "model-check: SELF-TEST FAILED — injected Offline-with-residency \
             transition was not detected"
        );
        failed = true;
    }

    if failed {
        eprintln!("model-check: FAILED");
        1
    } else {
        println!("model-check: reachable sets are legal and match the goldens");
        0
    }
}

/// `harness race-check [--bless]`. Runs the chrono-race pillar end to end:
/// the exhaustive interleaving exploration under the shipped tenant-id
/// grant rule (every schedule must converge and conserve slot flow, and
/// the rendered report must match the committed golden), then the
/// self-test under the injected arrival-order rule (which must be caught
/// as divergent — a checker that passes a known-racy protocol is broken).
/// The static race rules (`shared-state`/`rng-stream`/`barrier-phase`) are
/// part of `harness lint`, which ci.sh runs alongside this.
pub fn run_race_check(mut args: Vec<String>) -> i32 {
    let bless = take_bool_flag(&mut args, "--bless");
    if let Some(unknown) = args.first() {
        eprintln!("race-check: unknown argument '{unknown}'");
        return 2;
    }

    let configs = race_configs();
    let report = check_races(&configs, GrantRule::TenantId);
    let mut failed = false;
    for c in &report.configs {
        let schedules: u64 = c.windows.iter().map(|w| w.schedules).sum();
        println!(
            "race-check: config {}: {} schedules over {} windows, converged={}, {} conservation checks",
            c.name,
            schedules,
            c.windows.len(),
            c.converged,
            c.conservation_checks
        );
        if !c.converged {
            println!("  DIVERGED: some schedule reached a different post-barrier state");
            failed = true;
        }
        for v in &c.violations {
            println!("  SLOT-FLOW VIOLATION: {v}");
            failed = true;
        }
    }

    let rendered = render_race_report(&report);
    let golden = race_golden_path();
    if bless {
        if let Some(dir) = golden.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&golden, &rendered) {
            eprintln!("race-check: cannot write {}: {e}", golden.display());
            return 1;
        }
        println!("blessed {}", golden.display());
    } else {
        match std::fs::read_to_string(&golden) {
            Ok(committed) if committed == rendered => {
                println!("golden {} ok", golden.display());
            }
            Ok(_) => {
                println!(
                    "golden {} DIFFERS from the computed exploration; \
                     inspect with `harness race-check --bless` + git diff",
                    golden.display()
                );
                failed = true;
            }
            Err(e) => {
                println!("golden {} unreadable ({e}); run --bless", golden.display());
                failed = true;
            }
        }
    }

    // Self-test: the injected order-dependent grant rule must be caught.
    let injected = check_races(&configs, GrantRule::ArrivalOrder);
    if injected.ok() {
        println!(
            "race-check: SELF-TEST FAILED — injected arrival-order grants \
             were not detected as divergent"
        );
        failed = true;
    } else {
        println!("race-check: self-test ok (injected arrival-order grants caught)");
    }

    if failed {
        eprintln!("race-check: FAILED");
        1
    } else {
        println!("race-check: every schedule converges, slot flow conserved");
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_catalog_rendering_stays_in_sync() {
        let rendered = render_rules();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(
            lines.len(),
            RULES.len(),
            "one `lint --rules` line per catalog entry"
        );
        for ((name, what), line) in RULES.iter().zip(&lines) {
            assert!(
                line.starts_with(name) && line.ends_with(what),
                "rule line drifted from the catalog: {line:?}"
            );
        }
        // The chrono-race static rules are part of the grown catalog.
        for rule in ["shared-state", "rng-stream", "barrier-phase"] {
            assert!(
                RULES.iter().any(|(n, _)| *n == rule),
                "missing {rule} in the catalog"
            );
        }
    }

    #[test]
    fn lint_json_document_round_trips_from_a_live_scan() {
        let baseline = std::fs::read_to_string(baseline_path()).unwrap_or_default();
        let report = lint_workspace(&workspace_root(), &baseline).expect("scan");
        let json = findings_to_json(&report);
        let (files, findings, stale) =
            tiering_analysis::findings_from_json(&json).expect("schema round-trip");
        assert_eq!(files, report.files_scanned);
        assert_eq!(findings, report.findings);
        assert_eq!(stale, report.stale_baseline);
    }
}
