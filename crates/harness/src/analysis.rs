//! `harness lint` and `harness model-check`: the CI entry points into the
//! `tiering-analysis` layer.
//!
//! ```text
//! harness lint [--all] [--rules]
//! harness model-check [--bless]
//! ```
//!
//! `lint` runs chrono-lint over the workspace against the committed waiver
//! baseline and fails on any unwaived finding or stale baseline entry
//! (`--all` also prints the waived findings; `--rules` prints the rule
//! catalog). `model-check` enumerates the exact reachable `PageFlags`
//! lifecycle set, asserts every reachable state legal and every declared
//! transition live, and diffs the rendered reachability report against the
//! committed golden (`--bless` rewrites it).

use tiering_analysis::{
    baseline_path, check_model, golden_path, legality_rules, lint_workspace, render_report,
    transitions, workspace_root, Finding, RULES,
};

/// Removes `--flag` from `args`, reporting whether it was present.
fn take_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return false;
    };
    args.remove(pos);
    true
}

/// `harness lint [--all] [--rules]`. Returns the process exit code.
pub fn run_lint(mut args: Vec<String>) -> i32 {
    let show_all = take_bool_flag(&mut args, "--all");
    let show_rules = take_bool_flag(&mut args, "--rules");
    if let Some(unknown) = args.first() {
        eprintln!("lint: unknown argument '{unknown}'");
        return 2;
    }
    if show_rules {
        for (name, what) in RULES {
            println!("{name:20} {what}");
        }
        return 0;
    }

    let baseline = std::fs::read_to_string(baseline_path()).unwrap_or_default();
    let report = match lint_workspace(&workspace_root(), &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: cannot scan workspace: {e}");
            return 1;
        }
    };

    let unwaived: Vec<&Finding> = report.unwaived().collect();
    for f in &report.findings {
        if show_all || f.waived == tiering_analysis::lint::Waived::No {
            println!("{f}");
        }
    }
    for stale in &report.stale_baseline {
        println!("stale baseline entry (matches nothing): {stale}");
    }
    let waived = report.findings.len() - unwaived.len();
    println!(
        "lint: {} files, {} finding(s) ({} waived, {} unwaived), {} stale baseline entr(ies)",
        report.files_scanned,
        report.findings.len(),
        waived,
        unwaived.len(),
        report.stale_baseline.len()
    );
    if unwaived.is_empty() && report.stale_baseline.is_empty() {
        0
    } else {
        1
    }
}

/// `harness model-check [--bless]`. Returns the process exit code.
pub fn run_model_check(mut args: Vec<String>) -> i32 {
    let bless = take_bool_flag(&mut args, "--bless");
    if let Some(unknown) = args.first() {
        eprintln!("model-check: unknown argument '{unknown}'");
        return 2;
    }

    let ts = transitions();
    let rules = legality_rules();
    let report = check_model(&ts, &rules);
    println!(
        "model-check: {} transitions, {} legality rules, {} reachable states",
        ts.len(),
        rules.len(),
        report.reachable.len()
    );

    let mut failed = false;
    for (s, rule) in &report.illegal {
        println!(
            "ILLEGAL reachable state {:04x} ({}) violates {rule}",
            s,
            tiered_mem::PageFlags::from_bits(s & tiered_mem::PageFlags::MASK).describe()
        );
        failed = true;
    }
    for name in &report.dead_transitions {
        println!("DEAD transition {name}: never fired from any reachable state");
        failed = true;
    }

    let rendered = render_report(&report);
    let golden = golden_path();
    if bless {
        if let Some(dir) = golden.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&golden, &rendered) {
            eprintln!("model-check: cannot write {}: {e}", golden.display());
            return 1;
        }
        println!("blessed {}", golden.display());
    } else {
        match std::fs::read_to_string(&golden) {
            Ok(committed) if committed == rendered => {
                println!("golden {} ok", golden.display());
            }
            Ok(_) => {
                println!(
                    "golden {} DIFFERS from the computed reachable set; \
                     inspect with `harness model-check --bless` + git diff",
                    golden.display()
                );
                failed = true;
            }
            Err(e) => {
                println!("golden {} unreadable ({e}); run --bless", golden.display());
                failed = true;
            }
        }
    }

    if failed {
        eprintln!("model-check: FAILED");
        1
    } else {
        println!("model-check: reachable set is legal and matches the golden");
        0
    }
}
