//! `harness bench`: dependency-free performance measurement.
//!
//! Two suites, each writing one JSON file at the repository root so every
//! PR shows a trajectory:
//!
//! - **fig10** (`BENCH_fig10.json`): end-to-end simulation throughput for
//!   the Fig 10 workload shapes under Chrono-DCSC and TPP — host-side
//!   accesses/sec and migrations/sec (how fast the simulator executes), plus
//!   the simulated throughput (what the simulation reports). The access
//!   streams are pre-materialised outside the timed region (the pmbench
//!   generators are open-loop, so replay is bit-exact with live generation):
//!   the timed quantity is the simulator — driver, substrate, policy — not
//!   the Box–Muller sampling that feeds it. The suite also carries the
//!   multi-tenant fleet shape: the same seeded tenant mix run at 1 and at 4
//!   worker threads, measuring what the sharded scheduler buys in aggregate
//!   wall-clock throughput (digest equality across thread counts is enforced
//!   separately, by `tests/determinism.rs`). The ≥2× speedup expectation is
//!   asserted only where `available_parallelism()` covers the worker count —
//!   on a single-CPU host the pool pays synchronization cost with nothing to
//!   parallelize onto, so the rows are recorded but not gated.
//! - **substrate** (`BENCH_substrate.json`): ns/op microbenchmarks for the
//!   five measured hot paths — the demand/hint fault path, the Ticking-scan
//!   `walk_range` sweep, heat-map add/decay/overlap, LRU rotation, and the
//!   invariant-oracle sweep.
//!
//! Simulated work is counted with the sim-clock as everywhere else; the
//! *host* timer below is the one permitted wall-clock use in the workspace.
//! chrono-lint leaves the harness crate unrestricted for wall-clock use,
//! but the waivers are written out anyway so the exemption is explicit at
//! the use sites.
//!
//! `--quick` shrinks run lengths and iteration counts for CI smoke runs;
//! `--check` re-runs the quick suites and compares against the committed
//! JSON instead of overwriting it, failing on a schema mismatch or a >25 %
//! end-to-end throughput regression (`ci.sh` exposes `CHRONO_SKIP_BENCH=1`
//! to skip the gate on slow or heavily loaded machines).

use std::path::{Path, PathBuf};
// lint:allow(wall-clock) the bench module's purpose is host-side timing
use std::time::Instant;

use sim_clock::{DetRng, Nanos};
use tiered_mem::{
    LruEntry, LruKind, LruLists, PageFlags, PageSize, ProcessId, SystemConfig, TieredSystem, Vpn,
};
use tiering_policies::DriverConfig;
use tiering_verify::InvariantOracle;
use workloads::{AccessReq, PmbenchConfig, PmbenchWorkload, Workload};

use crate::runner::{run_policy, PolicyKind, Scale, Topology};
use crate::tenants::{run_fleet, FleetConfig};

/// Schema tag written into (and required from) every bench JSON file.
pub const SCHEMA: &str = "chrono-bench/v1";

/// Throughput regression tolerated by `--check` before failing (fraction).
pub const REGRESSION_TOLERANCE: f64 = 0.25;

/// One measured quantity: a name, an op count, and the host time it took.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Stable result identifier (compared by `--check`).
    pub name: String,
    /// What one "op" is (access, page, sample, rotation, sweep).
    pub unit: &'static str,
    /// Operations executed.
    pub ops: u64,
    /// Host nanoseconds elapsed.
    pub host_nanos: u64,
    /// Extra `(key, value)` metrics specific to this result.
    pub extra: Vec<(&'static str, f64)>,
}

impl BenchResult {
    /// Nanoseconds of host time per operation.
    pub fn ns_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.host_nanos as f64 / self.ops as f64
        }
    }

    /// Operations per host second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.host_nanos == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.host_nanos as f64
        }
    }
}

/// The repository root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels under the workspace root")
        .to_path_buf()
}

/// Path of a suite's committed JSON file.
pub fn bench_path(suite: &str) -> PathBuf {
    repo_root().join(format!("BENCH_{suite}.json"))
}

// ----- end-to-end suite (fig10 shapes) ------------------------------------

/// Replays a pre-materialised access stream. The pmbench generators are
/// open-loop — nothing in the request stream depends on the system's
/// responses, and `paper_skewed` think time is always zero — so replay is
/// bit-exact with live generation while keeping the Gaussian sampling cost
/// (which dominates generation) out of the timed region.
struct ReplayWorkload {
    /// Packed requests: `vpn | (write as u32) << 31`.
    trace: Vec<u32>,
    pos: usize,
    pages: u32,
    label: String,
}

impl Workload for ReplayWorkload {
    fn next_access(&mut self) -> Option<AccessReq> {
        let w = *self.trace.get(self.pos)?;
        self.pos += 1;
        Some(AccessReq {
            vpn: Vpn(w & 0x7FFF_FFFF),
            write: w >> 31 != 0,
            think: Nanos::ZERO,
        })
    }

    fn address_space_pages(&self) -> u32 {
        self.pages
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Records `len` requests of a pmbench configuration into a replay trace.
fn record_trace(cfg: PmbenchConfig, len: u64) -> ReplayWorkload {
    let mut w = PmbenchWorkload::new(cfg);
    let pages = w.address_space_pages();
    let label = w.label();
    let mut trace = Vec::with_capacity(len as usize);
    for _ in 0..len {
        let r = w.next_access().expect("pmbench streams are unbounded");
        debug_assert_eq!(r.think, Nanos::ZERO, "replay drops think times");
        trace.push(r.vpn.0 | (r.write as u32) << 31);
    }
    ReplayWorkload {
        trace,
        pos: 0,
        pages,
        label,
    }
}

/// Runs one Fig 10-shaped workload under a policy for a fixed number of
/// accesses and measures host time. Traces are generated before the timer
/// starts; each process's trace is sized 1.5× its fair share so the
/// driver's access cap, not trace exhaustion, ends the run.
fn e2e_run(
    kind: PolicyKind,
    topology: Topology,
    label: &str,
    procs: u32,
    pages: u32,
    accesses: u64,
) -> BenchResult {
    // The sim-time horizon is a non-binding backstop; the access cap stops
    // the run.
    let horizon = Nanos::from_secs(3600);
    let scale = Scale {
        run_for: horizon,
        topology,
        ..Scale::default_scale()
    };
    let driver_cfg = DriverConfig {
        run_for: horizon,
        max_accesses: accesses,
        ..Default::default()
    };
    let total_frames = procs * (pages + pages / 4);
    let replays: Vec<Box<dyn Workload>> = (0..procs)
        .map(|i| {
            let seed = if procs == 1 { 1010 } else { 1100 + i as u64 };
            let read_ratio = if procs == 1 { 0.95 } else { 0.7 };
            let per_proc = (accesses / procs as u64) * 3 / 2;
            Box::new(record_trace(
                PmbenchConfig::paper_skewed(pages, read_ratio, seed),
                per_proc,
            )) as Box<dyn Workload>
        })
        .collect();
    // lint:allow(wall-clock) host-side throughput is the measured quantity
    let start = Instant::now();
    let run = run_policy(
        kind,
        &scale,
        total_frames,
        PageSize::Base,
        Some(driver_cfg),
        move || replays,
    );
    // lint:allow(timestamp-cast) elapsed ns fit u64 for any realistic run
    let host_nanos = start.elapsed().as_nanos() as u64;
    let s = &run.sys.stats;
    let migrations = s.promoted_pages + s.demoted_pages;
    let host_secs = (host_nanos as f64 / 1e9).max(1e-9);
    BenchResult {
        name: label.to_string(),
        unit: "access",
        ops: run.result.accesses,
        host_nanos,
        extra: vec![
            ("migrated_pages", migrations as f64),
            ("migrations_per_sec", migrations as f64 / host_secs),
            ("sim_throughput", run.result.throughput()),
            ("fmar", s.fmar()),
        ],
    }
}

/// Worker-thread count of the parallel multi-tenant fleet row.
pub const FLEET_THREADS: usize = 4;

/// One multi-tenant fleet row: `tenants` shards under the admission hook on
/// `threads` worker threads. Shard construction happens inside the timed
/// region for both thread counts, so the 1-thread vs N-thread comparison is
/// apples to apples; construction is a small, thread-independent prefix of
/// the run.
fn bench_fleet(tenants: usize, millis: u64, threads: usize) -> BenchResult {
    let cfg = FleetConfig {
        tenants,
        threads,
        millis,
        ..FleetConfig::default()
    };
    // lint:allow(wall-clock) host-side throughput is the measured quantity
    let start = Instant::now();
    let result = run_fleet(&cfg);
    // lint:allow(timestamp-cast) elapsed ns fit u64 for any realistic run
    let host_nanos = start.elapsed().as_nanos() as u64;
    BenchResult {
        name: format!("fig10_fleet_{threads}thread"),
        unit: "access",
        ops: result.total_accesses(),
        host_nanos,
        extra: vec![
            ("tenants", tenants as f64),
            ("threads", threads as f64),
            ("barriers", result.barriers as f64),
            ("slot_share_gini", result.slot_share_gini()),
        ],
    }
}

/// The end-to-end suite: Fig 10 profile (1×8192 pages) and multi-process
/// (6×2048 pages) shapes under Chrono-DCSC and TPP, the profile shape again
/// on the three-tier DRAM+CXL+PMem chain (cascaded Chrono and TPP-3), plus
/// the multi-tenant fleet shape at 1 and at [`FLEET_THREADS`] worker
/// threads.
pub fn run_fig10_suite(quick: bool) -> Vec<BenchResult> {
    let accesses: u64 = if quick { 1_000_000 } else { 12_000_000 };
    let mut out = Vec::new();
    for (kind, tag) in [
        (PolicyKind::Chrono, "chrono_dcsc"),
        (PolicyKind::Tpp, "tpp"),
    ] {
        out.push(e2e_run(
            kind,
            Topology::DramPmem,
            &format!("fig10_profile_{tag}"),
            1,
            8192,
            accesses,
        ));
        out.push(e2e_run(
            kind,
            Topology::DramPmem,
            &format!("fig10_multi_{tag}"),
            6,
            2048,
            accesses,
        ));
        out.push(e2e_run(
            kind,
            Topology::ThreeTier,
            &format!("fig10_threetier_{tag}"),
            1,
            8192,
            accesses,
        ));
    }
    // Same fleet at 1 and at FLEET_THREADS threads: thread-count changes the
    // wall clock, never the digest (tests/determinism.rs proves the latter).
    let (tenants, millis) = if quick { (64, 5) } else { (256, 10) };
    let single = bench_fleet(tenants, millis, 1);
    let mut multi = bench_fleet(tenants, millis, FLEET_THREADS);
    let speedup = if single.ops_per_sec() > 0.0 {
        multi.ops_per_sec() / single.ops_per_sec()
    } else {
        1.0
    };
    multi.extra.push(("speedup_vs_1thread", speedup));
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The ≥2× expectation only holds where the host can actually run the
    // workers in parallel; a single-CPU host pays the scoped pool's
    // synchronization cost with nothing to parallelize onto.
    assert!(
        cpus < FLEET_THREADS || speedup >= 2.0,
        "fleet at {FLEET_THREADS} threads only {speedup:.2}x over 1 thread on a {cpus}-cpu host"
    );
    out.push(single);
    out.push(multi);
    out
}

// ----- substrate microbenchmarks ------------------------------------------

/// Times `body` and wraps the result.
fn timed<F: FnMut() -> u64>(name: &str, unit: &'static str, mut body: F) -> BenchResult {
    // lint:allow(wall-clock) microbenchmark timing
    let start = Instant::now();
    let ops = body();
    // lint:allow(timestamp-cast) elapsed ns fit u64 for any realistic run
    let host_nanos = start.elapsed().as_nanos() as u64;
    BenchResult {
        name: name.to_string(),
        unit,
        ops,
        host_nanos,
        extra: Vec::new(),
    }
}

/// A small system with every page of one process demand-mapped.
fn mapped_system(pages: u32) -> (TieredSystem, ProcessId) {
    let mut sys = TieredSystem::new(SystemConfig::quarter_fast(pages + pages / 4));
    let pid = sys.add_process(pages, PageSize::Base);
    for v in 0..pages {
        sys.access(pid, Vpn(v), true);
    }
    (sys, pid)
}

/// Demand/hint fault path: every access takes a `PROT_NONE` hint fault, the
/// per-access cost Ticking-scan and NUMA balancing pay on poisoned PTEs.
fn bench_fault_path(rounds: u32) -> BenchResult {
    let pages = 2048;
    let (mut sys, pid) = mapped_system(pages);
    timed("hint_fault_path", "access", || {
        let mut ops = 0u64;
        for _ in 0..rounds {
            for v in 0..pages {
                let e = sys.process_mut(pid).space.entry_mut(Vpn(v));
                e.flags.set(PageFlags::PROT_NONE);
                sys.access(pid, Vpn(v), false);
                ops += 1;
            }
        }
        ops
    })
}

/// Ticking-scan `walk_range` sweep over a fully mapped space; ops count base
/// pages of scan progress (the budgeted unit).
fn bench_walk_range(rounds: u32) -> BenchResult {
    let pages = 32_768;
    let (mut sys, pid) = mapped_system(pages);
    timed("walk_range_sweep", "page", || {
        let mut cursor = Vpn(0);
        let mut visited = 0u64;
        let step = 4096;
        for _ in 0..rounds * (pages / step) {
            cursor = sys.process_mut(pid).space.walk_range(cursor, step, |_, e| {
                if e.flags.has(PageFlags::ACCESSED) {
                    e.flags.clear(PageFlags::ACCESSED);
                } else {
                    e.flags.set(PageFlags::ACCESSED);
                }
            });
            visited += step as u64;
        }
        visited
    })
}

/// Heat-map maintenance: the DCSC cadence of sample adds with periodic
/// decay + overlap identification (one decay/overlap per 1024 adds).
fn bench_heatmap(samples: u64) -> BenchResult {
    use chrono_core::heatmap::{identify_overlap, HeatMap};
    let mut fast = HeatMap::new(28);
    let mut slow = HeatMap::new(28);
    let mut rng = DetRng::seed(0xBEC);
    timed("heatmap_add_decay_overlap", "sample", || {
        let mut sink = 0.0f64;
        for i in 0..samples {
            let b = rng.below(32) as usize;
            if i % 2 == 0 {
                fast.add(b, 1.0);
            } else {
                slow.add(b, 1.0);
            }
            if i % 1024 == 1023 {
                fast.decay(0.98);
                slow.decay(0.98);
                let o = identify_overlap(&fast, &slow, 4096.0);
                sink += o.misplaced_slow_pages;
            }
        }
        // Keep the accumulated result observable so the loop cannot be
        // optimized away.
        std::hint::black_box(sink);
        samples
    })
}

/// LRU rotation: tail-insert + head-pop cycles with the stamp-validation
/// pattern `age_active_list` / reclaim use.
fn bench_lru_rotation(rotations: u64) -> BenchResult {
    let mut lists = LruLists::new();
    let span = 4096u32;
    for v in 0..span {
        lists.push(
            LruKind::Active,
            LruEntry {
                pid: ProcessId(0),
                vpn: Vpn(v),
                stamp: 0,
            },
        );
    }
    timed("lru_rotation", "rotation", || {
        let mut live = 0u64;
        for _ in 0..rotations {
            let e = lists.pop(LruKind::Active).expect("list cycles");
            // Stamp check mirrors the lazy-deletion validation in the system.
            if e.stamp == 0 {
                live += 1;
            }
            lists.push(LruKind::Active, e);
        }
        std::hint::black_box(live);
        rotations
    })
}

/// Invariant-oracle sweep over a mapped system (the per-step cost the
/// fuzzing harness pays with the oracle attached).
fn bench_oracle_sweep(sweeps: u64) -> BenchResult {
    let (sys, _pid) = mapped_system(2048);
    let mut oracle = InvariantOracle::new();
    timed("oracle_sweep", "sweep", || {
        let mut clean = 0u64;
        for _ in 0..sweeps {
            if oracle.check(&sys).is_empty() {
                clean += 1;
            }
        }
        assert_eq!(clean, sweeps, "oracle found violations in a benign system");
        sweeps
    })
}

/// The substrate suite: ns/op for the five hot paths.
pub fn run_substrate_suite(quick: bool) -> Vec<BenchResult> {
    let k = if quick { 1 } else { 8 };
    vec![
        bench_fault_path(4 * k),
        bench_walk_range(16 * k),
        bench_heatmap(200_000 * k as u64),
        bench_lru_rotation(500_000 * k as u64),
        bench_oracle_sweep(25 * k as u64),
    ]
}

// ----- JSON rendering ------------------------------------------------------

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Stable short form: enough digits to round-trip a throughput.
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

/// Renders one suite as the committed JSON document.
pub fn render_json(suite: &str, quick: bool, results: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"suite\": \"{suite}\",\n"));
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "full" }
    ));
    out.push_str("  \"machine\": {\n");
    out.push_str(&format!("    \"arch\": \"{}\",\n", std::env::consts::ARCH));
    out.push_str(&format!("    \"os\": \"{}\",\n", std::env::consts::OS));
    out.push_str(&format!(
        "    \"cpus\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str(&format!(
        "    \"profile\": \"{}\"\n",
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        }
    ));
    out.push_str("  },\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"unit\": \"{}\",\n", r.unit));
        out.push_str(&format!("      \"ops\": {},\n", r.ops));
        out.push_str(&format!(
            "      \"host_ms\": {},\n",
            json_f64(r.host_nanos as f64 / 1e6)
        ));
        out.push_str(&format!(
            "      \"ns_per_op\": {},\n",
            json_f64(r.ns_per_op())
        ));
        for (k, v) in &r.extra {
            out.push_str(&format!("      \"{k}\": {},\n", json_f64(*v)));
        }
        out.push_str(&format!(
            "      \"ops_per_sec\": {}\n",
            json_f64(r.ops_per_sec())
        ));
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

// ----- minimal JSON field extraction for --check ---------------------------

/// Extracts the string value of `"key": "..."` after `from` in `text`.
fn find_string(text: &str, key: &str, from: usize) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = text[from..].find(&pat)? + from + pat.len();
    let rest = text[at..].trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts the numeric value of `"key": N` after `from` in `text`.
fn find_number(text: &str, key: &str, from: usize) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = text[from..].find(&pat)? + from + pat.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// One committed baseline entry.
struct CommittedEntry {
    name: String,
    ops_per_sec: f64,
    ns_per_op: f64,
    /// Reduced-scale reference recorded alongside the full run, if present.
    /// `--check` gates against this: quick runs carry a systematically
    /// larger cold-start fraction, so comparing them against full-scale
    /// throughput would conflate scale with regression.
    quick_ops_per_sec: Option<f64>,
}

/// The committed baseline of one suite. Fails with a message if the schema
/// tag is wrong or absent.
fn parse_committed(suite: &str, text: &str) -> Result<Vec<CommittedEntry>, String> {
    match find_string(text, "schema", 0) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("schema is {s:?}, expected {SCHEMA:?}")),
        None => return Err("missing \"schema\" field".to_string()),
    }
    match find_string(text, "suite", 0) {
        Some(s) if s == suite => {}
        other => return Err(format!("suite tag {other:?} does not match {suite:?}")),
    }
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = text[from..].find("\"name\":") {
        let at = from + pos;
        // Optional fields must be looked up within this entry's block only,
        // or a missing key would silently pick up the next entry's value.
        let end = text[at + 7..]
            .find("\"name\":")
            .map(|p| at + 7 + p)
            .unwrap_or(text.len());
        let block = &text[at..end];
        let name = find_string(block, "name", 0).ok_or("unreadable result name")?;
        let ops_per_sec =
            find_number(block, "ops_per_sec", 0).ok_or(format!("{name}: missing ops_per_sec"))?;
        let ns_per_op =
            find_number(block, "ns_per_op", 0).ok_or(format!("{name}: missing ns_per_op"))?;
        let quick_ops_per_sec = find_number(block, "quick_ops_per_sec", 0);
        out.push(CommittedEntry {
            name,
            ops_per_sec,
            ns_per_op,
            quick_ops_per_sec,
        });
        from = at + "\"name\":".len();
    }
    if out.is_empty() {
        return Err("no results in committed file".to_string());
    }
    Ok(out)
}

/// Compares fresh results against the committed file of `suite`. Only the
/// end-to-end throughput entries gate (microbenchmark ns/op is reported but
/// informational: it is too machine-sensitive for a hard CI bound).
fn check_suite(suite: &str, fresh: &[BenchResult]) -> Result<(), String> {
    let path = bench_path(suite);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let committed = parse_committed(suite, &text)?;
    let mut failures = Vec::new();
    for r in fresh {
        let Some(entry) = committed.iter().find(|e| e.name == r.name) else {
            failures.push(format!("{}: not present in committed baseline", r.name));
            continue;
        };
        // Gate against the committed quick-mode reference when the file has
        // one — `--check` runs at reduced scale, and quick throughput is
        // systematically below full-scale throughput (the cold-start
        // fraction is ~12× larger), not a regression.
        let base_ops_per_sec = entry.quick_ops_per_sec.unwrap_or(entry.ops_per_sec);
        let fresh_ops_per_sec = r.ops_per_sec();
        let ratio = if base_ops_per_sec > 0.0 {
            fresh_ops_per_sec / base_ops_per_sec
        } else {
            1.0
        };
        let gated = suite == "fig10";
        println!(
            "  {:28} {:>12.0} ops/s (baseline {:>12.0}{}, {:+.1} %){}",
            r.name,
            fresh_ops_per_sec,
            base_ops_per_sec,
            if entry.quick_ops_per_sec.is_some() {
                " quick-ref"
            } else {
                ""
            },
            (ratio - 1.0) * 100.0,
            if gated { "" } else { "  [informational]" }
        );
        let _ = entry.ns_per_op;
        if gated && ratio < 1.0 - REGRESSION_TOLERANCE {
            failures.push(format!(
                "{}: throughput regressed {:.1} % (> {:.0} % tolerance)",
                r.name,
                (1.0 - ratio) * 100.0,
                REGRESSION_TOLERANCE * 100.0
            ));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

// ----- CLI entry -----------------------------------------------------------

fn plural(unit: &str) -> String {
    match unit {
        "access" => "accesses".to_string(),
        u => format!("{u}s"),
    }
}

fn take_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

/// `harness bench [--quick] [--check] [--suite fig10|substrate]`.
///
/// Default: run both suites and (re)write `BENCH_fig10.json` and
/// `BENCH_substrate.json` at the repository root. With `--check`, run the
/// quick suites and diff against the committed files instead of writing.
pub fn run_bench(mut args: Vec<String>) -> i32 {
    let quick = take_bool_flag(&mut args, "--quick");
    let check = take_bool_flag(&mut args, "--check");
    let suite_filter = args
        .iter()
        .position(|a| a == "--suite")
        .map(|pos| {
            let v = args.get(pos + 1).cloned().unwrap_or_default();
            args.drain(pos..(pos + 2).min(args.len()));
            v
        })
        .filter(|v| !v.is_empty());
    if let Some(bad) = args.first() {
        eprintln!("unknown bench argument '{bad}'");
        eprintln!("usage: harness bench [--quick] [--check] [--suite fig10|substrate]");
        return 2;
    }
    if let Some(s) = &suite_filter {
        if s != "fig10" && s != "substrate" {
            eprintln!("unknown suite '{s}' (expected fig10 or substrate)");
            return 2;
        }
    }
    let want = |s: &str| suite_filter.as_deref().map(|f| f == s).unwrap_or(true);
    // --check always runs the reduced scale: it is the CI smoke gate.
    let quick = quick || check;
    let mut failed = false;

    for suite in ["fig10", "substrate"] {
        if !want(suite) {
            continue;
        }
        println!(
            "bench suite {suite} ({} mode)...",
            if quick { "quick" } else { "full" }
        );
        let mut results = if suite == "fig10" {
            run_fig10_suite(quick)
        } else {
            run_substrate_suite(quick)
        };
        for r in &results {
            println!(
                "  {:28} {:>10} {} in {:>8.1} ms  ({:.1} ns/{}, {:.0} ops/s)",
                r.name,
                r.ops,
                plural(r.unit),
                r.host_nanos as f64 / 1e6,
                r.ns_per_op(),
                r.unit,
                r.ops_per_sec()
            );
        }
        if check {
            // Wall-clock noise on shared CI hosts can dwarf the tolerance,
            // so the gated suite gets up to three attempts, keeping each
            // entry's best observed throughput (noise only ever slows a
            // run): a genuine >25 % regression fails every measurement, a
            // noisy neighbour does not.
            let mut attempt = 1;
            loop {
                match check_suite(suite, &results) {
                    Ok(()) => {
                        println!("  {suite}: ok against committed baseline");
                        break;
                    }
                    Err(_) if suite == "fig10" && attempt < 3 => {
                        println!("  {suite}: attempt {attempt} over tolerance; re-running");
                        attempt += 1;
                        for fresh in run_fig10_suite(quick) {
                            if let Some(r) = results.iter_mut().find(|r| r.name == fresh.name) {
                                if fresh.ops_per_sec() > r.ops_per_sec() {
                                    *r = fresh;
                                }
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("bench check FAILED for {suite}:\n{e}");
                        failed = true;
                        break;
                    }
                }
            }
        } else {
            if suite == "fig10" && !quick {
                // Embed a quick-mode reference next to each full-scale
                // number: `--check` runs at quick scale, whose throughput is
                // systematically below full scale (the cold-start fraction
                // is ~12× larger), so the gate must compare like with like.
                println!("  measuring quick-mode reference for --check...");
                for q in run_fig10_suite(true) {
                    if let Some(r) = results.iter_mut().find(|r| r.name == q.name) {
                        r.extra.push(("quick_ops_per_sec", q.ops_per_sec()));
                    }
                }
            }
            let path = bench_path(suite);
            let doc = render_json(suite, quick, &results);
            if let Err(e) = std::fs::write(&path, &doc) {
                eprintln!("cannot write {}: {e}", path.display());
                return 2;
            }
            println!("  wrote {}", path.display());
        }
    }
    if failed {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_results() -> Vec<BenchResult> {
        vec![
            BenchResult {
                name: "fig10_profile_chrono_dcsc".to_string(),
                unit: "access",
                ops: 1_000_000,
                host_nanos: 500_000_000,
                extra: vec![
                    ("migrated_pages", 42.0),
                    ("sim_throughput", 1e7),
                    ("quick_ops_per_sec", 1_500_000.0),
                ],
            },
            BenchResult {
                name: "fig10_multi_tpp".to_string(),
                unit: "access",
                ops: 2_000_000,
                host_nanos: 250_000_000,
                extra: vec![],
            },
        ]
    }

    #[test]
    fn rates_are_consistent() {
        let r = &sample_results()[0];
        assert!((r.ns_per_op() - 500.0).abs() < 1e-9);
        assert!((r.ops_per_sec() - 2_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn rendered_json_round_trips_through_the_checker() {
        let doc = render_json("fig10", false, &sample_results());
        let parsed = parse_committed("fig10", &doc).expect("parses");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "fig10_profile_chrono_dcsc");
        assert!((parsed[0].ops_per_sec - 2_000_000.0).abs() < 1.0);
        assert!((parsed[0].ns_per_op - 500.0).abs() < 1e-6);
        assert!((parsed[1].ops_per_sec - 8_000_000.0).abs() < 1.0);
        // The quick-mode reference rides in `extra` and must survive the
        // round trip — the gate compares against it when present.
        assert!((parsed[0].quick_ops_per_sec.expect("quick ref") - 1_500_000.0).abs() < 1.0);
        assert_eq!(parsed[1].quick_ops_per_sec, None);
    }

    #[test]
    fn checker_rejects_bad_schema() {
        let doc = render_json("fig10", false, &sample_results()).replace(SCHEMA, "other/v0");
        assert!(parse_committed("fig10", &doc).is_err());
        let doc = render_json("substrate", false, &sample_results());
        assert!(parse_committed("fig10", &doc).is_err(), "suite tag differs");
    }

    #[test]
    fn checker_rejects_empty_results() {
        let doc = render_json("fig10", false, &[]);
        assert!(parse_committed("fig10", &doc).is_err());
    }

    #[test]
    fn quick_substrate_suite_runs() {
        // Tiny end-to-end sanity pass over every microbench body: each must
        // complete and report nonzero ops (host time may round to zero on
        // very fast machines, so only ops are asserted).
        for r in [
            bench_fault_path(1),
            bench_heatmap(2048),
            bench_lru_rotation(1000),
            bench_oracle_sweep(1),
        ] {
            assert!(r.ops > 0, "{} did nothing", r.name);
        }
    }

    #[test]
    fn replay_matches_live_generation() {
        // The trace-driven e2e mode is only honest if replay is bit-exact
        // with live generation: same vpn, same write bit, zero think.
        let cfg = || PmbenchConfig::paper_skewed(512, 0.7, 77);
        let mut live = PmbenchWorkload::new(cfg());
        let mut replay = record_trace(cfg(), 10_000);
        for i in 0..10_000 {
            let a = live.next_access().unwrap();
            let b = replay.next_access().unwrap();
            assert_eq!(
                (a.vpn, a.write, a.think),
                (b.vpn, b.write, b.think),
                "at {i}"
            );
        }
        assert!(replay.next_access().is_none(), "trace length respected");
    }

    #[test]
    fn units_pluralize() {
        assert_eq!(plural("access"), "accesses");
        assert_eq!(plural("sweep"), "sweeps");
    }

    #[test]
    fn bench_paths_land_at_the_repo_root() {
        let p = bench_path("fig10");
        assert!(p.ends_with("BENCH_fig10.json"));
        assert!(repo_root().join("Cargo.toml").exists());
    }
}
