//! Extensions beyond the paper's plotted evaluation.
//!
//! - `ext-baselines`: Table 1 lists Telescope and FlexMem but the figures
//!   don't plot them; this experiment runs the full eight-policy field on
//!   the Fig 6(a) workload.
//! - `ext-adapt`: a phase-shifting workload probing the paper's claim that
//!   DCSC "adapts to changing workload patterns" — after the hot region
//!   jumps, how quickly does each policy recover its fast-tier hit rate?
//! - `ext-limits`: cgroup memory limits (Section 3.3.1): Chrono reclaims
//!   slow-tier pages of confined processes to swap while keeping hot pages
//!   in DRAM.

use sim_clock::Nanos;
use tiered_mem::{PageSize, SystemConfig, TierId, TieredSystem};
use tiering_metrics::Table;
use tiering_policies::{
    flexmem::FlexMemConfig, telescope::TelescopeConfig, DriverConfig, FlexMem, SimulationDriver,
    Telescope, TieringPolicy,
};
use workloads::{PhasedWorkload, PmbenchConfig, PmbenchWorkload, Workload};

use crate::runner::{quarter_system, PolicyKind, Scale};

/// Builds the two Table-1-only baselines at the given scale.
fn extended_policy(name: &str, scale: &Scale) -> Box<dyn TieringPolicy> {
    match name {
        "Telescope" => Box::new(Telescope::new(TelescopeConfig {
            // The paper quotes a fixed 200 ms window against 60 s scans;
            // keep the same 1:300 ratio to our scan period.
            window: Nanos(scale.scan_period.as_nanos() / 300).max(Nanos(100_000)),
            frontier_budget: 1024,
            hot_windows: 2,
            demote_interval: scale.scan_period / 4,
        })),
        "FlexMem" => Box::new(FlexMem::new(FlexMemConfig {
            sample_period: scale.memtis_sample_period,
            scan_period: scale.scan_period,
            scan_step_pages: scale.scan_step,
            migrate_interval: scale.scan_period / 10,
            cooling_interval: scale.scan_period * 8,
            // At the hardware-capped sampling rate each page collects well
            // under one sample per cooling period; FlexMem's point is that
            // the *combination* of sparse samples and fault recency
            // suffices, so the counter gate stays low.
            hot_counter: 2,
            demote_interval: scale.scan_period / 4,
            seed: 0xF7,
        })),
        other => unreachable!("unknown extended baseline {other}"),
    }
}

/// Extended baseline comparison: all eight policies, Fig 6(a) workload.
pub fn run_baselines(scale: &Scale) -> String {
    let procs = 8usize;
    let pages = 2048u32;
    let total = procs as u32 * pages;
    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    let run_one = |policy: &mut dyn TieringPolicy, page_size: PageSize| -> (f64, f64) {
        let mut sys = quarter_system(scale, total + total / 4);
        let mut wls: Vec<Box<dyn Workload>> = (0..procs)
            .map(|i| {
                Box::new(PmbenchWorkload::new(PmbenchConfig::paper_skewed(
                    pages,
                    0.70,
                    1500 + i as u64,
                ))) as Box<dyn Workload>
            })
            .collect();
        for w in &wls {
            sys.add_process(w.address_space_pages(), page_size);
        }
        let r = SimulationDriver::new(DriverConfig {
            run_for: scale.run_for,
            ..Default::default()
        })
        .run(&mut sys, &mut wls, policy);
        (r.throughput(), sys.stats.fmar())
    };

    for kind in PolicyKind::MAIN {
        let page_size = if kind == PolicyKind::Memtis {
            PageSize::Huge2M
        } else {
            PageSize::Base
        };
        let mut p = kind.build(scale);
        let (thpt, fmar) = run_one(&mut *p, page_size);
        rows.push((kind.name().to_string(), thpt, fmar));
    }
    for name in ["Telescope", "FlexMem"] {
        let mut p = extended_policy(name, scale);
        let (thpt, fmar) = run_one(&mut *p, PageSize::Base);
        rows.push((name.to_string(), thpt, fmar));
    }

    let base = rows[0].1; // Linux-NB
    let mut t = Table::new(
        "Extension: all eight surveyed policies (Fig 6a workload)",
        &["Policy", "Normalized throughput", "FMAR"],
    );
    for (name, thpt, fmar) in rows {
        t.row(&[
            name,
            format!("{:.2}", thpt / base),
            format!("{:.1}%", fmar * 100.0),
        ]);
    }
    t.render()
}

/// Adaptation experiment: FMAR per quarter of a run whose hot region jumps
/// at the midpoint.
pub fn run_adapt(scale: &Scale) -> String {
    let pages = 8192u32;
    let run_for = scale.run_for * 2;
    let mut t = Table::new(
        "Extension: adaptation to a phase shift (FMAR per eighth of the run; hot region jumps near the midpoint)",
        &["Policy", "I1", "I2", "I3", "I4", "I5", "I6", "I7", "I8", "dip", "recovered"],
    );
    for kind in [PolicyKind::Tpp, PolicyKind::Chrono] {
        let mut sys = quarter_system(scale, pages + pages / 4);
        let w = PhasedWorkload::new(
            pages,
            vec![0.25, 0.75],
            // One phase per half of the run, in accesses: approximate from
            // the default-scale throughput (~6 M accesses per sim-second).
            (run_for.as_secs_f64() * 6.0e6 / 2.0) as u64,
            0.7,
            1600,
        );
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = kind.build(scale);

        // Sample FMAR per eighth via interval snapshots of the counters.
        let mut interval_fmar = Vec::new();
        let mut prev = sys.stats.clone();
        let mut carried_sys = sys;
        let mut carried_wls = wls;
        policy.init(&mut carried_sys);
        for q in 1..=8u64 {
            run_until(
                &mut carried_sys,
                &mut carried_wls,
                &mut *policy,
                run_for / 8 * q,
            );
            let delta = carried_sys.stats.delta_since(&prev);
            prev = carried_sys.stats.clone();
            interval_fmar.push(delta.fmar());
        }
        // The dip is the post-shift minimum; recovery is how much of the
        // pre-shift level the final interval regains.
        let pre = interval_fmar[..4].iter().cloned().fold(0.0f64, f64::max);
        let dip = interval_fmar[4..].iter().cloned().fold(1.0f64, f64::min);
        let last = *interval_fmar.last().expect("eight intervals");
        let mut cells = vec![kind.name().to_string()];
        cells.extend(interval_fmar.iter().map(|f| format!("{:.1}%", f * 100.0)));
        cells.push(format!("-{:.1} pts", (pre - dip) * 100.0));
        cells.push(format!("{:+.1} pts", (last - dip) * 100.0));
        t.row(&cells);
    }
    t.render()
}

/// Minimal driver loop without policy re-initialization (quarter-by-quarter
/// driving for the adaptation experiment).
fn run_until(
    sys: &mut TieredSystem,
    workloads: &mut [Box<dyn Workload>],
    policy: &mut dyn TieringPolicy,
    until: Nanos,
) {
    while let Some(pid) = sys.min_vtime_process() {
        let t = sys.process(pid).vtime;
        while let Some(deadline) = sys.events.next_deadline() {
            if deadline > t {
                break;
            }
            let fire_at = deadline.max(sys.clock.now());
            sys.clock.advance_to(fire_at);
            let (_, token) = sys.events.pop_due(deadline).expect("peeked");
            sys.count_daemon_wakeup();
            policy.on_event(sys, token);
        }
        if t > sys.clock.now() {
            sys.clock.advance_to(t);
        }
        if t >= until {
            break;
        }
        let Some(req) = workloads[pid.0 as usize].next_access() else {
            sys.process_mut(pid).running = false;
            continue;
        };
        if req.think > Nanos::ZERO {
            sys.process_mut(pid).vtime += req.think;
            sys.stats.user_time += req.think;
        }
        let res = sys.access(pid, req.vpn, req.write);
        if res.hint_fault {
            policy.on_hint_fault(sys, pid, req.vpn, req.write, &res);
        }
        policy.on_access(sys, pid, req.vpn, req.write);
    }
}

/// cgroup memory-limit experiment: a confined Chrono process keeps its hot
/// pages fast while the overflow is reclaimed to swap.
pub fn run_limits(scale: &Scale) -> String {
    let pages = 6144u32;
    let mut sys = TieredSystem::new(SystemConfig::quarter_fast(pages + pages / 4));
    let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(pages, 0.7, 1700));
    let pid = sys.add_process(w.address_space_pages(), PageSize::Base);
    // Confine to 70 % of the working set: overflow must go to swap.
    let limit = (pages as f64 * 0.7) as u32;
    sys.set_memory_limit(pid, Some(limit));
    let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
    let mut policy = PolicyKind::Chrono.build(scale);
    let r = SimulationDriver::new(DriverConfig {
        run_for: scale.run_for,
        ..Default::default()
    })
    .run(&mut sys, &mut wls, &mut *policy);

    let mut t = Table::new(
        "Extension: cgroup memory limit under Chrono",
        &["Metric", "Value"],
    );
    t.row(&["memory limit (frames)".into(), format!("{}", limit)]);
    t.row(&[
        "resident at end (frames)".into(),
        format!("{}", sys.process(pid).resident_frames),
    ]);
    t.row(&[
        "over-limit at end (frames)".into(),
        format!("{}", sys.over_limit_frames(pid)),
    ]);
    t.row(&[
        "pages swapped out".into(),
        format!("{}", sys.stats.swapped_out_pages),
    ]);
    t.row(&[
        "swap-in major faults".into(),
        format!("{}", sys.stats.swap_in_faults),
    ]);
    t.row(&[
        "fast tier still used (frames)".into(),
        format!("{}", sys.used_frames(TierId::FAST)),
    ]);
    t.row(&["FMAR".into(), format!("{:.1}%", sys.stats.fmar() * 100.0)]);
    t.row(&["accesses completed".into(), format!("{}", r.accesses)]);
    t.render()
}
