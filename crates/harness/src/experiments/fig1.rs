//! Fig 1: per-page memory access frequency with DRAM / NVM / top-10 %-hot
//! NVM breakdowns, for Pmbench, Graph500, Memcached, and Redis.
//!
//! The paper samples accesses with the PMU (PEBS) on a DRAM-NVM system under
//! the default kernel; here every access is observed directly (the simulator
//! *is* the PMU) while Linux-NB manages placement, and per-page frequencies
//! are attributed to the tier that served each access.

use std::collections::HashMap;

use tiered_mem::{PageSize, TierId};
use tiering_metrics::Table;
use tiering_policies::{DriverConfig, SimulationDriver};
use workloads::{
    Graph500Config, Graph500Workload, GraphKernel, KvFlavor, KvStoreConfig, KvStoreWorkload,
    PmbenchConfig, PmbenchWorkload, Workload,
};

use crate::runner::{quarter_system, PolicyKind, Scale};

struct RegionStats {
    dram_avg: f64,
    nvm_avg: f64,
    nvm_top10_avg: f64,
}

fn profile(workload: Box<dyn Workload>, scale: &Scale) -> RegionStats {
    let pages = workload.address_space_pages();
    let mut sys = quarter_system(scale, pages + pages / 4);
    sys.add_process(pages, PageSize::Base);
    let mut wls = vec![workload];
    let mut policy = PolicyKind::LinuxNb.build(scale);
    let mut counts: HashMap<u32, [u64; 2]> = HashMap::new();
    let r = SimulationDriver::new(DriverConfig {
        run_for: scale.run_for,
        ..Default::default()
    })
    .run_observed(&mut sys, &mut wls, &mut *policy, |_pid, vpn, _w, tier| {
        counts.entry(vpn.0).or_insert([0, 0])[tier.index()] += 1;
    });

    let secs = r.makespan.as_secs_f64().max(1e-9);
    let mut dram: Vec<u64> = Vec::new();
    let mut nvm: Vec<u64> = Vec::new();
    for c in counts.values() {
        if c[TierId::FAST.index()] > 0 {
            dram.push(c[TierId::FAST.index()]);
        }
        if c[TierId::SLOW.index()] > 0 {
            nvm.push(c[TierId::SLOW.index()]);
        }
    }
    nvm.sort_unstable_by(|a, b| b.cmp(a));
    let avg = |v: &[u64]| -> f64 {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<u64>() as f64 / v.len() as f64 / secs
        }
    };
    let top = &nvm[..(nvm.len() / 10).max(1).min(nvm.len())];
    RegionStats {
        dram_avg: avg(&dram),
        nvm_avg: avg(&nvm),
        nvm_top10_avg: avg(top),
    }
}

/// Regenerates Fig 1.
pub fn run(scale: &Scale) -> String {
    let pages = 12_288u32;
    let mut t = Table::new(
        "Fig 1: per-page access frequency by region (accesses/simulated-second)",
        &[
            "Benchmark",
            "DRAM",
            "NVM",
            "NVM top-10% hot",
            "top-10% / NVM avg",
        ],
    );
    let cases: Vec<(&str, Box<dyn Workload>)> = vec![
        (
            "Pmbench",
            Box::new(PmbenchWorkload::new(PmbenchConfig::paper_skewed(
                pages, 0.7, 11,
            ))),
        ),
        (
            "Graph500",
            Box::new(Graph500Workload::new(Graph500Config::sized_to_pages(
                pages,
                GraphKernel::Bfs,
                12,
            ))),
        ),
        (
            "Memcached",
            Box::new(KvStoreWorkload::new(KvStoreConfig::sized_to_pages(
                pages,
                KvFlavor::Memcached,
                1.0 / 11.0,
                13,
            ))),
        ),
        (
            "Redis",
            Box::new(KvStoreWorkload::new(KvStoreConfig::sized_to_pages(
                pages,
                KvFlavor::Redis,
                1.0 / 11.0,
                14,
            ))),
        ),
    ];
    for (name, w) in cases {
        let s = profile(w, scale);
        t.row(&[
            name.to_string(),
            format!("{:.0}", s.dram_avg),
            format!("{:.0}", s.nvm_avg),
            format!("{:.0}", s.nvm_top10_avg),
            format!("{:.1}x", s.nvm_top10_avg / s.nvm_avg.max(1e-9)),
        ]);
    }
    t.render()
}
