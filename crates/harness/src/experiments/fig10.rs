//! Fig 10: CIT validity (a), adaptive tuning traces (b, c), and parameter
//! sensitivity (d).

use std::collections::HashMap;

use chrono_core::{ChronoConfig, ChronoPolicy};
use tiered_mem::PageSize;
use tiering_metrics::Table;
use tiering_policies::{DriverConfig, SimulationDriver};
use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

use crate::runner::{quarter_system, Scale};

const PAGES: u32 = 8192;

/// Runs a single-process Gaussian pmbench under full Chrono and returns the
/// policy (with CIT samples and tuning histories) plus per-page access
/// counts and the makespan in seconds.
fn chrono_profile(scale: &Scale) -> (ChronoPolicy, HashMap<u32, u64>, f64) {
    let mut sys = quarter_system(scale, PAGES + PAGES / 4);
    crate::sink::arm(&mut sys);
    let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(PAGES, 0.95, 1010));
    sys.add_process(w.address_space_pages(), PageSize::Base);
    let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
    let cfg = ChronoConfig {
        p_victim: 0.002,
        ..ChronoConfig::scaled(scale.scan_period, scale.scan_step)
    };
    let mut policy = ChronoPolicy::new(cfg);
    policy.collect_cit_samples = true;
    let mut counts: HashMap<u32, u64> = HashMap::new();
    let r = SimulationDriver::new(DriverConfig {
        run_for: scale.run_for * 2,
        ..Default::default()
    })
    .run_observed(&mut sys, &mut wls, &mut policy, |_p, vpn, _w, _t| {
        *counts.entry(vpn.0).or_insert(0) += 1;
    });
    let secs = r.makespan.as_secs_f64();
    crate::sink::finish_run("Chrono", &sys);
    (policy, counts, secs)
}

/// Fig 10a: collected CITs versus the access probability density across the
/// address space — CIT must track the mean access interval (negatively
/// correlated with access probability).
pub fn run_10a(scale: &Scale) -> String {
    let (policy, counts, secs) = chrono_profile(scale);
    const BINS: usize = 10;
    let bin_of = |vpn: u32| -> usize { ((vpn as u64 * BINS as u64) / PAGES as u64) as usize };

    let mut access_mass = [0u64; BINS];
    for (vpn, c) in &counts {
        access_mass[bin_of(*vpn)] += c;
    }
    let total_accesses: u64 = access_mass.iter().sum();

    let mut cit_sum = [0f64; BINS];
    let mut cit_sq = [0f64; BINS];
    let mut cit_n = [0u64; BINS];
    for (_pid, vpn, cit) in policy.cit_samples() {
        let b = bin_of(vpn.0);
        let ms = cit.as_nanos() as f64 / 1e6;
        cit_sum[b] += ms;
        cit_sq[b] += ms * ms;
        cit_n[b] += 1;
    }

    let mut t = Table::new(
        "Fig 10a: access PDF vs captured idle time across the address space",
        &[
            "Position",
            "Access prob",
            "Mean interval (ms)",
            "Mean CIT (ms)",
            "CIT stddev (ms)",
        ],
    );
    for b in 0..BINS {
        let prob = access_mass[b] as f64 / total_accesses.max(1) as f64;
        let pages_in_bin = PAGES as f64 / BINS as f64 / 2.0; // stride-2: evens only
        let per_page_rate = access_mass[b] as f64 / pages_in_bin / secs;
        let interval_ms = if per_page_rate > 0.0 {
            1000.0 / per_page_rate
        } else {
            f64::INFINITY
        };
        let (mean, std) = if cit_n[b] > 0 {
            let m = cit_sum[b] / cit_n[b] as f64;
            let v = (cit_sq[b] / cit_n[b] as f64 - m * m).max(0.0);
            (m, v.sqrt())
        } else {
            (f64::NAN, f64::NAN)
        };
        t.row(&[
            format!("{:.2}", (b as f64 + 0.5) / BINS as f64),
            format!("{:.3}", prob),
            if interval_ms.is_finite() {
                format!("{:.3}", interval_ms)
            } else {
                "inf".into()
            },
            format!("{:.3}", mean),
            format!("{:.3}", std),
        ]);
    }
    t.render()
}

/// Fig 10b: the CIT threshold trace.
pub fn run_10b(scale: &Scale) -> String {
    let (policy, _, _) = chrono_profile(scale);
    let mut t = Table::new(
        "Fig 10b: CIT threshold history",
        &["Time (s)", "Threshold (ms)"],
    );
    for (at, v) in policy.threshold_history() {
        t.row(&[format!("{:.2}", at.as_secs_f64()), format!("{:.3}", v)]);
    }
    t.render()
}

/// Fig 10c: the migration rate-limit trace.
pub fn run_10c(scale: &Scale) -> String {
    let (policy, _, _) = chrono_profile(scale);
    let mut t = Table::new(
        "Fig 10c: migration rate limit history",
        &["Time (s)", "Rate limit (MB/s)"],
    );
    for (at, v) in policy.rate_history() {
        t.row(&[format!("{:.2}", at.as_secs_f64()), format!("{:.1}", v)]);
    }
    t.render()
}

/// The Fig 10d parameter multipliers.
pub const MULTIPLIERS: [f64; 7] = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

/// Throughput of full Chrono with one parameter scaled by `mult`.
pub fn sensitivity_cell(scale: &Scale, param: &str, mult: f64) -> f64 {
    let base = ChronoConfig {
        p_victim: 0.002,
        ..ChronoConfig::scaled(scale.scan_period, scale.scan_step)
    };
    let cfg = match param {
        "scan-step" => ChronoConfig {
            scan_step_pages: ((base.scan_step_pages as f64 * mult) as u32).max(16),
            ..base
        },
        "scan-period" => ChronoConfig {
            scan_period: base.scan_period.scale_f64(mult),
            ..base
        },
        "p-victim" => ChronoConfig {
            p_victim: base.p_victim * mult,
            ..base
        },
        "delta-step" => ChronoConfig {
            delta_step: (base.delta_step * mult).min(1.0),
            ..base
        },
        _ => unreachable!("unknown sensitivity parameter {param}"),
    };
    let total = 6u32 * 2048;
    let mut sys = quarter_system(scale, total + total / 8);
    crate::sink::arm(&mut sys);
    let mut wls: Vec<Box<dyn Workload>> = Vec::new();
    for i in 0..6 {
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(2048, 0.7, 1100 + i));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        wls.push(Box::new(w));
    }
    let mut policy = ChronoPolicy::new(cfg);
    let r = SimulationDriver::new(DriverConfig {
        run_for: scale.run_for,
        ..Default::default()
    })
    .run(&mut sys, &mut wls, &mut policy);
    crate::sink::finish_run(&format!("sens-{param}-{mult}"), &sys);
    r.throughput()
}

/// Fig 10d: relative performance as each parameter scales 2^-3 .. 2^3.
pub fn run_10d(scale: &Scale) -> String {
    let mut t = Table::new(
        "Fig 10d: sensitivity analysis (relative performance)",
        &["Parameter", "1/8x", "1/4x", "1/2x", "1x", "2x", "4x", "8x"],
    );
    for param in ["scan-step", "scan-period", "p-victim", "delta-step"] {
        let vals: Vec<f64> = MULTIPLIERS
            .iter()
            .map(|m| sensitivity_cell(scale, param, *m))
            .collect();
        let base = vals[3];
        let mut cells = vec![param.to_string()];
        cells.extend(vals.iter().map(|v| format!("{:.2}", v / base)));
        t.row(&cells);
    }
    t.render()
}
