//! Fig 11: Graph500 — execution time under varying working-set size and
//! page granularity (a), and parameter sensitivity on the graph workload (b).

use chrono_core::{ChronoConfig, ChronoPolicy};
use sim_clock::Nanos;
use tiered_mem::PageSize;
use tiering_metrics::Table;
use tiering_policies::{DriverConfig, SimulationDriver};
use workloads::{Graph500Config, Graph500Workload, GraphKernel, Workload};

use crate::runner::{quarter_system, PolicyKind, Scale};

/// (label, CSR pages target, total frames): the paper's 128/192/256 GB
/// working sets on 256 GB of memory, scaled preserving the ratios (50 %,
/// 75 %, 94 % utilization with a 25 % fast share). The fast tier is sized
/// *below* the recurring working set (offset + state regions) so the
/// degree-gradient reuse — not just one-pass streaming — decides placement,
/// as in the paper's memory-pressured configurations.
pub const SIZES: [(&str, u32, u32); 3] = [
    ("128GB-equiv", 4_096, 8_192),
    ("192GB-equiv", 6_144, 8_192),
    ("256GB-equiv", 7_680, 8_192),
];

fn graph_workload(pages: u32, procs: usize) -> Vec<Box<dyn Workload>> {
    // Multi-process Graph500: independent searches over private graphs, as
    // the paper's "multi-processes Graph500 test". Edge factor 8 keeps the
    // offset/state (recurring) regions large relative to the edge
    // (streaming) region at simulator scale; roots per process are sized so
    // steady-state reuse dominates the cold first traversal.
    (0..procs)
        .map(|i| {
            let per_proc = pages / procs as u32;
            let ef = 8u32;
            let vertices = (per_proc as u64 * 512 / (3 + ef as u64)).max(64) as u32;
            let cfg = Graph500Config {
                vertices,
                edge_factor: ef,
                kernel: GraphKernel::Bfs,
                roots: 24,
                seed: 1200 + i as u64,
            };
            Box::new(Graph500Workload::new(cfg)) as Box<dyn Workload>
        })
        .collect()
}

/// Graph runs use a longer scan period than the pmbench experiments: graph
/// pages are touched a handful of times per second (vs hundreds for hot
/// pmbench pages), and the paper's 60 s period amortizes each hint fault
/// over ~68 touches; a 100 ms period at graph touch rates would make every
/// other touch a fault. 500 ms restores the amortization ratio.
fn graph_scale(scale: &Scale) -> Scale {
    Scale {
        scan_period: Nanos::from_millis(500),
        scan_step: scale.scan_step * 2,
        ..scale.clone()
    }
}

/// Execution time (simulated) of one policy/size/granularity cell.
pub fn exec_time(
    kind: PolicyKind,
    scale: &Scale,
    pages: u32,
    frames: u32,
    page_size: PageSize,
) -> Nanos {
    let scale = &graph_scale(scale);
    let mut sys = quarter_system(scale, frames);
    let mut wls = graph_workload(pages, 2);
    for w in &wls {
        sys.add_process(w.address_space_pages(), page_size);
    }
    let mut policy = kind.build(scale);
    let r = SimulationDriver::new(DriverConfig {
        run_for: Nanos::from_secs(3600), // finite workload: run to completion
        ..Default::default()
    })
    .run(&mut sys, &mut wls, &mut *policy);
    assert!(r.workloads_finished, "graph run must complete");
    r.makespan
}

/// Fig 11a: execution time across sizes and page granularities.
pub fn run_11a(scale: &Scale) -> String {
    let mut out = String::new();
    for (granularity, page_size) in [("base", PageSize::Base), ("huge", PageSize::Huge2M)] {
        let mut t = Table::new(
            format!("Fig 11a ({granularity} pages): Graph500 execution time (sim ms; speedup vs Linux-NB)"),
            &["Policy", "128GB-equiv", "192GB-equiv", "256GB-equiv"],
        );
        let mut grid: Vec<Vec<f64>> = Vec::new();
        for kind in PolicyKind::MAIN {
            grid.push(
                SIZES
                    .iter()
                    .map(|(_, pages, frames)| {
                        exec_time(kind, scale, *pages, *frames, page_size).as_secs_f64() * 1e3
                    })
                    .collect(),
            );
        }
        let base = grid[0].clone();
        for (kind, row) in PolicyKind::MAIN.iter().zip(&grid) {
            let cells: Vec<String> = std::iter::once(kind.name().to_string())
                .chain(
                    row.iter()
                        .zip(&base)
                        .map(|(v, b)| format!("{:.0} ({:.2}x)", v, b / v)),
                )
                .collect();
            t.row(&cells);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Fig 11b: sensitivity of Chrono's parameters on the graph workload.
pub fn run_11b(scale: &Scale) -> String {
    let mut t = Table::new(
        "Fig 11b: Graph500 sensitivity analysis (relative performance)",
        &["Parameter", "1/8x", "1/4x", "1/2x", "1x", "2x", "4x", "8x"],
    );
    for param in ["scan-step", "scan-period", "p-victim", "delta-step"] {
        let vals: Vec<f64> = super::fig10::MULTIPLIERS
            .iter()
            .map(|m| graph_sensitivity_cell(scale, param, *m))
            .collect();
        let base = vals[3];
        let mut cells = vec![param.to_string()];
        cells.extend(vals.iter().map(|v| format!("{:.2}", v / base)));
        t.row(&cells);
    }
    t.render()
}

fn graph_sensitivity_cell(scale: &Scale, param: &str, mult: f64) -> f64 {
    let scale = &graph_scale(scale);
    let base = ChronoConfig {
        p_victim: 0.002,
        ..ChronoConfig::scaled(scale.scan_period, scale.scan_step)
    };
    let cfg = match param {
        "scan-step" => ChronoConfig {
            scan_step_pages: ((base.scan_step_pages as f64 * mult) as u32).max(16),
            ..base
        },
        "scan-period" => ChronoConfig {
            scan_period: base.scan_period.scale_f64(mult),
            ..base
        },
        "p-victim" => ChronoConfig {
            p_victim: base.p_victim * mult,
            ..base
        },
        "delta-step" => ChronoConfig {
            delta_step: (base.delta_step * mult).min(1.0),
            ..base
        },
        _ => unreachable!("unknown sensitivity parameter {param}"),
    };
    let (_, pages, frames) = SIZES[1];
    let mut sys = quarter_system(scale, frames);
    let mut wls = graph_workload(pages, 2);
    for w in &wls {
        sys.add_process(w.address_space_pages(), PageSize::Base);
    }
    let mut policy = ChronoPolicy::new(cfg);
    let r = SimulationDriver::new(DriverConfig {
        run_for: Nanos::from_secs(3600),
        ..Default::default()
    })
    .run(&mut sys, &mut wls, &mut policy);
    // Sensitivity is reported as relative performance = inverse exec time.
    1.0 / r.makespan.as_secs_f64()
}
