//! Fig 12: in-memory key-value store throughput — Memcached (a) and
//! Redis (b) under memtier-style Gaussian SET/GET mixes.

use tiered_mem::PageSize;
use tiering_metrics::Table;
use workloads::{KvFlavor, KvStoreConfig, KvStoreWorkload, Workload};

use crate::runner::{run_policy, PolicyKind, Scale};

const PAGES: u32 = 12_288;
const FRAMES: u32 = 16_384;
const PROCS: usize = 4;

/// Throughput of one (flavor, set ratio, policy) cell.
pub fn run_cell(kind: PolicyKind, scale: &Scale, flavor: KvFlavor, set_ratio: f64) -> f64 {
    let page_size = if kind == PolicyKind::Memtis {
        PageSize::Huge2M
    } else {
        PageSize::Base
    };
    let run = run_policy(kind, scale, FRAMES, page_size, None, || {
        (0..PROCS)
            .map(|i| {
                Box::new(KvStoreWorkload::new(KvStoreConfig::sized_to_pages(
                    PAGES / PROCS as u32,
                    flavor,
                    set_ratio,
                    1300 + i as u64,
                ))) as Box<dyn Workload>
            })
            .collect()
    });
    run.throughput()
}

/// Regenerates Fig 12.
pub fn run(scale: &Scale) -> String {
    let mut out = String::new();
    for flavor in [KvFlavor::Memcached, KvFlavor::Redis] {
        let mut t = Table::new(
            format!("Fig 12 ({:?}): normalized throughput vs Linux-NB", flavor),
            &["Policy", "Set/Get=1:10", "Set/Get=1:1"],
        );
        let ratios = [1.0 / 11.0, 0.5];
        let mut grid: Vec<Vec<f64>> = Vec::new();
        for kind in PolicyKind::MAIN {
            grid.push(
                ratios
                    .iter()
                    .map(|r| run_cell(kind, scale, flavor, *r))
                    .collect(),
            );
        }
        let base = grid[0].clone();
        for (kind, row) in PolicyKind::MAIN.iter().zip(&grid) {
            let cells: Vec<String> = std::iter::once(kind.name().to_string())
                .chain(row.iter().zip(&base).map(|(v, b)| format!("{:.2}", v / b)))
                .collect();
            t.row(&cells);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}
