//! Fig 13: design-choice analysis — the Chrono ablation ladder
//! (basic → twice → thrice → full → manual) against Linux-NB.

use tiered_mem::PageSize;
use tiering_metrics::Table;
use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

use crate::runner::{run_policy, PolicyKind, Scale};

const PROCS: usize = 6;
const PAGES: u32 = 2048;

/// Throughput of one (variant, read ratio) cell.
pub fn run_cell(kind: PolicyKind, scale: &Scale, read_ratio: f64) -> f64 {
    let total = PROCS as u32 * PAGES;
    let run = run_policy(kind, scale, total + total / 8, PageSize::Base, None, || {
        (0..PROCS)
            .map(|i| {
                Box::new(PmbenchWorkload::new(PmbenchConfig::paper_skewed(
                    PAGES,
                    read_ratio,
                    1400 + i as u64,
                ))) as Box<dyn Workload>
            })
            .collect()
    });
    run.throughput()
}

/// Regenerates Fig 13.
pub fn run(scale: &Scale) -> String {
    let ratios = [
        ("95:5", 0.95),
        ("70:30", 0.70),
        ("30:70", 0.30),
        ("5:95", 0.05),
    ];
    let mut t = Table::new(
        "Fig 13: design choice analysis (normalized throughput vs Linux-NB)",
        &["Variant", "95:5", "70:30", "30:70", "5:95"],
    );
    let mut grid: Vec<Vec<f64>> = Vec::new();
    for kind in PolicyKind::ABLATION {
        grid.push(
            ratios
                .iter()
                .map(|(_, r)| run_cell(kind, scale, *r))
                .collect(),
        );
    }
    let base = grid[0].clone(); // Linux-NB
    for (kind, row) in PolicyKind::ABLATION.iter().zip(&grid) {
        let cells: Vec<String> = std::iter::once(kind.name().to_string())
            .chain(row.iter().zip(&base).map(|(v, b)| format!("{:.2}", v / b)))
            .collect();
        t.row(&cells);
    }
    t.render()
}
