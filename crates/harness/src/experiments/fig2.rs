//! Fig 2: hot-page identification quality (a) and PEBS bin stability (b).

use tiered_mem::{PageSize, TierId, Vpn};
use tiering_metrics::{ConfusionCounts, Table};
use tiering_policies::{DriverConfig, Memtis, MemtisConfig, SimulationDriver};
use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

use crate::runner::{quarter_system, PolicyKind, Scale};

const PROCS: usize = 8;
const PAGES_PER_PROC: u32 = 2048;

/// Whether a page of the Fig 2 workload lies in the centre 25 % of the
/// address space (the paper's ground-truth hot region).
fn in_hot_center(pages: u32, vpn: Vpn) -> bool {
    let lo = (pages as f64 * 0.375) as u32;
    let hi = (pages as f64 * 0.625) as u32;
    (lo..hi).contains(&vpn.0)
}

/// Fig 2a: F1-score and page promotion ratio per policy, access-weighted as
/// in Section 2.4 — actual positives are accesses to the hot region,
/// predicted positives are accesses served by DRAM.
pub fn run_2a(scale: &Scale) -> String {
    let mut t = Table::new(
        "Fig 2a: hot page identification (access-weighted)",
        &["Policy", "Precision", "Recall", "F1-Score", "PPR"],
    );
    for kind in [
        PolicyKind::AutoTiering,
        PolicyKind::MultiClock,
        PolicyKind::Tpp,
        PolicyKind::Memtis,
        PolicyKind::Chrono,
    ] {
        let total = PROCS as u32 * PAGES_PER_PROC;
        let mut sys = quarter_system(scale, total + total / 4);
        let mut wls: Vec<Box<dyn Workload>> = Vec::new();
        for i in 0..PROCS {
            let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(
                PAGES_PER_PROC,
                0.95,
                300 + i as u64,
            ));
            // Memtis ran with huge pages in the paper; this experiment is
            // explicitly base-page-oriented, so every policy (including
            // Memtis — "our benchmark is base-page oriented") sees 4 KiB
            // pages except Memtis, which keeps its recommended huge setup
            // and pays the fragmentation the paper highlights.
            let size = if kind == PolicyKind::Memtis {
                PageSize::Huge2M
            } else {
                PageSize::Base
            };
            sys.add_process(w.address_space_pages(), size);
            wls.push(Box::new(w));
        }
        let mut policy = kind.build(scale);
        // Skip the placement warmup (first ~third of accesses, shared by all
        // policies) so the scores reflect steady-state identification.
        let mut seen = 0u64;
        let warmup_accesses = 4_000_000u64;
        let mut counts = ConfusionCounts::default();
        let r = SimulationDriver::new(DriverConfig {
            run_for: scale.run_for,
            track_slow_accesses: true,
            ..Default::default()
        })
        .run_observed(&mut sys, &mut wls, &mut *policy, |_pid, vpn, _w, tier| {
            seen += 1;
            if seen > warmup_accesses {
                counts.tally(in_hot_center(PAGES_PER_PROC, vpn), tier == TierId::FAST);
            }
        });
        let ppr = sys.stats.promoted_pages as f64 / r.accessed_slow_pages.max(1) as f64;
        t.row(&[
            kind.name().to_string(),
            format!("{:.3}", counts.precision()),
            format!("{:.3}", counts.recall()),
            format!("{:.3}", counts.f1()),
            format!("{:.3}", ppr),
        ]);
    }
    t.render()
}

/// Fig 2b: distribution of PEBS counter bins under huge- vs base-page
/// granularity in Memtis — the statistical starvation of base pages.
pub fn run_2b(scale: &Scale) -> String {
    let mut t = Table::new(
        "Fig 2b: Memtis PEBS bin distribution (% of sampled pages)",
        &[
            "Granularity",
            "bin#1",
            "bin#2-3",
            "bin#4-5",
            "bin#6-7",
            "bin#8-9",
            "bin#>9",
        ],
    );
    for (label, page_size) in [
        ("Huge-Page", PageSize::Huge2M),
        ("Base-Page", PageSize::Base),
    ] {
        let total = PROCS as u32 * PAGES_PER_PROC;
        let mut sys = quarter_system(scale, total + total / 4);
        let mut wls: Vec<Box<dyn Workload>> = Vec::new();
        for i in 0..PROCS {
            let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(
                PAGES_PER_PROC,
                0.95,
                300 + i as u64,
            ));
            sys.add_process(w.address_space_pages(), page_size);
            wls.push(Box::new(w));
        }
        let mut policy = Memtis::new(MemtisConfig {
            sample_period: scale.memtis_sample_period,
            migrate_interval: scale.scan_period / 10,
            cooling_interval: scale.scan_period * 4,
            adjust_interval: scale.scan_period / 2,
            fast_fill_ratio: 0.95,
            split_enabled: false, // isolate the sampling statistics
            seed: 0x2B,
        });
        SimulationDriver::new(DriverConfig {
            run_for: scale.run_for,
            ..Default::default()
        })
        .run(&mut sys, &mut wls, &mut policy);

        let dist = policy.bin_distribution();
        let sampled: u64 = dist[1..].iter().sum();
        let pct = |range: std::ops::Range<usize>| -> String {
            let n: u64 = dist[range].iter().sum();
            format!("{:.1}%", n as f64 / sampled.max(1) as f64 * 100.0)
        };
        t.row(&[
            label.to_string(),
            pct(1..2),
            pct(2..4),
            pct(4..6),
            pct(6..8),
            pct(8..10),
            pct(10..tiering_policies::memtis::BINS),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_center_is_quarter_of_space() {
        let pages = 1000;
        let hot = (0..pages).filter(|v| in_hot_center(pages, Vpn(*v))).count();
        assert_eq!(hot, 250);
        assert!(in_hot_center(pages, Vpn(500)));
        assert!(!in_hot_center(pages, Vpn(100)));
    }
}
