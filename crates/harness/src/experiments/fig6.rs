//! Fig 6: pmbench throughput under varying concurrency, working-set size,
//! and read/write ratio, normalized to Linux-NB.
//!
//! The paper's three configurations — (50 procs, 5 GB), (32, 8 GB),
//! (32, 4 GB) on a 64 GB + 192 GB system — are scaled preserving the
//! working-set : memory ratios (~98 %, ~100 %, ~50 % utilization at a 25 %
//! fast share). Memtis runs with huge pages, its recommended setting.

use tiered_mem::PageSize;
use tiering_metrics::Table;
use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

use crate::runner::{run_policy, PolicyKind, Scale};

/// The scaled configurations: (label, processes, pages/process, total frames).
pub const CONFIGS: [(&str, usize, u32, u32); 3] = [
    ("50 procs x 5GB-equiv", 10, 2400, 30_000),
    ("32 procs x 8GB-equiv", 8, 3200, 32_000),
    ("32 procs x 4GB-equiv", 8, 1600, 26_000),
];

/// The paper's read:write ratios.
pub const RATIOS: [(&str, f64); 4] = [
    ("95:5", 0.95),
    ("70:30", 0.70),
    ("30:70", 0.30),
    ("5:95", 0.05),
];

/// Runs one cell of the figure and returns throughput (accesses/s).
pub fn run_cell(
    kind: PolicyKind,
    scale: &Scale,
    procs: usize,
    pages: u32,
    frames: u32,
    read_ratio: f64,
) -> f64 {
    let page_size = if kind == PolicyKind::Memtis {
        PageSize::Huge2M
    } else {
        PageSize::Base
    };
    let run = run_policy(kind, scale, frames, page_size, None, || {
        (0..procs)
            .map(|i| {
                Box::new(PmbenchWorkload::new(PmbenchConfig::paper_skewed(
                    pages,
                    read_ratio,
                    600 + i as u64,
                ))) as Box<dyn Workload>
            })
            .collect()
    });
    run.throughput()
}

/// Regenerates Fig 6 (all three subfigures).
pub fn run(scale: &Scale) -> String {
    let mut out = String::new();
    for (label, procs, pages, frames) in CONFIGS {
        let mut t = Table::new(
            format!("Fig 6 ({label}): normalized throughput vs Linux-NB"),
            &["Policy", "95:5", "70:30", "30:70", "5:95"],
        );
        let mut grid: Vec<Vec<f64>> = Vec::new();
        for kind in PolicyKind::MAIN {
            let row: Vec<f64> = RATIOS
                .iter()
                .map(|(_, r)| run_cell(kind, scale, procs, pages, frames, *r))
                .collect();
            grid.push(row);
        }
        let base = grid[0].clone(); // Linux-NB row
        for (kind, row) in PolicyKind::MAIN.iter().zip(&grid) {
            let cells: Vec<String> = std::iter::once(kind.name().to_string())
                .chain(row.iter().zip(&base).map(|(v, b)| format!("{:.2}", v / b)))
                .collect();
            t.row(&cells);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}
