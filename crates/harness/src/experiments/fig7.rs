//! Fig 7: pmbench access latency — the baseline load/store CDF (7a) and the
//! per-policy average/median/P99 normalized to Linux-NB across read/write
//! ratios (7b–7e).

use sim_clock::Nanos;
use tiered_mem::PageSize;
use tiering_metrics::{LatencyHistogram, Table};
use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

use crate::runner::{run_policy, PolicyKind, Scale, StandardRun};

const PROCS: usize = 10;
const PAGES: u32 = 2400;
const FRAMES: u32 = 30_000;

fn one_run(kind: PolicyKind, scale: &Scale, read_ratio: f64) -> StandardRun {
    let page_size = if kind == PolicyKind::Memtis {
        PageSize::Huge2M
    } else {
        PageSize::Base
    };
    run_policy(kind, scale, FRAMES, page_size, None, || {
        (0..PROCS)
            .map(|i| {
                Box::new(PmbenchWorkload::new(PmbenchConfig::paper_skewed(
                    PAGES,
                    read_ratio,
                    700 + i as u64,
                ))) as Box<dyn Workload>
            })
            .collect()
    })
}

fn cdf_table(reads: &LatencyHistogram, writes: &LatencyHistogram) -> String {
    let points: Vec<Nanos> = [0u64, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768]
        .map(|ns| Nanos(ns.max(1)))
        .to_vec();
    let r = reads.cdf_at(&points);
    let w = writes.cdf_at(&points);
    let mut t = Table::new(
        "Fig 7a: Linux-NB latency CDF (accumulated percentage)",
        &["Latency (ns)", "Memory Load", "Memory Store"],
    );
    for (i, p) in points.iter().enumerate() {
        t.row(&[
            format!("{}", p.as_nanos()),
            format!("{:.1}%", r[i] * 100.0),
            format!("{:.1}%", w[i] * 100.0),
        ]);
    }
    t.render()
}

/// Regenerates Fig 7.
pub fn run(scale: &Scale) -> String {
    let mut out = String::new();
    for (label, ratio) in [
        ("95:5", 0.95),
        ("70:30", 0.70),
        ("30:70", 0.30),
        ("5:95", 0.05),
    ] {
        let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
        let mut base: Option<(f64, f64, f64)> = None;
        for kind in PolicyKind::MAIN {
            let run = one_run(kind, scale, ratio);
            let avg = run.result.latency.mean().as_nanos() as f64;
            let med = run.result.latency.quantile(0.5).as_nanos() as f64;
            let p99 = run.result.latency.quantile(0.99).as_nanos() as f64;
            if kind == PolicyKind::LinuxNb {
                base = Some((avg, med, p99));
                // 7a: profile the baseline's load/store distribution once.
                if ratio == 0.70 {
                    out.push_str(&cdf_table(
                        &run.result.latency_reads,
                        &run.result.latency_writes,
                    ));
                    out.push('\n');
                }
            }
            rows.push((kind.name().to_string(), avg, med, p99));
        }
        let (ba, bm, bp) = base.expect("Linux-NB always runs first");
        let mut t = Table::new(
            format!("Fig 7 (R/W {label}): latency normalized to Linux-NB"),
            &["Policy", "Average", "Median", "P99"],
        );
        for (name, a, m, p) in rows {
            t.row(&[
                name,
                format!("{:.2}", a / ba),
                format!("{:.2}", m / bm),
                format!("{:.2}", p / bp),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}
