//! Fig 8: run-time characteristics — fast-tier memory access ratio (FMAR),
//! kernel-time share, and context-switch rate — for the 50-process pmbench
//! workload, absolute values plus normalization to Linux-NB.

use tiered_mem::PageSize;
use tiering_metrics::Table;
use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

use crate::runner::{run_policy, PolicyKind, Scale};

const PROCS: usize = 10;
const PAGES: u32 = 2400;
const FRAMES: u32 = 30_000;

/// One policy's Fig 8 metrics: (FMAR %, kernel %, ctx switches/s).
pub fn metrics_for(kind: PolicyKind, scale: &Scale) -> (f64, f64, f64) {
    let page_size = if kind == PolicyKind::Memtis {
        PageSize::Huge2M
    } else {
        PageSize::Base
    };
    let run = run_policy(kind, scale, FRAMES, page_size, None, || {
        (0..PROCS)
            .map(|i| {
                Box::new(PmbenchWorkload::new(PmbenchConfig::paper_skewed(
                    PAGES,
                    0.70,
                    800 + i as u64,
                ))) as Box<dyn Workload>
            })
            .collect()
    });
    (
        run.sys.stats.fmar() * 100.0,
        run.sys.stats.kernel_time_fraction() * 100.0,
        run.sys.stats.context_switch_rate(),
    )
}

/// Regenerates Fig 8.
pub fn run(scale: &Scale) -> String {
    let mut rows: Vec<(&'static str, f64, f64, f64)> = Vec::new();
    for kind in PolicyKind::MAIN {
        let (fmar, kern, ctx) = metrics_for(kind, scale);
        rows.push((kind.name(), fmar, kern, ctx));
    }
    let (bf, bk, bc) = {
        let b = rows[0];
        (b.1, b.2, b.3)
    };
    let mut t = Table::new(
        "Fig 8: run-time characteristics (normalized to Linux-NB in parens)",
        &[
            "Policy",
            "FMAR (%)",
            "Kernel time (%)",
            "Context switch (/s)",
        ],
    );
    for (name, fmar, kern, ctx) in rows {
        t.row(&[
            name.to_string(),
            format!("{:.0} ({:.2})", fmar, fmar / bf),
            format!("{:.1} ({:.2})", kern, kern / bk),
            format!("{:.0} ({:.2})", ctx, ctx / bc),
        ]);
    }
    t.render()
}
