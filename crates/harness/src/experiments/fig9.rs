//! Fig 9: DRAM page percentage history of 50 cgroup-confined pmbench
//! processes with graded access frequency (process *i* stalls *i* delay
//! units before every access).
//!
//! Only a frequency-aware policy separates the processes: under Chrono the
//! hottest cgroups end up nearly all-DRAM while the cold ones release their
//! DRAM share; every baseline converges to roughly the uniform ~25 %.

use sim_clock::Nanos;
use tiered_mem::PageSize;
use tiering_metrics::Table;
use tiering_policies::DriverConfig;
use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

use crate::runner::{run_policy, PolicyKind, Scale};

/// Number of cgroups (the paper uses 50).
pub const CGROUPS: usize = 50;
const PAGES: u32 = 512;
/// The cgroups whose histories the paper plots.
pub const PLOTTED: [usize; 6] = [0, 9, 19, 29, 39, 49];

/// Runs one policy and returns, per plotted cgroup, the history downsampled
/// to `points` samples (as percentages).
pub fn histories(kind: PolicyKind, scale: &Scale, points: usize) -> Vec<(usize, Vec<f64>)> {
    let total = CGROUPS as u32 * PAGES;
    // Base pages for every policy here, Memtis included: with 512-page
    // cgroup working sets, a 2 MiB unit would be the whole process — the
    // multi-tenant experiment is meaningful only at base granularity.
    let page_size = PageSize::Base;
    let _ = kind;
    let run = run_policy(
        kind,
        scale,
        total + total / 8,
        page_size,
        Some(DriverConfig {
            run_for: scale.run_for,
            sample_interval: Some(scale.run_for / 32),
            ..Default::default()
        }),
        || {
            (0..CGROUPS)
                .map(|i| {
                    Box::new(PmbenchWorkload::new(PmbenchConfig::fig9_tenant(
                        PAGES,
                        i as u32,
                        900 + i as u64,
                    ))) as Box<dyn Workload>
                })
                .collect()
        },
    );
    PLOTTED
        .iter()
        .map(|&i| {
            let series = &run.result.fast_fraction_series[i];
            let vals: Vec<f64> = series
                .downsample(points)
                .into_iter()
                .map(|(_, v)| v * 100.0)
                .collect();
            (i, vals)
        })
        .collect()
}

/// Spread between the hottest and coldest plotted cgroup's final DRAM share,
/// the quantity that separates Chrono from the baselines.
pub fn final_spread(histories: &[(usize, Vec<f64>)]) -> f64 {
    let last = |i: usize| histories[i].1.last().copied().unwrap_or(0.0);
    last(0) - last(PLOTTED.len() - 1)
}

/// Regenerates Fig 9.
pub fn run(scale: &Scale) -> String {
    // The multi-tenant run needs a longer horizon for the gradient to show.
    let scale = Scale {
        run_for: scale.run_for * 2,
        ..scale.clone()
    };
    let mut out = String::new();
    for kind in PolicyKind::MAIN {
        let h = histories(kind, &scale, 8);
        let mut t = Table::new(
            format!("Fig 9 ({}): DRAM page percentage over time", kind.name()),
            &[
                "Cgroup", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "final",
            ],
        );
        for (i, vals) in &h {
            let mut cells = vec![format!("Cgroup-{}", i)];
            for v in vals.iter().take(8) {
                cells.push(format!("{:.0}%", v));
            }
            while cells.len() < 9 {
                cells.push(String::new());
            }
            cells.push(format!("{:.0}%", vals.last().copied().unwrap_or(0.0)));
            t.row(&cells);
        }
        out.push_str(&t.render());
        out.push_str(&format!(
            "hot-cold final spread: {:.0} percentage points\n\n",
            final_spread(&h)
        ));
    }
    let _ = Nanos::ZERO;
    out
}
