//! Appendix B figures: the page-density family (B1) and the promotion
//! efficiency surface (B2), computed by numeric integration exactly as the
//! appendix does.

use chrono_core::theory;
use tiering_metrics::Table;

/// The α values Fig B1 plots.
pub const ALPHAS_B1: [f64; 6] = [0.25, 0.3, 0.4, 0.6, 0.9, 1.0];

/// Fig B1: `h(x, α)` over normalized access period `x ∈ (0, 5]`.
pub fn run_b1() -> String {
    let mut header = vec!["x".to_string()];
    header.extend(ALPHAS_B1.iter().map(|a| format!("alpha={}", a)));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new("Fig B1: page density h(x, alpha)", &header_refs);
    for i in 1..=20 {
        let x = i as f64 * 0.25;
        let mut cells = vec![format!("{:.2}", x)];
        for a in ALPHAS_B1 {
            cells.push(format!("{:.4}", theory::h_density(x, a)));
        }
        t.row(&cells);
    }
    t.render()
}

/// Fig B2: `E(n, α)` for scan rounds n = 2..7 over the α range.
pub fn run_b2() -> String {
    let alphas: Vec<f64> = (0..14).map(|i| 0.35 + i as f64 * 0.05).collect();
    let mut t = Table::new(
        "Fig B2: promotion efficiency E(n, alpha)",
        &["alpha", "n=2", "n=3", "n=4", "n=5", "n=6", "n=7", "best n"],
    );
    for a in &alphas {
        let mut cells = vec![format!("{:.2}", a)];
        for n in 2..=7u32 {
            cells.push(format!("{:.4}", theory::efficiency(n, *a)));
        }
        cells.push(format!("{}", theory::best_round_count(*a, 7)));
        t.row(&cells);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b2_declares_two_rounds_best() {
        let s = run_b2();
        // Every "best n" row entry ends with 2 in the realistic range.
        for line in s.lines().skip(3) {
            if let Some(best) = line.split_whitespace().last() {
                assert_eq!(best, "2", "line: {}", line);
            }
        }
    }

    #[test]
    fn b1_density_table_renders() {
        let s = run_b1();
        assert!(s.contains("alpha=0.25"));
        assert!(s.lines().count() > 20);
    }
}
