//! One module per paper artifact. Every `run(scale)` returns the rendered
//! plain-text tables so both the CLI and the integration tests can consume
//! them.

pub mod ext;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig2;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod figb;
pub mod tables;

use crate::runner::Scale;

/// Experiment ids accepted by the CLI, with their descriptions.
pub const EXPERIMENTS: &[(&str, &str)] = &[
    ("table1", "Table 1: solution characteristics"),
    ("table2", "Table 2: Chrono parameter defaults"),
    ("fig1", "Fig 1: per-page access frequency by memory region"),
    ("fig2a", "Fig 2a: hot-page identification F1 / PPR"),
    ("fig2b", "Fig 2b: PEBS bin distribution, huge vs base pages"),
    (
        "fig6",
        "Fig 6: pmbench throughput across R/W ratios and configs",
    ),
    (
        "fig7",
        "Fig 7: pmbench latency (CDF + normalized statistics)",
    ),
    (
        "fig8",
        "Fig 8: run-time characteristics (FMAR, kernel time, ctx)",
    ),
    ("fig9", "Fig 9: per-cgroup DRAM page percentage histories"),
    (
        "fig10a",
        "Fig 10a: CIT vs access probability across the space",
    ),
    ("fig10b", "Fig 10b: CIT threshold history"),
    ("fig10c", "Fig 10c: migration rate limit history"),
    ("fig10d", "Fig 10d: pmbench parameter sensitivity"),
    ("fig11a", "Fig 11a: Graph500 execution time"),
    ("fig11b", "Fig 11b: Graph500 parameter sensitivity"),
    ("fig12", "Fig 12: Memcached / Redis throughput"),
    ("fig13", "Fig 13: design-choice analysis (Chrono variants)"),
    ("figb1", "Fig B1: page-density family h(x, α)"),
    ("figb2", "Fig B2: promotion efficiency E(n, α)"),
    (
        "ext-baselines",
        "Extension: Telescope + FlexMem vs the plotted field",
    ),
    (
        "ext-adapt",
        "Extension: adaptation to a phase-shifting hot region",
    ),
    (
        "ext-limits",
        "Extension: cgroup memory limits with slow-tier reclaim",
    ),
];

/// Runs one experiment by id; `None` for unknown ids.
pub fn run_by_id(id: &str, scale: &Scale) -> Option<String> {
    Some(match id {
        "table1" => tables::table1(),
        "table2" => tables::table2(),
        "fig1" => fig1::run(scale),
        "fig2a" => fig2::run_2a(scale),
        "fig2b" => fig2::run_2b(scale),
        "fig6" => fig6::run(scale),
        "fig7" => fig7::run(scale),
        "fig8" => fig8::run(scale),
        "fig9" => fig9::run(scale),
        "fig10a" => fig10::run_10a(scale),
        "fig10b" => fig10::run_10b(scale),
        "fig10c" => fig10::run_10c(scale),
        "fig10d" => fig10::run_10d(scale),
        "fig11a" => fig11::run_11a(scale),
        "fig11b" => fig11::run_11b(scale),
        "fig12" => fig12::run(scale),
        "fig13" => fig13::run(scale),
        "figb1" => figb::run_b1(),
        "figb2" => figb::run_b2(),
        "ext-baselines" => ext::run_baselines(scale),
        "ext-adapt" => ext::run_adapt(scale),
        "ext-limits" => ext::run_limits(scale),
        _ => return None,
    })
}
