//! Tables 1 and 2.

use chrono_core::ChronoConfig;
use tiering_metrics::Table;

/// Table 1: characteristics of the tiering solutions (static, from the
/// paper's survey; the "effective frequency scale" column is the design
/// property the rest of the evaluation measures).
pub fn table1() -> String {
    let mut t = Table::new(
        "Table 1: characteristics of recent tiered-memory systems",
        &[
            "Solution",
            "Type",
            "Migration criterion",
            "Effective frequency scale",
            "Default page size",
        ],
    );
    for row in [
        [
            "Auto-Tiering",
            "System-wide",
            "Page-fault counters",
            "0~1 access/min",
            "Base page",
        ],
        [
            "Multi-Clock",
            "System-wide",
            "Multi-level LRU lists",
            "0~1 access/min",
            "Base page",
        ],
        [
            "Telescope",
            "System-wide",
            "Tree-structured PTE bits",
            "0~5 access/sec",
            "Base page",
        ],
        [
            "TPP",
            "System-wide",
            "Page-fault + LRU lists",
            "0~2 access/min",
            "Base page",
        ],
        [
            "Memtis",
            "Process level",
            "PEBS stats + ratio config",
            "0~10 access/sec",
            "Huge page",
        ],
        [
            "FlexMem",
            "Process level",
            "PEBS stats + page fault",
            "0~10 access/sec",
            "Huge page",
        ],
        [
            "Chrono [Ours]",
            "System-wide",
            "Dynamic CIT stats",
            "0~1000 access/sec",
            "Base page",
        ],
    ] {
        t.row(&row.map(String::from));
    }
    t.render()
}

/// Table 2: Chrono's parameter defaults, read from the live configuration so
/// the table can never drift from the code.
pub fn table2() -> String {
    let c = ChronoConfig::default();
    let mut t = Table::new(
        "Table 2: Chrono parameter defaults",
        &["Name", "Default", "Description"],
    );
    t.row(&[
        "Scan step".into(),
        format!("{} pages (256 MB)", c.scan_step_pages),
        "Marked page set size of a Ticking-scan event".into(),
    ]);
    t.row(&[
        "Scan period".into(),
        format!("{}", c.scan_period),
        "Period for Ticking-scan to loop over address space".into(),
    ]);
    t.row(&[
        "P-victim".into(),
        format!("{:.4}%", c.p_victim * 100.0),
        "Ratio of pages sampled in the DCSC scheme".into(),
    ]);
    t.row(&[
        "B-bucket".into(),
        format!("{}", c.buckets),
        "Number of different CIT-levels in DCSC stats".into(),
    ]);
    t.row(&[
        "delta-step".into(),
        format!("{}", c.delta_step),
        "Adaption step for CIT threshold adjustment".into(),
    ]);
    t.row(&[
        "CIT threshold".into(),
        format!("{} (auto-tuned)", c.initial_cit_threshold),
        "Classification boundary between hot and cold".into(),
    ]);
    t.row(&[
        "Rate limit".into(),
        format!("{} MBps (auto-tuned)", c.initial_rate_limit / (1024 * 1024)),
        "Promotion queue drain rate".into(),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_solutions() {
        let s = table1();
        for name in [
            "Auto-Tiering",
            "Multi-Clock",
            "Telescope",
            "TPP",
            "Memtis",
            "FlexMem",
            "Chrono",
        ] {
            assert!(s.contains(name), "missing {}", name);
        }
    }

    #[test]
    fn table2_matches_paper_defaults() {
        let s = table2();
        assert!(s.contains("65536 pages (256 MB)"));
        assert!(s.contains("60.000s"));
        assert!(s.contains("0.0030%"));
        assert!(s.contains("28"));
        assert!(s.contains("0.5"));
        assert!(s.contains("100 MBps"));
    }
}
