#![warn(missing_docs)]
//! Experiment harness regenerating every table and figure of the Chrono
//! paper's evaluation (Section 5) on the simulation substrate.
//!
//! Each `experiments::figN` module builds the workload/system configuration
//! of the corresponding paper artifact (scaled per DESIGN.md §1), runs every
//! policy, and renders the same rows/series the paper reports as plain-text
//! tables. The `harness` binary dispatches by experiment id:
//!
//! ```text
//! harness fig6            # regenerate Figure 6 (pmbench throughput)
//! harness all             # everything
//! harness --scale 4 fig9  # 4× longer simulated runs
//! ```

pub mod analysis;
pub mod bench;
pub mod experiments;
pub mod runner;
pub mod sink;
pub mod tenants;
pub mod verify;

pub use runner::{FaultPlanKind, PolicyKind, Scale, StandardRun, Topology};
