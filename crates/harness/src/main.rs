//! CLI: regenerate the paper's tables and figures.
//!
//! ```text
//! harness [--scale N] [--json DIR] [--trace DIR]
//!         [--inflight-slots N] [--migration-backlog-cap MS]
//!         [--fault-plan canonical|storm|inert|canonical3|storm3] [--fault-seed X]
//!         [--topology dram-pmem|dram-cxl|three-tier]
//!         <experiment-id>...
//! harness list
//! harness all
//! harness verify [--bless]
//! harness fuzz [--seeds N] [--ops N] [--seed-base X] [--replay SEED]
//!              [--self-test] [--migration-stress] [--fault-storm]
//!              [--tenant-storm] [--three-tier] [--tier-chaos]
//! harness run --tenants N [--threads T] [--policy NAME] [--millis MS]
//!             [--seed X] [--slots N] [--topology NAME]
//! harness lint [--all] [--rules] [--json]
//! harness model-check [--bless]
//! harness race-check [--bless]
//! harness bench [--quick] [--check] [--suite fig10|substrate]
//! ```
//!
//! `--inflight-slots` / `--migration-backlog-cap` bound the two-phase
//! migration engine (transactions in flight / queued copy milliseconds per
//! destination channel) for every experiment run; past either bound
//! policies see `MigrateError::Backpressure`.
//!
//! `--topology` picks the tier chain every experiment system is built on:
//! `dram-pmem` (default) is the paper's two-tier testbed, `dram-cxl` swaps
//! the Optane bottom tier for symmetric CXL memory, and `three-tier` runs
//! the DRAM+CXL+PMem chain with cascaded per-edge migration. The Chrono
//! variants come back as a [`harness::Topology`]-aware cascade and
//! TPP / Multi-Clock as their hop-wise generalizations on chains longer
//! than two tiers.
//!
//! `--fault-plan` attaches a deterministic fault-injection plan to every
//! experiment run: `canonical` is the paper's resilience scenario (1%
//! transient copy faults, 0.01% poison, one mid-run 25% fast-tier shrink),
//! `storm` is the high-rate fuzzing mix, `inert` wires the machinery up with
//! zero probabilities, and `canonical3`/`storm3` add the tier failure-domain
//! arc (mid-run degrade → offline with live evacuation → rejoin) on the
//! three-tier chain — both are rejected unless `--topology three-tier` is
//! selected, since they schedule events on tiers a two-tier chain does not
//! have. `--fault-seed` seeds the fault dice independently of
//! the workload (default 0xFA17); same plan + same seed replays the exact
//! same fault sequence.
//!
//! `--json DIR` writes per-scan-period counter rows (JSON + CSV) for every
//! run; `--trace DIR` additionally dumps the bounded discrete-event ring as
//! JSON Lines. Both are off by default and cost nothing when unset.

use std::path::PathBuf;
use std::time::Instant;

use harness::experiments::{run_by_id, EXPERIMENTS};
use harness::{sink, Scale};

/// Extracts `--flag <dir>` from `args`, creating the directory.
fn take_dir_flag(args: &mut Vec<String>, flag: &str) -> Option<PathBuf> {
    let pos = args.iter().position(|a| a == flag)?;
    let Some(dir) = args.get(pos + 1).map(PathBuf::from) else {
        eprintln!("{flag} requires a directory argument");
        std::process::exit(2);
    };
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {}", dir.display(), e);
        std::process::exit(2);
    }
    args.drain(pos..=pos + 1);
    Some(dir)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default_scale();

    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        let n: u64 = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--scale requires a positive integer");
                std::process::exit(2);
            });
        scale = scale.with_run_multiplier(n.max(1));
        args.drain(pos..=pos + 1);
    }

    // Migration-engine admission overrides apply to every experiment run.
    let mut migration = tiered_mem::MigrationSpec::default();
    let mut migration_set = false;
    if let Some(pos) = args.iter().position(|a| a == "--inflight-slots") {
        let n: usize = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                eprintln!("--inflight-slots requires a positive integer");
                std::process::exit(2);
            });
        migration.inflight_slots = n;
        migration_set = true;
        args.drain(pos..=pos + 1);
    }
    if let Some(pos) = args.iter().position(|a| a == "--migration-backlog-cap") {
        let ms: u64 = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--migration-backlog-cap requires milliseconds (integer)");
                std::process::exit(2);
            });
        migration.backlog_cap = sim_clock::Nanos::from_millis(ms);
        migration_set = true;
        args.drain(pos..=pos + 1);
    }
    if migration_set {
        scale.migration = Some(migration);
    }

    // Deterministic fault injection: attach a named plan to every run.
    if let Some(pos) = args.iter().position(|a| a == "--fault-plan") {
        let kind = args
            .get(pos + 1)
            .and_then(|v| harness::FaultPlanKind::parse(v))
            .unwrap_or_else(|| {
                eprintln!(
                    "--fault-plan requires one of: canonical, storm, inert, canonical3, storm3"
                );
                std::process::exit(2);
            });
        scale.fault = Some(kind);
        args.drain(pos..=pos + 1);
    }
    if let Some(pos) = args.iter().position(|a| a == "--fault-seed") {
        let seed: u64 = args
            .get(pos + 1)
            .and_then(|v| match v.strip_prefix("0x") {
                Some(hex) => u64::from_str_radix(hex, 16).ok(),
                None => v.parse().ok(),
            })
            .unwrap_or_else(|| {
                eprintln!("--fault-seed requires an integer");
                std::process::exit(2);
            });
        scale.fault_seed = seed;
        args.drain(pos..=pos + 1);
    }

    // The analysis subcommands dispatch before the sink flags are parsed:
    // `lint --json` means machine-readable findings, not a sink directory.
    if args.first().map(String::as_str) == Some("lint") {
        std::process::exit(harness::analysis::run_lint(args.split_off(1)));
    }
    if args.first().map(String::as_str) == Some("model-check") {
        std::process::exit(harness::analysis::run_model_check(args.split_off(1)));
    }
    if args.first().map(String::as_str) == Some("race-check") {
        std::process::exit(harness::analysis::run_race_check(args.split_off(1)));
    }

    let json_dir = take_dir_flag(&mut args, "--json");
    let trace_dir = take_dir_flag(&mut args, "--trace");
    sink::configure(json_dir, trace_dir);

    // Verification subcommands dispatch before experiment-id expansion so
    // their flags never collide with figure families.
    if args.first().map(String::as_str) == Some("verify") {
        std::process::exit(harness::verify::run_verify(args.split_off(1)));
    }
    if args.first().map(String::as_str) == Some("fuzz") {
        std::process::exit(harness::verify::run_fuzz(args.split_off(1)));
    }
    if args.first().map(String::as_str) == Some("bench") {
        std::process::exit(harness::bench::run_bench(args.split_off(1)));
    }
    if args.first().map(String::as_str) == Some("run") {
        std::process::exit(harness::tenants::run_tenants(args.split_off(1)));
    }

    // Parsed after the subcommand dispatches: `run` and `fuzz` own their own
    // topology spellings; this one applies to every experiment run.
    if let Some(pos) = args.iter().position(|a| a == "--topology") {
        let topology = args
            .get(pos + 1)
            .and_then(|v| harness::Topology::parse(v))
            .unwrap_or_else(|| {
                eprintln!("--topology requires one of: dram-pmem, dram-cxl, three-tier");
                std::process::exit(2);
            });
        scale.topology = topology;
        args.drain(pos..=pos + 1);
    }

    // A fault plan may only reference tiers the chosen topology has:
    // `canonical3`/`storm3` schedule mid- and bottom-tier events, so a
    // two-tier chain must reject them up front rather than silently
    // dropping the events.
    if let Some(kind) = scale.fault {
        if let Err(e) = kind.validate_for_topology(scale.topology.num_tiers()) {
            eprintln!(
                "--fault-plan {} does not fit --topology {}: {e}",
                kind.name(),
                scale.topology.name()
            );
            std::process::exit(2);
        }
    }

    if args.is_empty() || args[0] == "list" {
        println!("Available experiments:");
        for (id, desc) in EXPERIMENTS {
            println!("  {:8} {}", id, desc);
        }
        println!("  {:8} run every experiment", "all");
        println!(
            "  {:8} determinism + metamorphic + golden checks [--bless]",
            "verify"
        );
        println!(
            "  {:8} invariant fuzzing [--seeds N] [--ops N] [--replay SEED] [--migration-stress] [--fault-storm] [--tenant-storm] [--three-tier] [--tier-chaos]",
            "fuzz"
        );
        println!(
            "  {:8} multi-tenant fleet --tenants N [--threads T] [--policy NAME] [--millis MS] [--topology NAME]",
            "run"
        );
        println!(
            "  {:8} chrono-lint static analysis [--all] [--rules] [--json]",
            "lint"
        );
        println!(
            "  {:8} exhaustive PageFlags lifecycle check [--bless]",
            "model-check"
        );
        println!(
            "  {:8} chrono-race barrier discipline: static + interleaving model + self-test [--bless]",
            "race-check"
        );
        println!(
            "  {:8} perf suites -> BENCH_*.json [--quick] [--check] [--suite fig10|substrate]",
            "bench"
        );
        return;
    }

    // A family name expands to its members: `fig10` runs fig10a..fig10d,
    // `fig2` runs fig2a+fig2b. Exact ids always win over prefix expansion.
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().map(|(id, _)| *id).collect()
    } else {
        let mut ids = Vec::new();
        for arg in &args {
            if EXPERIMENTS.iter().any(|(id, _)| id == arg) {
                ids.push(arg.as_str());
                continue;
            }
            let family: Vec<&str> = EXPERIMENTS
                .iter()
                .map(|(id, _)| *id)
                .filter(|id| id.starts_with(arg.as_str()))
                .collect();
            if family.is_empty() {
                ids.push(arg.as_str()); // falls through to the unknown-id error
            } else {
                ids.extend(family);
            }
        }
        ids
    };

    for id in ids {
        let start = Instant::now();
        sink::set_experiment(id);
        match run_by_id(id, &scale) {
            Some(output) => {
                println!("{}", output);
                eprintln!("[{} finished in {:.1?}]", id, start.elapsed());
            }
            None => {
                eprintln!("unknown experiment '{}'; try `harness list`", id);
                std::process::exit(2);
            }
        }
    }
}
