//! CLI: regenerate the paper's tables and figures.
//!
//! ```text
//! harness [--scale N] <experiment-id>...
//! harness list
//! harness all
//! ```

use std::time::Instant;

use harness::experiments::{run_by_id, EXPERIMENTS};
use harness::Scale;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default_scale();

    if let Some(pos) = args.iter().position(|a| a == "--scale") {
        let n: u64 = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                eprintln!("--scale requires a positive integer");
                std::process::exit(2);
            });
        scale = scale.with_run_multiplier(n.max(1));
        args.drain(pos..=pos + 1);
    }

    if args.is_empty() || args[0] == "list" {
        println!("Available experiments:");
        for (id, desc) in EXPERIMENTS {
            println!("  {:8} {}", id, desc);
        }
        println!("  {:8} run every experiment", "all");
        return;
    }

    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().map(|(id, _)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };

    for id in ids {
        let start = Instant::now();
        match run_by_id(id, &scale) {
            Some(output) => {
                println!("{}", output);
                eprintln!("[{} finished in {:.1?}]", id, start.elapsed());
            }
            None => {
                eprintln!("unknown experiment '{}'; try `harness list`", id);
                std::process::exit(2);
            }
        }
    }
}
