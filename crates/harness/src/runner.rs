//! Shared experiment plumbing: simulation scale, policy factory, run helper.

use chrono_core::{CascadeChrono, ChronoConfig, ChronoPolicy};
use sim_clock::Nanos;
use tiered_mem::{FaultPlan, MigrationSpec, PageSize, SystemConfig, TierId, TieredSystem};
use tiering_policies::{
    autotiering::AutoTieringConfig, linux_nb::LinuxNbConfig, multiclock::MultiClockConfig,
    tpp::TppConfig, AutoTiering, DriverConfig, LinuxNumaBalancing, Memtis, MemtisConfig,
    MultiClock, NullPolicy, RunResult, SimulationDriver, TieringPolicy, Tpp,
};
use workloads::Workload;

/// Simulation time scale shared by all experiments.
///
/// The paper's wall-clock parameters (60 s scan period, 1500 s runs) are
/// compressed so a figure regenerates in seconds-to-minutes of host time
/// while preserving the ratios that drive behaviour: accesses per page per
/// scan period, scan periods per run, and promotion-rate fractions of the
/// fast tier (DESIGN.md §1).
#[derive(Debug, Clone)]
pub struct Scale {
    /// Ticking-scan / NUMA-scan full-pass period.
    pub scan_period: Nanos,
    /// Pages per scan chunk.
    pub scan_step: u32,
    /// Simulated run length.
    pub run_for: Nanos,
    /// Mean accesses per PEBS sample for Memtis (models the hardware cap
    /// relative to the compressed access rate).
    pub memtis_sample_period: u64,
    /// Migration-engine admission bounds override (the CLI
    /// `--inflight-slots` / `--migration-backlog-cap` knobs); `None` keeps
    /// the library defaults.
    pub migration: Option<MigrationSpec>,
    /// Fault-plan selection (the CLI `--fault-plan` knob); `None` runs
    /// fault-free. Materialized per run because the canonical plan schedules
    /// its capacity shrink relative to the run length.
    pub fault: Option<FaultPlanKind>,
    /// Seed for the fault plan's private RNG (the CLI `--fault-seed` knob).
    pub fault_seed: u64,
    /// Tier-chain shape (the CLI `--topology` knob). The default,
    /// [`Topology::DramPmem`], reproduces every pre-existing run bit for bit.
    pub topology: Topology,
}

/// The named tier-chain shapes the CLI can run experiments on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// The paper's testbed: DRAM on top, Optane PMem below (25 % fast).
    DramPmem,
    /// DRAM over CXL memory — same shape, cheaper, symmetric bottom tier.
    DramCxl,
    /// Hot/warm/cold chain: DRAM, CXL, PMem (1/8 : 1/4 : 5/8 of the total).
    ThreeTier,
}

impl Topology {
    /// Parses the CLI spelling.
    pub fn parse(name: &str) -> Option<Topology> {
        match name {
            "dram-pmem" => Some(Topology::DramPmem),
            "dram-cxl" => Some(Topology::DramCxl),
            "three-tier" => Some(Topology::ThreeTier),
            _ => None,
        }
    }

    /// Stable display name (the CLI spelling).
    pub fn name(&self) -> &'static str {
        match self {
            Topology::DramPmem => "dram-pmem",
            Topology::DramCxl => "dram-cxl",
            Topology::ThreeTier => "three-tier",
        }
    }

    /// Managed tiers in this shape's chain.
    pub fn num_tiers(&self) -> usize {
        match self {
            Topology::DramPmem | Topology::DramCxl => 2,
            Topology::ThreeTier => 3,
        }
    }

    /// Builds the system configuration over `total_frames` of capacity. The
    /// two-tier shapes keep the paper's 25 % fast share; the three-tier
    /// chain splits 1/8 DRAM : 1/4 CXL : 5/8 PMem.
    pub fn system_config(&self, total_frames: u32) -> SystemConfig {
        match self {
            Topology::DramPmem => SystemConfig::quarter_fast(total_frames),
            Topology::DramCxl => {
                let fast = total_frames / 4;
                SystemConfig::dram_cxl(fast, total_frames - fast)
            }
            Topology::ThreeTier => {
                let fast = total_frames / 8;
                let mid = total_frames / 4;
                SystemConfig::three_tier(fast, mid, total_frames - fast - mid)
            }
        }
    }

    /// Builds the system configuration over an exact per-tier frame split —
    /// the form a tenant's slice of a [`tiered_mem::PartitionPlan`] comes
    /// in. Unlike [`Self::system_config`] no share heuristic is applied; the
    /// partition already decided the split.
    pub fn partition_config(&self, part: &tiered_mem::FramePartition) -> SystemConfig {
        match self {
            Topology::DramPmem => {
                SystemConfig::dram_pmem(part.frames(TierId(0)), part.frames(TierId(1)))
            }
            Topology::DramCxl => {
                SystemConfig::dram_cxl(part.frames(TierId(0)), part.frames(TierId(1)))
            }
            Topology::ThreeTier => SystemConfig::three_tier(
                part.frames(TierId(0)),
                part.frames(TierId(1)),
                part.frames(TierId(2)),
            ),
        }
    }
}

/// The named fault plans the CLI can attach to every experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlanKind {
    /// The acceptance-bar chaos plan: 1 % transient copy failure, 0.01 %
    /// poison, one 25 % fast-tier shrink at the middle of the run.
    Canonical,
    /// High-rate storm (fuzz-grade probabilities, no capacity events).
    Storm,
    /// Plan attached but inert: no probabilistic faults, no events. Useful
    /// to confirm the fault plumbing itself does not perturb digests.
    Inert,
    /// The three-tier failure arc: mid-run degrade, offline (live
    /// evacuation + splice), and rejoin of the CXL mid tier, plus the
    /// canonical probabilistic faults. Requires `--topology three-tier`.
    Canonical3,
    /// High-rate storm plus rapid offline/online flapping across the
    /// lower tiers of a three-tier chain. Requires `--topology three-tier`.
    Storm3,
}

impl FaultPlanKind {
    /// Parses the CLI spelling.
    pub fn parse(name: &str) -> Option<FaultPlanKind> {
        match name {
            "canonical" => Some(FaultPlanKind::Canonical),
            "storm" => Some(FaultPlanKind::Storm),
            "inert" => Some(FaultPlanKind::Inert),
            "canonical3" => Some(FaultPlanKind::Canonical3),
            "storm3" => Some(FaultPlanKind::Storm3),
            _ => None,
        }
    }

    /// Stable display name (the CLI spelling).
    pub fn name(&self) -> &'static str {
        match self {
            FaultPlanKind::Canonical => "canonical",
            FaultPlanKind::Storm => "storm",
            FaultPlanKind::Inert => "inert",
            FaultPlanKind::Canonical3 => "canonical3",
            FaultPlanKind::Storm3 => "storm3",
        }
    }

    /// Materializes the plan for a run of length `run_for`.
    pub fn materialize(&self, seed: u64, run_for: Nanos) -> FaultPlan {
        match self {
            FaultPlanKind::Canonical => FaultPlan::canonical(seed, run_for),
            FaultPlanKind::Storm => FaultPlan::storm(seed),
            FaultPlanKind::Inert => FaultPlan::inert(seed),
            FaultPlanKind::Canonical3 => FaultPlan::canonical3(seed, run_for),
            FaultPlanKind::Storm3 => FaultPlan::storm3(seed, run_for),
        }
    }

    /// Checks the plan against a chain of `num_tiers` managed tiers: every
    /// tier event must name a tier the topology actually has (and never
    /// the top tier). `Err` carries the offending event's description.
    pub fn validate_for_topology(&self, num_tiers: usize) -> Result<(), String> {
        // The events are deterministic in the plan kind alone, so a probe
        // materialization with fixed seed/length sees every scheduled tier.
        self.materialize(0, Nanos::from_millis(1000))
            .validate_for(num_tiers)
    }
}

impl Scale {
    /// The default compressed scale: 100 ms scan periods, 1.5 s runs
    /// (15 scan periods, matching the paper's 1500 s / 60 s ≈ 25 in order of
    /// magnitude).
    pub fn default_scale() -> Scale {
        Scale {
            scan_period: Nanos::from_millis(100),
            scan_step: 1024,
            run_for: Nanos::from_millis(1500),
            memtis_sample_period: 8192,
            migration: None,
            fault: None,
            fault_seed: 0xFA17,
            topology: Topology::DramPmem,
        }
    }

    /// Multiplies the run length (the CLI `--scale` knob).
    pub fn with_run_multiplier(mut self, k: u64) -> Scale {
        self.run_for = self.run_for * k;
        self
    }
}

/// The policies of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// First-touch placement, no migration (control).
    Static,
    /// Linux NUMA balancing in tiering mode.
    LinuxNb,
    /// Auto-Tiering (OPM-BD).
    AutoTiering,
    /// Multi-Clock.
    MultiClock,
    /// TPP.
    Tpp,
    /// Memtis (PEBS + histogram). Page size is chosen by the experiment.
    Memtis,
    /// Chrono, full configuration (2-round filtering + DCSC).
    Chrono,
    /// Chrono ablations (Fig 13).
    ChronoBasic,
    /// Two-round filtering, semi-auto tuning.
    ChronoTwice,
    /// Three-round filtering, semi-auto tuning.
    ChronoThrice,
    /// Semi-auto tuning with an expert-provided rate limit.
    ChronoManual,
}

impl PolicyKind {
    /// The six policies of the main evaluation figures.
    pub const MAIN: [PolicyKind; 6] = [
        PolicyKind::LinuxNb,
        PolicyKind::AutoTiering,
        PolicyKind::MultiClock,
        PolicyKind::Tpp,
        PolicyKind::Memtis,
        PolicyKind::Chrono,
    ];

    /// The Fig 13 design-choice variants.
    pub const ABLATION: [PolicyKind; 6] = [
        PolicyKind::LinuxNb,
        PolicyKind::ChronoBasic,
        PolicyKind::ChronoTwice,
        PolicyKind::ChronoThrice,
        PolicyKind::Chrono,
        PolicyKind::ChronoManual,
    ];

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Static => "Static",
            PolicyKind::LinuxNb => "Linux-NB",
            PolicyKind::AutoTiering => "AutoTiering",
            PolicyKind::MultiClock => "MultiClock",
            PolicyKind::Tpp => "TPP",
            PolicyKind::Memtis => "Memtis",
            PolicyKind::Chrono => "Chrono",
            PolicyKind::ChronoBasic => "Chrono-basic",
            PolicyKind::ChronoTwice => "Chrono-twice",
            PolicyKind::ChronoThrice => "Chrono-thrice",
            PolicyKind::ChronoManual => "Chrono-manual",
        }
    }

    /// Builds the policy at the given scale and topology. On a chain longer
    /// than two tiers the Chrono variants come back as a [`CascadeChrono`]
    /// (one pair per edge) and TPP / Multi-Clock as their hop-wise N-tier
    /// generalizations; the remaining baselines have no chain-aware variant
    /// and run their classic two-tier logic against the top edge.
    pub fn build(&self, scale: &Scale) -> Box<dyn TieringPolicy> {
        let sp = scale.scan_period;
        let step = scale.scan_step;
        let tiers = scale.topology.num_tiers();
        // Chrono variants: a standalone pair on two tiers (the bit-pinned
        // classic shape), a cascade on longer chains.
        let chrono = |cfg: ChronoConfig| -> Box<dyn TieringPolicy> {
            if tiers == 2 {
                Box::new(ChronoPolicy::new(cfg))
            } else {
                Box::new(CascadeChrono::new(cfg, tiers))
            }
        };
        match self {
            PolicyKind::Static => Box::new(NullPolicy),
            PolicyKind::LinuxNb => Box::new(LinuxNumaBalancing::new(LinuxNbConfig {
                scan_period: sp,
                scan_step_pages: step,
                promote_tier_frac_per_period: 0.23,
            })),
            PolicyKind::AutoTiering => Box::new(AutoTiering::new(AutoTieringConfig {
                scan_period: sp,
                scan_step_pages: step,
                hot_lap_bits: 2,
                demote_interval: sp / 4,
            })),
            PolicyKind::MultiClock => Box::new(MultiClock::for_tiers(
                MultiClockConfig {
                    sweep_period: sp,
                    sweep_step_pages: step,
                    levels: 4,
                    promote_level: 3,
                    demote_interval: sp / 4,
                },
                tiers,
            )),
            PolicyKind::Tpp => Box::new(Tpp::for_tiers(
                TppConfig {
                    scan_period: sp,
                    scan_step_pages: step,
                    demote_interval: sp / 4,
                },
                tiers,
            )),
            PolicyKind::Memtis => Box::new(Memtis::new(MemtisConfig {
                sample_period: scale.memtis_sample_period,
                migrate_interval: sp / 10,
                cooling_interval: sp * 4,
                adjust_interval: sp / 2,
                fast_fill_ratio: 0.95,
                split_enabled: true,
                seed: 0x4D454D,
            })),
            PolicyKind::Chrono => chrono(self.chrono_config(scale)),
            PolicyKind::ChronoBasic => chrono(self.chrono_config(scale).variant_basic()),
            PolicyKind::ChronoTwice => chrono(self.chrono_config(scale).variant_twice()),
            PolicyKind::ChronoThrice => chrono(self.chrono_config(scale).variant_thrice()),
            PolicyKind::ChronoManual => chrono(
                // The paper configures Chrono-manual with the per-minute
                // averages of the adaptive tuning results (~120 MB/s stable).
                self.chrono_config(scale).variant_manual(120 * 1024 * 1024),
            ),
        }
    }

    /// The scaled Chrono configuration used by all Chrono variants.
    pub fn chrono_config(&self, scale: &Scale) -> ChronoConfig {
        ChronoConfig {
            // Denser probing than the paper's 0.003 % because the scaled
            // systems have ~10^4–10^5 pages rather than 6×10^7; the probe
            // *count per DCSC round* (a few thousand on the testbed) is the
            // quantity preserved.
            p_victim: 0.002,
            ..ChronoConfig::scaled(scale.scan_period, scale.scan_step)
        }
    }
}

/// A standard experiment run: one system, N processes, one policy.
pub struct StandardRun {
    /// The system after the run (placement, stats, watermarks).
    pub sys: TieredSystem,
    /// The driver-side results (throughput, latency, series).
    pub result: RunResult,
    /// Name of the policy that ran.
    pub policy_name: &'static str,
}

impl StandardRun {
    /// Throughput in accesses per simulated second.
    pub fn throughput(&self) -> f64 {
        self.result.throughput()
    }
}

/// Builds a system sized `total_frames` on the scale's topology. On the
/// default `dram-pmem` chain this is the paper's 25 % fast share.
pub fn quarter_system(scale: &Scale, total_frames: u32) -> TieredSystem {
    TieredSystem::new(scale.topology.system_config(total_frames))
}

/// Runs `make_workloads()` under `kind` at `scale` and returns the outcome.
/// The workload factory receives nothing and must be deterministic; each
/// produced workload becomes one process (created at `page_size`).
pub fn run_policy<F>(
    kind: PolicyKind,
    scale: &Scale,
    total_frames: u32,
    page_size: PageSize,
    driver_cfg: Option<DriverConfig>,
    make_workloads: F,
) -> StandardRun
where
    F: FnOnce() -> Vec<Box<dyn Workload>>,
{
    let cfg = driver_cfg.unwrap_or(DriverConfig {
        run_for: scale.run_for,
        ..Default::default()
    });
    let mut sys_cfg = scale.topology.system_config(total_frames);
    if let Some(m) = &scale.migration {
        sys_cfg.migration = m.clone();
    }
    if let Some(fault) = &scale.fault {
        let plan = fault.materialize(scale.fault_seed, cfg.run_for);
        if let Err(e) = plan.validate_for(sys_cfg.num_tiers()) {
            panic!(
                "fault plan '{}' does not fit the {} topology: {e}",
                fault.name(),
                scale.topology.name()
            );
        }
        sys_cfg.fault_plan = Some(plan);
    }
    let mut sys = TieredSystem::new(sys_cfg);
    crate::sink::arm(&mut sys);
    let mut wls = make_workloads();
    for w in &wls {
        sys.add_process(w.address_space_pages(), page_size);
    }
    let mut policy = kind.build(scale);
    let result = SimulationDriver::new(cfg).run(&mut sys, &mut wls, &mut *policy);
    crate::sink::finish_run(kind.name(), &sys);
    StandardRun {
        sys,
        result,
        policy_name: kind.name(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{PmbenchConfig, PmbenchWorkload};

    #[test]
    fn all_policies_build_and_run() {
        let scale = Scale {
            run_for: Nanos::from_millis(30),
            ..Scale::default_scale()
        };
        for kind in PolicyKind::MAIN {
            let run = run_policy(kind, &scale, 2048, PageSize::Base, None, || {
                vec![Box::new(PmbenchWorkload::new(PmbenchConfig::paper_skewed(
                    1024, 0.7, 1,
                )))]
            });
            assert!(run.result.accesses > 0, "{} did nothing", kind.name());
        }
    }

    #[test]
    fn ablation_variants_build() {
        let scale = Scale {
            run_for: Nanos::from_millis(20),
            ..Scale::default_scale()
        };
        for kind in PolicyKind::ABLATION {
            let p = kind.build(&scale);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn topology_parses_and_shapes_systems() {
        assert_eq!(Topology::parse("dram-pmem"), Some(Topology::DramPmem));
        assert_eq!(Topology::parse("dram-cxl"), Some(Topology::DramCxl));
        assert_eq!(Topology::parse("three-tier"), Some(Topology::ThreeTier));
        assert_eq!(Topology::parse("four-tier"), None);
        let cfg = Topology::ThreeTier.system_config(4096);
        assert_eq!(cfg.num_tiers(), 3);
        assert_eq!(cfg.total_frames(), 4096);
        // The default shape is bit-for-bit the classic quarter split.
        let a = Topology::DramPmem.system_config(2048);
        assert_eq!(a.fast().frames, 512);
        assert_eq!(a.slow().frames, 1536);
    }

    #[test]
    fn three_tier_topology_runs_chrono_and_tpp() {
        let scale = Scale {
            scan_period: Nanos::from_millis(20),
            scan_step: 512,
            run_for: Nanos::from_millis(200),
            topology: Topology::ThreeTier,
            ..Scale::default_scale()
        };
        for kind in [PolicyKind::Chrono, PolicyKind::Tpp] {
            let run = run_policy(kind, &scale, 4096, PageSize::Base, None, || {
                vec![Box::new(PmbenchWorkload::new(PmbenchConfig::paper_skewed(
                    2048, 0.7, 1,
                )))]
            });
            assert!(run.result.accesses > 0, "{} did nothing", kind.name());
            for t in 0..3u8 {
                assert!(
                    run.sys.used_frames(tiered_mem::TierId(t)) > 0,
                    "{}: tier {t} empty",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn scale_multiplier_extends_runs() {
        let s = Scale::default_scale().with_run_multiplier(3);
        assert_eq!(s.run_for, Nanos::from_millis(4500));
    }

    #[test]
    fn fault_plan_kinds_parse_and_materialize() {
        assert_eq!(
            FaultPlanKind::parse("canonical"),
            Some(FaultPlanKind::Canonical)
        );
        assert_eq!(FaultPlanKind::parse("storm"), Some(FaultPlanKind::Storm));
        assert_eq!(FaultPlanKind::parse("inert"), Some(FaultPlanKind::Inert));
        assert_eq!(FaultPlanKind::parse("chaos"), None);
        let p = FaultPlanKind::Canonical.materialize(9, Nanos::from_millis(100));
        assert_eq!(p.capacity_events.len(), 1);
        assert_eq!(p.capacity_events[0].at, Nanos::from_millis(50));
        assert!(
            FaultPlanKind::Inert
                .materialize(9, Nanos::ZERO)
                .copy_transient
                == 0.0
        );
    }

    #[test]
    fn fault_plan_knob_attaches_to_runs() {
        // Compress the scan period so the short run spans many scan rounds —
        // the storm plan can only fire on migrations the policy issues.
        let scale = Scale {
            scan_period: Nanos::from_millis(5),
            run_for: Nanos::from_millis(40),
            fault: Some(FaultPlanKind::Storm),
            ..Scale::default_scale()
        };
        let run = run_policy(
            PolicyKind::Chrono,
            &scale,
            2048,
            PageSize::Base,
            None,
            || {
                vec![Box::new(PmbenchWorkload::new(PmbenchConfig::paper_skewed(
                    1024, 0.7, 1,
                )))]
            },
        );
        assert!(run.result.accesses > 0);
        let s = &run.sys.stats;
        assert!(
            s.transient_copy_faults + s.poisoned_copy_faults > 0,
            "storm plan never fired a copy fault"
        );
    }
}
