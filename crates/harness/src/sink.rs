//! Optional export of traced runs to disk.
//!
//! The CLI's `--json <dir>` and `--trace <dir>` flags configure a global
//! sink; while one is set, every run launched through
//! [`crate::runner::run_policy`] (and the direct-construction fig 10
//! experiments) enables the system tracer and, on completion, writes:
//!
//! - `<json-dir>/<experiment>__<label>__<n>.json` — per-scan-period counter
//!   rows (plus a `.csv` twin with the same columns), and
//! - `<trace-dir>/<experiment>__<label>__<n>.jsonl` — the discrete-event
//!   ring, one JSON object per line.
//!
//! With neither flag set the sink is inert and tracing stays disabled, so
//! plain runs pay nothing.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tiered_mem::TieredSystem;
use tiering_trace::DEFAULT_EVENT_CAP;

struct Sink {
    json_dir: Option<PathBuf>,
    trace_dir: Option<PathBuf>,
    experiment: String,
}

static STATE: Mutex<Option<Sink>> = Mutex::new(None);
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Activates the sink. Either directory may be `None`; passing both as
/// `None` deactivates it.
pub fn configure(json_dir: Option<PathBuf>, trace_dir: Option<PathBuf>) {
    let mut st = STATE.lock().expect("sink lock");
    *st = if json_dir.is_none() && trace_dir.is_none() {
        None
    } else {
        Some(Sink {
            json_dir,
            trace_dir,
            experiment: "run".to_string(),
        })
    };
}

/// Whether any export destination is configured.
pub fn active() -> bool {
    STATE.lock().expect("sink lock").is_some()
}

/// Tags subsequent runs with the experiment id (used in file names).
pub fn set_experiment(id: &str) {
    if let Some(sink) = STATE.lock().expect("sink lock").as_mut() {
        sink.experiment = sanitize(id);
    }
}

/// Turns tracing on for a system when the sink is active.
pub fn arm(sys: &mut TieredSystem) {
    if active() {
        sys.enable_tracing(DEFAULT_EVENT_CAP);
    }
}

/// Writes the system's trace (if any) to the configured directories.
pub fn finish_run(label: &str, sys: &TieredSystem) {
    let st = STATE.lock().expect("sink lock");
    let Some(sink) = st.as_ref() else {
        return;
    };
    if !sys.trace.is_enabled() {
        return;
    }
    let stem = format!(
        "{}__{}__{}",
        sink.experiment,
        sanitize(label),
        SEQ.fetch_add(1, Ordering::Relaxed)
    );
    if let Some(dir) = &sink.json_dir {
        write_or_warn(
            dir.join(format!("{stem}.json")),
            sys.trace.periods_json(label),
        );
        write_or_warn(dir.join(format!("{stem}.csv")), sys.trace.periods_csv());
    }
    if let Some(dir) = &sink.trace_dir {
        write_or_warn(dir.join(format!("{stem}.jsonl")), sys.trace.events_jsonl());
    }
}

fn write_or_warn(path: PathBuf, content: String) {
    if let Err(e) = fs::write(&path, content) {
        eprintln!("warning: could not write {}: {}", path.display(), e);
    }
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default_and_sanitizes() {
        // Note: the sink is process-global; this test only checks the pure
        // helpers to avoid interfering with any configured state.
        assert_eq!(sanitize("Chrono (manual)"), "Chrono--manual-");
        assert_eq!(sanitize("fig10a"), "fig10a");
    }
}
