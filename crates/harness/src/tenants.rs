//! `harness run`: the multi-tenant fleet experiment.
//!
//! ```text
//! harness run --tenants N [--threads T] [--policy NAME] [--millis MS]
//!             [--seed X] [--slots N] [--topology dram-pmem|dram-cxl|three-tier]
//! ```
//!
//! Builds `N` tenant shards with skewed popularity (zipf-0.7 working sets on
//! per-tenant RNG streams split from the run seed) and skewed admission
//! weights over a weighted partition of a shared frame pool, runs them on
//! `T` worker threads under the TierBPF-style admission hook, and reports
//! fairness (per-tenant FMAR spread, slot-share Gini, starvation) and
//! aggregate-throughput metrics. The trace digest is printed so two
//! invocations with different `--threads` can be diffed by eye: same seed ⇒
//! same digest, regardless of thread count.

use crate::runner::Topology;
use sim_clock::{DetRng, Nanos};
use tiered_mem::{PageSize, PartitionPlan, TierId, TieredSystem};
use tiering_policies::{
    AdmissionConfig, DriverConfig, ShardedConfig, ShardedRunResult, ShardedSim, TenantShard,
};
use tiering_verify::{tenant_weights, PolicyUnderTest, ALL_POLICIES};
use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

/// Stream id per-tenant workload seeds are split on (xored with tenant id).
const WORKLOAD_STREAM: u64 = 0xF1EE_7000;

/// Mean frames per tenant in each tier. The weighted partition skews around
/// these (respecting the per-partition floors), and per-tenant working sets
/// are sized past the fast share so every tenant has promotion demand.
const FAST_PER_TENANT: u32 = 24;
const SLOW_PER_TENANT: u32 = 72;
/// Three-tier split of the same 96-frame per-tenant mean: the fast share is
/// unchanged and the classic slow share splits evenly into a CXL middle tier
/// and a PMem backstop (each above the [`tiered_mem::MIN_SLOW_FRAMES`]
/// partition floor), so total capacity per tenant is identical across
/// topologies and fleet runs stay comparable.
const THREE_TIER_PER_TENANT: [u32; 3] = [FAST_PER_TENANT, 36, 36];

/// Parameters of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Tenant count.
    pub tenants: usize,
    /// Worker threads stepping shards between barriers.
    pub threads: usize,
    /// Policy every tenant runs.
    pub policy: PolicyUnderTest,
    /// Simulated horizon in milliseconds.
    pub millis: u64,
    /// Run seed (weights, per-tenant workload streams).
    pub seed: u64,
    /// Global admission-slot pool (None = `2 × tenants`, the weighted-regime
    /// boundary, so contention is visible without starving the fleet).
    pub slots: Option<usize>,
    /// Tier chain every tenant's system is built on.
    pub topology: Topology,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            tenants: 1000,
            threads: 4,
            policy: PolicyUnderTest::ChronoDcsc,
            millis: 10,
            seed: 0xF1EE_7001,
            slots: None,
            topology: Topology::DramPmem,
        }
    }
}

/// Builds the fleet's shards over a weighted partition of the shared pool.
pub fn build_fleet(cfg: &FleetConfig) -> Vec<TenantShard> {
    let weights = tenant_weights(cfg.seed, cfg.tenants);
    let per_tenant: &[u32] = match cfg.topology {
        Topology::ThreeTier => &THREE_TIER_PER_TENANT,
        _ => &[FAST_PER_TENANT, SLOW_PER_TENANT],
    };
    let totals: Vec<u32> = per_tenant.iter().map(|&t| t * cfg.tenants as u32).collect();
    let plan = PartitionPlan::split_weighted_tiers(&totals, &weights);
    let tiers = cfg.topology.num_tiers();
    let scan_period = Nanos::from_millis(5);
    let driver = DriverConfig {
        run_for: Nanos::from_millis(cfg.millis),
        ..Default::default()
    };
    (0..cfg.tenants)
        .map(|i| {
            let part = plan.part(i);
            let tenant_frames: u32 = (0..tiers).map(|t| part.frames(TierId(t as u8))).sum();
            let mut sys = TieredSystem::new(cfg.topology.partition_config(part));
            sys.enable_tracing(1 << 8);
            // Working set at half the tenant's partition — comfortably
            // resident, but larger than the fast share, so every tenant
            // wants more fast memory than it has and the fleet question is
            // whose promotions win the bounded slots.
            let pages = (tenant_frames / 2).max(16);
            let tenant_seed = DetRng::split(cfg.seed, WORKLOAD_STREAM ^ i as u64).next_u64();
            let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(pages, 0.7, tenant_seed));
            sys.add_process(w.address_space_pages(), PageSize::Base);
            TenantShard::new(
                i as u32,
                weights[i],
                sys,
                vec![Box::new(w) as Box<dyn Workload>],
                cfg.policy.build_boxed_tiers(scan_period, 512, tiers),
                driver.clone(),
            )
        })
        .collect()
}

/// Runs the fleet and returns the sharded result.
pub fn run_fleet(cfg: &FleetConfig) -> ShardedRunResult {
    let shards = build_fleet(cfg);
    let mut scfg = ShardedConfig::new(Nanos::from_millis(cfg.millis));
    scfg.threads = cfg.threads;
    scfg.admission = AdmissionConfig {
        enabled: true,
        total_slots: cfg.slots.unwrap_or(2 * cfg.tenants),
    };
    ShardedSim::new(scfg, shards).run()
}

/// `harness run --tenants N [--threads T] [--policy NAME] [--millis MS]
/// [--seed X] [--slots N] [--topology NAME]`. Returns the process exit code.
pub fn run_tenants(mut args: Vec<String>) -> i32 {
    let mut cfg = FleetConfig::default();
    let mut take = |flag: &str| -> Option<String> {
        let pos = args.iter().position(|a| a == flag)?;
        let Some(v) = args.get(pos + 1).cloned() else {
            eprintln!("{flag} requires an argument");
            std::process::exit(2);
        };
        args.drain(pos..=pos + 1);
        Some(v)
    };
    let parse_u64 = |flag: &str, v: String| -> u64 {
        let parsed = match v.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => v.parse().ok(),
        };
        parsed.unwrap_or_else(|| {
            eprintln!("{flag} requires an integer argument");
            std::process::exit(2);
        })
    };
    if let Some(v) = take("--tenants") {
        cfg.tenants = parse_u64("--tenants", v).max(1) as usize;
    }
    if let Some(v) = take("--threads") {
        cfg.threads = parse_u64("--threads", v).max(1) as usize;
    }
    if let Some(v) = take("--millis") {
        cfg.millis = parse_u64("--millis", v).max(1);
    }
    if let Some(v) = take("--seed") {
        cfg.seed = parse_u64("--seed", v);
    }
    if let Some(v) = take("--slots") {
        cfg.slots = Some(parse_u64("--slots", v).max(1) as usize);
    }
    if let Some(v) = take("--policy") {
        let Some(p) = ALL_POLICIES.into_iter().find(|p| p.name() == v) else {
            eprintln!(
                "unknown policy '{v}'; one of: {}",
                ALL_POLICIES.map(|p| p.name()).join(", ")
            );
            return 2;
        };
        cfg.policy = p;
    }
    if let Some(v) = take("--topology") {
        let Some(t) = Topology::parse(&v) else {
            eprintln!("unknown topology '{v}'; one of: dram-pmem, dram-cxl, three-tier");
            return 2;
        };
        cfg.topology = t;
    }
    if let Some(unknown) = args.first() {
        eprintln!("run: unknown argument '{unknown}'");
        return 2;
    }

    println!(
        "fleet: {} tenants x {} ms of {} on {} threads (seed {:#x}, {} slots, {})",
        cfg.tenants,
        cfg.millis,
        cfg.policy.name(),
        cfg.threads,
        cfg.seed,
        cfg.slots.unwrap_or(2 * cfg.tenants),
        cfg.topology.name(),
    );
    // lint:allow(wall-clock) CLI-only wall throughput metric; never feeds the sim
    let wall = std::time::Instant::now();
    let result = run_fleet(&cfg);
    let elapsed = wall.elapsed();

    let accesses = result.total_accesses();
    let (fmar_lo, fmar_hi) = result.fmar_spread();
    let starved_now = result
        .outcomes
        .iter()
        .filter(|o| o.max_starvation > 0)
        .count();
    let rejects: u64 = result
        .shards
        .iter()
        .map(|s| s.sys.stats.failed_fast_migrations[3])
        .sum();
    println!(
        "  aggregate: {accesses} accesses in {elapsed:.1?} ({:.0} accesses/sec wall), \
         {} barriers",
        accesses as f64 / elapsed.as_secs_f64().max(1e-9),
        result.barriers,
    );
    println!(
        "  fairness:  fmar spread [{fmar_lo:.3}, {fmar_hi:.3}], slot-share gini {:.3}, \
         {starved_now}/{} tenants ever starved a barrier, {rejects} admission rejects",
        result.slot_share_gini(),
        result.outcomes.len(),
    );
    println!("  digest:    {:016x}", result.combined_digest());
    0
}
