//! `harness verify` and `harness fuzz`: the CI entry points into the
//! `tiering-verify` layer.
//!
//! ```text
//! harness verify [--bless]
//! harness fuzz [--seeds N] [--ops N] [--seed-base X] [--replay SEED]
//!              [--self-test] [--migration-stress] [--fault-storm]
//!              [--tenant-storm] [--three-tier] [--tier-chaos]
//! ```
//!
//! `verify` runs the differential determinism check for every policy, the
//! metamorphic relations, and the golden-trace snapshots (`--bless` rewrites
//! the snapshots instead of diffing them). `fuzz` runs seeded op-schedule
//! fuzzing of the substrate; failures are shrunk and printed as replayable
//! schedules. `--replay SEED` re-runs a single reported seed; `--self-test`
//! injects a known corruption and checks the pipeline catches and shrinks
//! it. `--migration-stress` switches to the migration-heavy profile:
//! write-dominated access mixes over tiny in-flight tables, so the
//! write-abort, split-abort and `Backpressure` paths fire constantly.
//! `--fault-storm` switches to the fault-injection profile: every case
//! carries a storm-rate `FaultPlan` and the op mix adds frame poisoning,
//! capacity shrink/grow and channel-degradation windows, so the quarantine,
//! soft-offline and watermark-rescale paths run under the oracle.
//! `--tenant-storm` switches to the multi-tenant sharded profile: 4–8
//! tenants with mixed policies over a weighted frame partition, the
//! admission hook on a deliberately tight slot pool, and a fault plan on one
//! tenant — checked against the cross-shard invariants (global frame
//! conservation, PFN exclusivity, per-tenant slot-flow conservation).
//! `--three-tier` switches to the tier-chain profile: every case runs over a
//! DRAM+CXL+PMem chain and the op mix draws migration destinations, victim
//! pops, ageing and degradation windows across all three tiers, so the
//! per-edge engines and the generalized residency invariants run under the
//! oracle. `--tier-chaos` switches to the tier failure-domain profile:
//! end-to-end three-tier policy runs under the `canonical3`/`storm3` plans
//! (mid-run degrade → offline with live evacuation → rejoin), oracle
//! attached, with an effectiveness self-test asserting the sweep actually
//! failed and drained tiers.

use tiering_verify::ops::{generate_ops, CaseConfig, FuzzOp};
use tiering_verify::{
    bless_goldens, check_goldens, determinism_digests, fuzz_one, fuzz_one_fault_storm,
    fuzz_one_stress, fuzz_one_three_tier, metamorphic, GoldenStatus, ALL_POLICIES,
};

/// Parses `--flag N` out of `args`; returns the default when absent.
fn take_u64_flag(args: &mut Vec<String>, flag: &str, default: u64) -> u64 {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return default;
    };
    let value = args.get(pos + 1).and_then(|v| match v.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    });
    let Some(value) = value else {
        eprintln!("{flag} requires an integer argument");
        std::process::exit(2);
    };
    args.drain(pos..=pos + 1);
    value
}

/// Removes `--flag` from `args`, reporting whether it was present.
fn take_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return false;
    };
    args.remove(pos);
    true
}

/// `harness verify [--bless]`. Returns the process exit code.
pub fn run_verify(mut args: Vec<String>) -> i32 {
    let bless = take_bool_flag(&mut args, "--bless");
    if let Some(unknown) = args.first() {
        eprintln!("verify: unknown argument '{unknown}'");
        return 2;
    }
    let mut failed = false;

    // 1. Differential determinism: same seed, same policy ⇒ same digest.
    const DET_SEED: u64 = 0x00D1_7E57;
    const DET_MILLIS: u64 = 15;
    for p in ALL_POLICIES {
        let (a, b) = determinism_digests(p, DET_SEED, DET_MILLIS);
        if a == b {
            println!("determinism {:<16} ok ({a:016x})", p.name());
        } else {
            println!(
                "determinism {:<16} FAILED: {a:016x} != {b:016x} on seed {DET_SEED:#x}",
                p.name()
            );
            failed = true;
        }
    }

    // 2. Metamorphic relations over the Chrono control loop.
    let meta_failures = metamorphic::run_all(0x4E7A, 8);
    if meta_failures.is_empty() {
        println!("metamorphic relations ok (rate-limit, CIT-threshold, huge/base accounting)");
    } else {
        for f in &meta_failures {
            println!("metamorphic FAILED: {f}");
        }
        failed = true;
    }

    // 3. Golden-trace snapshots.
    if bless {
        match bless_goldens() {
            Ok(paths) => {
                for p in paths {
                    println!("blessed {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("bless failed: {e}");
                return 1;
            }
        }
    } else {
        for result in check_goldens() {
            if !matches!(result.status, GoldenStatus::Match) {
                failed = true;
            }
            println!("{result}");
        }
    }

    if failed {
        eprintln!("verify: FAILED");
        1
    } else {
        println!("verify: all checks passed");
        0
    }
}

/// `harness fuzz [--seeds N] [--ops N] [--seed-base X] [--replay SEED]
/// [--self-test] [--migration-stress] [--fault-storm] [--tenant-storm]
/// [--three-tier] [--tier-chaos]`. Returns the process exit code.
pub fn run_fuzz(mut args: Vec<String>) -> i32 {
    let stress = take_bool_flag(&mut args, "--migration-stress");
    let fault_storm = take_bool_flag(&mut args, "--fault-storm");
    let tenant_storm = take_bool_flag(&mut args, "--tenant-storm");
    let three_tier = take_bool_flag(&mut args, "--three-tier");
    let tier_chaos = take_bool_flag(&mut args, "--tier-chaos");
    if [stress, fault_storm, tenant_storm, three_tier, tier_chaos]
        .iter()
        .filter(|&&b| b)
        .count()
        > 1
    {
        eprintln!(
            "fuzz: --migration-stress, --fault-storm, --tenant-storm, --three-tier \
             and --tier-chaos are mutually exclusive"
        );
        return 2;
    }
    let seeds = take_u64_flag(&mut args, "--seeds", 256);
    let ops = take_u64_flag(&mut args, "--ops", 4000) as usize;
    let default_base = if stress {
        0x57E5_5000
    } else if fault_storm {
        0xFA17_0000
    } else if tenant_storm {
        0x7E4A_0000
    } else if three_tier {
        0x37E1_0000
    } else if tier_chaos {
        0x7C40_0000
    } else {
        0x5EED_0000
    };
    let seed_base = take_u64_flag(&mut args, "--seed-base", default_base);
    let replay = if args.iter().any(|a| a == "--replay") {
        Some(take_u64_flag(&mut args, "--replay", 0))
    } else {
        None
    };
    let self_test = take_bool_flag(&mut args, "--self-test");
    if let Some(unknown) = args.first() {
        eprintln!("fuzz: unknown argument '{unknown}'");
        return 2;
    }

    if tenant_storm {
        return run_tenant_storm(seeds, seed_base, replay);
    }
    if tier_chaos {
        return run_tier_chaos(seeds, seed_base, replay, ops);
    }

    // The fuzzer intentionally drives the substrate into panics and catches
    // them; silence the default hook so expected unwinds don't spam stderr.
    // Safe here: the harness binary is single-threaded.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let run_case = |seed, ops| {
        if stress {
            fuzz_one_stress(seed, ops)
        } else if fault_storm {
            fuzz_one_fault_storm(seed, ops)
        } else if three_tier {
            fuzz_one_three_tier(seed, ops)
        } else {
            fuzz_one(seed, ops)
        }
    };
    let profile = if stress {
        "migration-stress "
    } else if fault_storm {
        "fault-storm "
    } else if three_tier {
        "three-tier "
    } else {
        ""
    };
    let code = if self_test {
        run_self_test(seed_base, ops)
    } else if let Some(seed) = replay {
        match run_case(seed, ops) {
            None => {
                println!("replay seed {seed:#x}: clean ({ops} {profile}ops)");
                0
            }
            Some(shrunk) => {
                println!("{shrunk}");
                1
            }
        }
    } else {
        let mut failures = 0u64;
        for i in 0..seeds {
            let seed = seed_base.wrapping_add(i);
            if let Some(shrunk) = run_case(seed, ops) {
                println!("{shrunk}");
                failures += 1;
            }
        }
        if failures == 0 {
            println!("fuzz: {seeds} {profile}seeds x {ops} ops, zero invariant violations");
            0
        } else {
            eprintln!("fuzz: {failures} of {seeds} {profile}seeds FAILED");
            1
        }
    };
    std::panic::set_hook(default_hook);
    code
}

/// The `--tenant-storm` profile: seeded multi-shard cases (4–8 tenants,
/// mixed policies, skewed weights, a tight admission-slot pool, a canonical
/// fault plan on one tenant) with the per-shard oracle plus the cross-shard
/// invariants — global frame conservation, PFN exclusivity across tenants,
/// per-tenant slot-flow conservation. Also asserts the admission-reject
/// path actually fired somewhere in the batch: a sweep where no migration
/// was ever rejected would mean the contention the profile exists to test
/// never happened.
fn run_tenant_storm(seeds: u64, seed_base: u64, replay: Option<u64>) -> i32 {
    const STORM_MILLIS: u64 = 10;
    if let Some(seed) = replay {
        let r = tiering_verify::fuzz_one_tenant_storm(seed, STORM_MILLIS);
        println!(
            "replay seed {seed:#x}: {} tenants, {} threads, digest {:016x}, \
             {} rejects, slot-gini {:.3}, {} violations",
            r.tenants,
            r.threads,
            r.combined_digest,
            r.backpressure_rejects,
            r.slot_gini,
            r.violations.len()
        );
        for v in &r.violations {
            println!("  violation [{}] {}", v.invariant, v.detail);
        }
        return i32::from(!r.clean());
    }
    let mut failures = 0u64;
    let mut rejects = 0u64;
    for i in 0..seeds {
        let seed = seed_base.wrapping_add(i);
        let r = tiering_verify::fuzz_one_tenant_storm(seed, STORM_MILLIS);
        rejects += r.backpressure_rejects;
        if !r.clean() {
            failures += 1;
            println!("tenant-storm seed {seed:#x} FAILED:");
            for v in &r.violations {
                println!("  violation [{}] {}", v.invariant, v.detail);
            }
        }
    }
    if failures == 0 && rejects > 0 {
        println!(
            "fuzz: {seeds} tenant-storm seeds x {STORM_MILLIS} ms, zero invariant violations, \
             {rejects} admission rejects exercised"
        );
        0
    } else {
        if rejects == 0 {
            eprintln!("fuzz: tenant-storm sweep never exercised the admission-reject path");
        }
        if failures > 0 {
            eprintln!("fuzz: {failures} of {seeds} tenant-storm seeds FAILED");
        }
        1
    }
}

/// The `--tier-chaos` profile: seeded end-to-end three-tier policy runs
/// under the `canonical3`/`storm3` tier failure-domain plans (degrade,
/// offline with live evacuation, rejoin), with the invariant oracle —
/// including the `tier_offline_residency` and `evac_flow` checks —
/// attached to every scan period. The `--ops` knob maps onto simulated
/// run length (200 ops ≈ 1 simulated ms, so the default 4000 runs each
/// seed for 20 ms — long enough for the full offline/rejoin arc).
///
/// The sweep carries its own effectiveness self-test: across the batch,
/// tier health transitions and evacuated pages must both be nonzero, or
/// the chaos the profile exists to inject never actually happened and the
/// "zero violations" headline would be vacuous.
fn run_tier_chaos(seeds: u64, seed_base: u64, replay: Option<u64>, ops: usize) -> i32 {
    // lint:allow(timestamp-cast) ops is a CLI op count, not a timestamp
    let run_millis = ((ops as u64) / 200).max(5);
    if let Some(seed) = replay {
        let r = tiering_verify::fuzz_one_tier_chaos(seed, run_millis);
        println!(
            "replay seed {seed:#x}: policy {}, digest {:016x}, {} accesses, \
             {} tier transitions, {} evacuated pages, {} violations",
            r.policy,
            r.digest,
            r.accesses,
            r.tier_health_transitions,
            r.evacuated_pages,
            r.violations.len()
        );
        for v in &r.violations {
            println!("  violation [{}] {}", v.invariant, v.detail);
        }
        return i32::from(!r.clean());
    }
    let mut failures = 0u64;
    let mut transitions = 0u64;
    let mut evacuated = 0u64;
    for i in 0..seeds {
        let seed = seed_base.wrapping_add(i);
        let r = tiering_verify::fuzz_one_tier_chaos(seed, run_millis);
        transitions += r.tier_health_transitions;
        evacuated += r.evacuated_pages;
        if !r.clean() {
            failures += 1;
            println!("tier-chaos seed {seed:#x} ({}) FAILED:", r.policy);
            for v in &r.violations {
                println!("  violation [{}] {}", v.invariant, v.detail);
            }
        }
    }
    if failures == 0 && transitions > 0 && evacuated > 0 {
        println!(
            "fuzz: {seeds} tier-chaos seeds x {run_millis} ms, zero invariant violations, \
             {transitions} tier transitions and {evacuated} evacuated pages exercised"
        );
        0
    } else {
        if transitions == 0 || evacuated == 0 {
            eprintln!(
                "fuzz: tier-chaos sweep never exercised the failure arc \
                 ({transitions} transitions, {evacuated} evacuated)"
            );
        }
        if failures > 0 {
            eprintln!("fuzz: {failures} of {seeds} tier-chaos seeds FAILED");
        }
        1
    }
}

/// Injects a known cross-mapping corruption into a generated schedule and
/// checks the pipeline catches it and shrinks the reproduction to a handful
/// of ops. Exercises the same path a real substrate bug would take.
fn run_self_test(seed_base: u64, ops: usize) -> i32 {
    // Find a base-page case shape (the injected op corrupts base mappings).
    let seed = (0..64)
        .map(|i| seed_base.wrapping_add(i))
        .find(|&s| {
            let cfg = CaseConfig::from_seed(s);
            cfg.procs[0].1 == tiered_mem::PageSize::Base && cfg.procs[0].0 >= 2
        })
        .expect("some seed in any 64-window yields a base-page case");
    let cfg = CaseConfig::from_seed(seed);
    let mut schedule = generate_ops(&cfg, seed, ops.min(500));
    schedule.push(FuzzOp::Access {
        pid: 0,
        vpn: 0,
        write: false,
    });
    schedule.push(FuzzOp::Access {
        pid: 0,
        vpn: 1,
        write: false,
    });
    schedule.push(FuzzOp::CorruptPfn {
        pid: 0,
        src: 0,
        dst: 1,
    });
    let Some(shrunk) = tiering_verify::ops::fuzz_ops(seed, &cfg, schedule) else {
        eprintln!("self-test: injected corruption was NOT caught");
        return 1;
    };
    println!("{shrunk}");
    if shrunk.ops.len() > 20 {
        eprintln!(
            "self-test: shrunk reproduction has {} ops (want <= 20)",
            shrunk.ops.len()
        );
        return 1;
    }
    println!(
        "self-test: corruption caught and shrunk to {} ops",
        shrunk.ops.len()
    );
    0
}
