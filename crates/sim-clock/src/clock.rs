//! Simulated time in nanoseconds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// One microsecond in simulated nanoseconds.
pub const MICROSECOND: Nanos = Nanos(1_000);
/// One millisecond in simulated nanoseconds.
pub const MILLISECOND: Nanos = Nanos(1_000_000);
/// One second in simulated nanoseconds.
pub const SECOND: Nanos = Nanos(1_000_000_000);

/// A point in, or span of, simulated time, measured in nanoseconds.
///
/// `Nanos` is used both as an instant (offset from simulation start) and as a
/// duration; the simulator never needs wall-clock time, so a single newtype
/// keeps the arithmetic simple while still preventing accidental mixing with
/// raw counters.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The zero instant (simulation start).
    pub const ZERO: Nanos = Nanos(0);
    /// The maximum representable instant, used as an "infinitely far" sentinel.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Builds a time span from whole microseconds.
    pub const fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// Builds a time span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Builds a time span from whole seconds.
    pub const fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the value in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the value in seconds as a float, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction; useful when computing gaps between timestamps
    /// that may race (e.g. a fault observed in the same tick as a scan).
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition returning `None` on overflow.
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }

    /// Multiplies the span by an integer scale.
    pub fn scale(self, k: u64) -> Nanos {
        Nanos(self.0 * k)
    }

    /// Multiplies the span by a float factor, rounding to the nearest ns.
    ///
    /// Used by the adaptive tuning formulas (`TH_{i+1} = (1-δ+δ·r)·TH_i`),
    /// which operate on time thresholds with fractional coefficients.
    pub fn scale_f64(self, k: f64) -> Nanos {
        debug_assert!(
            k.is_finite() && k >= 0.0,
            "scale factor must be finite and non-negative"
        );
        Nanos((self.0 as f64 * k).round() as u64)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= SECOND.0 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= MILLISECOND.0 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= MICROSECOND.0 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

/// The simulation clock.
///
/// The clock only moves forward, and only via [`Clock::advance`] or
/// [`Clock::advance_to`]; this mirrors a kernel's monotonic clock and makes
/// CIT timestamps trustworthy.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: Nanos,
}

impl Clock {
    /// Creates a clock at instant zero.
    pub fn new() -> Clock {
        Clock { now: Nanos::ZERO }
    }

    /// Returns the current simulated instant.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Advances the clock by `delta` and returns the new instant.
    pub fn advance(&mut self, delta: Nanos) -> Nanos {
        self.now += delta;
        self.now
    }

    /// Advances the clock to an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `to` is in the past; the simulator must never rewind time.
    pub fn advance_to(&mut self, to: Nanos) {
        assert!(
            to >= self.now,
            "clock cannot move backwards: {:?} < {:?}",
            to,
            self.now
        );
        self.now = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_match_raw_nanos() {
        assert_eq!(Nanos::from_micros(3), Nanos(3_000));
        assert_eq!(Nanos::from_millis(7), Nanos(7_000_000));
        assert_eq!(Nanos::from_secs(2), Nanos(2_000_000_000));
    }

    #[test]
    fn arithmetic_is_exact() {
        let a = Nanos::from_millis(5);
        let b = Nanos::from_millis(3);
        assert_eq!(a + b, Nanos::from_millis(8));
        assert_eq!(a - b, Nanos::from_millis(2));
        assert_eq!(a * 4, Nanos::from_millis(20));
        assert_eq!(a / 5, Nanos::from_millis(1));
    }

    #[test]
    fn saturating_sub_clamps_to_zero() {
        let a = Nanos::from_millis(1);
        let b = Nanos::from_millis(2);
        assert_eq!(a.saturating_sub(b), Nanos::ZERO);
        assert_eq!(b.saturating_sub(a), Nanos::from_millis(1));
    }

    #[test]
    fn scale_f64_rounds_to_nearest() {
        let th = Nanos::from_millis(1000);
        // The semi-auto update with δ=0.5 and r=0.5 gives a factor of 0.75.
        assert_eq!(th.scale_f64(0.75), Nanos::from_millis(750));
        assert_eq!(Nanos(3).scale_f64(0.5), Nanos(2)); // 1.5 rounds to 2
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now(), Nanos::ZERO);
        c.advance(Nanos::from_micros(10));
        assert_eq!(c.now(), Nanos(10_000));
        c.advance_to(Nanos::from_millis(1));
        assert_eq!(c.now(), Nanos(1_000_000));
    }

    #[test]
    #[should_panic(expected = "clock cannot move backwards")]
    fn clock_rejects_rewind() {
        let mut c = Clock::new();
        c.advance(Nanos::from_millis(2));
        c.advance_to(Nanos::from_millis(1));
    }

    #[test]
    fn display_picks_human_unit() {
        assert_eq!(format!("{}", Nanos(500)), "500ns");
        assert_eq!(format!("{}", Nanos::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", Nanos::from_millis(250)), "250.000ms");
        assert_eq!(format!("{}", Nanos::from_secs(3)), "3.000s");
    }

    #[test]
    fn sum_of_spans() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }
}
