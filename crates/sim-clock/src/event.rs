//! A discrete-event queue keyed on simulated time.
//!
//! Policy daemons in the reproduction (Ticking-scan, watermark demotion, DCSC
//! probes, tuning updates) are scheduled as events. The simulation main loop
//! interleaves workload memory accesses with due events, exactly like kernel
//! work items interleaving with application execution.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::clock::Nanos;

/// Identifies a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// An entry in the queue. `seq` breaks ties so that events scheduled for the
/// same instant fire in scheduling order (FIFO), which keeps runs
/// deterministic.
struct Entry<T> {
    at: Nanos,
    seq: u64,
    id: EventId,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest event first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of events carrying payloads of type `T`.
///
/// # Examples
///
/// ```
/// use sim_clock::{EventQueue, Nanos};
///
/// let mut q = EventQueue::new();
/// q.schedule(Nanos::from_millis(10), "scan");
/// q.schedule(Nanos::from_millis(5), "demote");
/// let (at, what) = q.pop_due(Nanos::from_millis(7)).unwrap();
/// assert_eq!((at, what), (Nanos::from_millis(5), "demote"));
/// assert!(q.pop_due(Nanos::from_millis(7)).is_none());
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    next_id: u64,
    cancelled: Vec<EventId>,
    /// Memoised answer of [`EventQueue::next_deadline`]: drivers peek the
    /// queue once per simulated access but the pending set only changes on
    /// daemon activity, so the common case is one load instead of a heap
    /// peek behind a cancellation sweep. `Some(answer)` is authoritative;
    /// `None` means stale (recompute on next peek).
    deadline_cache: Option<Option<Nanos>>,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            next_id: 0,
            cancelled: Vec::new(),
            deadline_cache: None,
        }
    }

    /// Schedules `payload` to fire at absolute instant `at`.
    pub fn schedule(&mut self, at: Nanos, payload: T) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            id,
            payload,
        });
        // A new event can only pull the earliest deadline forward, so a
        // valid cache stays exact without a recompute.
        self.deadline_cache = match self.deadline_cache {
            Some(Some(cur)) => Some(Some(cur.min(at))),
            Some(None) => Some(Some(at)),
            None => None,
        };
        id
    }

    /// Cancels a previously scheduled event. Cancelling an already-fired or
    /// unknown event is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.push(id);
        self.deadline_cache = None;
    }

    /// Returns the instant of the earliest pending event, if any.
    pub fn next_deadline(&mut self) -> Option<Nanos> {
        if let Some(answer) = self.deadline_cache {
            return answer;
        }
        self.skip_cancelled();
        let answer = self.heap.peek().map(|e| e.at);
        self.deadline_cache = Some(answer);
        answer
    }

    /// Pops the earliest event whose deadline is `<= now`, if any.
    pub fn pop_due(&mut self, now: Nanos) -> Option<(Nanos, T)> {
        self.skip_cancelled();
        if self.heap.peek().map(|e| e.at <= now).unwrap_or(false) {
            let e = self.heap.pop().expect("peeked entry must exist");
            self.deadline_cache = None;
            Some((e.at, e.payload))
        } else {
            None
        }
    }

    /// Pops the earliest event unconditionally (advancing to event time is the
    /// caller's job). Used when the workload stream has ended but daemons must
    /// finish draining their queues.
    pub fn pop_next(&mut self) -> Option<(Nanos, T)> {
        self.skip_cancelled();
        self.deadline_cache = None;
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&mut self) -> usize {
        self.skip_cancelled();
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if let Some(pos) = self.cancelled.iter().position(|c| *c == top.id) {
                self.cancelled.swap_remove(pos);
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(30), 3);
        q.schedule(Nanos(10), 1);
        q.schedule(Nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop_next().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(5), "a");
        q.schedule(Nanos(5), "b");
        q.schedule(Nanos(5), "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop_next().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn pop_due_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(Nanos(100), ());
        assert!(q.pop_due(Nanos(99)).is_none());
        assert!(q.pop_due(Nanos(100)).is_some());
        assert!(q.pop_due(Nanos(1000)).is_none());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut q = EventQueue::new();
        let a = q.schedule(Nanos(1), "a");
        q.schedule(Nanos(2), "b");
        q.cancel(a);
        assert_eq!(q.pop_next().map(|(_, p)| p), Some("b"));
        assert!(q.pop_next().is_none());
    }

    #[test]
    fn cancel_unknown_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(Nanos(1), 1u32);
        q.pop_next();
        q.cancel(a); // already fired
        q.schedule(Nanos(2), 2u32);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_next().map(|(_, p)| p), Some(2));
    }

    #[test]
    fn next_deadline_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_deadline(), None);
        q.schedule(Nanos(7), ());
        q.schedule(Nanos(3), ());
        assert_eq!(q.next_deadline(), Some(Nanos(3)));
    }

    #[test]
    fn deadline_cache_tracks_mutations() {
        let mut q = EventQueue::new();
        // Prime the cache on the empty queue, then mutate through every
        // path that must keep or invalidate it.
        assert_eq!(q.next_deadline(), None);
        let a = q.schedule(Nanos(10), "a");
        assert_eq!(q.next_deadline(), Some(Nanos(10)));
        q.schedule(Nanos(4), "b"); // earlier: cache must move forward
        assert_eq!(q.next_deadline(), Some(Nanos(4)));
        q.schedule(Nanos(6), "c"); // later: cache must hold
        assert_eq!(q.next_deadline(), Some(Nanos(4)));
        assert_eq!(q.pop_due(Nanos(5)).map(|(_, p)| p), Some("b"));
        assert_eq!(q.next_deadline(), Some(Nanos(6)));
        q.cancel(a);
        assert_eq!(q.next_deadline(), Some(Nanos(6)));
        assert_eq!(q.pop_next().map(|(_, p)| p), Some("c"));
        assert_eq!(q.next_deadline(), None);
    }
}
