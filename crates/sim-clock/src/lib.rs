#![warn(missing_docs)]
//! Virtual time, discrete-event scheduling, and deterministic randomness.
//!
//! The Chrono reproduction is a *discrete-event simulation*: all latencies,
//! scan periods, and rate limits are expressed in simulated nanoseconds, and
//! the only way time moves is through [`Clock::advance`]. Policy daemons
//! (Ticking-scan, demotion, DCSC statistics collection) are modelled as
//! periodic events on an [`EventQueue`].
//!
//! Everything is deterministic: randomness comes from [`rng::DetRng`], a
//! seeded generator, so every experiment in the paper reproduction is exactly
//! repeatable.

pub mod clock;
pub mod event;
pub mod rng;

pub use clock::{Clock, Nanos, MICROSECOND, MILLISECOND, SECOND};
pub use event::{EventId, EventQueue};
pub use rng::{DetRng, Zipf};
