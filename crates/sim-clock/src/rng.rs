//! Deterministic randomness for simulations.
//!
//! All stochastic behaviour — workload access patterns, DCSC victim
//! selection, PEBS sampling — draws from a [`DetRng`] seeded per experiment,
//! so runs are exactly reproducible. The generator is SplitMix64-style
//! seeding of a xoshiro256++ core, implemented directly (tiny and fully
//! specified) so the streams are stable forever and the crate carries no
//! external dependencies.

/// A deterministic xoshiro256++ random number generator.
///
/// # Examples
///
/// ```
/// use sim_clock::DetRng;
/// let mut a = DetRng::seed(42);
/// let mut b = DetRng::seed(42);
/// assert_eq!(a.below(1000), b.below(1000));
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed(seed: u64) -> DetRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        DetRng { s }
    }

    /// Derives an independent child generator; used to give each process or
    /// subsystem its own stream without correlation.
    pub fn fork(&mut self) -> DetRng {
        DetRng::seed(self.next_u64())
    }

    /// Splits a run seed into the `stream`-th of an unbounded family of
    /// independent shard streams.
    ///
    /// Unlike [`DetRng::fork`], which consumes state from a live generator
    /// (so stream `i` depends on how many forks preceded it), `split` is a
    /// pure function of `(run_seed, stream)`: the stream a shard receives
    /// does not depend on how many shards exist, so resizing a tenant fleet
    /// never reshuffles the surviving tenants' randomness. The mapping is a
    /// SplitMix64-style finalizer over `run_seed ^ stream · φ`; the xor input
    /// is distinct for every `(seed, stream)` pair (multiplication by an odd
    /// constant is a bijection on `u64`) and the finalizer is itself a
    /// bijection, so distinct streams get distinct underlying seeds.
    pub fn split(run_seed: u64, stream: u64) -> DetRng {
        let mut z = run_seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DetRng::seed(z)
    }

    #[inline]
    fn next_raw(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, bound)`. Uses Lemire's multiply-shift reduction;
    /// the modulo bias is negligible for simulation purposes (bound ≪ 2^64).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        ((self.next_raw() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` index in `[0, len)`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Standard normal deviate via Box–Muller (polar form would need a loop;
    /// the trig form is branch-free and fast enough here).
    pub fn std_normal(&mut self) -> f64 {
        let u1 = self.unit_f64().max(f64::MIN_POSITIVE);
        let u2 = self.unit_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.std_normal()
    }

    /// Exponential deviate with the given mean (inter-arrival times).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        -mean * self.unit_f64().max(f64::MIN_POSITIVE).ln()
    }

    /// Uniform `u32` over the full range (upper bits of the raw stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    /// Uniform `u64` over the full range.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    /// Fills `dest` with uniform random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A Zipf(θ) sampler over `[0, n)` using the rejection-inversion method of
/// Hörmann & Derflinger, which is O(1) per sample for any skew.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    // Precomputed constants for rejection-inversion.
    h_x1: f64,
    h_integral_x1: f64,
    h_integral_n: f64,
    s: f64,
}

impl Zipf {
    /// Creates a Zipf sampler over `n` items with exponent `theta > 0`,
    /// `theta != 1` handled via the generalized harmonic integral.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(theta > 0.0, "Zipf exponent must be positive");
        let h_integral = |x: f64| -> f64 {
            let log_x = x.ln();
            helper_h((1.0 - theta) * log_x) * log_x
        };
        let h = |x: f64| -> f64 { (-theta * x.ln()).exp() };
        let h_integral_x1 = h_integral(1.5) - 1.0;
        let h_integral_n = h_integral(n as f64 + 0.5);
        let s = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0), theta);
        Zipf {
            n,
            theta,
            h_x1: h(1.0),
            h_integral_x1,
            h_integral_n,
            s,
        }
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        loop {
            let u = self.h_integral_x1 + rng.unit_f64() * (self.h_integral_n - self.h_integral_x1);
            let x = h_integral_inverse(u, self.theta);
            let k = x.round().clamp(1.0, self.n as f64);
            let k_int = k as u64;
            let h_integral = |x: f64| -> f64 {
                let log_x = x.ln();
                helper_h((1.0 - self.theta) * log_x) * log_x
            };
            let h = |x: f64| -> f64 { (-self.theta * x.ln()).exp() };
            if k - x <= self.s || u >= h_integral(k + 0.5) - h(k) {
                return k_int - 1;
            }
        }
    }

    /// Number of items in the distribution's support.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Ensures the unused field participates in Debug output only.
    #[doc(hidden)]
    pub fn h_x1(&self) -> f64 {
        self.h_x1
    }
}

/// `(exp(x) - 1) / x`, numerically stable near zero.
fn helper_h(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x / 2.0 * (1.0 + x / 3.0)
    }
}

/// Inverse of the `h_integral` used by the Zipf sampler.
fn h_integral_inverse(x: f64, theta: f64) -> f64 {
    let mut t = x * (1.0 - theta);
    if t < -1.0 {
        t = -1.0;
    }
    (helper_h_inv(t) * x).exp()
}

/// Inverse of `x ↦ ln(1+x)/x` via `ln1p`, stable near zero.
fn helper_h_inv(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x / 2.0 + x * x / 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed(1);
        let mut b = DetRng::seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(
            same < 2,
            "streams should be uncorrelated, got {} collisions",
            same
        );
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::seed(3);
        for _ in 0..10_000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn unit_f64_in_range_and_roughly_uniform() {
        let mut rng = DetRng::seed(4);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {}", mean);
    }

    #[test]
    fn std_normal_moments() {
        let mut rng = DetRng::seed(5);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.std_normal();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean was {}", mean);
        assert!((var - 1.0).abs() < 0.05, "variance was {}", var);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = DetRng::seed(6);
        let n = 100_000;
        let mean_target = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean_target)).sum();
        let mean = sum / n as f64;
        assert!((mean - mean_target).abs() < 0.1, "mean was {}", mean);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = DetRng::seed(9);
        let mut child = parent.fork();
        let same = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert!(same < 2);
    }

    #[test]
    fn split_streams_are_pairwise_distinct() {
        // 64-draw smoke over a 16-stream family: no two streams share a
        // prefix (and none collides with the parent `seed` stream either).
        const K: usize = 16;
        const DRAWS: usize = 64;
        let seed = 0xC4A0_0001u64;
        let mut prefixes: Vec<Vec<u64>> = (0..K as u64)
            .map(|i| {
                let mut r = DetRng::split(seed, i);
                (0..DRAWS).map(|_| r.next_u64()).collect()
            })
            .collect();
        let mut parent = DetRng::seed(seed);
        prefixes.push((0..DRAWS).map(|_| parent.next_u64()).collect());
        for a in 0..prefixes.len() {
            for b in (a + 1)..prefixes.len() {
                assert_ne!(prefixes[a], prefixes[b], "streams {a} and {b} collide");
                let same = prefixes[a]
                    .iter()
                    .zip(&prefixes[b])
                    .filter(|(x, y)| x == y)
                    .count();
                assert!(same < 2, "streams {a}/{b} correlate: {same} equal draws");
            }
        }
    }

    #[test]
    fn split_is_stable_across_family_size() {
        // Stream `i` is a pure function of `(seed, i)`: carving the same
        // seed into 4 or into 4096 streams hands shard 3 the same stream.
        for seed in [0u64, 7, 0xC4A0_0002, u64::MAX] {
            for i in [0u64, 3, 4095] {
                let mut a = DetRng::split(seed, i);
                let mut b = DetRng::split(seed, i);
                for _ in 0..64 {
                    assert_eq!(a.next_u64(), b.next_u64());
                }
            }
        }
    }

    #[test]
    fn split_output_is_pinned_for_canonical_seeds() {
        // The split function's output is part of the golden contract: the
        // thread-invariance goldens derive every shard's workload and fault
        // seeds through it, so changing the mixing constants would silently
        // re-bless the world. First two draws of streams 0–3, both canonical
        // seeds, recorded 2026-08.
        let pins: [(u64, u64, [u64; 2]); 8] = [
            (0xC4A0_0001, 0, [0xf955aa3fdbcf7353, 0xde4c78a7a2d8e776]),
            (0xC4A0_0001, 1, [0xd3f4673cfe574651, 0x4cbf97131fd8a167]),
            (0xC4A0_0001, 2, [0xb90f627bcc05a0ef, 0x0c8f65973e0409ac]),
            (0xC4A0_0001, 3, [0xf507384ec795df6e, 0x2b6c8df9ca210ff9]),
            (0xC4A0_0002, 0, [0x037fe1b8258337c5, 0x028cd2d4aef4a8f5]),
            (0xC4A0_0002, 1, [0x1104c87e362c74cb, 0xa8c921ebbbc1c261]),
            (0xC4A0_0002, 2, [0x16da7806aa0c231d, 0xdde802aba9635246]),
            (0xC4A0_0002, 3, [0xf94dd9acd6298150, 0x1cdafff1c67c6fe4]),
        ];
        for (seed, stream, expect) in pins {
            let mut r = DetRng::split(seed, stream);
            assert_eq!(
                [r.next_u64(), r.next_u64()],
                expect,
                "split({seed:#x}, {stream}) drifted"
            );
        }
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = DetRng::seed(10);
        let n = 100_000;
        let mut top10 = 0usize;
        for _ in 0..n {
            let r = z.sample(&mut rng);
            assert!(r < 1000);
            if r < 10 {
                top10 += 1;
            }
        }
        // For Zipf(0.99) over 1000 items, the top-10 mass is ≈ 39%.
        let frac = top10 as f64 / n as f64;
        assert!(frac > 0.3, "top-10 fraction was {}", frac);
    }

    #[test]
    fn zipf_low_skew_is_flatter() {
        let z = Zipf::new(1000, 0.2);
        let mut rng = DetRng::seed(11);
        let n = 100_000;
        let top10 = (0..n).filter(|_| z.sample(&mut rng) < 10).count();
        let frac = top10 as f64 / n as f64;
        assert!(frac < 0.1, "top-10 fraction was {}", frac);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = DetRng::seed(12);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
