//! Address-space units: virtual page numbers, frame numbers, page sizes.

use std::fmt;

/// Base page shift (4 KiB pages), matching x86-64.
pub const BASE_PAGE_SHIFT: u32 = 12;
/// Base page size in bytes.
pub const BASE_PAGE_BYTES: u64 = 1 << BASE_PAGE_SHIFT;
/// Number of base pages in a 2 MiB huge page.
pub const HUGE_2M_PAGES: u32 = 512;
/// Number of base pages in a 1 GiB huge page.
pub const HUGE_1G_PAGES: u32 = 512 * 512;

/// A virtual page number within one process address space.
///
/// Page numbers are dense indices starting at 0; the simulator does not model
/// sparse virtual layouts because none of the paper's mechanisms depend on
/// them (Ticking-scan walks VMAs linearly either way).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vpn(pub u32);

impl Vpn {
    /// The first page of the 2 MiB block containing this page.
    pub fn huge_head(self) -> Vpn {
        Vpn(self.0 & !(HUGE_2M_PAGES - 1))
    }

    /// Offset of this page within its 2 MiB block.
    pub fn huge_offset(self) -> u32 {
        self.0 & (HUGE_2M_PAGES - 1)
    }

    /// Whether this page is the head of its 2 MiB block.
    pub fn is_huge_head(self) -> bool {
        self.huge_offset() == 0
    }
}

impl fmt::Debug for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{:#x}", self.0)
    }
}

/// A physical frame number within one tier's frame table.
///
/// Frame namespaces are per-tier; a page's tier is tracked in its
/// [`PageFlags`](crate::page::PageFlags), so `(tier, Pfn)` identifies a frame.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pfn(pub u32);

impl Pfn {
    /// Sentinel for "no frame mapped".
    pub const NONE: Pfn = Pfn(u32::MAX);

    /// Whether this is the "no frame" sentinel.
    pub fn is_none(self) -> bool {
        self == Pfn::NONE
    }
}

impl fmt::Debug for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            write!(f, "p-")
        } else {
            write!(f, "p{:#x}", self.0)
        }
    }
}

/// Identifies a simulated process (dense index into the process table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub u16);

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Page granularities the system can map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageSize {
    /// 4 KiB base pages.
    Base,
    /// 2 MiB huge pages.
    Huge2M,
}

impl PageSize {
    /// Number of base pages per mapping unit.
    pub fn base_pages(self) -> u32 {
        match self {
            PageSize::Base => 1,
            PageSize::Huge2M => HUGE_2M_PAGES,
        }
    }

    /// Bytes per mapping unit.
    pub fn bytes(self) -> u64 {
        self.base_pages() as u64 * BASE_PAGE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huge_head_masks_low_bits() {
        assert_eq!(Vpn(0).huge_head(), Vpn(0));
        assert_eq!(Vpn(511).huge_head(), Vpn(0));
        assert_eq!(Vpn(512).huge_head(), Vpn(512));
        assert_eq!(Vpn(1023).huge_head(), Vpn(512));
    }

    #[test]
    fn huge_offset_and_head_agree() {
        for raw in [0u32, 1, 511, 512, 700, 1024] {
            let v = Vpn(raw);
            assert_eq!(v.huge_head().0 + v.huge_offset(), raw);
            assert_eq!(v.is_huge_head(), v.huge_offset() == 0);
        }
    }

    #[test]
    fn page_size_units() {
        assert_eq!(PageSize::Base.base_pages(), 1);
        assert_eq!(PageSize::Base.bytes(), 4096);
        assert_eq!(PageSize::Huge2M.base_pages(), 512);
        assert_eq!(PageSize::Huge2M.bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn pfn_none_sentinel() {
        assert!(Pfn::NONE.is_none());
        assert!(!Pfn(0).is_none());
    }
}
