//! System configuration: the tier chain and the kernel cost model.

use sim_clock::Nanos;

use crate::fault::FaultPlan;
use crate::tier::{TierChain, TierSpec};

/// Fixed CPU costs of kernel-side mechanisms, in simulated time.
///
/// Values are calibrated to published measurements: a minor fault costs on
/// the order of 1–2 µs to handle; a PTE visit during a scan is ~100 ns of
/// pointer chasing; remapping a migrated page (TLB shootdown included) is a
/// couple of microseconds on top of the copy itself.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Handling a demand (first-touch) fault, excluding zeroing.
    pub demand_fault: Nanos,
    /// Handling a `PROT_NONE` hint fault.
    pub hint_fault: Nanos,
    /// Visiting one PTE during a scan (read + possible write of the entry).
    pub scan_pte: Nanos,
    /// Fixed per-mapping-unit migration cost (unmap, TLB shootdown, remap).
    pub migrate_fixed: Nanos,
    /// Baseline per-operation CPU work of the workload (non-memory).
    pub cpu_op: Nanos,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            demand_fault: Nanos(1_200),
            hint_fault: Nanos(1_500),
            scan_pte: Nanos(120),
            migrate_fixed: Nanos(2_000),
            cpu_op: Nanos(15),
        }
    }
}

/// Disk-backed swap behind the last managed tier: the paper's overflow path
/// ("slow-tier pages could be swapped out to disk if necessary",
/// Section 3.3.1). Swap is not a managed tier — no hotness tracking — just
/// the chain's unmanaged terminal backstop
/// ([`crate::tier::TierChain::backstop`]): a place reclaimed pages go and
/// major faults come from.
#[derive(Debug, Clone)]
pub struct SwapSpec {
    /// Major-fault service latency (NVMe-class device).
    pub fault_latency: Nanos,
    /// Writeback time per page (amortized device bandwidth).
    pub writeback_per_page: Nanos,
}

impl Default for SwapSpec {
    fn default() -> SwapSpec {
        SwapSpec {
            fault_latency: Nanos::from_micros(8),
            writeback_per_page: Nanos::from_micros(2),
        }
    }
}

/// Admission-control knobs for the two-phase migration engine.
///
/// `begin_migrate` rejects with `MigrateError::Backpressure` once either
/// bound is hit, so policies see a real admission-control signal instead of
/// an unbounded copy queue. The defaults are generous enough that the
/// instantaneous-compat `migrate()` wrapper (which completes its transaction
/// in the same call) behaves as before except under sustained saturation.
#[derive(Debug, Clone)]
pub struct MigrationSpec {
    /// Maximum concurrently in-flight migration transactions.
    pub inflight_slots: usize,
    /// Maximum queued copy time on an edge's bandwidth channel before new
    /// transactions are rejected.
    pub backlog_cap: Nanos,
}

impl Default for MigrationSpec {
    fn default() -> MigrationSpec {
        MigrationSpec {
            inflight_slots: 512,
            backlog_cap: Nanos::from_millis(100),
        }
    }
}

/// Full system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// The ordered tier chain (managed tiers, copy edges, swap backstop).
    pub chain: TierChain,
    /// Kernel cost model.
    pub cost: CostModel,
    /// Two-phase migration engine admission control.
    pub migration: MigrationSpec,
    /// Optional deterministic fault plan (copy faults, frame poisoning,
    /// capacity hotplug, channel degradation). `None` — the default — means
    /// a perfect substrate: zero extra branches, zero RNG draws, digests
    /// unchanged.
    pub fault_plan: Option<FaultPlan>,
}

impl SystemConfig {
    /// A system over an arbitrary tier chain with default costs.
    pub fn from_chain(chain: TierChain) -> SystemConfig {
        SystemConfig {
            chain,
            cost: CostModel::default(),
            migration: MigrationSpec::default(),
            fault_plan: None,
        }
    }

    /// A DRAM + Optane-PMem system where the fast tier holds `fast_frames`
    /// and the slow tier `slow_frames` base pages. The paper's testbed has a
    /// 1:4 fast:slow capacity ratio (64 GB DRAM : 256 GB PMem, 25 % fast).
    pub fn dram_pmem(fast_frames: u32, slow_frames: u32) -> SystemConfig {
        SystemConfig::from_chain(TierChain::new(vec![
            TierSpec::dram(fast_frames),
            TierSpec::pmem(slow_frames),
        ]))
    }

    /// A DRAM + CXL-memory system with the same capacities.
    pub fn dram_cxl(fast_frames: u32, slow_frames: u32) -> SystemConfig {
        SystemConfig::from_chain(TierChain::new(vec![
            TierSpec::dram(fast_frames),
            TierSpec::cxl(slow_frames),
        ]))
    }

    /// A hot/warm/cold three-tier system: DRAM on top, CXL memory in the
    /// middle, PMem at the bottom, swap behind it.
    pub fn three_tier(fast_frames: u32, mid_frames: u32, slow_frames: u32) -> SystemConfig {
        SystemConfig::from_chain(TierChain::new(vec![
            TierSpec::dram(fast_frames),
            TierSpec::cxl(mid_frames),
            TierSpec::pmem(slow_frames),
        ]))
    }

    /// The paper's 25 % fast-tier ratio over a given total frame budget.
    pub fn quarter_fast(total_frames: u32) -> SystemConfig {
        let fast = total_frames / 4;
        SystemConfig::dram_pmem(fast, total_frames - fast)
    }

    /// The fastest (top) tier's spec — compat accessor for two-tier callers.
    pub fn fast(&self) -> &TierSpec {
        &self.chain.tiers[0]
    }

    /// The second tier's spec — the "slow" tier of the two-tier shape.
    pub fn slow(&self) -> &TierSpec {
        &self.chain.tiers[1]
    }

    /// The swap backstop behind the last managed tier.
    pub fn swap(&self) -> &SwapSpec {
        &self.chain.backstop
    }

    /// Number of managed tiers in the chain.
    pub fn num_tiers(&self) -> usize {
        self.chain.len()
    }

    /// Total capacity in frames across all managed tiers.
    pub fn total_frames(&self) -> u32 {
        self.chain.total_frames()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarter_fast_splits_25_75() {
        let cfg = SystemConfig::quarter_fast(1000);
        assert_eq!(cfg.fast().frames, 250);
        assert_eq!(cfg.slow().frames, 750);
        assert_eq!(cfg.total_frames(), 1000);
        assert_eq!(cfg.num_tiers(), 2);
    }

    #[test]
    fn default_costs_are_sane() {
        let c = CostModel::default();
        assert!(c.hint_fault > c.scan_pte);
        assert!(c.demand_fault.as_nanos() > 500);
        assert!(c.cpu_op < Nanos(100));
    }

    #[test]
    fn dram_cxl_slow_tier_is_symmetric_ish() {
        let cfg = SystemConfig::dram_cxl(100, 400);
        let asym =
            cfg.slow().write_latency.as_nanos() as f64 / cfg.slow().read_latency.as_nanos() as f64;
        assert!(
            asym < 1.5,
            "CXL should not have Optane-scale write asymmetry"
        );
    }

    #[test]
    fn three_tier_orders_fast_to_slow() {
        let cfg = SystemConfig::three_tier(64, 128, 256);
        assert_eq!(cfg.num_tiers(), 3);
        let lat: Vec<u64> = cfg
            .chain
            .tiers
            .iter()
            .map(|t| t.read_latency.as_nanos())
            .collect();
        assert!(lat[0] < lat[1] && lat[1] < lat[2]);
        assert_eq!(cfg.total_frames(), 64 + 128 + 256);
    }

    #[test]
    fn swap_lives_in_the_chain_backstop() {
        let cfg = SystemConfig::dram_pmem(10, 40);
        // Satellite check: the defaults the old SystemConfig.swap field
        // carried are preserved in the backstop, digests included.
        assert_eq!(cfg.swap().fault_latency, Nanos::from_micros(8));
        assert_eq!(cfg.swap().writeback_per_page, Nanos::from_micros(2));
    }
}
