//! Deterministic fault injection: seeded fault plans for the substrate.
//!
//! Real tiered systems are defined by how they behave when the substrate
//! stops being perfect: copies fail mid-flight, frames take uncorrectable
//! errors, tier capacity changes under the policy's feet, and interconnect
//! bandwidth degrades. A [`FaultPlan`] injects all four, driven entirely by
//! the sim-clock [`DetRng`] and the virtual clock — never wall time — so a
//! faulty run is exactly as replayable as a clean one: same plan + same
//! seed ⇒ byte-identical trace digests.
//!
//! The plan is strictly opt-in: with `SystemConfig::fault_plan == None` the
//! substrate draws zero random numbers and takes zero extra branches on the
//! hot paths, so every fault-free digest is unchanged.

use sim_clock::{DetRng, Nanos};

use crate::tier::TierId;

/// A scheduled hotplug-style capacity event on the fast tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityEvent {
    /// Virtual time at which the event fires.
    pub at: Nanos,
    /// What happens.
    pub kind: CapacityKind,
}

/// The two hotplug directions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityKind {
    /// Offline this fraction (0..1) of the fast tier's current usable
    /// frames. Frames come out of the free pool; if the pool is short the
    /// shrink takes what it can now and the rest as demotion frees more.
    ShrinkFastFraction(f64),
    /// Bring up to this many previously offlined frames back online.
    GrowFastFrames(u32),
}

/// A window during which one tier's migration-copy bandwidth is degraded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeWindow {
    /// The destination tier whose copy channel degrades.
    pub tier: TierId,
    /// Window start (inclusive).
    pub from: Nanos,
    /// Window end (exclusive).
    pub until: Nanos,
    /// Copy-cost multiplier while active (`>= 1.0`; 4.0 means the channel
    /// runs at a quarter of its healthy bandwidth).
    pub cost_multiplier: f64,
}

/// A deterministic fault plan. See the module docs; attach one via
/// [`crate::SystemConfig::fault_plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the plan's private [`DetRng`] (independent of every other
    /// RNG in the system so enabling faults perturbs nothing else).
    pub seed: u64,
    /// Probability that a due migration copy fails transiently (retryable:
    /// the reservation is released, the source copy stays authoritative).
    pub copy_transient: f64,
    /// Probability that a due migration copy fails permanently: one
    /// destination frame goes bad and is quarantined.
    pub copy_poison: f64,
    /// Scheduled capacity events, in firing order.
    pub capacity_events: Vec<CapacityEvent>,
    /// Channel degradation windows.
    pub degrade_windows: Vec<DegradeWindow>,
}

impl FaultPlan {
    /// An inert plan: no probabilistic faults, no scheduled events. Useful
    /// as a base for builder-style construction and for tests that drive
    /// faults through the explicit APIs only.
    pub fn inert(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            copy_transient: 0.0,
            copy_poison: 0.0,
            capacity_events: Vec::new(),
            degrade_windows: Vec::new(),
        }
    }

    /// The canonical chaos plan of the acceptance bar: 1 % transient copy
    /// failure, 0.01 % poison, and one 25 % fast-tier shrink at the middle
    /// of a `run_for`-long run.
    pub fn canonical(seed: u64, run_for: Nanos) -> FaultPlan {
        FaultPlan {
            seed,
            copy_transient: 0.01,
            copy_poison: 0.0001,
            capacity_events: vec![CapacityEvent {
                at: Nanos(run_for.as_nanos() / 2),
                kind: CapacityKind::ShrinkFastFraction(0.25),
            }],
            degrade_windows: Vec::new(),
        }
    }

    /// A high-rate storm plan for fuzzing: every fault class fires often
    /// enough that a few thousand ops exercise all of them.
    pub fn storm(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            copy_transient: 0.2,
            copy_poison: 0.05,
            capacity_events: Vec::new(),
            degrade_windows: Vec::new(),
        }
    }
}

/// Outcome of one copy-fault roll at migration-completion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyFault {
    /// The copy succeeded.
    None,
    /// The copy failed transiently; a retry may succeed.
    Transient,
    /// The copy failed permanently; a destination frame went bad.
    Poison,
}

/// Live fault-injection state: the plan plus its RNG and event cursor.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    rng: DetRng,
    next_event: usize,
}

impl FaultState {
    /// Instantiates a plan (sorts its capacity events by firing time).
    pub fn new(mut plan: FaultPlan) -> FaultState {
        plan.capacity_events.sort_by_key(|e| e.at);
        FaultState {
            rng: DetRng::seed(plan.seed ^ 0x000F_A017_5EED),
            plan,
            next_event: 0,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Rolls the copy-fault dice for one due migration. Draws from the RNG
    /// only when the corresponding probability is non-zero, so an inert
    /// plan consumes no randomness.
    pub fn roll_copy_fault(&mut self) -> CopyFault {
        if self.plan.copy_poison > 0.0 && self.rng.chance(self.plan.copy_poison) {
            return CopyFault::Poison;
        }
        if self.plan.copy_transient > 0.0 && self.rng.chance(self.plan.copy_transient) {
            return CopyFault::Transient;
        }
        CopyFault::None
    }

    /// Pops every capacity event due at or before `now`, in firing order.
    pub fn due_capacity_events(&mut self, now: Nanos) -> Vec<CapacityEvent> {
        let mut due = Vec::new();
        while let Some(e) = self.plan.capacity_events.get(self.next_event) {
            if e.at > now {
                break;
            }
            due.push(*e);
            self.next_event += 1;
        }
        due
    }

    /// Adds a degradation window at runtime (fuzz ops, procfs-style knobs).
    pub fn add_degrade_window(&mut self, w: DegradeWindow) {
        self.plan.degrade_windows.push(w);
    }

    /// The copy-cost multiplier for a destination tier at `now` (product of
    /// all active windows; 1.0 when the channel is healthy).
    pub fn cost_multiplier(&self, tier: TierId, now: Nanos) -> f64 {
        let mut m = 1.0;
        for w in &self.plan.degrade_windows {
            if w.tier == tier && w.from <= now && now < w.until {
                m *= w.cost_multiplier.max(1.0);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_rolls_no_faults_and_draws_nothing() {
        let mut a = FaultState::new(FaultPlan::inert(7));
        let fresh = FaultState::new(FaultPlan::inert(7));
        for _ in 0..100 {
            assert_eq!(a.roll_copy_fault(), CopyFault::None);
        }
        // Zero-probability rolls consumed no randomness: the RNG stream is
        // still byte-identical to a fresh state's.
        let mut b = fresh;
        a.plan.copy_transient = 1.0;
        b.plan.copy_transient = 1.0;
        for _ in 0..32 {
            assert_eq!(a.roll_copy_fault(), b.roll_copy_fault());
        }
    }

    #[test]
    fn fault_rolls_are_deterministic_per_seed() {
        let roll = |seed| {
            let mut s = FaultState::new(FaultPlan::storm(seed));
            (0..256).map(|_| s.roll_copy_fault()).collect::<Vec<_>>()
        };
        assert_eq!(roll(1), roll(1));
        assert_ne!(roll(1), roll(2));
        let outcomes = roll(1);
        assert!(outcomes.contains(&CopyFault::Transient));
        assert!(outcomes.contains(&CopyFault::Poison));
        assert!(outcomes.contains(&CopyFault::None));
    }

    #[test]
    fn capacity_events_fire_in_time_order_once() {
        let mut plan = FaultPlan::inert(0);
        plan.capacity_events = vec![
            CapacityEvent {
                at: Nanos(200),
                kind: CapacityKind::GrowFastFrames(8),
            },
            CapacityEvent {
                at: Nanos(100),
                kind: CapacityKind::ShrinkFastFraction(0.5),
            },
        ];
        let mut s = FaultState::new(plan);
        assert!(s.due_capacity_events(Nanos(50)).is_empty());
        let due = s.due_capacity_events(Nanos(150));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].at, Nanos(100));
        let due = s.due_capacity_events(Nanos(10_000));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].at, Nanos(200));
        assert!(s.due_capacity_events(Nanos(u64::MAX)).is_empty());
    }

    #[test]
    fn degrade_windows_compose_and_expire() {
        let mut s = FaultState::new(FaultPlan::inert(0));
        s.add_degrade_window(DegradeWindow {
            tier: TierId::FAST,
            from: Nanos(100),
            until: Nanos(200),
            cost_multiplier: 2.0,
        });
        s.add_degrade_window(DegradeWindow {
            tier: TierId::FAST,
            from: Nanos(150),
            until: Nanos(300),
            cost_multiplier: 3.0,
        });
        assert_eq!(s.cost_multiplier(TierId::FAST, Nanos(50)), 1.0);
        assert_eq!(s.cost_multiplier(TierId::FAST, Nanos(120)), 2.0);
        assert_eq!(s.cost_multiplier(TierId::FAST, Nanos(160)), 6.0);
        assert_eq!(s.cost_multiplier(TierId::FAST, Nanos(250)), 3.0);
        assert_eq!(s.cost_multiplier(TierId::FAST, Nanos(300)), 1.0);
        assert_eq!(s.cost_multiplier(TierId::SLOW, Nanos(160)), 1.0);
    }

    #[test]
    fn canonical_plan_matches_acceptance_bar() {
        let p = FaultPlan::canonical(9, Nanos::from_millis(100));
        assert!((p.copy_transient - 0.01).abs() < 1e-12);
        assert!((p.copy_poison - 0.0001).abs() < 1e-12);
        assert_eq!(p.capacity_events.len(), 1);
        assert_eq!(p.capacity_events[0].at, Nanos::from_millis(50));
    }
}
