//! Deterministic fault injection: seeded fault plans for the substrate.
//!
//! Real tiered systems are defined by how they behave when the substrate
//! stops being perfect: copies fail mid-flight, frames take uncorrectable
//! errors, tier capacity changes under the policy's feet, and interconnect
//! bandwidth degrades. A [`FaultPlan`] injects all four, driven entirely by
//! the sim-clock [`DetRng`] and the virtual clock — never wall time — so a
//! faulty run is exactly as replayable as a clean one: same plan + same
//! seed ⇒ byte-identical trace digests.
//!
//! The plan is strictly opt-in: with `SystemConfig::fault_plan == None` the
//! substrate draws zero random numbers and takes zero extra branches on the
//! hot paths, so every fault-free digest is unchanged.

use sim_clock::{DetRng, Nanos};

use crate::tier::TierId;

/// A scheduled hotplug-style capacity event on the fast tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityEvent {
    /// Virtual time at which the event fires.
    pub at: Nanos,
    /// What happens.
    pub kind: CapacityKind,
}

/// The hotplug directions. The `Fast*` variants predate N-tier chains and
/// always target tier 0; the `Tier*` variants name their tier explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityKind {
    /// Offline this fraction (0..1) of the fast tier's current usable
    /// frames. Frames come out of the free pool; if the pool is short the
    /// shrink takes what it can now and the rest as demotion frees more.
    ShrinkFastFraction(f64),
    /// Bring up to this many previously offlined frames back online.
    GrowFastFrames(u32),
    /// Per-tier shrink: same semantics as [`CapacityKind::ShrinkFastFraction`]
    /// but on an arbitrary tier of the chain.
    ShrinkTierFraction {
        /// Tier whose capacity shrinks.
        tier: TierId,
        /// Fraction (0..1) of current usable frames to offline.
        fraction: f64,
    },
    /// Per-tier grow: same semantics as [`CapacityKind::GrowFastFrames`].
    GrowTierFrames {
        /// Tier whose capacity grows.
        tier: TierId,
        /// Offlined frames to bring back online (clamped to what exists).
        frames: u32,
    },
}

impl CapacityKind {
    /// The tier a capacity event targets (legacy fast-tier variants target
    /// tier 0).
    pub fn tier(&self) -> TierId {
        match *self {
            CapacityKind::ShrinkFastFraction(_) | CapacityKind::GrowFastFrames(_) => TierId::FAST,
            CapacityKind::ShrinkTierFraction { tier, .. }
            | CapacityKind::GrowTierFrames { tier, .. } => tier,
        }
    }
}

/// A scheduled tier-level failure-domain event: whole-device offline (with
/// an evacuation deadline), device-level degradation, or rejoin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierEvent {
    /// Virtual time at which the event fires.
    pub at: Nanos,
    /// The tier whose health changes. Tier 0 may degrade but never go
    /// offline ([`FaultPlan::validate_for`] rejects such plans).
    pub tier: TierId,
    /// What happens.
    pub kind: TierEventKind,
}

/// The tier health transitions a plan can schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TierEventKind {
    /// Take the tier offline. Evacuation starts immediately (emergency
    /// migration lane); at `deadline` any stragglers are force-drained to
    /// the nearest healthy neighbor or the swap backstop, the tier's frames
    /// are offlined, and the chain splices around the tier.
    Offline {
        /// Absolute time by which evacuation must complete.
        deadline: Nanos,
    },
    /// Degrade the tier's copy channel until `until` (health shows
    /// `Degrading`; copies targeting the tier pay `cost_multiplier`).
    Degrade {
        /// Window end (exclusive).
        until: Nanos,
        /// Copy-cost multiplier while degraded (`>= 1.0`).
        cost_multiplier: f64,
    },
    /// Bring an offline tier back: it re-enters as `Rejoining` and flips to
    /// `Online` on the next migration-completion pass, after which policies
    /// may rebalance onto it.
    Online,
}

/// A window during which one tier's migration-copy bandwidth is degraded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradeWindow {
    /// The destination tier whose copy channel degrades.
    pub tier: TierId,
    /// Window start (inclusive).
    pub from: Nanos,
    /// Window end (exclusive).
    pub until: Nanos,
    /// Copy-cost multiplier while active (`>= 1.0`; 4.0 means the channel
    /// runs at a quarter of its healthy bandwidth).
    pub cost_multiplier: f64,
}

/// A deterministic fault plan. See the module docs; attach one via
/// [`crate::SystemConfig::fault_plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the plan's private [`DetRng`] (independent of every other
    /// RNG in the system so enabling faults perturbs nothing else).
    pub seed: u64,
    /// Probability that a due migration copy fails transiently (retryable:
    /// the reservation is released, the source copy stays authoritative).
    pub copy_transient: f64,
    /// Probability that a due migration copy fails permanently: one
    /// destination frame goes bad and is quarantined.
    pub copy_poison: f64,
    /// Scheduled capacity events, in firing order.
    pub capacity_events: Vec<CapacityEvent>,
    /// Channel degradation windows.
    pub degrade_windows: Vec<DegradeWindow>,
    /// Scheduled tier-level failure-domain events, in firing order.
    pub tier_events: Vec<TierEvent>,
}

impl FaultPlan {
    /// An inert plan: no probabilistic faults, no scheduled events. Useful
    /// as a base for builder-style construction and for tests that drive
    /// faults through the explicit APIs only.
    pub fn inert(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            copy_transient: 0.0,
            copy_poison: 0.0,
            capacity_events: Vec::new(),
            degrade_windows: Vec::new(),
            tier_events: Vec::new(),
        }
    }

    /// The canonical chaos plan of the acceptance bar: 1 % transient copy
    /// failure, 0.01 % poison, and one 25 % fast-tier shrink at the middle
    /// of a `run_for`-long run.
    pub fn canonical(seed: u64, run_for: Nanos) -> FaultPlan {
        FaultPlan {
            seed,
            copy_transient: 0.01,
            copy_poison: 0.0001,
            capacity_events: vec![CapacityEvent {
                at: Nanos(run_for.as_nanos() / 2),
                kind: CapacityKind::ShrinkFastFraction(0.25),
            }],
            degrade_windows: Vec::new(),
            tier_events: Vec::new(),
        }
    }

    /// A high-rate storm plan for fuzzing: every fault class fires often
    /// enough that a few thousand ops exercise all of them.
    pub fn storm(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            copy_transient: 0.2,
            copy_poison: 0.05,
            capacity_events: Vec::new(),
            degrade_windows: Vec::new(),
            tier_events: Vec::new(),
        }
    }

    /// The three-tier-aware canonical plan: `canonical`'s copy-fault rates,
    /// a 25 % mid-tier (CXL) shrink at a quarter of the run, then the full
    /// failure-domain arc — mid-tier offline at the midpoint with an
    /// eighth-of-the-run evacuation deadline, rejoin at three quarters —
    /// while the bottom tier degrades under the evacuation load it absorbs.
    /// Requires a chain with at least three tiers
    /// ([`FaultPlan::validate_for`]).
    pub fn canonical3(seed: u64, run_for: Nanos) -> FaultPlan {
        let t = run_for.as_nanos();
        let mid = TierId(1);
        FaultPlan {
            seed,
            copy_transient: 0.01,
            copy_poison: 0.0001,
            capacity_events: vec![CapacityEvent {
                at: Nanos(t / 4),
                kind: CapacityKind::ShrinkTierFraction {
                    tier: mid,
                    fraction: 0.25,
                },
            }],
            degrade_windows: Vec::new(),
            tier_events: vec![
                TierEvent {
                    at: Nanos(t * 3 / 8),
                    tier: mid,
                    kind: TierEventKind::Degrade {
                        until: Nanos(t / 2),
                        cost_multiplier: 4.0,
                    },
                },
                TierEvent {
                    at: Nanos(t / 2),
                    tier: mid,
                    kind: TierEventKind::Offline {
                        deadline: Nanos(t / 2 + t / 8),
                    },
                },
                // The bottom tier soaks up the evacuation and slows down for
                // its duration; this also pins the plan to >= 3 tiers.
                TierEvent {
                    at: Nanos(t / 2),
                    tier: TierId(2),
                    kind: TierEventKind::Degrade {
                        until: Nanos(t * 5 / 8),
                        cost_multiplier: 2.0,
                    },
                },
                TierEvent {
                    at: Nanos(t * 3 / 4),
                    tier: mid,
                    kind: TierEventKind::Online,
                },
            ],
        }
    }

    /// The three-tier storm: `storm`'s copy-fault rates plus staggered
    /// offline/online cycles on both lower tiers and per-tier capacity
    /// wobble, packed into `run_for` so a short fuzz case exercises
    /// evacuation, splice, and rejoin on every failure domain.
    pub fn storm3(seed: u64, run_for: Nanos) -> FaultPlan {
        let t = run_for.as_nanos();
        FaultPlan {
            seed,
            copy_transient: 0.2,
            copy_poison: 0.05,
            capacity_events: vec![
                CapacityEvent {
                    at: Nanos(t / 8),
                    kind: CapacityKind::ShrinkTierFraction {
                        tier: TierId(2),
                        fraction: 0.2,
                    },
                },
                CapacityEvent {
                    at: Nanos(t * 7 / 8),
                    kind: CapacityKind::GrowTierFrames {
                        tier: TierId(2),
                        frames: u32::MAX,
                    },
                },
            ],
            degrade_windows: Vec::new(),
            tier_events: vec![
                TierEvent {
                    at: Nanos(t / 4),
                    tier: TierId(1),
                    kind: TierEventKind::Offline {
                        deadline: Nanos(t / 4 + t / 16),
                    },
                },
                TierEvent {
                    at: Nanos(t / 2),
                    tier: TierId(1),
                    kind: TierEventKind::Online,
                },
                TierEvent {
                    at: Nanos(t * 5 / 8),
                    tier: TierId(2),
                    kind: TierEventKind::Offline {
                        deadline: Nanos(t * 5 / 8 + t / 16),
                    },
                },
                TierEvent {
                    at: Nanos(t * 3 / 4),
                    tier: TierId(2),
                    kind: TierEventKind::Online,
                },
            ],
        }
    }

    /// Checks the plan against a chain of `num_tiers` tiers: every tier a
    /// capacity event, degrade window, or tier event references must exist,
    /// and tier 0 (the top of the chain) must never be taken offline.
    /// Returns a description of the first violation, so callers (the
    /// harness `--fault-plan` flag) can reject mismatched plan/topology
    /// combinations instead of silently no-opping.
    pub fn validate_for(&self, num_tiers: usize) -> Result<(), String> {
        let check = |what: &str, tier: TierId| -> Result<(), String> {
            if tier.index() >= num_tiers {
                return Err(format!(
                    "{what} references tier {} but the topology has only {num_tiers} tiers",
                    tier.index()
                ));
            }
            Ok(())
        };
        for e in &self.capacity_events {
            check("capacity event", e.kind.tier())?;
        }
        for w in &self.degrade_windows {
            check("degrade window", w.tier)?;
        }
        for e in &self.tier_events {
            check("tier event", e.tier)?;
            if matches!(e.kind, TierEventKind::Offline { .. }) && e.tier == TierId::FAST {
                return Err("tier event takes tier 0 offline; the top tier cannot fail".into());
            }
            if let TierEventKind::Offline { deadline } = e.kind {
                if deadline < e.at {
                    return Err(format!(
                        "tier {} offline at {} has deadline {} in the past",
                        e.tier.index(),
                        e.at.as_nanos(),
                        deadline.as_nanos()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Outcome of one copy-fault roll at migration-completion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyFault {
    /// The copy succeeded.
    None,
    /// The copy failed transiently; a retry may succeed.
    Transient,
    /// The copy failed permanently; a destination frame went bad.
    Poison,
}

/// Live fault-injection state: the plan plus its RNG and event cursor.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    rng: DetRng,
    next_event: usize,
    next_tier_event: usize,
}

impl FaultState {
    /// Instantiates a plan (sorts its capacity and tier events by firing
    /// time).
    pub fn new(mut plan: FaultPlan) -> FaultState {
        plan.capacity_events.sort_by_key(|e| e.at);
        plan.tier_events.sort_by_key(|e| e.at);
        FaultState {
            rng: DetRng::seed(plan.seed ^ 0x000F_A017_5EED),
            plan,
            next_event: 0,
            next_tier_event: 0,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Rolls the copy-fault dice for one due migration. Draws from the RNG
    /// only when the corresponding probability is non-zero, so an inert
    /// plan consumes no randomness.
    pub fn roll_copy_fault(&mut self) -> CopyFault {
        if self.plan.copy_poison > 0.0 && self.rng.chance(self.plan.copy_poison) {
            return CopyFault::Poison;
        }
        if self.plan.copy_transient > 0.0 && self.rng.chance(self.plan.copy_transient) {
            return CopyFault::Transient;
        }
        CopyFault::None
    }

    /// Pops every capacity event due at or before `now`, in firing order.
    pub fn due_capacity_events(&mut self, now: Nanos) -> Vec<CapacityEvent> {
        let mut due = Vec::new();
        while let Some(e) = self.plan.capacity_events.get(self.next_event) {
            if e.at > now {
                break;
            }
            due.push(*e);
            self.next_event += 1;
        }
        due
    }

    /// Pops every tier event due at or before `now`, in firing order.
    pub fn due_tier_events(&mut self, now: Nanos) -> Vec<TierEvent> {
        let mut due = Vec::new();
        while let Some(e) = self.plan.tier_events.get(self.next_tier_event) {
            if e.at > now {
                break;
            }
            due.push(*e);
            self.next_tier_event += 1;
        }
        due
    }

    /// Whether any tier event is still pending (used by the completion pump
    /// to keep servicing the plan on otherwise-idle passes).
    pub fn tier_events_pending(&self) -> bool {
        self.next_tier_event < self.plan.tier_events.len()
    }

    /// Adds a tier event at runtime (fuzz ops, chaos drivers). Events added
    /// after instantiation must fire later than everything already pending,
    /// or they are clamped to fire with the next pending event.
    pub fn add_tier_event(&mut self, e: TierEvent) {
        let pos = self
            .plan
            .tier_events
            .iter()
            .skip(self.next_tier_event)
            .position(|p| p.at > e.at)
            .map(|i| i + self.next_tier_event)
            .unwrap_or(self.plan.tier_events.len());
        self.plan
            .tier_events
            .insert(pos.max(self.next_tier_event), e);
    }

    /// Adds a degradation window at runtime (fuzz ops, procfs-style knobs).
    pub fn add_degrade_window(&mut self, w: DegradeWindow) {
        self.plan.degrade_windows.push(w);
    }

    /// The copy-cost multiplier for a destination tier at `now` (product of
    /// all active windows; 1.0 when the channel is healthy).
    pub fn cost_multiplier(&self, tier: TierId, now: Nanos) -> f64 {
        let mut m = 1.0;
        for w in &self.plan.degrade_windows {
            if w.tier == tier && w.from <= now && now < w.until {
                m *= w.cost_multiplier.max(1.0);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_rolls_no_faults_and_draws_nothing() {
        let mut a = FaultState::new(FaultPlan::inert(7));
        let fresh = FaultState::new(FaultPlan::inert(7));
        for _ in 0..100 {
            assert_eq!(a.roll_copy_fault(), CopyFault::None);
        }
        // Zero-probability rolls consumed no randomness: the RNG stream is
        // still byte-identical to a fresh state's.
        let mut b = fresh;
        a.plan.copy_transient = 1.0;
        b.plan.copy_transient = 1.0;
        for _ in 0..32 {
            assert_eq!(a.roll_copy_fault(), b.roll_copy_fault());
        }
    }

    #[test]
    fn fault_rolls_are_deterministic_per_seed() {
        let roll = |seed| {
            let mut s = FaultState::new(FaultPlan::storm(seed));
            (0..256).map(|_| s.roll_copy_fault()).collect::<Vec<_>>()
        };
        assert_eq!(roll(1), roll(1));
        assert_ne!(roll(1), roll(2));
        let outcomes = roll(1);
        assert!(outcomes.contains(&CopyFault::Transient));
        assert!(outcomes.contains(&CopyFault::Poison));
        assert!(outcomes.contains(&CopyFault::None));
    }

    #[test]
    fn capacity_events_fire_in_time_order_once() {
        let mut plan = FaultPlan::inert(0);
        plan.capacity_events = vec![
            CapacityEvent {
                at: Nanos(200),
                kind: CapacityKind::GrowFastFrames(8),
            },
            CapacityEvent {
                at: Nanos(100),
                kind: CapacityKind::ShrinkFastFraction(0.5),
            },
        ];
        let mut s = FaultState::new(plan);
        assert!(s.due_capacity_events(Nanos(50)).is_empty());
        let due = s.due_capacity_events(Nanos(150));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].at, Nanos(100));
        let due = s.due_capacity_events(Nanos(10_000));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].at, Nanos(200));
        assert!(s.due_capacity_events(Nanos(u64::MAX)).is_empty());
    }

    #[test]
    fn degrade_windows_compose_and_expire() {
        let mut s = FaultState::new(FaultPlan::inert(0));
        s.add_degrade_window(DegradeWindow {
            tier: TierId::FAST,
            from: Nanos(100),
            until: Nanos(200),
            cost_multiplier: 2.0,
        });
        s.add_degrade_window(DegradeWindow {
            tier: TierId::FAST,
            from: Nanos(150),
            until: Nanos(300),
            cost_multiplier: 3.0,
        });
        assert_eq!(s.cost_multiplier(TierId::FAST, Nanos(50)), 1.0);
        assert_eq!(s.cost_multiplier(TierId::FAST, Nanos(120)), 2.0);
        assert_eq!(s.cost_multiplier(TierId::FAST, Nanos(160)), 6.0);
        assert_eq!(s.cost_multiplier(TierId::FAST, Nanos(250)), 3.0);
        assert_eq!(s.cost_multiplier(TierId::FAST, Nanos(300)), 1.0);
        assert_eq!(s.cost_multiplier(TierId::SLOW, Nanos(160)), 1.0);
    }

    #[test]
    fn tier_events_fire_in_time_order_once() {
        let mut plan = FaultPlan::inert(0);
        plan.tier_events = vec![
            TierEvent {
                at: Nanos(300),
                tier: TierId(1),
                kind: TierEventKind::Online,
            },
            TierEvent {
                at: Nanos(100),
                tier: TierId(1),
                kind: TierEventKind::Offline {
                    deadline: Nanos(200),
                },
            },
        ];
        let mut s = FaultState::new(plan);
        assert!(s.tier_events_pending());
        assert!(s.due_tier_events(Nanos(50)).is_empty());
        let due = s.due_tier_events(Nanos(150));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].at, Nanos(100));
        assert!(s.tier_events_pending());
        let due = s.due_tier_events(Nanos(10_000));
        assert_eq!(due.len(), 1);
        assert!(matches!(due[0].kind, TierEventKind::Online));
        assert!(!s.tier_events_pending());
        assert!(s.due_tier_events(Nanos(u64::MAX)).is_empty());
    }

    #[test]
    fn runtime_tier_events_never_fire_before_the_cursor() {
        let mut plan = FaultPlan::inert(0);
        plan.tier_events = vec![TierEvent {
            at: Nanos(100),
            tier: TierId(1),
            kind: TierEventKind::Offline {
                deadline: Nanos(150),
            },
        }];
        let mut s = FaultState::new(plan);
        assert_eq!(s.due_tier_events(Nanos(120)).len(), 1);
        // A late insertion with an already-past firing time still fires (on
        // the next poll), rather than being skipped behind the cursor.
        s.add_tier_event(TierEvent {
            at: Nanos(50),
            tier: TierId(1),
            kind: TierEventKind::Online,
        });
        let due = s.due_tier_events(Nanos(120));
        assert_eq!(due.len(), 1);
        assert!(matches!(due[0].kind, TierEventKind::Online));
    }

    #[test]
    fn validate_for_rejects_out_of_range_tiers_and_top_tier_offline() {
        let run = Nanos::from_millis(10);
        assert!(FaultPlan::canonical(1, run).validate_for(2).is_ok());
        assert!(FaultPlan::canonical3(1, run).validate_for(3).is_ok());
        assert!(FaultPlan::storm3(1, run).validate_for(3).is_ok());
        // Three-tier plans reference tier 1 / tier 2 and must be rejected
        // on a two-tier topology.
        assert!(FaultPlan::canonical3(1, run).validate_for(2).is_err());
        assert!(FaultPlan::storm3(1, run).validate_for(2).is_err());

        let mut p = FaultPlan::inert(0);
        p.tier_events.push(TierEvent {
            at: Nanos(10),
            tier: TierId::FAST,
            kind: TierEventKind::Offline {
                deadline: Nanos(20),
            },
        });
        assert!(p.validate_for(3).is_err(), "top tier cannot go offline");

        let mut p = FaultPlan::inert(0);
        p.tier_events.push(TierEvent {
            at: Nanos(100),
            tier: TierId(1),
            kind: TierEventKind::Offline {
                deadline: Nanos(50),
            },
        });
        assert!(p.validate_for(3).is_err(), "deadline before firing time");

        let mut p = FaultPlan::inert(0);
        p.degrade_windows.push(DegradeWindow {
            tier: TierId(3),
            from: Nanos(0),
            until: Nanos(10),
            cost_multiplier: 2.0,
        });
        assert!(p.validate_for(3).is_err(), "degrade window past the chain");
    }

    #[test]
    fn canonical3_schedules_the_full_failure_arc_on_the_mid_tier() {
        let p = FaultPlan::canonical3(9, Nanos::from_millis(80));
        let mid: Vec<_> = p
            .tier_events
            .iter()
            .filter(|e| e.tier == TierId(1))
            .collect();
        assert!(matches!(mid[0].kind, TierEventKind::Degrade { .. }));
        let TierEventKind::Offline { deadline } = mid[1].kind else {
            panic!("second mid-tier event must be the offline");
        };
        assert!(deadline > mid[1].at);
        assert!(deadline < mid[2].at, "rejoin after the deadline");
        assert!(matches!(mid[2].kind, TierEventKind::Online));
        // The bottom tier degrades while evacuation runs, which also pins
        // the plan to three-tier topologies.
        assert!(p
            .tier_events
            .iter()
            .any(|e| e.tier == TierId(2) && matches!(e.kind, TierEventKind::Degrade { .. })));
        assert!(matches!(
            p.capacity_events[0].kind,
            CapacityKind::ShrinkTierFraction {
                tier: TierId(1),
                ..
            }
        ));
    }

    #[test]
    fn canonical_plan_matches_acceptance_bar() {
        let p = FaultPlan::canonical(9, Nanos::from_millis(100));
        assert!((p.copy_transient - 0.01).abs() < 1e-12);
        assert!((p.copy_poison - 0.0001).abs() < 1e-12);
        assert_eq!(p.capacity_events.len(), 1);
        assert_eq!(p.capacity_events[0].at, Nanos::from_millis(50));
    }
}
