//! Per-tier physical frame allocation with reverse mapping.

use std::collections::BTreeSet;

use crate::addr::{Pfn, ProcessId, Vpn};

/// Reverse-map record: which virtual page owns a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameOwner {
    /// Owning process.
    pub pid: ProcessId,
    /// Owning virtual page.
    pub vpn: Vpn,
}

/// A frame table for one tier: allocation, freeing, and reverse mapping.
///
/// Frames are identified by dense [`Pfn`] indices. Physical contiguity is not
/// modelled — no mechanism in the paper depends on it (huge pages are handled
/// at the mapping layer), so a free *list* suffices and keeps allocation O(1).
#[derive(Debug)]
pub struct FrameTable {
    owners: Vec<Option<FrameOwner>>,
    free: Vec<u32>,
    /// Frames permanently retired after an uncorrectable error. Quarantined
    /// frames are out of every pool: never free, never allocatable, never
    /// counted usable again.
    quarantined: BTreeSet<u32>,
    /// Frames taken out of service by a capacity-shrink (hotplug) event;
    /// a grow event brings them back, most recently offlined first.
    offlined: Vec<u32>,
}

impl FrameTable {
    /// Creates a table with `frames` free frames.
    pub fn new(frames: u32) -> FrameTable {
        FrameTable {
            owners: vec![None; frames as usize],
            // Pop from the back; reversing makes allocation order ascending,
            // which is convenient for debugging and deterministic.
            free: (0..frames).rev().collect(),
            quarantined: BTreeSet::new(),
            offlined: Vec::new(),
        }
    }

    /// Total number of frames ever provisioned, including quarantined and
    /// offlined ones (the conservation denominator:
    /// `used + free + quarantined + offlined == total`).
    pub fn total(&self) -> u32 {
        self.owners.len() as u32
    }

    /// Frames currently in service: total minus quarantined minus offlined.
    /// This is the "tier size" watermarks and allocation policy see.
    pub fn usable_frames(&self) -> u32 {
        self.total() - self.quarantined_frames() - self.offlined_frames()
    }

    /// Number of currently free frames.
    pub fn free_frames(&self) -> u32 {
        self.free.len() as u32
    }

    /// Number of currently allocated frames.
    pub fn used_frames(&self) -> u32 {
        self.usable_frames() - self.free_frames()
    }

    /// Number of permanently quarantined frames.
    pub fn quarantined_frames(&self) -> u32 {
        self.quarantined.len() as u32
    }

    /// Number of frames currently offlined by capacity shrink.
    pub fn offlined_frames(&self) -> u32 {
        self.offlined.len() as u32
    }

    /// Whether a frame sits in the quarantine pool.
    pub fn is_quarantined(&self, pfn: Pfn) -> bool {
        self.quarantined.contains(&pfn.0)
    }

    /// Whether a frame sits on the free list (linear scan; diagnostic and
    /// oracle use only, not a hot path).
    pub fn is_free(&self, pfn: Pfn) -> bool {
        self.free.contains(&pfn.0)
    }

    /// The quarantined frame numbers, ascending (oracle walks).
    pub fn quarantined_pfns(&self) -> impl Iterator<Item = Pfn> + '_ {
        self.quarantined.iter().map(|&i| Pfn(i))
    }

    /// Permanently retires a *free* frame after an uncorrectable error.
    /// The caller unmaps/releases the frame first (soft-offline migrates
    /// the resident page away; reservation release frees a copy target).
    ///
    /// # Panics
    ///
    /// Panics if the frame is not currently free — quarantining a mapped or
    /// already-quarantined frame is a simulator bug.
    pub fn quarantine(&mut self, pfn: Pfn) {
        let before = self.free.len();
        self.free.retain(|&i| i != pfn.0);
        assert_eq!(
            before,
            self.free.len() + 1,
            "quarantine of non-free frame {:?}",
            pfn
        );
        self.quarantined.insert(pfn.0);
    }

    /// Moves a specific offlined frame straight into quarantine (poison
    /// landing on an out-of-service frame must keep a later grow event from
    /// reviving it). Returns whether the frame was in the offlined pool.
    pub fn quarantine_offlined(&mut self, pfn: Pfn) -> bool {
        let before = self.offlined.len();
        self.offlined.retain(|&i| i != pfn.0);
        if self.offlined.len() == before {
            return false;
        }
        self.quarantined.insert(pfn.0);
        true
    }

    /// Takes up to `n` free frames out of service (capacity shrink);
    /// returns how many were actually offlined (bounded by the free count).
    pub fn offline_free_frames(&mut self, n: u32) -> u32 {
        let mut taken = 0;
        while taken < n {
            let Some(idx) = self.free.pop() else { break };
            self.offlined.push(idx);
            taken += 1;
        }
        taken
    }

    /// Brings up to `n` offlined frames back into service (capacity grow);
    /// returns how many came back.
    pub fn online_frames(&mut self, n: u32) -> u32 {
        let mut restored = 0;
        while restored < n {
            let Some(idx) = self.offlined.pop() else {
                break;
            };
            self.free.push(idx);
            restored += 1;
        }
        restored
    }

    /// Allocates one frame for the given owner, or `None` if the tier is full.
    pub fn alloc(&mut self, owner: FrameOwner) -> Option<Pfn> {
        let idx = self.free.pop()?;
        debug_assert!(
            self.owners[idx as usize].is_none(),
            "free frame had an owner"
        );
        self.owners[idx as usize] = Some(owner);
        Some(Pfn(idx))
    }

    /// Frees a frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not currently allocated (double free) or is out
    /// of range; either would be a simulator bug, the moral equivalent of a
    /// kernel `BUG_ON`.
    pub fn free(&mut self, pfn: Pfn) {
        let slot = self
            .owners
            .get_mut(pfn.0 as usize)
            .unwrap_or_else(|| panic!("free of out-of-range frame {:?}", pfn));
        assert!(slot.is_some(), "double free of frame {:?}", pfn);
        *slot = None;
        self.free.push(pfn.0);
    }

    /// Looks up the owner of a frame, if allocated.
    pub fn owner(&self, pfn: Pfn) -> Option<FrameOwner> {
        self.owners.get(pfn.0 as usize).copied().flatten()
    }

    /// Re-points an allocated frame at a new owner (used when migration
    /// completes and the destination frame takes over the virtual page).
    pub fn set_owner(&mut self, pfn: Pfn, owner: FrameOwner) {
        let slot = self
            .owners
            .get_mut(pfn.0 as usize)
            .unwrap_or_else(|| panic!("set_owner of out-of-range frame {:?}", pfn));
        assert!(slot.is_some(), "set_owner of free frame {:?}", pfn);
        *slot = Some(owner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner(pid: u16, vpn: u32) -> FrameOwner {
        FrameOwner {
            pid: ProcessId(pid),
            vpn: Vpn(vpn),
        }
    }

    #[test]
    fn alloc_until_exhausted() {
        let mut t = FrameTable::new(3);
        assert_eq!(t.free_frames(), 3);
        let a = t.alloc(owner(0, 0)).unwrap();
        let b = t.alloc(owner(0, 1)).unwrap();
        let c = t.alloc(owner(0, 2)).unwrap();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(t.free_frames(), 0);
        assert!(t.alloc(owner(0, 3)).is_none());
    }

    #[test]
    fn free_makes_frame_reusable() {
        let mut t = FrameTable::new(1);
        let a = t.alloc(owner(1, 7)).unwrap();
        assert_eq!(t.owner(a), Some(owner(1, 7)));
        t.free(a);
        assert_eq!(t.owner(a), None);
        let b = t.alloc(owner(2, 9)).unwrap();
        assert_eq!(a, b);
        assert_eq!(t.owner(b), Some(owner(2, 9)));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut t = FrameTable::new(1);
        let a = t.alloc(owner(0, 0)).unwrap();
        t.free(a);
        t.free(a);
    }

    #[test]
    fn set_owner_retargets_reverse_map() {
        let mut t = FrameTable::new(2);
        let a = t.alloc(owner(0, 0)).unwrap();
        t.set_owner(a, owner(3, 42));
        assert_eq!(t.owner(a), Some(owner(3, 42)));
    }

    #[test]
    fn used_plus_free_is_total() {
        let mut t = FrameTable::new(10);
        for i in 0..4 {
            t.alloc(owner(0, i)).unwrap();
        }
        assert_eq!(t.used_frames() + t.free_frames(), t.total());
        assert_eq!(t.used_frames(), 4);
    }

    #[test]
    fn quarantined_frame_is_never_reallocated() {
        let mut t = FrameTable::new(2);
        let a = t.alloc(owner(0, 0)).unwrap();
        t.free(a);
        t.quarantine(a);
        assert!(t.is_quarantined(a));
        assert_eq!(t.quarantined_frames(), 1);
        assert_eq!(t.usable_frames(), 1);
        // Drain the pool: the quarantined frame must never come back.
        while let Some(p) = t.alloc(owner(0, 9)) {
            assert_ne!(p, a, "quarantined frame was handed out");
        }
        assert_eq!(
            t.used_frames() + t.free_frames() + t.quarantined_frames() + t.offlined_frames(),
            t.total()
        );
    }

    #[test]
    #[should_panic(expected = "quarantine of non-free frame")]
    fn quarantine_of_mapped_frame_panics() {
        let mut t = FrameTable::new(1);
        let a = t.alloc(owner(0, 0)).unwrap();
        t.quarantine(a);
    }

    #[test]
    fn offline_and_online_roundtrip() {
        let mut t = FrameTable::new(8);
        for i in 0..3 {
            t.alloc(owner(0, i)).unwrap();
        }
        assert_eq!(t.offline_free_frames(4), 4);
        assert_eq!(t.usable_frames(), 4);
        assert_eq!(t.free_frames(), 1);
        assert_eq!(t.used_frames(), 3);
        // Can't offline more than the free pool holds.
        assert_eq!(t.offline_free_frames(10), 1);
        assert_eq!(t.free_frames(), 0);
        assert_eq!(
            t.used_frames() + t.free_frames() + t.quarantined_frames() + t.offlined_frames(),
            t.total()
        );
        assert_eq!(t.online_frames(2), 2);
        assert_eq!(t.free_frames(), 2);
        assert_eq!(t.usable_frames(), 5);
        // Only what was offlined can come back.
        assert_eq!(t.online_frames(100), 3);
        assert_eq!(t.usable_frames(), 8);
    }
}
