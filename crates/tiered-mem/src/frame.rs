//! Per-tier physical frame allocation with reverse mapping.

use crate::addr::{Pfn, ProcessId, Vpn};

/// Reverse-map record: which virtual page owns a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameOwner {
    /// Owning process.
    pub pid: ProcessId,
    /// Owning virtual page.
    pub vpn: Vpn,
}

/// A frame table for one tier: allocation, freeing, and reverse mapping.
///
/// Frames are identified by dense [`Pfn`] indices. Physical contiguity is not
/// modelled — no mechanism in the paper depends on it (huge pages are handled
/// at the mapping layer), so a free *list* suffices and keeps allocation O(1).
#[derive(Debug)]
pub struct FrameTable {
    owners: Vec<Option<FrameOwner>>,
    free: Vec<u32>,
}

impl FrameTable {
    /// Creates a table with `frames` free frames.
    pub fn new(frames: u32) -> FrameTable {
        FrameTable {
            owners: vec![None; frames as usize],
            // Pop from the back; reversing makes allocation order ascending,
            // which is convenient for debugging and deterministic.
            free: (0..frames).rev().collect(),
        }
    }

    /// Total number of frames in the tier.
    pub fn total(&self) -> u32 {
        self.owners.len() as u32
    }

    /// Number of currently free frames.
    pub fn free_frames(&self) -> u32 {
        self.free.len() as u32
    }

    /// Number of currently allocated frames.
    pub fn used_frames(&self) -> u32 {
        self.total() - self.free_frames()
    }

    /// Allocates one frame for the given owner, or `None` if the tier is full.
    pub fn alloc(&mut self, owner: FrameOwner) -> Option<Pfn> {
        let idx = self.free.pop()?;
        debug_assert!(
            self.owners[idx as usize].is_none(),
            "free frame had an owner"
        );
        self.owners[idx as usize] = Some(owner);
        Some(Pfn(idx))
    }

    /// Frees a frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not currently allocated (double free) or is out
    /// of range; either would be a simulator bug, the moral equivalent of a
    /// kernel `BUG_ON`.
    pub fn free(&mut self, pfn: Pfn) {
        let slot = self
            .owners
            .get_mut(pfn.0 as usize)
            .unwrap_or_else(|| panic!("free of out-of-range frame {:?}", pfn));
        assert!(slot.is_some(), "double free of frame {:?}", pfn);
        *slot = None;
        self.free.push(pfn.0);
    }

    /// Looks up the owner of a frame, if allocated.
    pub fn owner(&self, pfn: Pfn) -> Option<FrameOwner> {
        self.owners.get(pfn.0 as usize).copied().flatten()
    }

    /// Re-points an allocated frame at a new owner (used when migration
    /// completes and the destination frame takes over the virtual page).
    pub fn set_owner(&mut self, pfn: Pfn, owner: FrameOwner) {
        let slot = self
            .owners
            .get_mut(pfn.0 as usize)
            .unwrap_or_else(|| panic!("set_owner of out-of-range frame {:?}", pfn));
        assert!(slot.is_some(), "set_owner of free frame {:?}", pfn);
        *slot = Some(owner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner(pid: u16, vpn: u32) -> FrameOwner {
        FrameOwner {
            pid: ProcessId(pid),
            vpn: Vpn(vpn),
        }
    }

    #[test]
    fn alloc_until_exhausted() {
        let mut t = FrameTable::new(3);
        assert_eq!(t.free_frames(), 3);
        let a = t.alloc(owner(0, 0)).unwrap();
        let b = t.alloc(owner(0, 1)).unwrap();
        let c = t.alloc(owner(0, 2)).unwrap();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(t.free_frames(), 0);
        assert!(t.alloc(owner(0, 3)).is_none());
    }

    #[test]
    fn free_makes_frame_reusable() {
        let mut t = FrameTable::new(1);
        let a = t.alloc(owner(1, 7)).unwrap();
        assert_eq!(t.owner(a), Some(owner(1, 7)));
        t.free(a);
        assert_eq!(t.owner(a), None);
        let b = t.alloc(owner(2, 9)).unwrap();
        assert_eq!(a, b);
        assert_eq!(t.owner(b), Some(owner(2, 9)));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut t = FrameTable::new(1);
        let a = t.alloc(owner(0, 0)).unwrap();
        t.free(a);
        t.free(a);
    }

    #[test]
    fn set_owner_retargets_reverse_map() {
        let mut t = FrameTable::new(2);
        let a = t.alloc(owner(0, 0)).unwrap();
        t.set_owner(a, owner(3, 42));
        assert_eq!(t.owner(a), Some(owner(3, 42)));
    }

    #[test]
    fn used_plus_free_is_total() {
        let mut t = FrameTable::new(10);
        for i in 0..4 {
            t.alloc(owner(0, i)).unwrap();
        }
        assert_eq!(t.used_frames() + t.free_frames(), t.total());
        assert_eq!(t.used_frames(), 4);
    }
}
