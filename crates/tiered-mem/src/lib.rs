#![warn(missing_docs)]
//! N-tier physical memory substrate for the Chrono reproduction.
//!
//! This crate models everything the paper's kernel mechanisms touch:
//! per-process page tables with software PTEs ([`page::PageFlags`] carries
//! `PROT_NONE`, accessed/dirty, `PG_probed`, `demoted`, and a two-bit
//! residency tier index), an ordered [`tier::TierChain`] of managed tiers
//! with per-tier frame tables and reverse maps, Linux-style active/inactive
//! LRU lists, free-memory watermarks including Chrono's `pro` watermark, a
//! migration engine with per-edge bandwidth accounting, and a latency cost
//! model calibrated to DRAM vs. CXL vs. Optane-PMem characteristics. The
//! classic two-tier shape (`SystemConfig::dram_pmem`) is the degenerate
//! two-element chain and behaves bit-identically to the historical
//! fast/slow pair.
//!
//! Policies (crate `tiering-policies`, `chrono-core`) drive a
//! [`TieredSystem`] through its mechanism API; workload generators (crate
//! `workloads`) feed it accesses.
//!
//! # Examples
//!
//! ```
//! use tiered_mem::{PageSize, SystemConfig, TieredSystem, TierId, Vpn};
//!
//! let mut sys = TieredSystem::new(SystemConfig::dram_pmem(64, 192));
//! let pid = sys.add_process(128, PageSize::Base);
//! let r = sys.access(pid, Vpn(0), false);
//! assert!(r.demand_fault);
//! assert_eq!(r.tier, TierId::FAST); // top-tier-first allocation
//! ```

pub mod addr;
pub mod config;
pub mod fault;
pub mod frame;
pub mod lru;
pub mod migration;
pub mod page;
pub mod partition;
pub mod space;
pub mod stats;
pub mod system;
pub mod tier;
pub mod watermark;

pub use addr::{PageSize, Pfn, ProcessId, Vpn, BASE_PAGE_BYTES, HUGE_2M_PAGES};
pub use config::{CostModel, MigrationSpec, SwapSpec, SystemConfig};
pub use fault::{
    CapacityEvent, CapacityKind, CopyFault, DegradeWindow, FaultPlan, FaultState, TierEvent,
    TierEventKind,
};
pub use frame::{FrameOwner, FrameTable};
pub use lru::{LruEntry, LruKind, LruLists};
pub use migration::{MigrationEngine, MigrationTxn, MigrationTxnId};
pub use page::{PageEntry, PageFlags};
pub use partition::{FramePartition, PartitionPlan, MIN_FAST_FRAMES, MIN_SLOW_FRAMES};
pub use space::AddressSpace;
pub use stats::SystemStats;
pub use system::{
    scan_budget_pages, AccessResult, MigrateError, MigrateMode, MigrationFailure, Process,
    TieredSystem,
};
pub use tier::{EdgeSpec, TierChain, TierHealth, TierId, TierSpec, MAX_TIERS};
pub use watermark::Watermarks;
