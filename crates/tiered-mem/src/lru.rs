//! Linux-style two-list (active/inactive) LRU with lazy deletion.
//!
//! List entries carry the page's `lru_stamp` at insertion time. Removing a
//! page from the lists is O(1): bump the stamp in its [`PageEntry`]
//! (crate::page::PageEntry) and any queued entries become stale, to be
//! discarded when they surface. This mirrors how the simulator avoids the
//! intrusive doubly-linked `struct page` lists of the kernel without changing
//! eviction order.

use std::collections::VecDeque;

use crate::addr::{ProcessId, Vpn};

/// Which of the two lists an entry sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LruKind {
    /// Recently/frequently used pages.
    Active,
    /// Reclaim/demotion candidates.
    Inactive,
}

/// A queued page reference; live only while its stamp matches the page's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LruEntry {
    /// Owning process.
    pub pid: ProcessId,
    /// Page within the process.
    pub vpn: Vpn,
    /// Stamp snapshot; compare against `PageEntry::lru_stamp`.
    pub stamp: u16,
}

/// The two LRU lists of one tier.
///
/// Queue discipline: new/rotated pages are pushed to the *tail*; aging and
/// reclaim pop from the *head* — oldest first, as in the kernel.
#[derive(Debug, Default)]
pub struct LruLists {
    active: VecDeque<LruEntry>,
    inactive: VecDeque<LruEntry>,
}

impl LruLists {
    /// Creates empty lists.
    pub fn new() -> LruLists {
        LruLists::default()
    }

    /// Pushes an entry onto the tail of the chosen list.
    pub fn push(&mut self, kind: LruKind, entry: LruEntry) {
        match kind {
            LruKind::Active => self.active.push_back(entry),
            LruKind::Inactive => self.inactive.push_back(entry),
        }
    }

    /// Pops the oldest entry of the chosen list (may be stale; the caller
    /// validates against the page table and retries).
    pub fn pop(&mut self, kind: LruKind) -> Option<LruEntry> {
        match kind {
            LruKind::Active => self.active.pop_front(),
            LruKind::Inactive => self.inactive.pop_front(),
        }
    }

    /// Iterates the chosen list oldest-first, stale entries included (the
    /// caller filters by stamp). Backs external invariant checking.
    pub fn iter(&self, kind: LruKind) -> impl Iterator<Item = &LruEntry> {
        match kind {
            LruKind::Active => self.active.iter(),
            LruKind::Inactive => self.inactive.iter(),
        }
    }

    /// Queue length including stale entries (an upper bound on live pages).
    pub fn queued(&self, kind: LruKind) -> usize {
        match kind {
            LruKind::Active => self.active.len(),
            LruKind::Inactive => self.inactive.len(),
        }
    }

    /// Drops all entries (used when reconfiguring a system between runs).
    pub fn clear(&mut self) {
        self.active.clear();
        self.inactive.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(vpn: u32, stamp: u16) -> LruEntry {
        LruEntry {
            pid: ProcessId(0),
            vpn: Vpn(vpn),
            stamp,
        }
    }

    #[test]
    fn fifo_order_within_list() {
        let mut l = LruLists::new();
        l.push(LruKind::Inactive, e(1, 0));
        l.push(LruKind::Inactive, e(2, 0));
        l.push(LruKind::Inactive, e(3, 0));
        assert_eq!(l.pop(LruKind::Inactive).unwrap().vpn, Vpn(1));
        assert_eq!(l.pop(LruKind::Inactive).unwrap().vpn, Vpn(2));
        assert_eq!(l.pop(LruKind::Inactive).unwrap().vpn, Vpn(3));
        assert!(l.pop(LruKind::Inactive).is_none());
    }

    #[test]
    fn lists_are_independent() {
        let mut l = LruLists::new();
        l.push(LruKind::Active, e(1, 0));
        l.push(LruKind::Inactive, e(2, 0));
        assert_eq!(l.queued(LruKind::Active), 1);
        assert_eq!(l.queued(LruKind::Inactive), 1);
        assert_eq!(l.pop(LruKind::Active).unwrap().vpn, Vpn(1));
        assert_eq!(l.queued(LruKind::Active), 0);
        assert_eq!(l.queued(LruKind::Inactive), 1);
    }

    #[test]
    fn clear_empties_both() {
        let mut l = LruLists::new();
        l.push(LruKind::Active, e(1, 0));
        l.push(LruKind::Inactive, e(2, 0));
        l.clear();
        assert_eq!(l.queued(LruKind::Active), 0);
        assert_eq!(l.queued(LruKind::Inactive), 0);
    }
}
