//! Two-phase transactional page migration.
//!
//! The engine models what Nomad calls *transactional* migration: a copy
//! races with application writes and must be able to abort. A transaction
//! is opened by `TieredSystem::begin_migrate`, which reserves the
//! destination frames, marks the mapping unit's head with
//! [`crate::PageFlags::MIGRATING`], and enqueues the copy on the bandwidth
//! channel of the directed edge it crosses (a FIFO — copies are serviced in
//! admission order). The PTE keeps pointing at the *old* frames while the
//! copy is in flight, so reads hit the old copy; a write aborts the
//! transaction once its copy is *active* on the channel (a write to a
//! still-queued transaction lands in the source frames before the copy
//! reads them, so it merely re-dirties the unit);
//! `TieredSystem::complete_due_migrations` retires due transactions,
//! flipping the PTE to the reserved frames.
//!
//! Channels are keyed by *directed adjacent edge* of the tier chain: each
//! pair of adjacent tiers has an up channel (promotions into the faster
//! tier) and a down channel (demotions into the slower one), modelling
//! independent copy engines per link direction. On a two-tier chain that is
//! exactly the historical per-destination-tier pair — the up edge into tier
//! 0 is channel 0 and the down edge into tier 1 is channel 1 — so admission
//! order, backlog accounting and retire order are unchanged there.
//!
//! Admission control (TierBPF-style): the table is bounded by
//! [`crate::config::MigrationSpec::inflight_slots`] and each channel's
//! backlog by [`crate::config::MigrationSpec::backlog_cap`]; past either
//! bound `begin_migrate` rejects with `MigrateError::Backpressure`.
//!
//! The engine is pure bookkeeping: frame tables, PTEs, LRU lists, stats and
//! trace events stay owned by [`crate::TieredSystem`], which drives the
//! engine and applies the side effects of completion/abort itself.

use std::collections::VecDeque;

use sim_clock::Nanos;

use crate::addr::{Pfn, ProcessId, Vpn};
use crate::config::MigrationSpec;
use crate::system::MigrateMode;
use crate::tier::TierId;

/// Identifier of one in-flight migration transaction.
pub type MigrationTxnId = u64;

/// One in-flight migration transaction.
#[derive(Debug, Clone)]
pub struct MigrationTxn {
    /// Transaction id (monotonically assigned at `begin_migrate`).
    pub id: MigrationTxnId,
    /// Owning process.
    pub pid: ProcessId,
    /// Head page of the migrating mapping unit.
    pub head: Vpn,
    /// Source tier (where the PTE still points while in flight).
    pub from: TierId,
    /// Destination tier (where the reservation lives).
    pub to: TierId,
    /// Base pages in the unit (512 for an intact huge block).
    pub unit: u32,
    /// Reserved destination frames, one per base page in offset order.
    pub dest_pfns: Vec<Pfn>,
    /// Instant the channel starts this copy (it may queue behind others).
    pub start_at: Nanos,
    /// Instant the copy finishes on the destination channel.
    pub complete_at: Nanos,
    /// Whose time the copy was charged to.
    pub mode: MigrateMode,
    /// Whether this copy rides the emergency evacuation lane (draining a
    /// failing tier). Completion/abort accounting attributes these to the
    /// evacuation flow-conservation counters.
    pub evac: bool,
}

/// The directed-edge channel index for a migration `from → to` on a chain
/// of `n_tiers` managed tiers.
///
/// Adjacent edges between tiers `k` and `k+1` occupy channels `2k` (up,
/// into `k`) and `2k + 1` (down, into `k+1`); a chain of `n` tiers has
/// `2(n-1)` adjacent channels, and on a two-tier chain that is the old
/// destination-tier index. *Skip-pair* channels — splice edges crossing one
/// or more `Offline` tiers — are appended after them (all gap-2 pairs in
/// low-endpoint order, then gap-3, …) so they are digest-neutral whenever
/// empty: existing channel numbering, iteration order, and tie-breaks are
/// untouched.
#[inline]
fn channel_index(from: TierId, to: TierId, n_tiers: usize) -> usize {
    let (lo, hi) = (from.index().min(to.index()), from.index().max(to.index()));
    let gap = hi - lo;
    debug_assert!(gap >= 1 && hi < n_tiers, "migration must cross the chain");
    let down = usize::from(to > from);
    if gap == 1 {
        return 2 * lo + down;
    }
    let mut base = 2 * (n_tiers - 1);
    for g in 2..gap {
        base += 2 * (n_tiers - g);
    }
    base + 2 * lo + down
}

/// Total channel count for a chain of `n_tiers`: two directed channels per
/// (ordered-by-index) tier pair, adjacent and skip alike.
#[inline]
fn channel_count(n_tiers: usize) -> usize {
    n_tiers * (n_tiers - 1)
}

/// Bounded in-flight transaction table with per-edge bandwidth FIFOs.
#[derive(Debug)]
pub struct MigrationEngine {
    spec: MigrationSpec,
    next_id: MigrationTxnId,
    /// Per directed edge, transactions in admission (== completion) order.
    channels: Vec<VecDeque<MigrationTxn>>,
    /// When each edge's copy channel drains.
    busy_until: Vec<Nanos>,
    /// Reserved (allocated but not yet mapped) frames per tier.
    reserved: Vec<u32>,
    /// Earliest `complete_at` across all channel fronts (`Nanos::MAX` when
    /// all are empty). Kept current by every channel mutation so the
    /// per-access [`MigrationEngine::any_due`] probe is one compare instead
    /// of per-channel deque-front inspections.
    earliest_front: Nanos,
}

impl MigrationEngine {
    /// An empty engine with the given admission bounds, serving a chain of
    /// `n_tiers` managed tiers.
    pub fn new(spec: MigrationSpec, n_tiers: usize) -> MigrationEngine {
        debug_assert!(n_tiers >= 2);
        MigrationEngine {
            spec,
            next_id: 0,
            channels: vec![VecDeque::new(); channel_count(n_tiers)],
            busy_until: vec![Nanos::ZERO; channel_count(n_tiers)],
            reserved: vec![0; n_tiers],
            earliest_front: Nanos::MAX,
        }
    }

    /// Number of managed tiers this engine serves.
    #[inline]
    fn n_tiers(&self) -> usize {
        self.reserved.len()
    }

    /// Recomputes the cached earliest front completion; O(edges), called
    /// after any mutation that can change a channel front.
    fn refresh_earliest_front(&mut self) {
        self.earliest_front = self
            .channels
            .iter()
            .map(|c| c.front().map_or(Nanos::MAX, |t| t.complete_at))
            .min()
            .unwrap_or(Nanos::MAX);
    }

    /// The admission bounds the engine was built with.
    pub fn spec(&self) -> &MigrationSpec {
        &self.spec
    }

    /// Re-caps the in-flight slot budget. Used by the multi-tenant barrier
    /// scheduler to grant each shard its admission share for the next scan
    /// period; transactions already in flight above a lowered cap are not
    /// aborted — they drain, and `admits` stays false until they do.
    pub fn set_inflight_slots(&mut self, slots: usize) {
        self.spec.inflight_slots = slots;
    }

    /// Number of transactions currently in flight.
    pub fn in_flight(&self) -> usize {
        self.channels.iter().map(VecDeque::len).sum()
    }

    /// Whether a new transaction may be admitted at `now` on the directed
    /// edge `from → to` (slot and backlog bounds both satisfied).
    pub fn admits(&self, from: TierId, to: TierId, now: Nanos) -> bool {
        self.in_flight() < self.spec.inflight_slots
            && self.backlog(from, to, now) <= self.spec.backlog_cap
    }

    /// Outstanding copy backlog on the directed edge `from → to`.
    pub fn backlog(&self, from: TierId, to: TierId, now: Nanos) -> Nanos {
        self.busy_until[channel_index(from, to, self.n_tiers())].saturating_sub(now)
    }

    /// In-flight evacuation-lane pages (units still being drained off a
    /// failing tier). Part of the evacuation flow-conservation invariant:
    /// `evacuated == rehomed + swapped + faulted + in_flight_evac`.
    pub fn in_flight_evac_pages(&self) -> u64 {
        self.iter().filter(|t| t.evac).map(|t| t.unit as u64).sum()
    }

    /// The largest outstanding backlog across all edge channels.
    pub fn max_backlog(&self, now: Nanos) -> Nanos {
        self.busy_until
            .iter()
            .map(|b| b.saturating_sub(now))
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// Reserved destination frames held by in-flight transactions in `tier`.
    pub fn reserved_frames(&self, tier: TierId) -> u32 {
        self.reserved[tier.index()]
    }

    /// Iterates all in-flight transactions (channel order — top edge's up
    /// channel first — then admission order within a channel): deterministic.
    pub fn iter(&self) -> impl Iterator<Item = &MigrationTxn> {
        self.channels.iter().flatten()
    }

    /// The transaction migrating the unit headed by `(pid, head)`, if any.
    pub fn find(&self, pid: ProcessId, head: Vpn) -> Option<MigrationTxnId> {
        self.iter()
            .find(|t| t.pid == pid && t.head == head)
            .map(|t| t.id)
    }

    /// Whether the copy for `(pid, head)` is *active* at `now` — i.e. the
    /// channel has started reading the source. A write only conflicts with
    /// an active copy; while the transaction is still queued behind the
    /// channel backlog the store simply lands in the source frames and will
    /// be carried over when the copy eventually runs.
    pub fn copy_started(&self, pid: ProcessId, head: Vpn, now: Nanos) -> bool {
        self.iter()
            .any(|t| t.pid == pid && t.head == head && t.start_at <= now)
    }

    /// Admits a transaction whose copy costs `cost` on the edge channel.
    /// `Sync` transactions are due immediately (the waiter already paid for
    /// the copy in its own context); `Async` ones queue FIFO behind the
    /// channel's backlog. Returns the transaction id.
    ///
    /// The caller has already performed admission checks ([`Self::admits`])
    /// and reserved `dest_pfns` in the destination frame table.
    #[allow(clippy::too_many_arguments)]
    pub fn begin(
        &mut self,
        pid: ProcessId,
        head: Vpn,
        from: TierId,
        to: TierId,
        unit: u32,
        dest_pfns: Vec<Pfn>,
        mode: MigrateMode,
        cost: Nanos,
        now: Nanos,
    ) -> MigrationTxnId {
        self.begin_lane(pid, head, from, to, unit, dest_pfns, mode, cost, now, false)
    }

    /// [`Self::begin`] with an explicit lane: `evac = true` marks the copy
    /// as emergency evacuation traffic for flow-conservation accounting.
    /// Evacuation copies still queue FIFO on their edge channel — the
    /// "priority" of the lane is that the pump issues them ahead of policy
    /// traffic, not that they preempt copies already admitted.
    #[allow(clippy::too_many_arguments)]
    pub fn begin_lane(
        &mut self,
        pid: ProcessId,
        head: Vpn,
        from: TierId,
        to: TierId,
        unit: u32,
        dest_pfns: Vec<Pfn>,
        mode: MigrateMode,
        cost: Nanos,
        now: Nanos,
        evac: bool,
    ) -> MigrationTxnId {
        debug_assert_eq!(dest_pfns.len(), unit as usize);
        let id = self.next_id;
        self.next_id += 1;
        let chan = channel_index(from, to, self.n_tiers());
        let (start_at, complete_at) = match mode {
            MigrateMode::Sync(_) => (now, now),
            MigrateMode::Async => {
                let start = self.busy_until[chan].max(now);
                let done = start + cost;
                self.busy_until[chan] = done;
                (start, done)
            }
        };
        self.reserved[to.index()] += unit;
        self.channels[chan].push_back(MigrationTxn {
            id,
            pid,
            head,
            from,
            to,
            unit,
            dest_pfns,
            start_at,
            complete_at,
            mode,
            evac,
        });
        self.refresh_earliest_front();
        id
    }

    /// Whether any channel's front transaction is complete by `now` — the
    /// O(1) early-out [`TieredSystem::complete_due_migrations`] takes on
    /// every access before touching the retire machinery.
    ///
    /// [`TieredSystem::complete_due_migrations`]: ../system/struct.TieredSystem.html
    #[inline]
    pub fn any_due(&self, now: Nanos) -> bool {
        self.earliest_front <= now
    }

    /// Removes and returns the transaction with the earliest `complete_at`
    /// that is due at `now`, releasing its reservation accounting (the
    /// caller maps or frees the reserved frames). Ties break toward the
    /// lowest channel index so the retire order is deterministic; on a
    /// two-tier chain that is the historical fast-channel-first order.
    pub fn pop_due(&mut self, now: Nanos) -> Option<MigrationTxn> {
        let chosen = self
            .channels
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                c.front()
                    .map(|t| t.complete_at)
                    .filter(|&t| t <= now)
                    .map(|t| (i, t))
            })
            // min_by_key on (complete_at, index) keeps the first (lowest
            // index) channel among ties because min_by_key keeps the
            // earliest element on equal keys.
            .min_by_key(|&(_, t)| t)
            .map(|(i, _)| i)?;
        let txn = self.channels[chosen]
            .pop_front()
            .expect("front checked due");
        self.reserved[txn.to.index()] -= txn.unit;
        self.refresh_earliest_front();
        Some(txn)
    }

    /// Removes the transaction `id` from the table regardless of its
    /// deadline (force-completion by the compat wrapper, or an abort). The
    /// channel's scheduled bandwidth is *not* refunded — an aborted copy
    /// still occupied the link. Releases reservation accounting.
    pub fn remove(&mut self, id: MigrationTxnId) -> Option<MigrationTxn> {
        for chan in &mut self.channels {
            if let Some(pos) = chan.iter().position(|t| t.id == id) {
                let txn = chan.remove(pos).expect("position just found");
                self.reserved[txn.to.index()] -= txn.unit;
                self.refresh_earliest_front();
                return Some(txn);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eng(slots: usize, cap_millis: u64) -> MigrationEngine {
        MigrationEngine::new(
            MigrationSpec {
                inflight_slots: slots,
                backlog_cap: Nanos::from_millis(cap_millis),
            },
            2,
        )
    }

    fn other(t: TierId) -> TierId {
        TierId(1 - t.0)
    }

    fn begin_one(e: &mut MigrationEngine, id_vpn: u32, to: TierId, cost: Nanos) -> MigrationTxnId {
        e.begin(
            ProcessId(0),
            Vpn(id_vpn),
            other(to),
            to,
            1,
            vec![Pfn(id_vpn)],
            MigrateMode::Async,
            cost,
            Nanos::ZERO,
        )
    }

    #[test]
    fn two_tier_channels_match_destination_indexing() {
        // Byte-compat contract: on two tiers the directed-edge channels are
        // exactly the historical per-destination pair.
        assert_eq!(channel_index(TierId::SLOW, TierId::FAST, 4), 0);
        assert_eq!(channel_index(TierId::FAST, TierId::SLOW, 4), 1);
        // Deeper edges extend past them without renumbering.
        assert_eq!(channel_index(TierId(2), TierId(1), 4), 2);
        assert_eq!(channel_index(TierId(1), TierId(2), 4), 3);
        assert_eq!(channel_index(TierId(3), TierId(2), 4), 4);
        assert_eq!(channel_index(TierId(2), TierId(3), 4), 5);
    }

    #[test]
    fn skip_pair_channels_append_after_adjacent_ones() {
        // A 3-chain: 4 adjacent channels, then the single gap-2 pair.
        assert_eq!(channel_count(2), 2);
        assert_eq!(channel_count(3), 6);
        assert_eq!(channel_index(TierId(2), TierId(0), 3), 4);
        assert_eq!(channel_index(TierId(0), TierId(2), 3), 5);
        // A 4-chain: 6 adjacent, gap-2 pairs (0,2) and (1,3), then (0,3).
        assert_eq!(channel_count(4), 12);
        assert_eq!(channel_index(TierId(2), TierId(0), 4), 6);
        assert_eq!(channel_index(TierId(0), TierId(2), 4), 7);
        assert_eq!(channel_index(TierId(3), TierId(1), 4), 8);
        assert_eq!(channel_index(TierId(1), TierId(3), 4), 9);
        assert_eq!(channel_index(TierId(3), TierId(0), 4), 10);
        assert_eq!(channel_index(TierId(0), TierId(3), 4), 11);
        // Every (from, to, n) maps to a distinct in-range channel.
        for n in 2..=4usize {
            let mut seen = std::collections::BTreeSet::new();
            for from in 0..n as u8 {
                for to in 0..n as u8 {
                    if from == to {
                        continue;
                    }
                    let c = channel_index(TierId(from), TierId(to), n);
                    assert!(c < channel_count(n));
                    assert!(seen.insert(c), "channel {c} reused");
                }
            }
            assert_eq!(seen.len(), channel_count(n));
        }
    }

    #[test]
    fn splice_channels_carry_copies_across_an_offline_tier() {
        let mut e = MigrationEngine::new(
            MigrationSpec {
                inflight_slots: 8,
                backlog_cap: Nanos::from_millis(100),
            },
            3,
        );
        // Tier 1 offline: the splice edge 2 → 0 carries the copy.
        let id = e.begin_lane(
            ProcessId(0),
            Vpn(9),
            TierId(2),
            TierId(0),
            1,
            vec![Pfn(9)],
            MigrateMode::Async,
            Nanos(120),
            Nanos::ZERO,
            true,
        );
        assert_eq!(e.backlog(TierId(2), TierId(0), Nanos::ZERO), Nanos(120));
        // Adjacent channels stay idle: the splice lane is its own FIFO.
        assert_eq!(e.backlog(TierId(2), TierId(1), Nanos::ZERO), Nanos::ZERO);
        assert_eq!(e.backlog(TierId(1), TierId(0), Nanos::ZERO), Nanos::ZERO);
        assert_eq!(e.in_flight_evac_pages(), 1);
        assert_eq!(e.reserved_frames(TierId(0)), 1);
        let txn = e.pop_due(Nanos(120)).unwrap();
        assert_eq!(txn.id, id);
        assert!(txn.evac);
        assert_eq!(e.in_flight_evac_pages(), 0);
    }

    #[test]
    fn channels_are_fifo_and_backlog_accumulates() {
        let mut e = eng(8, 100);
        let a = begin_one(&mut e, 1, TierId::FAST, Nanos(100));
        let b = begin_one(&mut e, 2, TierId::FAST, Nanos(100));
        assert_eq!(e.in_flight(), 2);
        assert_eq!(
            e.backlog(TierId::SLOW, TierId::FAST, Nanos::ZERO),
            Nanos(200)
        );
        assert_eq!(
            e.backlog(TierId::FAST, TierId::SLOW, Nanos::ZERO),
            Nanos::ZERO
        );
        assert_eq!(e.max_backlog(Nanos::ZERO), Nanos(200));
        assert!(e.pop_due(Nanos(99)).is_none());
        assert_eq!(e.pop_due(Nanos(100)).unwrap().id, a);
        assert!(e.pop_due(Nanos(100)).is_none());
        assert_eq!(e.pop_due(Nanos(500)).unwrap().id, b);
        assert_eq!(e.in_flight(), 0);
    }

    #[test]
    fn pop_due_orders_across_channels() {
        let mut e = eng(8, 100);
        let slow = begin_one(&mut e, 1, TierId::SLOW, Nanos(50));
        let fast = begin_one(&mut e, 2, TierId::FAST, Nanos(80));
        assert_eq!(e.pop_due(Nanos(1000)).unwrap().id, slow);
        assert_eq!(e.pop_due(Nanos(1000)).unwrap().id, fast);
    }

    #[test]
    fn pop_due_tie_breaks_toward_lowest_channel() {
        let mut e = eng(8, 100);
        let down = begin_one(&mut e, 1, TierId::SLOW, Nanos(60));
        let up = begin_one(&mut e, 2, TierId::FAST, Nanos(60));
        // Same completion instant on both channels: the up channel (index 0)
        // — historically the fast channel — wins.
        assert_eq!(e.pop_due(Nanos(60)).unwrap().id, up);
        assert_eq!(e.pop_due(Nanos(60)).unwrap().id, down);
    }

    #[test]
    fn admission_bounds() {
        let mut e = eng(2, 0);
        assert!(e.admits(TierId::SLOW, TierId::FAST, Nanos::ZERO));
        begin_one(&mut e, 1, TierId::FAST, Nanos(10));
        // Zero backlog cap: the queued copy already exceeds it.
        assert!(!e.admits(TierId::SLOW, TierId::FAST, Nanos::ZERO));
        // The other channel is idle, but a second txn still fits the slots.
        assert!(e.admits(TierId::FAST, TierId::SLOW, Nanos::ZERO));
        begin_one(&mut e, 2, TierId::SLOW, Nanos(10));
        assert!(
            !e.admits(TierId::FAST, TierId::SLOW, Nanos::ZERO),
            "slots exhausted"
        );
    }

    #[test]
    fn any_due_cache_tracks_begin_pop_and_remove() {
        let mut e = eng(8, 100);
        assert!(!e.any_due(Nanos(u64::MAX - 1)), "empty engine never due");
        let a = begin_one(&mut e, 1, TierId::FAST, Nanos(100));
        let b = begin_one(&mut e, 2, TierId::SLOW, Nanos(40));
        assert!(!e.any_due(Nanos(39)));
        assert!(e.any_due(Nanos(40)), "slow front due at its completion");
        assert_eq!(e.pop_due(Nanos(40)).unwrap().id, b);
        assert!(!e.any_due(Nanos(40)), "cache advanced to the fast front");
        assert!(e.any_due(Nanos(100)));
        assert!(e.remove(a).is_some());
        assert!(!e.any_due(Nanos(u64::MAX - 1)), "cache reset on removal");
    }

    #[test]
    fn remove_releases_reservation_without_refunding_bandwidth() {
        let mut e = eng(8, 100);
        let id = begin_one(&mut e, 7, TierId::FAST, Nanos(300));
        assert_eq!(e.reserved_frames(TierId::FAST), 1);
        let txn = e.remove(id).unwrap();
        assert_eq!(txn.dest_pfns, vec![Pfn(7)]);
        assert_eq!(e.reserved_frames(TierId::FAST), 0);
        assert_eq!(e.in_flight(), 0);
        // Bandwidth stays consumed.
        assert_eq!(
            e.backlog(TierId::SLOW, TierId::FAST, Nanos::ZERO),
            Nanos(300)
        );
        assert!(e.remove(id).is_none());
    }

    #[test]
    fn sync_transactions_are_due_immediately_and_skip_the_channel() {
        let mut e = eng(8, 100);
        e.begin(
            ProcessId(1),
            Vpn(3),
            TierId::SLOW,
            TierId::FAST,
            1,
            vec![Pfn(0)],
            MigrateMode::Sync(ProcessId(1)),
            Nanos(500),
            Nanos(40),
        );
        assert_eq!(
            e.backlog(TierId::SLOW, TierId::FAST, Nanos(40)),
            Nanos::ZERO
        );
        let txn = e.pop_due(Nanos(40)).unwrap();
        assert_eq!(txn.complete_at, Nanos(40));
    }

    #[test]
    fn find_locates_in_flight_heads() {
        let mut e = eng(8, 100);
        let id = begin_one(&mut e, 42, TierId::FAST, Nanos(10));
        assert_eq!(e.find(ProcessId(0), Vpn(42)), Some(id));
        assert_eq!(e.find(ProcessId(0), Vpn(41)), None);
        assert_eq!(e.find(ProcessId(1), Vpn(42)), None);
    }

    #[test]
    fn three_tier_edges_are_independent_channels() {
        let mut e = MigrationEngine::new(
            MigrationSpec {
                inflight_slots: 8,
                backlog_cap: Nanos::from_millis(100),
            },
            3,
        );
        // One copy on each directed edge of the 3-chain.
        e.begin(
            ProcessId(0),
            Vpn(1),
            TierId(2),
            TierId(1),
            1,
            vec![Pfn(1)],
            MigrateMode::Async,
            Nanos(70),
            Nanos::ZERO,
        );
        e.begin(
            ProcessId(0),
            Vpn(2),
            TierId(1),
            TierId(2),
            1,
            vec![Pfn(2)],
            MigrateMode::Async,
            Nanos(90),
            Nanos::ZERO,
        );
        let top = begin_one(&mut e, 3, TierId::FAST, Nanos(30));
        // Backlogs accumulate per edge, not per destination tier.
        assert_eq!(e.backlog(TierId(2), TierId(1), Nanos::ZERO), Nanos(70));
        assert_eq!(e.backlog(TierId(1), TierId(2), Nanos::ZERO), Nanos(90));
        assert_eq!(
            e.backlog(TierId::SLOW, TierId::FAST, Nanos::ZERO),
            Nanos(30)
        );
        assert_eq!(e.max_backlog(Nanos::ZERO), Nanos(90));
        // Each transaction reserves its destination frames in that tier.
        assert_eq!(e.reserved_frames(TierId::FAST), 1);
        assert_eq!(e.reserved_frames(TierId(1)), 1);
        assert_eq!(e.reserved_frames(TierId(2)), 1);
        // Earliest completion wins regardless of which edge carries it.
        assert_eq!(e.pop_due(Nanos(1000)).unwrap().id, top);
        assert_eq!(e.pop_due(Nanos(1000)).unwrap().head, Vpn(1));
        assert_eq!(e.pop_due(Nanos(1000)).unwrap().head, Vpn(2));
    }
}
