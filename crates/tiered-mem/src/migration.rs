//! Two-phase transactional page migration.
//!
//! The engine models what Nomad calls *transactional* migration: a copy
//! races with application writes and must be able to abort. A transaction
//! is opened by `TieredSystem::begin_migrate`, which reserves the
//! destination frames, marks the mapping unit's head with
//! [`crate::PageFlags::MIGRATING`], and enqueues the copy on the
//! destination tier's bandwidth channel (a FIFO — copies are serviced in
//! admission order). The PTE keeps pointing at the *old* frames while the
//! copy is in flight, so reads hit the old copy; a write aborts the
//! transaction once its copy is *active* on the channel (a write to a
//! still-queued transaction lands in the source frames before the copy
//! reads them, so it merely re-dirties the unit);
//! `TieredSystem::complete_due_migrations` retires due transactions,
//! flipping the PTE to the reserved frames.
//!
//! Admission control (TierBPF-style): the table is bounded by
//! [`crate::config::MigrationSpec::inflight_slots`] and each channel's
//! backlog by [`crate::config::MigrationSpec::backlog_cap`]; past either
//! bound `begin_migrate` rejects with `MigrateError::Backpressure`.
//!
//! The engine is pure bookkeeping: frame tables, PTEs, LRU lists, stats and
//! trace events stay owned by [`crate::TieredSystem`], which drives the
//! engine and applies the side effects of completion/abort itself.

use std::collections::VecDeque;

use sim_clock::Nanos;

use crate::addr::{Pfn, ProcessId, Vpn};
use crate::config::MigrationSpec;
use crate::system::MigrateMode;
use crate::tier::TierId;

/// Identifier of one in-flight migration transaction.
pub type MigrationTxnId = u64;

/// One in-flight migration transaction.
#[derive(Debug, Clone)]
pub struct MigrationTxn {
    /// Transaction id (monotonically assigned at `begin_migrate`).
    pub id: MigrationTxnId,
    /// Owning process.
    pub pid: ProcessId,
    /// Head page of the migrating mapping unit.
    pub head: Vpn,
    /// Source tier (where the PTE still points while in flight).
    pub from: TierId,
    /// Destination tier (where the reservation lives).
    pub to: TierId,
    /// Base pages in the unit (512 for an intact huge block).
    pub unit: u32,
    /// Reserved destination frames, one per base page in offset order.
    pub dest_pfns: Vec<Pfn>,
    /// Instant the channel starts this copy (it may queue behind others).
    pub start_at: Nanos,
    /// Instant the copy finishes on the destination channel.
    pub complete_at: Nanos,
    /// Whose time the copy was charged to.
    pub mode: MigrateMode,
}

/// Bounded in-flight transaction table with per-tier bandwidth FIFOs.
#[derive(Debug)]
pub struct MigrationEngine {
    spec: MigrationSpec,
    next_id: MigrationTxnId,
    /// Per destination tier, transactions in admission (== completion) order.
    channels: [VecDeque<MigrationTxn>; 2],
    /// When each destination tier's copy channel drains.
    busy_until: [Nanos; 2],
    /// Reserved (allocated but not yet mapped) frames per tier.
    reserved: [u32; 2],
    /// Earliest `complete_at` across the two channel fronts (`Nanos::MAX`
    /// when both are empty). Kept current by every channel mutation so the
    /// per-access [`MigrationEngine::any_due`] probe is one compare instead
    /// of two deque-front inspections.
    earliest_front: Nanos,
}

impl MigrationEngine {
    /// An empty engine with the given admission bounds.
    pub fn new(spec: MigrationSpec) -> MigrationEngine {
        MigrationEngine {
            spec,
            next_id: 0,
            channels: [VecDeque::new(), VecDeque::new()],
            busy_until: [Nanos::ZERO, Nanos::ZERO],
            reserved: [0, 0],
            earliest_front: Nanos::MAX,
        }
    }

    /// Recomputes the cached earliest front completion; O(1), called after
    /// any mutation that can change a channel front.
    fn refresh_earliest_front(&mut self) {
        let front = |c: &VecDeque<MigrationTxn>| c.front().map_or(Nanos::MAX, |t| t.complete_at);
        self.earliest_front = front(&self.channels[0]).min(front(&self.channels[1]));
    }

    /// The admission bounds the engine was built with.
    pub fn spec(&self) -> &MigrationSpec {
        &self.spec
    }

    /// Re-caps the in-flight slot budget. Used by the multi-tenant barrier
    /// scheduler to grant each shard its admission share for the next scan
    /// period; transactions already in flight above a lowered cap are not
    /// aborted — they drain, and `admits` stays false until they do.
    pub fn set_inflight_slots(&mut self, slots: usize) {
        self.spec.inflight_slots = slots;
    }

    /// Number of transactions currently in flight.
    pub fn in_flight(&self) -> usize {
        self.channels[0].len() + self.channels[1].len()
    }

    /// Whether a new transaction may be admitted at `now` with `to` as the
    /// destination tier (slot and backlog bounds both satisfied).
    pub fn admits(&self, to: TierId, now: Nanos) -> bool {
        self.in_flight() < self.spec.inflight_slots
            && self.backlog(to, now) <= self.spec.backlog_cap
    }

    /// Outstanding copy backlog on a destination tier's channel.
    pub fn backlog(&self, to: TierId, now: Nanos) -> Nanos {
        self.busy_until[to.index()].saturating_sub(now)
    }

    /// Reserved destination frames held by in-flight transactions in `tier`.
    pub fn reserved_frames(&self, tier: TierId) -> u32 {
        self.reserved[tier.index()]
    }

    /// Iterates all in-flight transactions (fast-channel first, then slow;
    /// admission order within a channel) — deterministic.
    pub fn iter(&self) -> impl Iterator<Item = &MigrationTxn> {
        self.channels[0].iter().chain(self.channels[1].iter())
    }

    /// The transaction migrating the unit headed by `(pid, head)`, if any.
    pub fn find(&self, pid: ProcessId, head: Vpn) -> Option<MigrationTxnId> {
        self.iter()
            .find(|t| t.pid == pid && t.head == head)
            .map(|t| t.id)
    }

    /// Whether the copy for `(pid, head)` is *active* at `now` — i.e. the
    /// channel has started reading the source. A write only conflicts with
    /// an active copy; while the transaction is still queued behind the
    /// channel backlog the store simply lands in the source frames and will
    /// be carried over when the copy eventually runs.
    pub fn copy_started(&self, pid: ProcessId, head: Vpn, now: Nanos) -> bool {
        self.iter()
            .any(|t| t.pid == pid && t.head == head && t.start_at <= now)
    }

    /// Admits a transaction whose copy costs `cost` on the destination
    /// channel. `Sync` transactions are due immediately (the waiter already
    /// paid for the copy in its own context); `Async` ones queue FIFO behind
    /// the channel's backlog. Returns the transaction id.
    ///
    /// The caller has already performed admission checks ([`Self::admits`])
    /// and reserved `dest_pfns` in the destination frame table.
    #[allow(clippy::too_many_arguments)]
    pub fn begin(
        &mut self,
        pid: ProcessId,
        head: Vpn,
        from: TierId,
        to: TierId,
        unit: u32,
        dest_pfns: Vec<Pfn>,
        mode: MigrateMode,
        cost: Nanos,
        now: Nanos,
    ) -> MigrationTxnId {
        debug_assert_eq!(dest_pfns.len(), unit as usize);
        let id = self.next_id;
        self.next_id += 1;
        let (start_at, complete_at) = match mode {
            MigrateMode::Sync(_) => (now, now),
            MigrateMode::Async => {
                let start = self.busy_until[to.index()].max(now);
                let done = start + cost;
                self.busy_until[to.index()] = done;
                (start, done)
            }
        };
        self.reserved[to.index()] += unit;
        self.channels[to.index()].push_back(MigrationTxn {
            id,
            pid,
            head,
            from,
            to,
            unit,
            dest_pfns,
            start_at,
            complete_at,
            mode,
        });
        self.refresh_earliest_front();
        id
    }

    /// Whether any channel's front transaction is complete by `now` — the
    /// O(1) early-out [`TieredSystem::complete_due_migrations`] takes on
    /// every access before touching the retire machinery.
    ///
    /// [`TieredSystem::complete_due_migrations`]: ../system/struct.TieredSystem.html
    #[inline]
    pub fn any_due(&self, now: Nanos) -> bool {
        self.earliest_front <= now
    }

    /// Removes and returns the transaction with the earliest `complete_at`
    /// that is due at `now`, releasing its reservation accounting (the
    /// caller maps or frees the reserved frames). Ties break toward the
    /// fast channel so the retire order is deterministic.
    pub fn pop_due(&mut self, now: Nanos) -> Option<MigrationTxn> {
        let due =
            |c: &VecDeque<MigrationTxn>| c.front().map(|t| t.complete_at).filter(|&t| t <= now);
        let chosen = match (due(&self.channels[0]), due(&self.channels[1])) {
            (Some(f), Some(s)) => {
                if f <= s {
                    0
                } else {
                    1
                }
            }
            (Some(_), None) => 0,
            (None, Some(_)) => 1,
            (None, None) => return None,
        };
        let txn = self.channels[chosen]
            .pop_front()
            .expect("front checked due");
        self.reserved[txn.to.index()] -= txn.unit;
        self.refresh_earliest_front();
        Some(txn)
    }

    /// Removes the transaction `id` from the table regardless of its
    /// deadline (force-completion by the compat wrapper, or an abort). The
    /// channel's scheduled bandwidth is *not* refunded — an aborted copy
    /// still occupied the link. Releases reservation accounting.
    pub fn remove(&mut self, id: MigrationTxnId) -> Option<MigrationTxn> {
        for chan in &mut self.channels {
            if let Some(pos) = chan.iter().position(|t| t.id == id) {
                let txn = chan.remove(pos).expect("position just found");
                self.reserved[txn.to.index()] -= txn.unit;
                self.refresh_earliest_front();
                return Some(txn);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eng(slots: usize, cap_millis: u64) -> MigrationEngine {
        MigrationEngine::new(MigrationSpec {
            inflight_slots: slots,
            backlog_cap: Nanos::from_millis(cap_millis),
        })
    }

    fn begin_one(e: &mut MigrationEngine, id_vpn: u32, to: TierId, cost: Nanos) -> MigrationTxnId {
        e.begin(
            ProcessId(0),
            Vpn(id_vpn),
            to.other(),
            to,
            1,
            vec![Pfn(id_vpn)],
            MigrateMode::Async,
            cost,
            Nanos::ZERO,
        )
    }

    #[test]
    fn channels_are_fifo_and_backlog_accumulates() {
        let mut e = eng(8, 100);
        let a = begin_one(&mut e, 1, TierId::Fast, Nanos(100));
        let b = begin_one(&mut e, 2, TierId::Fast, Nanos(100));
        assert_eq!(e.in_flight(), 2);
        assert_eq!(e.backlog(TierId::Fast, Nanos::ZERO), Nanos(200));
        assert_eq!(e.backlog(TierId::Slow, Nanos::ZERO), Nanos::ZERO);
        assert!(e.pop_due(Nanos(99)).is_none());
        assert_eq!(e.pop_due(Nanos(100)).unwrap().id, a);
        assert!(e.pop_due(Nanos(100)).is_none());
        assert_eq!(e.pop_due(Nanos(500)).unwrap().id, b);
        assert_eq!(e.in_flight(), 0);
    }

    #[test]
    fn pop_due_orders_across_channels() {
        let mut e = eng(8, 100);
        let slow = begin_one(&mut e, 1, TierId::Slow, Nanos(50));
        let fast = begin_one(&mut e, 2, TierId::Fast, Nanos(80));
        assert_eq!(e.pop_due(Nanos(1000)).unwrap().id, slow);
        assert_eq!(e.pop_due(Nanos(1000)).unwrap().id, fast);
    }

    #[test]
    fn admission_bounds() {
        let mut e = eng(2, 0);
        assert!(e.admits(TierId::Fast, Nanos::ZERO));
        begin_one(&mut e, 1, TierId::Fast, Nanos(10));
        // Zero backlog cap: the queued copy already exceeds it.
        assert!(!e.admits(TierId::Fast, Nanos::ZERO));
        // The other channel is idle, but a second txn still fits the slots.
        assert!(e.admits(TierId::Slow, Nanos::ZERO));
        begin_one(&mut e, 2, TierId::Slow, Nanos(10));
        assert!(!e.admits(TierId::Slow, Nanos::ZERO), "slots exhausted");
    }

    #[test]
    fn any_due_cache_tracks_begin_pop_and_remove() {
        let mut e = eng(8, 100);
        assert!(!e.any_due(Nanos(u64::MAX - 1)), "empty engine never due");
        let a = begin_one(&mut e, 1, TierId::Fast, Nanos(100));
        let b = begin_one(&mut e, 2, TierId::Slow, Nanos(40));
        assert!(!e.any_due(Nanos(39)));
        assert!(e.any_due(Nanos(40)), "slow front due at its completion");
        assert_eq!(e.pop_due(Nanos(40)).unwrap().id, b);
        assert!(!e.any_due(Nanos(40)), "cache advanced to the fast front");
        assert!(e.any_due(Nanos(100)));
        assert!(e.remove(a).is_some());
        assert!(!e.any_due(Nanos(u64::MAX - 1)), "cache reset on removal");
    }

    #[test]
    fn remove_releases_reservation_without_refunding_bandwidth() {
        let mut e = eng(8, 100);
        let id = begin_one(&mut e, 7, TierId::Fast, Nanos(300));
        assert_eq!(e.reserved_frames(TierId::Fast), 1);
        let txn = e.remove(id).unwrap();
        assert_eq!(txn.dest_pfns, vec![Pfn(7)]);
        assert_eq!(e.reserved_frames(TierId::Fast), 0);
        assert_eq!(e.in_flight(), 0);
        // Bandwidth stays consumed.
        assert_eq!(e.backlog(TierId::Fast, Nanos::ZERO), Nanos(300));
        assert!(e.remove(id).is_none());
    }

    #[test]
    fn sync_transactions_are_due_immediately_and_skip_the_channel() {
        let mut e = eng(8, 100);
        e.begin(
            ProcessId(1),
            Vpn(3),
            TierId::Slow,
            TierId::Fast,
            1,
            vec![Pfn(0)],
            MigrateMode::Sync(ProcessId(1)),
            Nanos(500),
            Nanos(40),
        );
        assert_eq!(e.backlog(TierId::Fast, Nanos(40)), Nanos::ZERO);
        let txn = e.pop_due(Nanos(40)).unwrap();
        assert_eq!(txn.complete_at, Nanos(40));
    }

    #[test]
    fn find_locates_in_flight_heads() {
        let mut e = eng(8, 100);
        let id = begin_one(&mut e, 42, TierId::Fast, Nanos(10));
        assert_eq!(e.find(ProcessId(0), Vpn(42)), Some(id));
        assert_eq!(e.find(ProcessId(0), Vpn(41)), None);
        assert_eq!(e.find(ProcessId(1), Vpn(42)), None);
    }
}
