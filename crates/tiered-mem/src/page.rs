//! Software page-table entries and per-page metadata.
//!
//! Each mapped page carries a 16-byte entry: the frame, a flag word modelling
//! the PTE bits the paper's mechanisms manipulate (`PROT_NONE` for hint
//! faults, accessed/dirty for clock-style policies, `PG_probed` for DCSC,
//! `demoted` for the thrashing monitor), and two 32-bit policy words — the
//! paper's "4 bytes per page" CIT metadata plus one scratch word used by the
//! baseline policies (LAP vectors, PEBS counters, clock levels).

use crate::addr::Pfn;
use crate::tier::TierId;

/// PTE and page flags. A `u16` bitset; see the constants on [`PageFlags`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageFlags(pub u16);

impl PageFlags {
    /// The page has a frame mapped.
    pub const PRESENT: u16 = 1 << 0;
    /// The PTE is poisoned with `PROT_NONE`; the next access hint-faults.
    pub const PROT_NONE: u16 = 1 << 1;
    /// Hardware accessed bit (set on every access, cleared by scanners).
    pub const ACCESSED: u16 = 1 << 2;
    /// Hardware dirty bit (set on stores).
    pub const DIRTY: u16 = 1 << 3;
    /// `PG_probed`: unmapped by a DCSC statistical probe, not a Ticking-scan.
    pub const PROBED: u16 = 1 << 4;
    /// `demoted`: recently demoted; watched by the thrashing monitor.
    pub const DEMOTED: u16 = 1 << 5;
    /// Head page of a 2 MiB huge mapping.
    pub const HUGE_HEAD: u16 = 1 << 6;
    /// The 2 MiB block containing this page has been split to base pages.
    pub const HUGE_SPLIT: u16 = 1 << 7;
    /// Low bit of the residency tier index, stored inverted: SET for tiers
    /// 0 and 2, CLEAR for tiers 1 and 3. The inversion keeps two-tier flag
    /// words bit-identical to the historical `IN_FAST` encoding (fast = bit
    /// set, slow = bit clear) and makes an all-zero entry decode as tier 1
    /// (slow), exactly as before.
    pub const TIER_LO: u16 = 1 << 8;
    /// The page sits on the active (vs. inactive) LRU list.
    pub const LRU_ACTIVE: u16 = 1 << 9;
    /// Policy scratch bit (e.g. Chrono promotion-candidate membership).
    pub const CANDIDATE: u16 = 1 << 10;
    /// Second policy scratch bit (e.g. TPP two-touch marker).
    pub const POLICY_BIT: u16 = 1 << 11;
    /// The page's contents live on the swap device (not present).
    pub const SWAPPED: u16 = 1 << 12;
    /// A two-phase migration transaction is in flight for this mapping unit
    /// (set on the head page at `begin_migrate`, cleared on complete/abort).
    pub const MIGRATING: u16 = 1 << 13;
    /// The frame under this mapping unit took an uncorrectable error; the
    /// page awaits soft-offline (migrate away, then quarantine the frame).
    pub const POISONED: u16 = 1 << 14;
    /// High bit of the residency tier index: SET for tiers 2 and 3. Clear in
    /// every two-tier flag word, so those words are unchanged from the days
    /// this bit did not exist.
    pub const TIER_HI: u16 = 1 << 15;

    /// Number of defined flag bits ([`PageFlags::TIER_HI`] is the highest).
    pub const BITS: u32 = 16;
    /// Mask covering every defined flag bit.
    pub const MASK: u16 = u16::MAX;
    /// Display names of the defined flag bits, indexed by bit position.
    pub const NAMES: [&'static str; Self::BITS as usize] = [
        "PRESENT",
        "PROT_NONE",
        "ACCESSED",
        "DIRTY",
        "PROBED",
        "DEMOTED",
        "HUGE_HEAD",
        "HUGE_SPLIT",
        "TIER_LO",
        "LRU_ACTIVE",
        "CANDIDATE",
        "POLICY_BIT",
        "SWAPPED",
        "MIGRATING",
        "POISONED",
        "TIER_HI",
    ];

    /// Constructs a flag word from raw bits. Bits above [`PageFlags::MASK`]
    /// must be zero (vacuous while all 16 bits are defined; kept so the
    /// assertion returns if a bit is ever retired).
    #[inline]
    pub fn from_bits(bits: u16) -> PageFlags {
        debug_assert_eq!(bits & !Self::MASK, 0, "undefined PageFlags bits set");
        PageFlags(bits)
    }

    /// The raw flag word. Prefer [`PageFlags::has`]/[`PageFlags::has_any`]
    /// for predicates; this exists for exhaustive enumeration and reports.
    #[inline]
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Renders the set bits as `A|B|C` (`-` when empty), for reports.
    pub fn describe(self) -> String {
        let mut out = String::new();
        for (i, name) in Self::NAMES.iter().enumerate() {
            if self.0 & (1 << i) != 0 {
                if !out.is_empty() {
                    out.push('|');
                }
                out.push_str(name);
            }
        }
        if out.is_empty() {
            out.push('-');
        }
        out
    }

    /// Whether all bits in `mask` are set.
    #[inline]
    pub fn has(self, mask: u16) -> bool {
        self.0 & mask == mask
    }

    /// Whether any bit in `mask` is set.
    #[inline]
    pub fn has_any(self, mask: u16) -> bool {
        self.0 & mask != 0
    }

    /// Sets all bits in `mask`.
    #[inline]
    pub fn set(&mut self, mask: u16) {
        self.0 |= mask;
    }

    /// Clears all bits in `mask`.
    #[inline]
    pub fn clear(&mut self, mask: u16) {
        self.0 &= !mask;
    }

    /// The residency tier, decoded from the two tier-index bits
    /// ([`PageFlags::TIER_LO`], inverted, and [`PageFlags::TIER_HI`]).
    #[inline]
    pub fn tier(self) -> TierId {
        let lo = u8::from(self.0 & Self::TIER_LO == 0);
        let hi = u8::from(self.0 & Self::TIER_HI != 0);
        TierId(hi << 1 | lo)
    }

    /// Encodes the tier index into the two tier bits.
    #[inline]
    pub fn set_tier(&mut self, tier: TierId) {
        debug_assert!((tier.index()) < crate::tier::MAX_TIERS);
        if tier.0 & 1 == 0 {
            self.set(Self::TIER_LO);
        } else {
            self.clear(Self::TIER_LO);
        }
        if tier.0 >> 1 != 0 {
            self.set(Self::TIER_HI);
        } else {
            self.clear(Self::TIER_HI);
        }
    }
}

/// One page's entry in a process page table.
#[derive(Debug, Clone, Copy)]
pub struct PageEntry {
    /// Mapped frame within the owning tier's frame table, or [`Pfn::NONE`].
    pub pfn: Pfn,
    /// PTE and page flags.
    pub flags: PageFlags,
    /// Stamp for lazy LRU deletion: an LRU list entry is live only if its
    /// recorded stamp equals this field.
    pub lru_stamp: u16,
    /// Policy word 1: Chrono stores the Ticking-scan (or demotion) timestamp
    /// here, in milliseconds, as the paper's 4-byte CIT metadata.
    pub policy_word: u32,
    /// Policy word 2: scratch for baselines (LAP vector, PEBS count, level).
    pub policy_extra: u32,
}

impl Default for PageEntry {
    fn default() -> Self {
        PageEntry {
            pfn: Pfn::NONE,
            flags: PageFlags::default(),
            lru_stamp: 0,
            policy_word: 0,
            policy_extra: 0,
        }
    }
}

impl PageEntry {
    /// Whether the page has a frame mapped.
    #[inline]
    pub fn present(&self) -> bool {
        self.flags.has(PageFlags::PRESENT)
    }

    /// The tier the page currently resides in.
    #[inline]
    pub fn tier(&self) -> TierId {
        self.flags.tier()
    }

    /// Invalidate any LRU list entries pointing at this page.
    #[inline]
    pub fn bump_lru_stamp(&mut self) {
        self.lru_stamp = self.lru_stamp.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::MAX_TIERS;

    #[test]
    fn flags_set_and_clear() {
        let mut f = PageFlags::default();
        assert!(!f.has(PageFlags::PRESENT));
        f.set(PageFlags::PRESENT | PageFlags::ACCESSED);
        assert!(f.has(PageFlags::PRESENT));
        assert!(f.has(PageFlags::ACCESSED));
        assert!(f.has(PageFlags::PRESENT | PageFlags::ACCESSED));
        f.clear(PageFlags::ACCESSED);
        assert!(f.has(PageFlags::PRESENT));
        assert!(!f.has(PageFlags::ACCESSED));
    }

    #[test]
    fn has_any_vs_has() {
        let mut f = PageFlags::default();
        f.set(PageFlags::DIRTY);
        assert!(f.has_any(PageFlags::DIRTY | PageFlags::ACCESSED));
        assert!(!f.has(PageFlags::DIRTY | PageFlags::ACCESSED));
    }

    #[test]
    fn tier_encoding_roundtrips() {
        let mut f = PageFlags::default();
        assert_eq!(f.tier(), TierId::SLOW);
        for i in 0..MAX_TIERS as u8 {
            f.set_tier(TierId(i));
            assert_eq!(f.tier(), TierId(i));
        }
        f.set_tier(TierId::FAST);
        assert_eq!(f.tier(), TierId::FAST);
    }

    #[test]
    fn two_tier_words_match_historical_in_fast_encoding() {
        // Byte-compat contract: encoding tiers 0/1 must produce exactly the
        // flag words the old single-bit IN_FAST (= bit 8) scheme produced,
        // so every committed two-tier golden replays unchanged.
        let mut f = PageFlags::from_bits(PageFlags::PRESENT);
        f.set_tier(TierId::FAST);
        assert_eq!(f.bits(), PageFlags::PRESENT | 1 << 8);
        f.set_tier(TierId::SLOW);
        assert_eq!(f.bits(), PageFlags::PRESENT);
        // Deep tiers use the new high bit and never perturb other flags.
        f.set_tier(TierId(2));
        assert_eq!(f.bits(), PageFlags::PRESENT | 1 << 8 | 1 << 15);
        f.set_tier(TierId(3));
        assert_eq!(f.bits(), PageFlags::PRESENT | 1 << 15);
    }

    #[test]
    fn bits_roundtrip_and_describe() {
        for bits in [
            0u16,
            PageFlags::PRESENT | PageFlags::TIER_LO,
            PageFlags::MASK,
        ] {
            assert_eq!(PageFlags::from_bits(bits).bits(), bits);
        }
        assert_eq!(PageFlags::from_bits(0).describe(), "-");
        assert_eq!(
            PageFlags::from_bits(PageFlags::PRESENT | PageFlags::SWAPPED).describe(),
            "PRESENT|SWAPPED"
        );
        // One name per defined bit, in bit order.
        assert_eq!(PageFlags::NAMES.len(), PageFlags::BITS as usize);
        assert_eq!(PageFlags::MASK.count_ones(), PageFlags::BITS);
    }

    #[test]
    fn default_entry_is_unmapped() {
        let e = PageEntry::default();
        assert!(!e.present());
        assert!(e.pfn.is_none());
        assert_eq!(e.policy_word, 0);
        // An all-zero entry still decodes as the historical default tier.
        assert_eq!(e.tier(), TierId::SLOW);
    }

    #[test]
    fn lru_stamp_wraps() {
        let mut e = PageEntry {
            lru_stamp: u16::MAX,
            ..Default::default()
        };
        e.bump_lru_stamp();
        assert_eq!(e.lru_stamp, 0);
    }

    #[test]
    fn entry_is_compact() {
        // The paper stresses per-page metadata cost (4 bytes for CIT); our
        // whole entry must stay pointer-sized-small so large address spaces
        // are cheap to simulate.
        assert!(std::mem::size_of::<PageEntry>() <= 16);
    }
}
