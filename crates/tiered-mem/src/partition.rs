//! Mutex-free partitioned frame allocation for multi-tenant sharding.
//!
//! A [`PartitionPlan`] carves one global pool of frames per managed tier into
//! per-tenant partitions. Each tenant's shard owns its partition exclusively
//! — the shard constructs its own frame tables over local PFNs `0..n` and
//! the plan records the global base of each range — so allocation needs no
//! locks at all: exclusivity is enforced by ownership (each `TenantShard`
//! holds its partition's tables by value), not by a mutex. Cross-tenant
//! identity questions ("is this physical frame mapped by two tenants?") are
//! answered by translating local PFNs through the plan: partitions are
//! contiguous, disjoint, and exhaustive by construction, which the
//! `tiering-verify` oracle re-checks as the *PFN exclusivity across tenants*
//! invariant.
//!
//! Splitting is deterministic: weighted largest-remainder apportionment with
//! ties broken by tenant id, and a per-tenant floor so every tenant can hold
//! at least a few resident pages plus working watermarks.

use crate::tier::{TierId, MAX_TIERS};

/// Minimum fast-tier frames any tenant partition receives (watermark floor).
pub const MIN_FAST_FRAMES: u32 = 16;
/// Minimum frames any tenant partition receives in each lower tier.
pub const MIN_SLOW_FRAMES: u32 = 32;

/// One tenant's slice of the global frame space: a contiguous range per
/// managed tier. Stays `Copy` — fixed-size arrays sized by [`MAX_TIERS`],
/// with slots past the chain length zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FramePartition {
    /// Owning tenant (index into the plan).
    pub tenant: u32,
    frames: [u32; MAX_TIERS],
    bases: [u64; MAX_TIERS],
    ntiers: u8,
}

impl FramePartition {
    /// Number of managed tiers this partition spans.
    pub fn num_tiers(&self) -> usize {
        self.ntiers as usize
    }

    /// Frames this partition holds in `tier`.
    pub fn frames(&self, tier: TierId) -> u32 {
        debug_assert!(tier.index() < self.num_tiers());
        self.frames[tier.index()]
    }

    /// Global PFN of this partition's first frame in `tier`.
    pub fn base(&self, tier: TierId) -> u64 {
        debug_assert!(tier.index() < self.num_tiers());
        self.bases[tier.index()]
    }

    /// Translates a shard-local PFN in `tier` to its global frame number.
    pub fn global_pfn(&self, tier: TierId, local: u32) -> u64 {
        debug_assert!(local < self.frames(tier), "local PFN outside partition");
        self.bases[tier.index()] + local as u64
    }

    /// Fast-tier (tier 0) frame count — two-tier compat accessor.
    pub fn fast_frames(&self) -> u32 {
        self.frames(TierId::FAST)
    }

    /// Slow-tier (tier 1) frame count — two-tier compat accessor.
    pub fn slow_frames(&self) -> u32 {
        self.frames(TierId::SLOW)
    }

    /// Translates a shard-local fast-tier PFN to its global frame number.
    pub fn global_fast_pfn(&self, local: u32) -> u64 {
        self.global_pfn(TierId::FAST, local)
    }

    /// Translates a shard-local slow-tier PFN to its global frame number.
    pub fn global_slow_pfn(&self, local: u32) -> u64 {
        self.global_pfn(TierId::SLOW, local)
    }
}

/// A deterministic partitioning of the global frame pools across tenants.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    parts: Vec<FramePartition>,
    totals: [u32; MAX_TIERS],
    ntiers: u8,
}

/// Largest-remainder apportionment of `total` units across `weights`, with a
/// per-share floor of `min`. Ties in the remainder ranking break toward the
/// lower index, so the split is a pure function of its arguments.
fn apportion(total: u32, weights: &[u64], min: u32) -> Vec<u32> {
    let n = weights.len();
    assert!(n > 0, "cannot partition across zero tenants");
    assert!(
        total as u64 >= min as u64 * n as u64,
        "{total} frames cannot give {n} tenants the {min}-frame floor"
    );
    let spare = total - min * n as u32;
    let sum_w: u128 = weights.iter().map(|&w| w.max(1) as u128).sum();
    let mut shares: Vec<u32> = Vec::with_capacity(n);
    // (remainder numerator, tenant) pairs for the leftover ranking.
    let mut rem: Vec<(u128, usize)> = Vec::with_capacity(n);
    let mut assigned = 0u32;
    for (i, &w) in weights.iter().enumerate() {
        let num = spare as u128 * w.max(1) as u128;
        let floor = (num / sum_w) as u32;
        shares.push(min + floor);
        assigned += floor;
        rem.push((num % sum_w, i));
    }
    // Hand the unassigned remainder out by largest fractional part; ties go
    // to the lower tenant id (sort is stable on the descending key).
    rem.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let leftover = spare - assigned;
    for &(_, i) in rem.iter().take(leftover as usize) {
        shares[i] += 1;
    }
    shares
}

impl PartitionPlan {
    /// Splits per-tier frame pools (`totals[t]` frames in tier `t`, one slot
    /// per managed tier) across `weights.len()` tenants proportionally to
    /// `weights` (zero weights count as one). Tier 0 uses the
    /// [`MIN_FAST_FRAMES`] floor, every deeper tier [`MIN_SLOW_FRAMES`].
    /// Panics if any pool cannot cover its floor.
    pub fn split_weighted_tiers(totals: &[u32], weights: &[u64]) -> PartitionPlan {
        PartitionPlan::split_tiers_inner(totals, weights, None)
    }

    fn split_tiers_inner(
        totals: &[u32],
        weights: &[u64],
        excluded: Option<TierId>,
    ) -> PartitionPlan {
        assert!(
            (2..=MAX_TIERS).contains(&totals.len()),
            "a partition plan spans 2..={MAX_TIERS} tiers, got {}",
            totals.len()
        );
        let ntiers = totals.len();
        let mut shares: Vec<Vec<u32>> = Vec::with_capacity(ntiers);
        for (t, &total) in totals.iter().enumerate() {
            // A spliced-out tier contributes nothing: zero pool, zero floor.
            let spliced = excluded.is_some_and(|e| e.index() == t);
            let (pool, min) = if spliced {
                (0, 0)
            } else if t == 0 {
                (total, MIN_FAST_FRAMES)
            } else {
                (total, MIN_SLOW_FRAMES)
            };
            shares.push(apportion(pool, weights, min));
        }
        let tenants = weights.len();
        let mut parts = Vec::with_capacity(tenants);
        let mut cursors = [0u64; MAX_TIERS];
        for i in 0..tenants {
            let mut frames = [0u32; MAX_TIERS];
            let mut bases = [0u64; MAX_TIERS];
            for (t, tier_shares) in shares.iter().enumerate() {
                frames[t] = tier_shares[i];
                bases[t] = cursors[t];
                cursors[t] += u64::from(tier_shares[i]);
            }
            parts.push(FramePartition {
                tenant: i as u32,
                frames,
                bases,
                ntiers: ntiers as u8,
            });
        }
        let mut padded = [0u32; MAX_TIERS];
        padded[..ntiers].copy_from_slice(totals);
        if let Some(e) = excluded {
            padded[e.index()] = 0;
        }
        PartitionPlan {
            parts,
            totals: padded,
            ntiers: ntiers as u8,
        }
    }

    /// Re-splits this plan's global pools with `offline`'s pool withdrawn —
    /// the chain-healing shape after a tier goes [`Offline`] and is spliced
    /// out. Every tenant's share in that tier collapses to zero frames (no
    /// floor applies to a spliced-out tier), while every healthy tier keeps
    /// its floor-enforced weighted split, byte-identical to a fresh
    /// [`split_weighted_tiers`] over the same pools. The result still
    /// [`covers_exactly`]: the withdrawn tier's recorded total is zero, so
    /// the contiguous/disjoint/exhaustive identity holds per tier.
    ///
    /// [`Offline`]: crate::tier::TierHealth::Offline
    /// [`split_weighted_tiers`]: PartitionPlan::split_weighted_tiers
    /// [`covers_exactly`]: PartitionPlan::covers_exactly
    pub fn resplit_excluding(&self, offline: TierId, weights: &[u64]) -> PartitionPlan {
        assert!(
            offline.index() < self.num_tiers(),
            "cannot splice tier {} out of a {}-tier plan",
            offline.index(),
            self.num_tiers()
        );
        assert_eq!(
            weights.len(),
            self.tenants(),
            "re-split must keep the tenant count"
        );
        let totals: Vec<u32> = (0..self.num_tiers()).map(|t| self.totals[t]).collect();
        PartitionPlan::split_tiers_inner(&totals, weights, Some(offline))
    }

    /// Two-tier compat: splits `total_fast`/`total_slow` frames across
    /// `weights.len()` tenants.
    pub fn split_weighted(total_fast: u32, total_slow: u32, weights: &[u64]) -> PartitionPlan {
        PartitionPlan::split_weighted_tiers(&[total_fast, total_slow], weights)
    }

    /// Even split: every tenant weighted equally.
    pub fn split_even(total_fast: u32, total_slow: u32, tenants: usize) -> PartitionPlan {
        PartitionPlan::split_weighted(total_fast, total_slow, &vec![1u64; tenants])
    }

    /// Number of tenant partitions.
    pub fn tenants(&self) -> usize {
        self.parts.len()
    }

    /// Number of managed tiers the plan spans.
    pub fn num_tiers(&self) -> usize {
        self.ntiers as usize
    }

    /// One tenant's partition.
    pub fn part(&self, tenant: usize) -> &FramePartition {
        &self.parts[tenant]
    }

    /// All partitions in tenant order.
    pub fn parts(&self) -> &[FramePartition] {
        &self.parts
    }

    /// Global frames the plan was built over in `tier`.
    pub fn total(&self, tier: TierId) -> u32 {
        debug_assert!(tier.index() < self.num_tiers());
        self.totals[tier.index()]
    }

    /// Global fast-tier frames the plan was built over.
    pub fn total_fast(&self) -> u32 {
        self.total(TierId::FAST)
    }

    /// Global slow-tier (tier 1) frames the plan was built over.
    pub fn total_slow(&self) -> u32 {
        self.total(TierId::SLOW)
    }

    /// Whether the partitions are contiguous, disjoint, and exhaustive —
    /// every global frame in every tier belongs to exactly one tenant. This
    /// is the static half of the *PFN exclusivity across tenants* invariant;
    /// the dynamic half (each shard's frame tables sized to its partition)
    /// is the oracle's to check.
    pub fn covers_exactly(&self) -> bool {
        let ntiers = self.num_tiers();
        let mut cursors = [0u64; MAX_TIERS];
        for (i, p) in self.parts.iter().enumerate() {
            if u64::from(p.tenant) != i as u64 || p.num_tiers() != ntiers {
                return false;
            }
            for (t, cursor) in cursors.iter_mut().enumerate().take(ntiers) {
                if p.bases[t] != *cursor {
                    return false;
                }
                *cursor += u64::from(p.frames[t]);
            }
        }
        (0..ntiers).all(|t| cursors[t] == u64::from(self.totals[t]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_conserves_and_covers() {
        let plan = PartitionPlan::split_even(1000, 3000, 7);
        assert_eq!(plan.tenants(), 7);
        assert_eq!(plan.num_tiers(), 2);
        assert!(plan.covers_exactly());
        let fast: u64 = plan.parts().iter().map(|p| p.fast_frames() as u64).sum();
        let slow: u64 = plan.parts().iter().map(|p| p.slow_frames() as u64).sum();
        assert_eq!(fast, 1000);
        assert_eq!(slow, 3000);
        // Even weights: shares differ by at most one frame.
        let min = plan.parts().iter().map(|p| p.fast_frames()).min().unwrap();
        let max = plan.parts().iter().map(|p| p.fast_frames()).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn weighted_split_is_proportional_with_floor() {
        let weights = [100u64, 1, 1, 1];
        let plan = PartitionPlan::split_weighted(1024, 4096, &weights);
        assert!(plan.covers_exactly());
        for p in plan.parts() {
            assert!(p.fast_frames() >= MIN_FAST_FRAMES);
            assert!(p.slow_frames() >= MIN_SLOW_FRAMES);
        }
        // The heavy tenant dominates the spare pool beyond the floors.
        assert!(plan.part(0).fast_frames() > 900);
    }

    #[test]
    fn split_is_deterministic() {
        let weights = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let a = PartitionPlan::split_weighted(2048, 6144, &weights);
        let b = PartitionPlan::split_weighted(2048, 6144, &weights);
        assert_eq!(a.parts(), b.parts());
    }

    #[test]
    fn global_pfns_are_disjoint_across_tenants() {
        let plan = PartitionPlan::split_even(64, 128, 3);
        let mut seen = std::collections::BTreeSet::new();
        for p in plan.parts() {
            for l in 0..p.fast_frames() {
                assert!(seen.insert(("fast", p.global_fast_pfn(l))));
            }
            for l in 0..p.slow_frames() {
                assert!(seen.insert(("slow", p.global_slow_pfn(l))));
            }
        }
        assert_eq!(seen.len(), 64 + 128);
    }

    #[test]
    #[should_panic(expected = "floor")]
    fn underprovisioned_pool_panics() {
        PartitionPlan::split_even(MIN_FAST_FRAMES * 2 - 1, 4096, 2);
    }

    /// Asserts the capacity identity for a plan: contiguous/disjoint/
    /// exhaustive cover and per-tier sums equal to the global pools.
    fn assert_capacity_identity(plan: &PartitionPlan) {
        assert!(plan.covers_exactly());
        for t in 0..plan.num_tiers() {
            let tier = TierId(t as u8);
            let sum: u64 = plan.parts().iter().map(|p| p.frames(tier) as u64).sum();
            assert_eq!(sum, u64::from(plan.total(tier)));
        }
    }

    #[test]
    fn zero_weight_tenant_still_gets_the_floor_and_a_share() {
        // Zero weights behave as one: the tenant is not starved below the
        // floor, and the capacity identity still holds exactly.
        let weights = [0u64, 7, 0, 7];
        let plan = PartitionPlan::split_weighted(1024, 4096, &weights);
        assert_capacity_identity(&plan);
        for p in plan.parts() {
            assert!(p.fast_frames() >= MIN_FAST_FRAMES);
            assert!(p.slow_frames() >= MIN_SLOW_FRAMES);
        }
        // Zero behaves as weight 1, so both zero-weight tenants receive the
        // same share and strictly less than the weight-7 tenants.
        assert_eq!(plan.part(0).fast_frames(), plan.part(2).fast_frames());
        assert!(plan.part(0).fast_frames() < plan.part(1).fast_frames());
        // And identically to an explicit weight-1 plan.
        let ones = PartitionPlan::split_weighted(1024, 4096, &[1, 7, 1, 7]);
        assert_eq!(plan.parts(), ones.parts());
    }

    #[test]
    fn floor_dominated_tiny_pools_split_exactly() {
        // Pools sized exactly at the floors: the spare pool is zero, every
        // tenant gets precisely the floor regardless of weight skew, and
        // nothing is lost to rounding.
        let weights = [1000u64, 1, 1];
        let n = weights.len() as u32;
        let plan =
            PartitionPlan::split_weighted(MIN_FAST_FRAMES * n, MIN_SLOW_FRAMES * n, &weights);
        assert_capacity_identity(&plan);
        for p in plan.parts() {
            assert_eq!(p.fast_frames(), MIN_FAST_FRAMES);
            assert_eq!(p.slow_frames(), MIN_SLOW_FRAMES);
        }
        // One spare frame past the floors lands on the heaviest tenant.
        let plus_one =
            PartitionPlan::split_weighted(MIN_FAST_FRAMES * n + 1, MIN_SLOW_FRAMES * n, &weights);
        assert_capacity_identity(&plus_one);
        assert_eq!(plus_one.part(0).fast_frames(), MIN_FAST_FRAMES + 1);
        assert_eq!(plus_one.part(1).fast_frames(), MIN_FAST_FRAMES);
    }

    #[test]
    fn single_tenant_plan_is_degenerate_and_exact() {
        // One tenant owns the whole pool: bases at zero, shares equal to the
        // totals, capacity identity trivially exact — the shape the classic
        // single-tenant compat path builds.
        let plan = PartitionPlan::split_weighted(777, 2048, &[5]);
        assert_capacity_identity(&plan);
        let p = plan.part(0);
        assert_eq!((p.base(TierId::FAST), p.base(TierId::SLOW)), (0, 0));
        assert_eq!((p.fast_frames(), p.slow_frames()), (777, 2048));
        assert_eq!(p.global_fast_pfn(776), 776);
        assert_eq!(p.global_slow_pfn(2047), 2047);
    }

    #[test]
    fn resplit_excluding_offline_tier_keeps_identity_and_floors() {
        let weights = [5u64, 1, 3];
        let plan = PartitionPlan::split_weighted_tiers(&[256, 512, 1024], &weights);
        assert_capacity_identity(&plan);
        let mid = TierId(1);
        let healed = plan.resplit_excluding(mid, &weights);
        // The healed plan still spans three tier slots but the spliced-out
        // tier's pool is withdrawn entirely: zero total, zero per tenant.
        assert_eq!(healed.num_tiers(), 3);
        assert_capacity_identity(&healed);
        assert_eq!(healed.total(mid), 0);
        for p in healed.parts() {
            assert_eq!(p.frames(mid), 0);
            assert!(p.frames(TierId::FAST) >= MIN_FAST_FRAMES);
            assert!(p.frames(TierId(2)) >= MIN_SLOW_FRAMES);
        }
        // Healthy tiers re-split byte-identically to the original plan: the
        // withdrawn pool never fed the other tiers' apportionment.
        for t in [TierId::FAST, TierId(2)] {
            assert_eq!(healed.total(t), plan.total(t));
            for (a, b) in plan.parts().iter().zip(healed.parts()) {
                assert_eq!(a.frames(t), b.frames(t));
                assert_eq!(a.base(t), b.base(t));
            }
        }
        // Deterministic: re-splitting twice gives the same partitions.
        let again = plan.resplit_excluding(mid, &weights);
        assert_eq!(healed.parts(), again.parts());
    }

    #[test]
    fn resplit_excluding_edge_tiers_covers_exactly() {
        // Splicing out either end of the chain (dying FAST device, dying
        // capacity tier) still yields an exact cover with floors intact on
        // the survivors — the floor rule is per healthy tier, not global.
        let weights = [2u64, 2, 1, 1];
        let plan = PartitionPlan::split_weighted_tiers(&[128, 256, 512], &weights);
        for dead in [TierId::FAST, TierId(2)] {
            let healed = plan.resplit_excluding(dead, &weights);
            assert_capacity_identity(&healed);
            assert_eq!(healed.total(dead), 0);
            for p in healed.parts() {
                assert_eq!(p.frames(dead), 0);
            }
            for t in (0..3).map(|i| TierId(i as u8)).filter(|&t| t != dead) {
                let floor = if t == TierId::FAST {
                    MIN_FAST_FRAMES
                } else {
                    MIN_SLOW_FRAMES
                };
                assert!(healed.parts().iter().all(|p| p.frames(t) >= floor));
            }
        }
    }

    #[test]
    #[should_panic(expected = "tenant count")]
    fn resplit_excluding_rejects_tenant_count_change() {
        let plan = PartitionPlan::split_even(256, 512, 3);
        plan.resplit_excluding(TierId(1), &[1, 1]);
    }

    #[test]
    fn three_tier_plan_partitions_every_tier() {
        let weights = [2u64, 1];
        let plan = PartitionPlan::split_weighted_tiers(&[128, 256, 512], &weights);
        assert_eq!(plan.num_tiers(), 3);
        assert_capacity_identity(&plan);
        let mid = TierId(1);
        let cold = TierId(2);
        // Second tenant's ranges start where the first tenant's end, per tier.
        let (a, b) = (plan.part(0), plan.part(1));
        for t in [TierId::FAST, mid, cold] {
            assert_eq!(b.base(t), a.base(t) + u64::from(a.frames(t)));
            assert!(a.frames(t) > b.frames(t), "weight-2 tenant gets more");
        }
        assert_eq!(plan.total(cold), 512);
        // The compat 2-tier shape is exactly the generalized call with two
        // totals.
        let two = PartitionPlan::split_weighted(128, 256, &weights);
        let gen = PartitionPlan::split_weighted_tiers(&[128, 256], &weights);
        assert_eq!(two.parts(), gen.parts());
    }
}
