//! Per-process virtual address spaces.

use crate::addr::{PageSize, Vpn, HUGE_2M_PAGES};
use crate::page::{PageEntry, PageFlags};
use crate::tier::{TierId, MAX_TIERS};

/// One process's page table: a dense array of [`PageEntry`]s.
///
/// The mapping granularity is chosen at creation: base 4 KiB pages, or 2 MiB
/// huge pages. Under huge mappings the *head* entry of each 512-page block
/// carries the block's PTE state (present/`PROT_NONE`/accessed bits and
/// policy words) — mirroring a PMD-level mapping — until the block is split,
/// after which its base entries act independently.
#[derive(Debug)]
pub struct AddressSpace {
    entries: Vec<PageEntry>,
    page_size: PageSize,
}

impl AddressSpace {
    /// Creates an address space covering `pages` base pages.
    ///
    /// For huge mappings, `pages` is rounded up to a whole number of blocks.
    pub fn new(pages: u32, page_size: PageSize) -> AddressSpace {
        let pages = match page_size {
            PageSize::Base => pages,
            PageSize::Huge2M => pages.div_ceil(HUGE_2M_PAGES) * HUGE_2M_PAGES,
        };
        AddressSpace {
            entries: vec![PageEntry::default(); pages as usize],
            page_size,
        }
    }

    /// Number of base pages in the space.
    pub fn pages(&self) -> u32 {
        self.entries.len() as u32
    }

    /// The mapping granularity of this space.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Whether this space uses 2 MiB huge mappings.
    pub fn is_huge(&self) -> bool {
        self.page_size == PageSize::Huge2M
    }

    /// The page whose PTE governs an access to `vpn`: `vpn` itself for base
    /// mappings and split blocks, the block head for intact huge mappings.
    pub fn pte_page(&self, vpn: Vpn) -> Vpn {
        match self.page_size {
            PageSize::Base => vpn,
            PageSize::Huge2M => {
                let head = vpn.huge_head();
                if self.entries[head.0 as usize]
                    .flags
                    .has(PageFlags::HUGE_SPLIT)
                {
                    vpn
                } else {
                    head
                }
            }
        }
    }

    /// Whether the block containing `vpn` is mapped huge and unsplit.
    pub fn is_huge_mapped(&self, vpn: Vpn) -> bool {
        self.is_huge()
            && !self.entries[vpn.huge_head().0 as usize]
                .flags
                .has(PageFlags::HUGE_SPLIT)
    }

    /// Immutable access to a page entry.
    #[inline]
    pub fn entry(&self, vpn: Vpn) -> &PageEntry {
        &self.entries[vpn.0 as usize]
    }

    /// Mutable access to a page entry.
    #[inline]
    pub fn entry_mut(&mut self, vpn: Vpn) -> &mut PageEntry {
        &mut self.entries[vpn.0 as usize]
    }

    /// Marks a block as split: subsequent accesses use base-page PTEs. The
    /// head's PTE state is copied to all tail entries so the block's pages
    /// keep their mapping (Memtis-style huge page splitting).
    pub fn split_block(&mut self, head: Vpn) {
        debug_assert!(head.is_huge_head(), "split must target a block head");
        let head_idx = head.0 as usize;
        let template = self.entries[head_idx];
        for off in 1..HUGE_2M_PAGES as usize {
            let e = &mut self.entries[head_idx + off];
            // Tail entries already carry their own frames (allocated at map
            // time); they inherit the head's flags and policy words.
            let pfn = e.pfn;
            let stamp = e.lru_stamp;
            *e = template;
            e.pfn = pfn;
            e.lru_stamp = stamp;
            e.flags.clear(PageFlags::HUGE_HEAD);
        }
        self.entries[head_idx].flags.set(PageFlags::HUGE_SPLIT);
        self.entries[head_idx].flags.clear(PageFlags::HUGE_HEAD);
    }

    /// Iterates over the PTE-carrying pages of a wrapped range of the address
    /// space, calling `f` for each *present* PTE page.
    ///
    /// This is the primitive behind Ticking-scan and the NUMA-balancing scan:
    /// `start` is a base-page cursor; `len` is in base pages; the walk visits
    /// one entry per mapping unit (so a huge block counts as 512 base pages of
    /// progress but a single callback). Returns the new cursor.
    pub fn walk_range<F>(&mut self, start: Vpn, len: u32, mut f: F) -> Vpn
    where
        F: FnMut(Vpn, &mut PageEntry),
    {
        let total = self.pages();
        if total == 0 {
            return start;
        }
        let mut pos = start.0 % total;
        let mut remaining = len.min(total);
        // Base mappings have no block logic, so the sweep is just the backing
        // slice in at most two contiguous segments (pre-wrap, post-wrap);
        // iterating the slices directly lets the compiler hoist the bounds
        // and modulo work out of the per-page loop.
        if self.page_size == PageSize::Base {
            let first = remaining.min(total - pos);
            for (off, e) in self.entries[pos as usize..(pos + first) as usize]
                .iter_mut()
                .enumerate()
            {
                if e.present() {
                    f(Vpn(pos + off as u32), e);
                }
            }
            let rest = (remaining - first) as usize;
            for (off, e) in self.entries[..rest].iter_mut().enumerate() {
                if e.present() {
                    f(Vpn(off as u32), e);
                }
            }
            return Vpn((pos + remaining) % total);
        }
        while remaining > 0 {
            let vpn = Vpn(pos);
            let unit = if self.is_huge_mapped(vpn) {
                let head = vpn.huge_head();
                // Step to the end of the block regardless of where we are in
                // it, but only fire the callback from the head: a cursor that
                // lands mid-block (stale after a split was re-collapsed, or a
                // wrap into a block interior) would otherwise visit the head
                // here AND again when the walk comes back around to it.
                if vpn == head && self.entries[head.0 as usize].present() {
                    f(head, &mut self.entries[head.0 as usize]);
                }
                HUGE_2M_PAGES - vpn.huge_offset()
            } else {
                if self.entries[pos as usize].present() {
                    f(vpn, &mut self.entries[pos as usize]);
                }
                1
            };
            pos = (pos + unit) % total;
            remaining = remaining.saturating_sub(unit);
        }
        Vpn(pos)
    }

    /// Counts resident base pages per tier (diagnostic; O(n)). Slots past
    /// the configured chain length stay zero.
    pub fn resident_pages(&self) -> [u32; MAX_TIERS] {
        let mut counts = [0u32; MAX_TIERS];
        let mut i = 0usize;
        while i < self.entries.len() {
            let vpn = Vpn(i as u32);
            if self.is_huge_mapped(vpn) && vpn.is_huge_head() {
                let e = &self.entries[i];
                if e.present() {
                    counts[e.tier().index()] += HUGE_2M_PAGES;
                }
                i += HUGE_2M_PAGES as usize;
            } else {
                let e = &self.entries[i];
                if e.present() {
                    counts[e.tier().index()] += 1;
                }
                i += 1;
            }
        }
        counts
    }

    /// Fraction of resident pages in the fast tier, or `None` if nothing is
    /// resident yet.
    pub fn fast_tier_fraction(&self) -> Option<f64> {
        let counts = self.resident_pages();
        let total: u32 = counts.iter().sum();
        if total == 0 {
            None
        } else {
            Some(counts[TierId::FAST.index()] as f64 / total as f64)
        }
    }
}

/// Convenience for tests and policies: tier of a present page.
pub fn page_tier(e: &PageEntry) -> Option<TierId> {
    if e.present() {
        Some(e.tier())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Pfn;

    fn mapped_entry(tier: TierId) -> PageEntry {
        let mut e = PageEntry {
            pfn: Pfn(0),
            ..Default::default()
        };
        e.flags.set(PageFlags::PRESENT);
        e.flags.set_tier(tier);
        e
    }

    #[test]
    fn base_space_pte_page_is_identity() {
        let s = AddressSpace::new(64, PageSize::Base);
        assert_eq!(s.pte_page(Vpn(17)), Vpn(17));
        assert!(!s.is_huge_mapped(Vpn(17)));
    }

    #[test]
    fn huge_space_rounds_up_and_uses_heads() {
        let s = AddressSpace::new(600, PageSize::Huge2M);
        assert_eq!(s.pages(), 1024);
        assert_eq!(s.pte_page(Vpn(700)), Vpn(512));
        assert!(s.is_huge_mapped(Vpn(700)));
    }

    #[test]
    fn split_block_devolves_to_base_ptes() {
        let mut s = AddressSpace::new(1024, PageSize::Huge2M);
        *s.entry_mut(Vpn(0)) = mapped_entry(TierId::FAST);
        s.entry_mut(Vpn(0)).flags.set(PageFlags::HUGE_HEAD);
        for i in 1..512 {
            s.entry_mut(Vpn(i)).pfn = Pfn(i);
        }
        s.split_block(Vpn(0));
        assert_eq!(s.pte_page(Vpn(100)), Vpn(100));
        assert!(!s.is_huge_mapped(Vpn(100)));
        // Tail entries inherited the head's present flag and tier.
        assert!(s.entry(Vpn(100)).present());
        assert_eq!(s.entry(Vpn(100)).tier(), TierId::FAST);
        // But kept their own frames.
        assert_eq!(s.entry(Vpn(100)).pfn, Pfn(100));
    }

    #[test]
    fn walk_range_wraps_around() {
        let mut s = AddressSpace::new(8, PageSize::Base);
        for i in 0..8 {
            *s.entry_mut(Vpn(i)) = mapped_entry(TierId::SLOW);
        }
        let mut seen = Vec::new();
        let next = s.walk_range(Vpn(6), 4, |v, _| seen.push(v.0));
        assert_eq!(seen, vec![6, 7, 0, 1]);
        assert_eq!(next, Vpn(2));
    }

    #[test]
    fn walk_range_skips_unmapped() {
        let mut s = AddressSpace::new(4, PageSize::Base);
        *s.entry_mut(Vpn(2)) = mapped_entry(TierId::FAST);
        let mut seen = Vec::new();
        s.walk_range(Vpn(0), 4, |v, _| seen.push(v.0));
        assert_eq!(seen, vec![2]);
    }

    #[test]
    fn walk_range_visits_huge_block_once() {
        let mut s = AddressSpace::new(1024, PageSize::Huge2M);
        for head in [0u32, 512] {
            *s.entry_mut(Vpn(head)) = mapped_entry(TierId::SLOW);
            s.entry_mut(Vpn(head)).flags.set(PageFlags::HUGE_HEAD);
        }
        let mut seen = Vec::new();
        let next = s.walk_range(Vpn(0), 1024, |v, _| seen.push(v.0));
        assert_eq!(seen, vec![0, 512]);
        assert_eq!(next, Vpn(0));
    }

    #[test]
    fn walk_range_mid_block_entry_does_not_double_visit_head() {
        // Regression: a cursor entering a huge block mid-way fired the
        // callback on the block head and then fired it again after wrapping
        // back to the head, double-counting the block in one sweep.
        let mut s = AddressSpace::new(1024, PageSize::Huge2M);
        for head in [0u32, 512] {
            *s.entry_mut(Vpn(head)) = mapped_entry(TierId::SLOW);
            s.entry_mut(Vpn(head)).flags.set(PageFlags::HUGE_HEAD);
        }
        let mut seen = Vec::new();
        let next = s.walk_range(Vpn(600), 1024, |v, _| seen.push(v.0));
        // Mid-block entry skips to the block end without a visit; one full
        // sweep then sees each head exactly once.
        assert_eq!(seen, vec![0, 512]);
        // Progress still counts the partial block: 424 pages to the block
        // end, then two full blocks exhaust the budget back at the origin.
        assert_eq!(next, Vpn(0));
    }

    #[test]
    fn resident_counts_by_tier() {
        let mut s = AddressSpace::new(10, PageSize::Base);
        *s.entry_mut(Vpn(0)) = mapped_entry(TierId::FAST);
        *s.entry_mut(Vpn(1)) = mapped_entry(TierId::SLOW);
        *s.entry_mut(Vpn(2)) = mapped_entry(TierId::SLOW);
        *s.entry_mut(Vpn(3)) = mapped_entry(TierId(2));
        assert_eq!(s.resident_pages(), [1, 2, 1, 0]);
        let f = s.fast_tier_fraction().unwrap();
        assert!((f - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_space_has_no_fraction() {
        let s = AddressSpace::new(4, PageSize::Base);
        assert_eq!(s.fast_tier_fraction(), None);
    }
}
