//! System-wide run-time statistics.
//!
//! These counters back the paper's run-time characteristics (Fig 8: fast-tier
//! memory access ratio, kernel-time share, context-switch rate) and the
//! migration accounting used throughout the evaluation.

use sim_clock::Nanos;

use crate::system::MigrateError;
use crate::tier::{TierId, MAX_TIERS};

/// Aggregated counters for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SystemStats {
    /// Loads served per tier, indexed by [`TierId::index`]. Slots beyond the
    /// configured chain length stay zero.
    pub reads: [u64; MAX_TIERS],
    /// Stores served per tier.
    pub writes: [u64; MAX_TIERS],
    /// Demand (first-touch) page faults.
    pub demand_faults: u64,
    /// Hint faults taken on `PROT_NONE` pages (NUMA balancing / Ticking-scan).
    pub hint_faults: u64,
    /// Pages promoted toward the top of the chain (any up edge).
    pub promoted_pages: u64,
    /// Pages demoted toward the bottom of the chain (any down edge).
    pub demoted_pages: u64,
    /// Pages promoted per chain edge; edge `i` connects tiers `i` and
    /// `i + 1`. Slots beyond the configured chain stay zero, and the sums
    /// over edges equal `promoted_pages` / `demoted_pages`.
    pub promoted_per_edge: [u64; MAX_TIERS - 1],
    /// Pages demoted per chain edge (same indexing).
    pub demoted_per_edge: [u64; MAX_TIERS - 1],
    /// Promotion attempts that failed for lack of fast-tier space.
    pub failed_promotions: u64,
    /// Victim demotions inside `promote_with_reclaim` that failed.
    pub failed_demotions: u64,
    /// Failed promotion (up-edge) migrate attempts by reason, indexed by
    /// `MigrateError::index` — one cell per entry of
    /// [`MigrateError::REASONS`]. The `no_space` cell mirrors
    /// `failed_promotions`.
    pub failed_fast_migrations: [u64; MigrateError::COUNT],
    /// Migration transactions opened by `begin_migrate`.
    pub begun_migrations: u64,
    /// Migration transactions retired (PTE flipped to the reserved frames).
    pub completed_migrations: u64,
    /// Migration transactions aborted (write hit an in-flight unit, or the
    /// unit was split, swapped out, or reclaimed mid-copy).
    pub aborted_migrations: u64,
    /// Bytes moved by migration in either direction.
    pub migration_bytes: u64,
    /// PTE entries visited by scanners (cost accounting).
    pub scanned_ptes: u64,
    /// Context switches (faults + daemon wake-ups), the Fig 8 metric.
    pub context_switches: u64,
    /// Simulated time spent in kernel work (faults, scans, migrations).
    pub kernel_time: Nanos,
    /// Simulated time spent in user execution, including memory stalls.
    pub user_time: Nanos,
    /// Thrashing events flagged by the demotion monitor.
    pub thrash_events: u64,
    /// Pages written out to the swap device (last-tier reclamation).
    pub swapped_out_pages: u64,
    /// Major faults served from the swap device.
    pub swap_in_faults: u64,
    /// Due migration copies that failed transiently (fault injection); the
    /// transaction was released and the source copy stayed authoritative.
    pub transient_copy_faults: u64,
    /// Due migration copies that failed permanently, poisoning one
    /// destination frame (fault injection).
    pub poisoned_copy_faults: u64,
    /// Frames permanently quarantined after uncorrectable errors (both the
    /// copy-poison and resident-frame-poison paths).
    pub quarantined_frames: u64,
    /// Frames taken offline by capacity-shrink (hotplug) events, lifetime.
    pub offlined_frames: u64,
    /// Frames brought back online by capacity-grow events, lifetime.
    pub restored_frames: u64,
    /// Pages issued on the emergency evacuation lane (drained off a failing
    /// tier). Flow-conserved: `evacuated_pages == evac_rehomed_pages +
    /// evac_swapped_pages + evac_faulted_pages + engine in-flight evac`.
    pub evacuated_pages: u64,
    /// Evacuation-lane pages successfully re-homed on a healthy tier.
    pub evac_rehomed_pages: u64,
    /// Evacuation pages spilled to the swap backstop (no healthy neighbor
    /// had room inside the deadline).
    pub evac_swapped_pages: u64,
    /// Evacuation-lane pages whose copy faulted or aborted; they stayed on
    /// the failing tier and were re-issued or force-drained later, each
    /// re-issue counting as a fresh `evacuated_pages` entry.
    pub evac_faulted_pages: u64,
    /// Tier-health transitions applied (offline, degrade, rejoin — the
    /// failure-domain lifecycle).
    pub tier_health_transitions: u64,
}

impl SystemStats {
    /// Total accesses across tiers and kinds.
    pub fn total_accesses(&self) -> u64 {
        self.reads.iter().sum::<u64>() + self.writes.iter().sum::<u64>()
    }

    /// Accesses served by a given tier.
    pub fn tier_accesses(&self, tier: TierId) -> u64 {
        self.reads[tier.index()] + self.writes[tier.index()]
    }

    /// Fast-tier memory access ratio (FMAR), the Fig 8 headline metric.
    pub fn fmar(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            return 0.0;
        }
        self.tier_accesses(TierId::FAST) as f64 / total as f64
    }

    /// Fraction of execution time spent in kernel work.
    pub fn kernel_time_fraction(&self) -> f64 {
        let total = self.kernel_time.as_nanos() + self.user_time.as_nanos();
        if total == 0 {
            return 0.0;
        }
        self.kernel_time.as_nanos() as f64 / total as f64
    }

    /// Context switches per simulated second of total execution.
    pub fn context_switch_rate(&self) -> f64 {
        let secs = (self.kernel_time + self.user_time).as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.context_switches as f64 / secs
    }

    /// Counts one access in the tier counters.
    #[inline]
    pub fn count_access(&mut self, tier: TierId, write: bool) {
        if write {
            self.writes[tier.index()] += 1;
        } else {
            self.reads[tier.index()] += 1;
        }
    }

    /// Difference of two snapshots (`self` − `earlier`), for interval stats.
    pub fn delta_since(&self, earlier: &SystemStats) -> SystemStats {
        let mut d = SystemStats {
            demand_faults: self.demand_faults - earlier.demand_faults,
            hint_faults: self.hint_faults - earlier.hint_faults,
            promoted_pages: self.promoted_pages - earlier.promoted_pages,
            demoted_pages: self.demoted_pages - earlier.demoted_pages,
            failed_promotions: self.failed_promotions - earlier.failed_promotions,
            failed_demotions: self.failed_demotions - earlier.failed_demotions,
            begun_migrations: self.begun_migrations - earlier.begun_migrations,
            completed_migrations: self.completed_migrations - earlier.completed_migrations,
            aborted_migrations: self.aborted_migrations - earlier.aborted_migrations,
            migration_bytes: self.migration_bytes - earlier.migration_bytes,
            scanned_ptes: self.scanned_ptes - earlier.scanned_ptes,
            context_switches: self.context_switches - earlier.context_switches,
            kernel_time: self.kernel_time - earlier.kernel_time,
            user_time: self.user_time - earlier.user_time,
            thrash_events: self.thrash_events - earlier.thrash_events,
            swapped_out_pages: self.swapped_out_pages - earlier.swapped_out_pages,
            swap_in_faults: self.swap_in_faults - earlier.swap_in_faults,
            transient_copy_faults: self.transient_copy_faults - earlier.transient_copy_faults,
            poisoned_copy_faults: self.poisoned_copy_faults - earlier.poisoned_copy_faults,
            quarantined_frames: self.quarantined_frames - earlier.quarantined_frames,
            offlined_frames: self.offlined_frames - earlier.offlined_frames,
            restored_frames: self.restored_frames - earlier.restored_frames,
            evacuated_pages: self.evacuated_pages - earlier.evacuated_pages,
            evac_rehomed_pages: self.evac_rehomed_pages - earlier.evac_rehomed_pages,
            evac_swapped_pages: self.evac_swapped_pages - earlier.evac_swapped_pages,
            evac_faulted_pages: self.evac_faulted_pages - earlier.evac_faulted_pages,
            tier_health_transitions: self.tier_health_transitions - earlier.tier_health_transitions,
            ..SystemStats::default()
        };
        for t in 0..MAX_TIERS {
            d.reads[t] = self.reads[t] - earlier.reads[t];
            d.writes[t] = self.writes[t] - earlier.writes[t];
        }
        for r in 0..MigrateError::REASONS.len() {
            d.failed_fast_migrations[r] =
                self.failed_fast_migrations[r] - earlier.failed_fast_migrations[r];
        }
        for e in 0..MAX_TIERS - 1 {
            d.promoted_per_edge[e] = self.promoted_per_edge[e] - earlier.promoted_per_edge[e];
            d.demoted_per_edge[e] = self.demoted_per_edge[e] - earlier.demoted_per_edge[e];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmar_counts_fast_share() {
        let mut s = SystemStats::default();
        s.count_access(TierId::FAST, false);
        s.count_access(TierId::FAST, true);
        s.count_access(TierId::SLOW, false);
        s.count_access(TierId::SLOW, true);
        assert!((s.fmar() - 0.5).abs() < 1e-12);
        assert_eq!(s.total_accesses(), 4);
        assert_eq!(s.tier_accesses(TierId::FAST), 2);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = SystemStats::default();
        assert_eq!(s.fmar(), 0.0);
        assert_eq!(s.kernel_time_fraction(), 0.0);
        assert_eq!(s.context_switch_rate(), 0.0);
    }

    #[test]
    fn kernel_fraction() {
        let s = SystemStats {
            kernel_time: Nanos(250),
            user_time: Nanos(750),
            ..Default::default()
        };
        assert!((s.kernel_time_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn context_switch_rate_per_second() {
        let s = SystemStats {
            context_switches: 500,
            user_time: Nanos::from_secs(2),
            ..Default::default()
        };
        assert!((s.context_switch_rate() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let mut a = SystemStats::default();
        a.count_access(TierId::FAST, false);
        a.hint_faults = 3;
        a.kernel_time = Nanos(100);
        let mut b = a.clone();
        b.count_access(TierId::SLOW, true);
        b.count_access(TierId(2), false);
        b.hint_faults = 7;
        b.kernel_time = Nanos(180);
        b.failed_fast_migrations[MigrateError::COUNT - 1] = 9;
        b.evacuated_pages = 11;
        b.evac_rehomed_pages = 6;
        b.evac_swapped_pages = 3;
        b.evac_faulted_pages = 2;
        b.tier_health_transitions = 5;
        let d = b.delta_since(&a);
        assert_eq!(d.evacuated_pages, 11);
        assert_eq!(d.evac_rehomed_pages, 6);
        assert_eq!(d.evac_swapped_pages, 3);
        assert_eq!(d.evac_faulted_pages, 2);
        assert_eq!(d.tier_health_transitions, 5);
        assert_eq!(d.hint_faults, 4);
        assert_eq!(d.writes[TierId::SLOW.index()], 1);
        assert_eq!(d.reads[TierId::FAST.index()], 0);
        assert_eq!(d.reads[2], 1);
        assert_eq!(d.kernel_time, Nanos(80));
        // Indexed loop covers the *last* reason cell too — the hand-unrolled
        // diff this replaced would silently truncate on a new variant.
        assert_eq!(d.failed_fast_migrations[MigrateError::COUNT - 1], 9);
    }

    #[test]
    fn failure_table_stays_in_sync_with_reasons() {
        // Length-sync guard: the counter table, the reason-name table and the
        // variant count must agree, so adding a MigrateError variant without
        // widening the table is a compile- or test-time error, not a silent
        // truncation.
        let s = SystemStats::default();
        assert_eq!(s.failed_fast_migrations.len(), MigrateError::REASONS.len());
        assert_eq!(MigrateError::REASONS.len(), MigrateError::COUNT);
    }
}
