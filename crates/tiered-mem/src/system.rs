//! The tiered memory system: processes, faults, migration, LRU maintenance.
//!
//! [`TieredSystem`] is the substrate every tiering policy runs on. It owns
//! the clock, the per-tier frame tables and LRU lists, the per-process
//! address spaces, and an event queue for policy daemons. The *mechanisms*
//! live here (fault taking, frame movement, watermark checks); all *policy*
//! (who to promote/demote and when) lives in the policy crates.

use sim_clock::{Clock, EventQueue, Nanos};
use tiering_trace::{MigrateDir, PeriodSample, PolicyTraceState, TraceEvent, Tracer};

use crate::addr::{PageSize, Pfn, ProcessId, Vpn, BASE_PAGE_BYTES, HUGE_2M_PAGES};
use crate::config::SystemConfig;
use crate::fault::{
    CapacityKind, CopyFault, DegradeWindow, FaultPlan, FaultState, TierEvent, TierEventKind,
};
use crate::frame::{FrameOwner, FrameTable};
use crate::lru::{LruEntry, LruKind, LruLists};
use crate::migration::{MigrationEngine, MigrationTxn, MigrationTxnId};
use crate::page::PageFlags;
use crate::space::AddressSpace;
use crate::stats::SystemStats;
use crate::tier::{EdgeSpec, TierHealth, TierId};
use crate::watermark::Watermarks;

/// Aging/scan budget in pages for covering `frames` once per `period`,
/// pro-rated to one `interval` tick: `frames * interval / period`.
///
/// Computed in 128-bit and saturated at `u32::MAX`: with a long interval
/// against a short period the product exceeds 2^32 pages, and the bare
/// `as u32` every policy used to write silently wraps the budget down to
/// near zero — the same modular-cast bug class as `cit_from_word`.
pub fn scan_budget_pages(frames: u32, interval: Nanos, period: Nanos) -> u32 {
    let scaled =
        u128::from(frames) * u128::from(interval.as_nanos()) / u128::from(period.as_nanos().max(1));
    u32::try_from(scaled).unwrap_or(u32::MAX)
}

/// One simulated process: an address space plus scheduling state.
#[derive(Debug)]
pub struct Process {
    /// The process page table.
    pub space: AddressSpace,
    /// The process's virtual time: how far its execution has progressed.
    pub vtime: Nanos,
    /// Completed workload operations.
    pub ops: u64,
    /// Whether the process still has work (drivers skip finished processes).
    pub running: bool,
    /// Resident frames currently charged to the process.
    pub resident_frames: u32,
    /// cgroup-style memory limit in frames, if confined.
    pub memory_limit: Option<u32>,
}

/// Outcome of one memory access.
#[derive(Debug, Clone, Copy)]
pub struct AccessResult {
    /// Total latency charged to the process for this access.
    pub latency: Nanos,
    /// Tier that ultimately served the access.
    pub tier: TierId,
    /// A `PROT_NONE` hint fault was taken (policy fault hooks should run).
    pub hint_fault: bool,
    /// The page was faulted in for the first time.
    pub demand_fault: bool,
    /// The page was unmapped by a DCSC probe (`PG_probed`) rather than a scan.
    pub probed_fault: bool,
    /// Instant at which the fault (if any) was taken; CIT's fault timestamp.
    pub fault_time: Nanos,
}

/// Why a migration could not be performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateError {
    /// The page is not resident.
    NotPresent,
    /// The page is already in the requested tier.
    SameTier,
    /// The destination tier has no free frames (after any reclaim attempts).
    NoSpace,
    /// The migration engine refused admission: in-flight slots or the
    /// destination channel's backlog cap are exhausted, or the unit already
    /// has a transaction in flight.
    Backpressure,
    /// The copy failed transiently (fault injection). The reservation was
    /// released and the source mapping stayed authoritative; a retry of the
    /// same migration may succeed.
    CopyFault,
    /// The copy failed permanently (fault injection): one destination frame
    /// took an uncorrectable error and was quarantined. The source mapping
    /// stayed authoritative; a retry lands on different frames.
    Poisoned,
    /// The requested migration does not cross a single adjacent edge of the
    /// tier chain. Pages move one hop at a time; a two-hop move is two
    /// migrations. (A splice edge across `Offline` tiers counts as one hop
    /// while the splice holds.)
    NonAdjacent,
    /// The destination tier is not accepting pages: it is evacuating,
    /// offline, or still rejoining. Policies should reroute to the tier's
    /// healthy neighbor or back off until the tier returns.
    TierOffline,
}

impl MigrateError {
    /// Number of failure reasons (size of per-reason counter tables).
    pub const COUNT: usize = 8;
    /// Reason names, indexed by [`MigrateError::index`].
    pub const REASONS: [&'static str; Self::COUNT] = [
        "not_present",
        "same_tier",
        "no_space",
        "backpressure",
        "copy_fault",
        "poisoned",
        "non_adjacent",
        "tier_offline",
    ];

    /// Dense index for per-reason counter tables
    /// ([`SystemStats::failed_fast_migrations`]).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MigrateError::NotPresent => 0,
            MigrateError::SameTier => 1,
            MigrateError::NoSpace => 2,
            MigrateError::Backpressure => 3,
            MigrateError::CopyFault => 4,
            MigrateError::Poisoned => 5,
            MigrateError::NonAdjacent => 6,
            MigrateError::TierOffline => 7,
        }
    }
}

/// Record of an asynchronously failed migration, reported at completion
/// time when the original caller is long gone. Policies drain these via
/// [`TieredSystem::take_migration_failures`] and decide whether to retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationFailure {
    /// Owning process of the failed unit.
    pub pid: ProcessId,
    /// Head page of the unit that failed to move.
    pub head: Vpn,
    /// Base pages the transaction covered.
    pub unit: u32,
    /// Source tier the unit was leaving (it stays there on failure).
    pub from: TierId,
    /// Destination tier the copy was headed to.
    pub to: TierId,
    /// Why it failed ([`MigrateError::CopyFault`] or
    /// [`MigrateError::Poisoned`]).
    pub reason: MigrateError,
}

/// Whose time a migration is charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateMode {
    /// Synchronous: the given process waits for the copy (NUMA-balancing
    /// style migrate-on-fault).
    Sync(ProcessId),
    /// Asynchronous: a background kernel thread performs the copy (Chrono's
    /// promotion queue, TPP's demotion daemon).
    Async,
}

/// The tiered memory system.
pub struct TieredSystem {
    /// Simulated global clock (advanced by the driver).
    pub clock: Clock,
    /// Policy daemon event queue; payloads are policy-defined tokens.
    pub events: EventQueue<u64>,
    /// Run-time statistics.
    pub stats: SystemStats,
    /// Observability: disabled by default, enabled via
    /// [`TieredSystem::enable_tracing`].
    pub trace: Tracer,
    /// Fast-tier watermarks (the terminal tier spills to swap).
    pub watermarks: Watermarks,
    cfg: SystemConfig,
    /// Stats snapshot at the last trace period, for delta rows.
    trace_baseline: SystemStats,
    /// One frame table per managed tier, chain order.
    frames: Vec<FrameTable>,
    lru: Vec<LruLists>,
    procs: Vec<Process>,
    /// Two-phase in-flight migration state (bounded slots, per-edge FIFOs).
    engine: MigrationEngine,
    /// Per-tier device-contention state.
    contention: Vec<TierLoad>,
    /// Deterministic fault injection, present only when the config carries a
    /// [`FaultPlan`]. `None` means zero extra RNG draws and zero fault
    /// branches taken on the hot paths.
    fault: Option<FaultState>,
    /// Migrations that failed at completion time (the caller is gone);
    /// drained by policies via [`TieredSystem::take_migration_failures`].
    failed_async: Vec<MigrationFailure>,
    /// Per-tier frames a capacity shrink still owes: the free pool was
    /// short at event time, so the remainder is taken as frames free up.
    shrink_debt: Vec<u32>,
    /// Per-tier failure-domain health, chain order. All `Online` in a
    /// fault-free run.
    health: Vec<TierHealth>,
    /// Fast-path flag: whether any tier is not `Online` (or any tier event
    /// is pending on the plan). Lets the per-access completion pump keep
    /// its cheap early-out when the failure-domain machinery is idle.
    health_active: bool,
    /// Per-tier resume cursor for the evacuation pump's frame walk, so each
    /// pump pass is O(frames visited) amortized rather than O(tier size).
    evac_cursor: Vec<u32>,
}

/// Sliding-window utilization tracker for one tier's memory device.
///
/// Each access contributes its device occupancy (write-weighted) to the
/// current window; at window rollover the utilization becomes the smoothed
/// load estimate driving the queueing penalty.
#[derive(Debug, Clone)]
struct TierLoad {
    window_start: Nanos,
    weighted_ops: f64,
    utilization: f64,
}

/// Utilization measurement window.
const LOAD_WINDOW: Nanos = Nanos(50_000); // 50 µs

/// Trace direction of a migration from the edge it crosses: any move toward
/// the top of the chain is a promotion, any move down a demotion.
fn migrate_dir(from: TierId, to: TierId) -> MigrateDir {
    if to < from {
        MigrateDir::Promote
    } else {
        MigrateDir::Demote
    }
}

impl TierLoad {
    fn new() -> TierLoad {
        TierLoad {
            window_start: Nanos::ZERO,
            weighted_ops: 0.0,
            utilization: 0.0,
        }
    }

    /// Records one access at `now` and returns the current latency
    /// multiplier. Below 70 % utilization the device is unloaded; beyond it
    /// an M/M/1-flavoured `1/(1-u)` queueing term kicks in, capped at 8×.
    fn record(&mut self, now: Nanos, weight: f64, capacity_ops: u64) -> f64 {
        if now.saturating_sub(self.window_start) >= LOAD_WINDOW {
            let window_secs = LOAD_WINDOW.as_secs_f64();
            let raw = self.weighted_ops / (capacity_ops as f64 * window_secs);
            // EMA smoothing so one bursty window doesn't whipsaw latency.
            self.utilization = 0.5 * self.utilization + 0.5 * raw;
            self.window_start = now;
            self.weighted_ops = 0.0;
        }
        self.weighted_ops += weight;
        let u = self.utilization;
        if u <= 0.7 {
            1.0
        } else {
            (0.3 / (1.0 - u.min(0.95))).clamp(1.0, 8.0)
        }
    }
}

impl TieredSystem {
    /// Builds a system from a configuration.
    pub fn new(cfg: SystemConfig) -> TieredSystem {
        let n = cfg.num_tiers();
        let fast_frames = cfg.fast().frames;
        TieredSystem {
            clock: Clock::new(),
            events: EventQueue::new(),
            stats: SystemStats::default(),
            trace: Tracer::disabled(),
            trace_baseline: SystemStats::default(),
            watermarks: Watermarks::scaled_to(fast_frames),
            frames: cfg
                .chain
                .tiers
                .iter()
                .map(|t| FrameTable::new(t.frames))
                .collect(),
            lru: (0..n).map(|_| LruLists::new()).collect(),
            procs: Vec::new(),
            engine: MigrationEngine::new(cfg.migration.clone(), n),
            fault: cfg.fault_plan.clone().map(FaultState::new),
            health_active: cfg
                .fault_plan
                .as_ref()
                .is_some_and(|p| !p.tier_events.is_empty()),
            cfg,
            contention: (0..n).map(|_| TierLoad::new()).collect(),
            failed_async: Vec::new(),
            shrink_debt: vec![0; n],
            health: vec![TierHealth::Online; n],
            evac_cursor: vec![0; n],
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Turns on trace recording with the given event-ring bound. Tracing is
    /// off by default and costs one branch per record site when disabled.
    pub fn enable_tracing(&mut self, event_cap: usize) {
        self.trace = Tracer::enabled(event_cap);
        self.trace_baseline = self.stats.clone();
    }

    /// Closes one observation period: records a [`PeriodSample`] combining
    /// the caller's policy control state with the substrate's activity since
    /// the previous call (promotions, demotions, thrashing, hint faults,
    /// FMAR). No-op while tracing is disabled.
    pub fn trace_period(&mut self, policy: PolicyTraceState) {
        if !self.trace.is_enabled() {
            return;
        }
        let delta = self.stats.delta_since(&self.trace_baseline);
        let sample = PeriodSample {
            timestamp: self.clock.now(),
            policy,
            promoted_pages: delta.promoted_pages,
            demoted_pages: delta.demoted_pages,
            thrash_events: delta.thrash_events,
            hint_faults: delta.hint_faults,
            period_fmar: delta.fmar(),
            fmar: self.stats.fmar(),
            fast_used_frames: self.used_frames(TierId::FAST) as u64,
            // All non-top tiers together, so the gauge keeps its two-tier
            // meaning on longer chains ("frames not in the fast tier").
            slow_used_frames: self
                .cfg
                .chain
                .ids()
                .skip(1)
                .map(|t| self.used_frames(t) as u64)
                .sum(),
            in_flight_migrations: self.engine.in_flight() as u64,
            quarantined_frames: self
                .frames
                .iter()
                .map(|f| f.quarantined_frames() as u64)
                .sum(),
            offlined_frames: self.frames[TierId::FAST.index()].offlined_frames() as u64,
            // 4 bits per tier, chain order; an all-Online chain packs to 0
            // so fault-free digests fold nothing new.
            tier_health: self
                .health
                .iter()
                .enumerate()
                .fold(0u32, |acc, (i, h)| acc | (u32::from(h.code()) << (4 * i))),
        };
        self.trace.record_period(|| sample);
        self.trace_baseline = self.stats.clone();
    }

    /// Adds a process with an address space of `pages` base pages.
    pub fn add_process(&mut self, pages: u32, page_size: PageSize) -> ProcessId {
        let pid = ProcessId(self.procs.len() as u16);
        self.procs.push(Process {
            space: AddressSpace::new(pages, page_size),
            vtime: Nanos::ZERO,
            ops: 0,
            running: true,
            resident_frames: 0,
            memory_limit: None,
        });
        pid
    }

    /// Confines a process to a cgroup-style memory limit (frames). Policies
    /// enforce it via slow-tier reclamation (see `chrono-core`); the system
    /// only does the accounting.
    pub fn set_memory_limit(&mut self, pid: ProcessId, frames: Option<u32>) {
        self.procs[pid.0 as usize].memory_limit = frames;
    }

    /// Frames the process is over its memory limit, zero if unconfined.
    pub fn over_limit_frames(&self, pid: ProcessId) -> u32 {
        let p = &self.procs[pid.0 as usize];
        match p.memory_limit {
            Some(limit) => p.resident_frames.saturating_sub(limit),
            None => 0,
        }
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.procs.len()
    }

    /// All process ids.
    pub fn pids(&self) -> impl Iterator<Item = ProcessId> {
        (0..self.procs.len() as u16).map(ProcessId)
    }

    /// Immutable process access.
    pub fn process(&self, pid: ProcessId) -> &Process {
        &self.procs[pid.0 as usize]
    }

    /// Mutable process access.
    pub fn process_mut(&mut self, pid: ProcessId) -> &mut Process {
        &mut self.procs[pid.0 as usize]
    }

    /// The running process with the smallest virtual time, i.e. the next one
    /// a fair concurrency model would execute.
    pub fn min_vtime_process(&self) -> Option<ProcessId> {
        self.min_vtime_process_and_time().map(|(pid, _)| pid)
    }

    /// Like [`TieredSystem::min_vtime_process`], but also returns that
    /// process's virtual time — the scan already has it, and handing it back
    /// saves the driver a second process lookup on its per-access hot path.
    pub fn min_vtime_process_and_time(&self) -> Option<(ProcessId, Nanos)> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.running)
            .min_by_key(|(_, p)| p.vtime)
            .map(|(i, p)| (ProcessId(i as u16), p.vtime))
    }

    /// Largest virtual time across all processes (run makespan).
    pub fn makespan(&self) -> Nanos {
        self.procs
            .iter()
            .map(|p| p.vtime)
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// Free frames in a tier.
    pub fn free_frames(&self, tier: TierId) -> u32 {
        self.frames[tier.index()].free_frames()
    }

    /// Used frames in a tier.
    pub fn used_frames(&self, tier: TierId) -> u32 {
        self.frames[tier.index()].used_frames()
    }

    /// Frames in service in a tier: provisioned frames minus quarantined
    /// minus offlined ones. This is the tier size watermark retuning and
    /// allocation policy see — capacity events change it at runtime.
    pub fn total_frames(&self, tier: TierId) -> u32 {
        self.frames[tier.index()].usable_frames()
    }

    /// Raw provisioned frame-space size of a tier — the bound on valid PFN
    /// numbering. Unlike [`TieredSystem::total_frames`] this never changes:
    /// offlined and quarantined frames keep their numbers.
    pub fn raw_frames(&self, tier: TierId) -> u32 {
        self.frames[tier.index()].total()
    }

    /// Frames permanently quarantined in a tier after uncorrectable errors.
    pub fn quarantined_frames(&self, tier: TierId) -> u32 {
        self.frames[tier.index()].quarantined_frames()
    }

    /// Frames currently offlined in a tier by capacity-shrink events.
    pub fn offlined_frames(&self, tier: TierId) -> u32 {
        self.frames[tier.index()].offlined_frames()
    }

    /// The quarantined frame numbers of a tier, ascending. Exposed for the
    /// `tiering-verify` invariant oracle.
    pub fn quarantined_pfns(&self, tier: TierId) -> impl Iterator<Item = Pfn> + '_ {
        self.frames[tier.index()].quarantined_pfns()
    }

    /// Whether `pfn` sits on the tier's free list. Exposed for the
    /// `tiering-verify` invariant oracle (O(free) scan — oracle-only).
    pub fn frame_is_free(&self, tier: TierId, pfn: Pfn) -> bool {
        self.frames[tier.index()].is_free(pfn)
    }

    /// Whether `pfn` is permanently quarantined in `tier`.
    pub fn frame_is_quarantined(&self, tier: TierId, pfn: Pfn) -> bool {
        self.frames[tier.index()].is_quarantined(pfn)
    }

    /// Fast-tier frames a capacity shrink still owes (taken as they free up).
    pub fn shrink_debt(&self) -> u32 {
        self.shrink_debt[TierId::FAST.index()]
    }

    /// Frames a capacity shrink still owes on `tier`.
    pub fn tier_shrink_debt(&self, tier: TierId) -> u32 {
        self.shrink_debt[tier.index()]
    }

    /// Failure-domain health of one tier.
    pub fn tier_health(&self, tier: TierId) -> TierHealth {
        self.health[tier.index()]
    }

    /// Per-tier failure-domain health, chain order.
    pub fn tier_health_all(&self) -> &[TierHealth] {
        &self.health
    }

    /// In-flight evacuation-lane pages (see the flow-conservation invariant
    /// on [`SystemStats::evacuated_pages`]). Exposed for the
    /// `tiering-verify` invariant oracle.
    pub fn in_flight_evac_pages(&self) -> u64 {
        self.engine.in_flight_evac_pages()
    }

    /// The live fault-injection state, if a plan is attached.
    pub fn fault_state(&self) -> Option<&FaultState> {
        self.fault.as_ref()
    }

    /// Charges kernel work: always accounted in [`SystemStats::kernel_time`],
    /// and also stalls `pid`'s execution when given (work done in its context).
    pub fn charge_kernel(&mut self, pid: Option<ProcessId>, cost: Nanos) {
        self.stats.kernel_time += cost;
        if let Some(pid) = pid {
            self.procs[pid.0 as usize].vtime += cost;
        }
    }

    /// Counts a daemon wake-up as a context switch (Fig 8 accounting).
    pub fn count_daemon_wakeup(&mut self) {
        self.stats.context_switches += 1;
    }

    /// Reverse-map lookup: the virtual page owning `pfn` in `tier`, if
    /// allocated. Exposed for the `tiering-verify` invariant oracle.
    pub fn frame_owner(&self, tier: TierId, pfn: crate::addr::Pfn) -> Option<FrameOwner> {
        self.frames[tier.index()].owner(pfn)
    }

    /// Executes one memory access of `pid` to `vpn`.
    ///
    /// Handles demand paging, `PROT_NONE` hint faults (clearing the bit and
    /// reporting so the driver can invoke the policy's fault hook), accessed/
    /// dirty bit setting, latency charging, and statistics. The process's
    /// virtual time advances by the returned latency.
    pub fn access(&mut self, pid: ProcessId, vpn: Vpn, write: bool) -> AccessResult {
        let proc = &mut self.procs[pid.0 as usize];
        let now = proc.vtime;
        let pte_vpn = proc.space.pte_page(vpn);

        // Fast path: a warm present base page with no hint bit and no
        // in-flight write conflict needs exactly one page-table touch —
        // read the flags and stamp ACCESSED/DIRTY through the same
        // reference. Every rare condition falls through to the general
        // path below, which re-reads the entry itself.
        if pte_vpn == vpn {
            let entry = proc.space.entry_mut(pte_vpn);
            let flags = entry.flags;
            if flags.has(PageFlags::PRESENT)
                && !flags.has(PageFlags::PROT_NONE)
                && !(write && flags.has(PageFlags::MIGRATING))
            {
                entry.flags.set(PageFlags::ACCESSED);
                if write {
                    entry.flags.set(PageFlags::DIRTY);
                }
                let tier = entry.tier();
                let latency = self.cfg.cost.cpu_op;
                return self.charge_and_finish(pid, tier, write, now, latency, false, false, false);
            }
        }

        let mut latency = self.cfg.cost.cpu_op;
        let mut hint_fault = false;
        let mut demand_fault = false;
        let mut probed_fault = false;

        // One entry read feeds the rare-path checks below (demand fault,
        // hint fault, in-flight-migration abort); the general path — a cold
        // or flagged page — touches the page table again for the final
        // ACCESSED/DIRTY update. `flags` is refreshed after every branch
        // that mutates the entry so later checks see current state.
        let mut flags = self.procs[pid.0 as usize].space.entry(pte_vpn).flags;

        if !flags.has(PageFlags::PRESENT) {
            let swapped = flags.has(PageFlags::SWAPPED);
            self.demand_map(pid, pte_vpn);
            demand_fault = true;
            if swapped {
                // Major fault: the page comes back from the swap device.
                let e = self.procs[pid.0 as usize].space.entry_mut(pte_vpn);
                e.flags.clear(PageFlags::SWAPPED);
                let swap_latency = self.cfg.swap().fault_latency;
                latency += swap_latency;
                self.stats.swap_in_faults += 1;
                self.stats.kernel_time += swap_latency;
            } else {
                latency += self.cfg.cost.demand_fault;
                self.stats.demand_faults += 1;
                self.stats.kernel_time += self.cfg.cost.demand_fault;
            }
            self.stats.context_switches += 1;
            flags = self.procs[pid.0 as usize].space.entry(pte_vpn).flags;
        }

        if flags.has(PageFlags::PROT_NONE) {
            let entry = self.procs[pid.0 as usize].space.entry_mut(pte_vpn);
            entry.flags.clear(PageFlags::PROT_NONE);
            probed_fault = entry.flags.has(PageFlags::PROBED);
            flags = entry.flags;
            hint_fault = true;
            latency += self.cfg.cost.hint_fault;
            self.stats.hint_faults += 1;
            self.stats.context_switches += 1;
            self.stats.kernel_time += self.cfg.cost.hint_fault;
        }

        // Nomad-style transactional migration: a store into an in-flight
        // unit invalidates the copy, so the transaction aborts and the page
        // stays (re-dirtied) in its source tier. Loads race harmlessly —
        // they read the still-mapped old frames.
        if write
            && flags.has(PageFlags::MIGRATING)
            && self.engine.copy_started(pid, pte_vpn, self.clock.now())
        {
            // Only an *active* copy conflicts with the store; a transaction
            // still queued behind the channel backlog reads the source after
            // this write lands, so the copy stays coherent and the DIRTY bit
            // set below is all the bookkeeping needed.
            self.abort_migration(pid, pte_vpn, true);
        }

        let entry = self.procs[pid.0 as usize].space.entry_mut(pte_vpn);
        entry.flags.set(PageFlags::ACCESSED);
        if write {
            entry.flags.set(PageFlags::DIRTY);
        }
        let tier = entry.tier();
        // For huge mappings, also stamp the specific base page's accessed bit
        // so post-split state is meaningful.
        if pte_vpn != vpn {
            let base = self.procs[pid.0 as usize].space.entry_mut(vpn);
            base.flags.set(PageFlags::ACCESSED);
            if write {
                base.flags.set(PageFlags::DIRTY);
            }
        }

        self.charge_and_finish(
            pid,
            tier,
            write,
            now,
            latency,
            hint_fault,
            demand_fault,
            probed_fault,
        )
    }

    /// Shared tail of [`TieredSystem::access`]: charges the tier's device
    /// latency (with contention) on top of `latency`, updates statistics and
    /// the process's virtual time, and assembles the result. Both the
    /// single-lookup fast path and the general faulting path funnel through
    /// here so the latency arithmetic is identical bit for bit.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn charge_and_finish(
        &mut self,
        pid: ProcessId,
        tier: TierId,
        write: bool,
        now: Nanos,
        mut latency: Nanos,
        hint_fault: bool,
        demand_fault: bool,
        probed_fault: bool,
    ) -> AccessResult {
        let spec = self.cfg.chain.tier(tier);
        let base = if write {
            spec.write_latency
        } else {
            spec.read_latency
        };
        let weight = if write { spec.write_weight } else { 1.0 };
        let mult = self.contention[tier.index()].record(now, weight, spec.access_capacity_ops);
        // An uncontended tier reports a multiplier of exactly 1.0;
        // `scale_f64(1.0)` is the identity for any latency below 2^53 ns, so
        // skipping the f64 round-trip is bit-identical and cheaper.
        latency += if mult == 1.0 {
            base
        } else {
            base.scale_f64(mult)
        };

        self.stats.count_access(tier, write);
        self.stats.user_time += latency;
        let proc = &mut self.procs[pid.0 as usize];
        proc.vtime += latency;
        proc.ops += 1;

        AccessResult {
            latency,
            tier,
            hint_fault,
            demand_fault,
            probed_fault,
            fault_time: now,
        }
    }

    /// Demand-maps the mapping unit containing `pte_vpn` (a PTE page: base
    /// page or huge head). Allocation prefers the fast tier while its free
    /// frames stay above the `high` watermark — the kernel's top-tier-first
    /// placement — and spills to the slow tier otherwise.
    fn demand_map(&mut self, pid: ProcessId, pte_vpn: Vpn) {
        let huge = self.procs[pid.0 as usize].space.is_huge_mapped(pte_vpn);
        let unit = if huge { HUGE_2M_PAGES } else { 1 };

        let tier = match self.try_pick_alloc_tier(unit) {
            Some(t) => t,
            None => self.reclaim_for_demand(unit),
        };
        let head = if huge { pte_vpn.huge_head() } else { pte_vpn };
        for off in 0..unit {
            let v = Vpn(head.0 + off);
            let owner = FrameOwner { pid, vpn: v };
            let pfn = self.frames[tier.index()]
                .alloc(owner)
                .expect("pick_alloc_tier guaranteed space");
            let e = self.procs[pid.0 as usize].space.entry_mut(v);
            e.pfn = pfn;
            e.flags.set_tier(tier);
        }
        let e = self.procs[pid.0 as usize].space.entry_mut(head);
        e.flags.set(PageFlags::PRESENT);
        if huge {
            e.flags.set(PageFlags::HUGE_HEAD);
        }
        self.procs[pid.0 as usize].resident_frames += unit;
        self.lru_insert(pid, head, LruKind::Active);
    }

    /// Writes the mapping unit containing `vpn` out to the swap device and
    /// frees its frames — slow-tier reclamation under memory pressure
    /// (Section 3.3.1). The next access takes a major fault.
    pub fn swap_out(&mut self, pid: ProcessId, vpn: Vpn) -> Result<u32, MigrateError> {
        let space = &self.procs[pid.0 as usize].space;
        let head = space.pte_page(vpn);
        if !space.entry(head).present() {
            return Err(MigrateError::NotPresent);
        }
        let huge = space.is_huge_mapped(head);
        let unit = if huge { HUGE_2M_PAGES } else { 1 };
        let head = if huge { head.huge_head() } else { head };
        // Reclaim wins the race with an in-flight copy: abort it so the
        // reservation is released before the unit's frames go to swap.
        self.abort_migration(pid, head, false);
        let tier = self.procs[pid.0 as usize].space.entry(head).tier();
        // A POISONED unit's frames are bad: reclaim quarantines instead of
        // returning them to the free pool.
        let poisoned = self.procs[pid.0 as usize]
            .space
            .entry(head)
            .flags
            .has(PageFlags::POISONED);
        for off in 0..unit {
            let v = Vpn(head.0 + off);
            let e = self.procs[pid.0 as usize].space.entry_mut(v);
            let pfn = e.pfn;
            e.pfn = crate::addr::Pfn::NONE;
            self.frames[tier.index()].free(pfn);
            if poisoned {
                self.frames[tier.index()].quarantine(pfn);
                self.stats.quarantined_frames += 1;
                self.trace
                    .emit(self.clock.now(), || TraceEvent::Quarantine {
                        tier: tier.index() as u8,
                        pfn: pfn.0,
                    });
            }
        }
        let e = self.procs[pid.0 as usize].space.entry_mut(head);
        e.flags.clear(
            PageFlags::PRESENT
                | PageFlags::PROT_NONE
                | PageFlags::ACCESSED
                | PageFlags::DIRTY
                | PageFlags::PROBED
                | PageFlags::DEMOTED
                | PageFlags::CANDIDATE
                | PageFlags::POISONED,
        );
        e.flags.set(PageFlags::SWAPPED);
        self.lru_remove(pid, head);
        self.procs[pid.0 as usize].resident_frames -= unit;
        self.stats.swapped_out_pages += unit as u64;
        self.stats.kernel_time += self.cfg.swap().writeback_per_page.scale(unit as u64);
        Ok(unit)
    }

    /// Picks the allocation tier for `unit` frames: fast while above the high
    /// watermark, otherwise the first lower tier with room (top-down, so
    /// placement spills one tier at a time), otherwise fast if it can still
    /// hold the unit at all.
    fn try_pick_alloc_tier(&self, unit: u32) -> Option<TierId> {
        let fast_free = self.free_frames(TierId::FAST);
        if fast_free >= unit + self.watermarks.high {
            return Some(TierId::FAST);
        }
        for t in self.cfg.chain.ids().skip(1) {
            // Tiers that are evacuating, offline, or rejoining take no new
            // residency; demand placement spills past them down the chain.
            if self.health[t.index()].accepts_pages() && self.free_frames(t) >= unit {
                return Some(t);
            }
        }
        if fast_free >= unit {
            return Some(TierId::FAST);
        }
        None
    }

    /// Emergency demand-side backstop: every healthy tier is full — a
    /// failure domain is evacuating or offline and the survivors absorbed
    /// its pages — so reclaim swaps victims out of the slowest healthy tier
    /// until the allocation fits. Fault-free runs never come here (capacity
    /// planning keeps the chain allocatable), so the path is digest-neutral
    /// for them; genuine OOM with nothing left to reclaim still panics.
    fn reclaim_for_demand(&mut self, unit: u32) -> TierId {
        for _ in 0..(2 * HUGE_2M_PAGES + 4) {
            // Any tier still holding pages can donate a victim — including
            // an Evacuating one, where swapping simply accelerates the
            // drain (Offline tiers hold nothing by invariant). Slowest
            // first, so the fast tier is protected.
            let mut popped = None;
            for i in (0..self.cfg.num_tiers()).rev() {
                let t = TierId(i as u8);
                if self.used_frames(t) == 0 {
                    continue;
                }
                if let Some(v) = self.pop_inactive_victim(t) {
                    popped = Some(v);
                    break;
                }
            }
            let Some((pid, vpn)) = popped else { break };
            let _ = self.swap_out(pid, vpn);
            if let Some(t) = self.try_pick_alloc_tier(unit) {
                return t;
            }
        }
        let free: Vec<u32> = self.cfg.chain.ids().map(|t| self.free_frames(t)).collect();
        let used: Vec<u32> = self.cfg.chain.ids().map(|t| self.used_frames(t)).collect();
        let lru: Vec<(usize, usize)> = self
            .cfg
            .chain
            .ids()
            .map(|t| {
                (
                    self.lru_queued(t, LruKind::Inactive),
                    self.lru_queued(t, LruKind::Active),
                )
            })
            .collect();
        panic!(
            "out of memory: need {} frames, free per tier {:?} used {:?} lru {:?} health {:?} in_flight {}",
            unit, free, used, lru, self.health, self.engine.in_flight()
        );
    }

    // ----- LRU maintenance -------------------------------------------------

    /// Inserts a PTE page at the tail of the given list of its current tier.
    pub fn lru_insert(&mut self, pid: ProcessId, vpn: Vpn, kind: LruKind) {
        let e = self.procs[pid.0 as usize].space.entry_mut(vpn);
        e.bump_lru_stamp();
        match kind {
            LruKind::Active => e.flags.set(PageFlags::LRU_ACTIVE),
            LruKind::Inactive => e.flags.clear(PageFlags::LRU_ACTIVE),
        }
        let entry = LruEntry {
            pid,
            vpn,
            stamp: e.lru_stamp,
        };
        let tier = e.tier();
        self.lru[tier.index()].push(kind, entry);
    }

    /// Detaches a page from whatever list it sits on (lazy: stamps invalidate).
    pub fn lru_remove(&mut self, pid: ProcessId, vpn: Vpn) {
        self.procs[pid.0 as usize]
            .space
            .entry_mut(vpn)
            .bump_lru_stamp();
    }

    fn lru_entry_live(&self, e: LruEntry, expected_tier: TierId) -> bool {
        let p = &self.procs[e.pid.0 as usize];
        let ent = p.space.entry(e.vpn);
        ent.present() && ent.lru_stamp == e.stamp && ent.tier() == expected_tier
    }

    /// Whether an LRU entry is live: its page is present, in `tier`, and the
    /// entry's stamp is current (not lazily deleted). Exposed for the
    /// `tiering-verify` invariant oracle.
    pub fn lru_entry_is_live(&self, e: LruEntry, tier: TierId) -> bool {
        self.lru_entry_live(e, tier)
    }

    /// Iterates a tier's LRU list oldest-first, stale entries included.
    /// Exposed for the `tiering-verify` invariant oracle.
    pub fn lru_entries(&self, tier: TierId, kind: LruKind) -> impl Iterator<Item = &LruEntry> {
        self.lru[tier.index()].iter(kind)
    }

    /// Moves up to `budget` pages from the head of the active list: pages
    /// with the accessed bit set are rotated back (bit cleared); idle pages
    /// move to the inactive tail. This is the kernel's `shrink_active_list`
    /// in miniature. Returns pages deactivated. Charges scan cost.
    pub fn age_active_list(&mut self, tier: TierId, budget: u32) -> u32 {
        let mut deactivated = 0;
        let mut visited = 0;
        let limit = self.lru[tier.index()].queued(LruKind::Active);
        let mut scan_cost = 0u64;
        while visited < budget as usize && visited < limit {
            let Some(entry) = self.lru[tier.index()].pop(LruKind::Active) else {
                break;
            };
            if !self.lru_entry_live(entry, tier) {
                continue;
            }
            visited += 1;
            scan_cost += 1;
            let e = self.procs[entry.pid.0 as usize].space.entry_mut(entry.vpn);
            if e.flags.has(PageFlags::ACCESSED) {
                e.flags.clear(PageFlags::ACCESSED);
                self.lru_insert(entry.pid, entry.vpn, LruKind::Active);
            } else {
                self.lru_insert(entry.pid, entry.vpn, LruKind::Inactive);
                deactivated += 1;
            }
        }
        self.stats.scanned_ptes += scan_cost;
        self.stats.kernel_time += self.cfg.cost.scan_pte.scale(scan_cost);
        deactivated
    }

    /// Pops a demotion/reclaim candidate from the tier's inactive list.
    ///
    /// Referenced pages get a *bounded* second chance (at most
    /// `SECOND_CHANCE_BUDGET` are re-activated per call); past the budget,
    /// reclaim proceeds under pressure and takes the next page regardless of
    /// its accessed bit — mirroring the kernel, where the referenced state
    /// observed at reclaim time was accumulated over a whole aging period
    /// (minutes in production), so its effective frequency resolution is one
    /// bit per period, not per microsecond. Time-driven aging belongs to the
    /// policies via [`TieredSystem::age_active_list`]; when the inactive
    /// list runs dry this falls back to the oldest active page.
    pub fn pop_inactive_victim(&mut self, tier: TierId) -> Option<(ProcessId, Vpn)> {
        const SECOND_CHANCE_BUDGET: u32 = 2;
        let mut chances = SECOND_CHANCE_BUDGET;
        // One bounded pass over the inactive list, then the active fallback.
        for kind in [LruKind::Inactive, LruKind::Active] {
            let mut budget = self.lru[tier.index()].queued(kind);
            while budget > 0 {
                budget -= 1;
                let Some(entry) = self.lru[tier.index()].pop(kind) else {
                    break;
                };
                if !self.lru_entry_live(entry, tier) {
                    continue;
                }
                self.stats.scanned_ptes += 1;
                self.stats.kernel_time += self.cfg.cost.scan_pte;
                let e = self.procs[entry.pid.0 as usize].space.entry_mut(entry.vpn);
                if e.flags.has(PageFlags::ACCESSED) && chances > 0 {
                    chances -= 1;
                    e.flags.clear(PageFlags::ACCESSED);
                    self.lru_insert(entry.pid, entry.vpn, LruKind::Active);
                } else {
                    e.flags.clear(PageFlags::ACCESSED);
                    return Some((entry.pid, entry.vpn));
                }
            }
        }
        None
    }

    /// Approximate live length of a tier's LRU list (upper bound).
    pub fn lru_queued(&self, tier: TierId, kind: LruKind) -> usize {
        self.lru[tier.index()].queued(kind)
    }

    // ----- Migration -------------------------------------------------------

    /// Whether a one-hop migration `from → to` is routable on the current
    /// chain: the tiers are adjacent, or every tier strictly between them is
    /// spliced out (`Offline`/`Rejoining`) so the healed chain makes them
    /// neighbors. On an all-healthy chain this is exactly adjacency.
    pub fn route_allowed(&self, from: TierId, to: TierId) -> bool {
        if self.cfg.chain.adjacent(from, to) {
            return true;
        }
        let (lo, hi) = (from.index().min(to.index()), from.index().max(to.index()));
        if from == to || hi >= self.cfg.num_tiers() {
            return false;
        }
        (lo + 1..hi).all(|t| self.health[t].spliced_out())
    }

    /// The copy edge for a routable `from → to` hop: the chain's edge when
    /// adjacent, or a spliced edge derived via [`EdgeSpec::between`] when
    /// the hop crosses `Offline` tiers (min endpoint bandwidth, zero extra
    /// latency, no write asymmetry — the chain-healing rule).
    fn route_edge(&self, from: TierId, to: TierId) -> EdgeSpec {
        if self.cfg.chain.adjacent(from, to) {
            self.cfg.chain.edge_between(from, to).clone()
        } else {
            EdgeSpec::between(self.cfg.chain.tier(from), self.cfg.chain.tier(to))
        }
    }

    /// The nearest tier to `tier` that accepts pages and is reachable over
    /// the (possibly spliced) chain, preferring the slower side on distance
    /// ties — evacuation and soft-offline both protect the fast tier first.
    /// `None` when no other tier is healthy (the swap backstop remains).
    pub fn nearest_healthy_neighbor(&self, tier: TierId) -> Option<TierId> {
        let n = self.cfg.num_tiers();
        for d in 1..n {
            for cand in [tier.index() + d, tier.index().wrapping_sub(d)] {
                if cand < n
                    && self.health[cand].accepts_pages()
                    && self.route_allowed(tier, TierId(cand as u8))
                {
                    return Some(TierId(cand as u8));
                }
            }
        }
        None
    }

    /// Counts a failed migration attempt. Promotion failures feed the
    /// per-reason table (`NoSpace` additionally keeps the historical
    /// `failed_promotions` counter); demotion failures are the caller's to
    /// classify (see [`TieredSystem::promote_with_reclaim`]).
    fn fail_migrate<T>(&mut self, to: TierId, err: MigrateError) -> Result<T, MigrateError> {
        if to == TierId::FAST {
            self.stats.failed_fast_migrations[err.index()] += 1;
            self.stats.failed_promotions += u64::from(err == MigrateError::NoSpace);
        }
        Err(err)
    }

    /// Opens a two-phase migration of the mapping unit containing `vpn`.
    ///
    /// Phase one (this call) performs admission control, reserves one
    /// destination frame per base page, marks the unit's head
    /// [`PageFlags::MIGRATING`], charges the copy (to the waiter for
    /// [`MigrateMode::Sync`], to kernel time and the destination tier's
    /// bandwidth FIFO for [`MigrateMode::Async`]), and enqueues the
    /// transaction on the bounded in-flight table. The PTE keeps pointing at
    /// the old frames: reads served while in flight hit the old copy, and a
    /// *write* aborts the transaction (see [`TieredSystem::access`]).
    ///
    /// Phase two retires the transaction when the copy is done:
    /// [`TieredSystem::complete_due_migrations`] (called by the driver as
    /// sim-time advances) flips the PTE to the reserved frames.
    ///
    /// Errors: `NotPresent`/`SameTier` as before; `NoSpace` when the
    /// destination lacks `unit` free frames; `Backpressure` when the
    /// in-flight slots or the destination backlog cap are exhausted, or the
    /// unit already has a transaction in flight. Returns base pages enqueued.
    pub fn begin_migrate(
        &mut self,
        pid: ProcessId,
        vpn: Vpn,
        to: TierId,
        mode: MigrateMode,
    ) -> Result<u32, MigrateError> {
        self.begin_migrate_txn(pid, vpn, to, mode, false)
            .map(|(_, unit)| unit)
    }

    fn begin_migrate_txn(
        &mut self,
        pid: ProcessId,
        vpn: Vpn,
        to: TierId,
        mode: MigrateMode,
        evac: bool,
    ) -> Result<(MigrationTxnId, u32), MigrateError> {
        let space = &self.procs[pid.0 as usize].space;
        let head = space.pte_page(vpn);
        let entry = space.entry(head);
        if !entry.present() {
            return self.fail_migrate(to, MigrateError::NotPresent);
        }
        let from = entry.tier();
        if from == to {
            return self.fail_migrate(to, MigrateError::SameTier);
        }
        if !self.health[to.index()].accepts_pages() {
            // The unit stays where it is — but demote paths pop their victim
            // off the LRU before calling in, and dropping the pop would
            // strand the page off every list for the rest of the run
            // (unreclaimable once the survivors fill up). Re-inserting is
            // idempotent for pages still listed (the stamp bump retires the
            // old entry) and only chaos runs ever take this branch.
            let relist = if space.is_huge_mapped(head) {
                head.huge_head()
            } else {
                head
            };
            self.lru_insert(pid, relist, LruKind::Inactive);
            return self.fail_migrate(to, MigrateError::TierOffline);
        }
        if !self.route_allowed(from, to) {
            return self.fail_migrate(to, MigrateError::NonAdjacent);
        }
        if entry.flags.has(PageFlags::MIGRATING) {
            return self.fail_migrate(to, MigrateError::Backpressure);
        }
        let huge = space.is_huge_mapped(head);
        let unit = if huge { HUGE_2M_PAGES } else { 1 };
        let now = self.clock.now();
        // The deadline force-drain (evacuation with the deadline already
        // passed) bypasses admission: the device is about to disappear, so
        // the copy happens regardless of how full the bounded table is. The
        // async evacuation lane and all policy traffic respect admission.
        let forced = evac
            && matches!(self.health[from.index()],
                        TierHealth::Evacuating { deadline } if deadline <= now);
        if !forced && !self.engine.admits(from, to, now) {
            return self.fail_migrate(to, MigrateError::Backpressure);
        }
        if self.free_frames(to) < unit {
            return self.fail_migrate(to, MigrateError::NoSpace);
        }

        // Reserve the destination frames. They become the unit's mapping at
        // completion; until then the frame table counts them used while no
        // PTE points at them (the oracle's reservation-conservation case).
        let head = if huge { head.huge_head() } else { head };
        let mut dest_pfns = Vec::with_capacity(unit as usize);
        for off in 0..unit {
            let owner = FrameOwner {
                pid,
                vpn: Vpn(head.0 + off),
            };
            let pfn = self.frames[to.index()]
                .alloc(owner)
                .expect("free_frames checked above");
            dest_pfns.push(pfn);
        }
        self.procs[pid.0 as usize]
            .space
            .entry_mut(head)
            .flags
            .set(PageFlags::MIGRATING);

        // Costs: copy time over the edge's bandwidth (derived edges carry
        // the slower endpoint's migration bandwidth, reproducing the old
        // max-of-both-tiers copy time bit for bit), a write-asymmetry
        // stretch when copying down into an asymmetric device, the edge's
        // fixed extra latency, plus a fixed remap cost per unit. Spliced
        // hops across an offline tier use a derived edge between the
        // surviving endpoints.
        let edge = self.route_edge(from, to);
        let mut bw_time = edge.transfer_time(unit as u64);
        if to > from && edge.write_asymmetry != 1.0 {
            bw_time = bw_time.scale_f64(edge.write_asymmetry);
        }
        if let Some(f) = &self.fault {
            // Channel degradation windows stretch the copy, not the fixed
            // remap cost — only bandwidth is degraded.
            bw_time = bw_time.scale_f64(f.cost_multiplier(to, now));
        }
        let cost = bw_time + edge.extra_latency + self.cfg.cost.migrate_fixed;
        match mode {
            MigrateMode::Sync(waiter) => self.charge_kernel(Some(waiter), cost),
            MigrateMode::Async => self.stats.kernel_time += cost,
        }

        let id = self
            .engine
            .begin_lane(pid, head, from, to, unit, dest_pfns, mode, cost, now, evac);
        self.stats.begun_migrations += 1;
        if evac {
            self.stats.evacuated_pages += unit as u64;
        }
        self.trace.emit(now, || TraceEvent::MigrateBegin {
            pid: pid.0,
            vpn: head.0,
            pages: unit,
            dir: migrate_dir(from, to),
        });
        Ok((id, unit))
    }

    /// Retires one transaction: frees the source frames, flips the PTE to
    /// the reserved destination frames, and re-homes the unit's LRU entry.
    ///
    /// Flag handling: `MIGRATING`, `PROT_NONE`, `CANDIDATE` and `PROBED` are
    /// cleared (the unit is freshly remapped); promotion clears `DEMOTED`.
    /// Policy words are preserved — their lifecycle belongs to the policy.
    fn complete_txn(&mut self, txn: MigrationTxn) {
        let MigrationTxn {
            pid,
            head,
            from,
            to,
            unit,
            dest_pfns,
            evac,
            ..
        } = txn;
        // Soft-offline: if the unit was POISONED its source frames are bad —
        // quarantine them instead of returning them to the free pool.
        let poisoned = self.procs[pid.0 as usize]
            .space
            .entry(head)
            .flags
            .has(PageFlags::POISONED);
        for off in 0..unit {
            let v = Vpn(head.0 + off);
            let old_pfn = self.procs[pid.0 as usize].space.entry(v).pfn;
            debug_assert!(!old_pfn.is_none(), "present unit had unmapped tail page");
            self.frames[from.index()].free(old_pfn);
            if poisoned {
                self.frames[from.index()].quarantine(old_pfn);
                self.stats.quarantined_frames += 1;
                self.trace
                    .emit(self.clock.now(), || TraceEvent::Quarantine {
                        tier: from.index() as u8,
                        pfn: old_pfn.0,
                    });
            }
            let e = self.procs[pid.0 as usize].space.entry_mut(v);
            e.pfn = dest_pfns[off as usize];
            e.flags.set_tier(to);
        }

        let promoted = to < from;
        let e = self.procs[pid.0 as usize].space.entry_mut(head);
        e.flags.clear(
            PageFlags::MIGRATING
                | PageFlags::PROT_NONE
                | PageFlags::CANDIDATE
                | PageFlags::PROBED
                | PageFlags::POISONED,
        );
        if promoted {
            e.flags.clear(PageFlags::DEMOTED);
        }

        // LRU: leave the old tier's lists, join the new tier's. A promoted
        // unit is presumed hot (active); a demoted one starts inactive in
        // its new, slower home.
        self.lru_remove(pid, head);
        let kind = if promoted {
            LruKind::Active
        } else {
            LruKind::Inactive
        };
        self.lru_insert(pid, head, kind);

        // Per-edge stats are keyed by the lower-numbered endpoint; a spliced
        // hop is charged to the edge at its faster endpoint (min ≤ n − 2
        // holds for any routable pair, so the index stays in range).
        let edge = from.index().min(to.index());
        if promoted {
            self.stats.promoted_pages += unit as u64;
            self.stats.promoted_per_edge[edge] += unit as u64;
        } else {
            self.stats.demoted_pages += unit as u64;
            self.stats.demoted_per_edge[edge] += unit as u64;
        }
        self.stats.migration_bytes += unit as u64 * BASE_PAGE_BYTES;
        self.stats.completed_migrations += 1;
        if evac {
            self.stats.evac_rehomed_pages += unit as u64;
        }
        self.trace
            .emit(self.clock.now(), || TraceEvent::MigrateComplete {
                pid: pid.0,
                vpn: head.0,
                pages: unit,
                dir: migrate_dir(from, to),
            });
    }

    /// Rolls the copy-fault dice for one retiring transaction. Without a
    /// fault plan this is a single branch and zero RNG draws.
    fn roll_txn_fault(&mut self) -> CopyFault {
        match &mut self.fault {
            Some(f) => f.roll_copy_fault(),
            None => CopyFault::None,
        }
    }

    /// Applies a copy fault to a transaction popped from the engine: the
    /// destination reservation is released (on poison, one destination frame
    /// goes bad and is quarantined), the head's `MIGRATING` bit clears, and
    /// the source mapping stays authoritative. When `record` is set (async
    /// completion — the caller is gone) the failure is queued for
    /// [`TieredSystem::take_migration_failures`].
    fn fail_txn(&mut self, txn: MigrationTxn, fault: CopyFault, record: bool) -> MigrateError {
        let err = match fault {
            CopyFault::Transient => MigrateError::CopyFault,
            CopyFault::Poison => MigrateError::Poisoned,
            CopyFault::None => unreachable!("fail_txn called without a fault"),
        };
        let now = self.clock.now();
        for (i, pfn) in txn.dest_pfns.iter().enumerate() {
            self.frames[txn.to.index()].free(*pfn);
            if i == 0 && fault == CopyFault::Poison {
                self.frames[txn.to.index()].quarantine(*pfn);
                self.stats.quarantined_frames += 1;
                self.trace.emit(now, || TraceEvent::Quarantine {
                    tier: txn.to.index() as u8,
                    pfn: pfn.0,
                });
            }
        }
        match fault {
            CopyFault::Transient => self.stats.transient_copy_faults += 1,
            CopyFault::Poison => self.stats.poisoned_copy_faults += 1,
            CopyFault::None => unreachable!(),
        }
        if txn.evac {
            self.stats.evac_faulted_pages += txn.unit as u64;
        }
        if txn.to == TierId::FAST {
            self.stats.failed_fast_migrations[err.index()] += 1;
        }
        self.procs[txn.pid.0 as usize]
            .space
            .entry_mut(txn.head)
            .flags
            .clear(PageFlags::MIGRATING);
        self.trace.emit(now, || TraceEvent::CopyFault {
            pid: txn.pid.0,
            vpn: txn.head.0,
            pages: txn.unit,
            dir: migrate_dir(txn.from, txn.to),
            transient: fault == CopyFault::Transient,
        });
        if record {
            self.failed_async.push(MigrationFailure {
                pid: txn.pid,
                head: txn.head,
                unit: txn.unit,
                from: txn.from,
                to: txn.to,
                reason: err,
            });
        }
        err
    }

    /// Drains the asynchronously failed migrations recorded since the last
    /// call. Policies use this to feed their retry machinery.
    pub fn take_migration_failures(&mut self) -> Vec<MigrationFailure> {
        std::mem::take(&mut self.failed_async)
    }

    /// Fires capacity and tier events from the fault plan that are due at
    /// `now`, in each queue's firing order.
    fn service_fault_plan(&mut self, now: Nanos) {
        let (capacity, tiers) = match &mut self.fault {
            Some(f) => (f.due_capacity_events(now), f.due_tier_events(now)),
            None => return,
        };
        for ev in capacity {
            match ev.kind {
                CapacityKind::ShrinkFastFraction(frac) => {
                    let usable = self.frames[TierId::FAST.index()].usable_frames();
                    let target = (usable as f64 * frac).round() as u32;
                    self.shrink_tier(TierId::FAST, target);
                }
                CapacityKind::GrowFastFrames(n) => {
                    self.grow_tier(TierId::FAST, n);
                }
                CapacityKind::ShrinkTierFraction { tier, fraction } => {
                    let usable = self.frames[tier.index()].usable_frames();
                    let target = (usable as f64 * fraction).round() as u32;
                    self.shrink_tier(tier, target);
                }
                CapacityKind::GrowTierFrames { tier, frames } => {
                    self.grow_tier(tier, frames);
                }
            }
        }
        for ev in tiers {
            self.apply_tier_event(ev);
        }
    }

    /// Retires outstanding shrink debt against frames that have freed up
    /// since the shrink event (demotions draining the tier).
    fn drain_shrink_debt(&mut self) {
        for t in 0..self.cfg.num_tiers() {
            if self.shrink_debt[t] == 0 {
                continue;
            }
            let got = self.frames[t].offline_free_frames(self.shrink_debt[t]);
            if got > 0 {
                self.shrink_debt[t] -= got;
                self.stats.offlined_frames += got as u64;
                if t == TierId::FAST.index() {
                    self.rescale_watermarks();
                }
                self.emit_capacity(TierId(t as u8), got, 0);
            }
        }
    }

    /// Whether any tier still owes shrink debt.
    fn any_shrink_debt(&self) -> bool {
        self.shrink_debt.iter().any(|&d| d > 0)
    }

    /// Re-derives the fast-tier watermarks from the current usable tier
    /// size. The policy's `pro` target is kept, re-clamped to the new size;
    /// the next `retune_pro` recomputes it against the new capacity.
    fn rescale_watermarks(&mut self) {
        let usable = self.frames[TierId::FAST.index()].usable_frames();
        let pro = self.watermarks.pro;
        self.watermarks = Watermarks::scaled_to(usable);
        let cap = (usable / 4).max(self.watermarks.high);
        self.watermarks.pro = pro.clamp(self.watermarks.high, cap);
    }

    fn emit_capacity(&mut self, tier: TierId, offlined: u32, restored: u32) {
        let usable = self.frames[tier.index()].usable_frames();
        self.trace.emit(self.clock.now(), || TraceEvent::Capacity {
            tier: tier.index() as u8,
            offlined,
            restored,
            usable,
        });
    }

    /// Takes `frames` fast-tier frames out of service (hotplug shrink).
    /// See [`TieredSystem::shrink_tier`].
    pub fn shrink_fast(&mut self, frames: u32) -> u32 {
        self.shrink_tier(TierId::FAST, frames)
    }

    /// Brings fast-tier capacity back (hotplug grow). See
    /// [`TieredSystem::grow_tier`].
    pub fn grow_fast(&mut self, frames: u32) -> u32 {
        self.grow_tier(TierId::FAST, frames)
    }

    /// Takes `frames` frames of `tier` out of service (hotplug shrink).
    /// Frames come out of the free pool; if the pool is short, the
    /// remainder becomes shrink debt retired as migrations free more
    /// frames. Fast-tier watermarks are re-derived from the new usable
    /// size. Returns frames offlined immediately.
    pub fn shrink_tier(&mut self, tier: TierId, frames: u32) -> u32 {
        let got = self.frames[tier.index()].offline_free_frames(frames);
        self.stats.offlined_frames += got as u64;
        self.shrink_debt[tier.index()] += frames - got;
        if tier == TierId::FAST {
            self.rescale_watermarks();
        }
        self.emit_capacity(tier, got, 0);
        got
    }

    /// Brings capacity of `tier` back (hotplug grow): first cancels any
    /// outstanding shrink debt, then restores up to the remaining `frames`
    /// from the offlined pool. Returns frames actually brought back online.
    pub fn grow_tier(&mut self, tier: TierId, frames: u32) -> u32 {
        let cancelled = frames.min(self.shrink_debt[tier.index()]);
        self.shrink_debt[tier.index()] -= cancelled;
        let restored = self.frames[tier.index()].online_frames(frames - cancelled);
        self.stats.restored_frames += restored as u64;
        if tier == TierId::FAST {
            self.rescale_watermarks();
        }
        self.emit_capacity(tier, 0, restored);
        restored
    }

    // ----- Tier failure domains --------------------------------------------

    /// Records a tier health transition: stats, trace event, and the
    /// fast-path flag.
    fn set_tier_health(&mut self, tier: TierId, health: TierHealth) {
        self.health[tier.index()] = health;
        self.stats.tier_health_transitions += 1;
        self.health_active = self.health.iter().any(|h| *h != TierHealth::Online)
            || self.fault.as_ref().is_some_and(|f| f.tier_events_pending());
        self.trace
            .emit(self.clock.now(), || TraceEvent::TierHealth {
                tier: tier.index() as u8,
                state: health.code(),
            });
    }

    /// Applies one tier failure-domain event immediately (the fault plan
    /// services its scheduled events through here; the sharded runner calls
    /// it directly at barriers, in tenant-id order, so fleet chaos replays
    /// identically at any thread count).
    ///
    /// Semantics per [`TierEventKind`]:
    /// - `Degrade`: the tier (if currently a live chain member) shows
    ///   `Degrading` and its copy channel pays the multiplier for the
    ///   window.
    /// - `Offline`: the tier enters `Evacuating`; copies *into* it abort,
    ///   new residency is refused, and the emergency lane drains it (see
    ///   [`TieredSystem::complete_due_migrations`]) until empty or the
    ///   deadline force-drains it, after which it goes `Offline` and the
    ///   chain splices around it. Ignored for tier 0 (the top tier cannot
    ///   fail) and for tiers already evacuating/offline.
    /// - `Online`: an `Offline` tier re-enters as `Rejoining`; the next
    ///   completion pass restores its frames and flips it `Online`. An
    ///   `Evacuating` tier is re-admitted immediately (the device came back
    ///   before the drain finished); a degrade window is simply cut short.
    pub fn apply_tier_event(&mut self, ev: TierEvent) {
        let tier = ev.tier;
        match ev.kind {
            TierEventKind::Degrade {
                until,
                cost_multiplier,
            } => {
                let now = self.clock.now();
                if self.health[tier.index()].accepts_pages() && now < until {
                    self.fault
                        .get_or_insert_with(|| FaultState::new(FaultPlan::inert(0)))
                        .add_degrade_window(DegradeWindow {
                            tier,
                            from: now,
                            until,
                            cost_multiplier,
                        });
                    self.set_tier_health(tier, TierHealth::Degrading { until });
                }
            }
            TierEventKind::Offline { deadline } => {
                if tier == TierId::FAST || !self.health[tier.index()].accepts_pages() {
                    return;
                }
                // Copies headed into the dying tier would land new residency
                // there: abort them before the drain starts. Copies *out*
                // keep flowing — they are the drain.
                let doomed: Vec<(ProcessId, Vpn)> = self
                    .engine
                    .iter()
                    .filter(|t| t.to == tier)
                    .map(|t| (t.pid, t.head))
                    .collect();
                for (pid, head) in doomed {
                    self.abort_migration(pid, head, false);
                }
                self.evac_cursor[tier.index()] = 0;
                self.set_tier_health(tier, TierHealth::Evacuating { deadline });
                self.pump_evacuation(tier);
            }
            TierEventKind::Online => match self.health[tier.index()] {
                TierHealth::Offline => self.set_tier_health(tier, TierHealth::Rejoining),
                TierHealth::Evacuating { .. } => self.set_tier_health(tier, TierHealth::Online),
                _ => {}
            },
        }
    }

    /// Picks the evacuation destination for `unit` pages leaving `tier`:
    /// the nearest healthy neighbor with room, preferring the slower side
    /// on ties. `None` means every healthy tier is full — the caller spills
    /// to the swap backstop.
    fn evac_dest(&self, tier: TierId, unit: u32) -> Option<TierId> {
        let n = self.cfg.num_tiers();
        for d in 1..n {
            for cand in [tier.index() + d, tier.index().wrapping_sub(d)] {
                if cand < n
                    && self.health[cand].accepts_pages()
                    && self.route_allowed(tier, TierId(cand as u8))
                    && self.free_frames(TierId(cand as u8)) >= unit
                {
                    return Some(TierId(cand as u8));
                }
            }
        }
        None
    }

    /// One evacuation pump pass over `tier` (must be `Evacuating`): issues
    /// emergency-lane copies for resident units toward the nearest healthy
    /// neighbor, bounded by edge admission before the deadline and forced
    /// (synchronous, admission-bypassing) after it; spills to the swap
    /// backstop when no healthy tier has room. Flips the tier `Offline`
    /// once nothing resident remains.
    fn pump_evacuation(&mut self, tier: TierId) {
        let TierHealth::Evacuating { deadline } = self.health[tier.index()] else {
            return;
        };
        let now = self.clock.now();
        let forced = now >= deadline;
        // Bound a pre-deadline pass so the per-access pump stays cheap; the
        // cursor resumes where the pass stopped. A forced pass restarts at
        // frame 0 and walks everything — the device is gone.
        let budget = if forced { u32::MAX } else { 256 };
        let total = self.frames[tier.index()].total();
        let mut visited = 0u32;
        let mut pfn = if forced {
            0
        } else {
            self.evac_cursor[tier.index()]
        };
        while visited < budget && pfn < total {
            visited += 1;
            let Some(owner) = self.frames[tier.index()].owner(Pfn(pfn)) else {
                pfn += 1;
                continue;
            };
            // Skip reservation-only frames (no PTE points here yet — stale
            // walk noise; copies cannot target an evacuating tier) and
            // units already in flight off the tier.
            if self.procs[owner.pid.0 as usize].space.entry(owner.vpn).pfn != Pfn(pfn) {
                pfn += 1;
                continue;
            }
            let head = self.procs[owner.pid.0 as usize].space.pte_page(owner.vpn);
            let migrating = self.procs[owner.pid.0 as usize]
                .space
                .entry(head)
                .flags
                .has(PageFlags::MIGRATING);
            if migrating {
                if forced {
                    // Past the deadline nothing may stay in flight off the
                    // dying tier: abort and force-drain below.
                    self.abort_migration(owner.pid, head, false);
                } else {
                    pfn += 1;
                    continue;
                }
            }
            let unit = if self.procs[owner.pid.0 as usize].space.is_huge_mapped(head) {
                HUGE_2M_PAGES
            } else {
                1
            };
            match self.evac_dest(tier, unit) {
                Some(dest) if forced => {
                    // Synchronous force-drain: open and retire in one step
                    // (admission bypassed — see `begin_migrate_txn`). A
                    // copy fault leaves the unit resident; spill it to swap
                    // so the tier still empties.
                    match self.begin_migrate_txn(owner.pid, head, dest, MigrateMode::Async, true) {
                        Ok((id, _)) => {
                            let txn = self.engine.remove(id).expect("just begun");
                            match self.roll_txn_fault() {
                                CopyFault::None => self.complete_txn(txn),
                                fault => {
                                    self.fail_txn(txn, fault, false);
                                    self.evac_spill(owner.pid, head, unit);
                                }
                            }
                        }
                        Err(_) => self.evac_spill(owner.pid, head, unit),
                    }
                }
                Some(dest) => {
                    match self.begin_migrate_txn(owner.pid, head, dest, MigrateMode::Async, true) {
                        Ok(_) => {}
                        Err(MigrateError::Backpressure) => break,
                        Err(_) => {
                            pfn += 1;
                            continue;
                        }
                    }
                }
                None => {
                    // No healthy tier has room: the backstop takes it.
                    self.evac_spill(owner.pid, head, unit);
                }
            }
            pfn += 1;
        }
        self.evac_cursor[tier.index()] = if pfn >= total { 0 } else { pfn };
        // Drained? Nothing resident and nothing in flight off the tier.
        if self.used_frames(tier) == 0 {
            self.finish_offline(tier);
        }
    }

    /// Spills one unit off an evacuating tier to the swap backstop,
    /// keeping the evacuation flow conserved (the spill counts as an issue
    /// retired into `evac_swapped_pages` in the same instant).
    fn evac_spill(&mut self, pid: ProcessId, head: Vpn, unit: u32) {
        if self.swap_out(pid, head).is_ok() {
            self.stats.evacuated_pages += unit as u64;
            self.stats.evac_swapped_pages += unit as u64;
        }
    }

    /// Completes an evacuation: offlines the drained tier's frames and
    /// splices the chain around it.
    fn finish_offline(&mut self, tier: TierId) {
        debug_assert_eq!(self.used_frames(tier), 0, "offline with residency");
        let free = self.frames[tier.index()].free_frames();
        let got = self.frames[tier.index()].offline_free_frames(free);
        self.stats.offlined_frames += got as u64;
        self.emit_capacity(tier, got, 0);
        self.set_tier_health(tier, TierHealth::Offline);
    }

    /// Re-admits tiers that finished `Rejoining`: frames come back online
    /// and the splice is undone. Runs on the completion pump so the rejoin
    /// lands at a deterministic point of the access stream.
    fn finish_rejoins(&mut self) {
        for t in 0..self.cfg.num_tiers() {
            if self.health[t] != TierHealth::Rejoining {
                continue;
            }
            let restored = self.frames[t].online_frames(u32::MAX);
            self.stats.restored_frames += restored as u64;
            self.emit_capacity(TierId(t as u8), 0, restored);
            self.set_tier_health(TierId(t as u8), TierHealth::Online);
        }
    }

    /// Expires degrade-window health markers whose window has passed.
    fn expire_degrades(&mut self, now: Nanos) {
        for t in 0..self.cfg.num_tiers() {
            if let TierHealth::Degrading { until } = self.health[t] {
                if now >= until {
                    self.set_tier_health(TierId(t as u8), TierHealth::Online);
                }
            }
        }
    }

    /// Drives every evacuating tier's pump once and settles rejoin/degrade
    /// lifecycle edges. Called from the completion pump while the
    /// failure-domain machinery is active.
    fn service_tier_health(&mut self) {
        let now = self.clock.now();
        self.expire_degrades(now);
        self.finish_rejoins();
        for t in 0..self.cfg.num_tiers() {
            if matches!(self.health[t], TierHealth::Evacuating { .. }) {
                self.pump_evacuation(TierId(t as u8));
            }
        }
    }

    /// Installs a channel-degradation window (fuzz ops and procfs-style
    /// knobs). Creates an inert fault state if no plan was configured.
    pub fn degrade_channel(&mut self, w: DegradeWindow) {
        self.fault
            .get_or_insert_with(|| FaultState::new(FaultPlan::inert(0)))
            .add_degrade_window(w);
    }

    /// Injects an uncorrectable error into a frame (MCE-style poisoning).
    ///
    /// - A quarantined frame: no-op (already dead), returns `false`.
    /// - A free or offlined frame: quarantined directly.
    /// - A frame reserved by an in-flight copy: the transaction aborts
    ///   (reservation released), then the frame is quarantined.
    /// - A mapped frame: the mapping unit is split out of any huge block and
    ///   detached from any in-flight copy, marked [`PageFlags::POISONED`],
    ///   and soft-offline is attempted immediately — an ordinary migration
    ///   to the other tier whose completion quarantines the bad frame. If
    ///   the migration is refused the flag stays set and the next successful
    ///   migration or swap-out of the page quarantines the frame instead.
    ///
    /// Returns whether the frame was newly poisoned.
    pub fn poison_frame(&mut self, tier: TierId, pfn: Pfn) -> bool {
        let table = &mut self.frames[tier.index()];
        if pfn.0 >= table.total() || table.is_quarantined(pfn) {
            return false;
        }
        if table.is_free(pfn) {
            table.quarantine(pfn);
            self.stats.quarantined_frames += 1;
            let now = self.clock.now();
            self.trace.emit(now, || TraceEvent::Quarantine {
                tier: tier.index() as u8,
                pfn: pfn.0,
            });
            return true;
        }
        let Some(owner) = table.owner(pfn) else {
            // Offlined by a capacity shrink: not in service, but a grow
            // event must never bring it back — move it to quarantine.
            if table.quarantine_offlined(pfn) {
                self.stats.quarantined_frames += 1;
                let now = self.clock.now();
                self.trace.emit(now, || TraceEvent::Quarantine {
                    tier: tier.index() as u8,
                    pfn: pfn.0,
                });
                return true;
            }
            return false;
        };
        let head = self.procs[owner.pid.0 as usize].space.pte_page(owner.vpn);
        // A reserved copy destination: the PTE does not point at it yet.
        if self.procs[owner.pid.0 as usize].space.entry(owner.vpn).pfn != pfn {
            self.abort_migration(owner.pid, head, false);
            self.frames[tier.index()].quarantine(pfn);
            self.stats.quarantined_frames += 1;
            let now = self.clock.now();
            self.trace.emit(now, || TraceEvent::Quarantine {
                tier: tier.index() as u8,
                pfn: pfn.0,
            });
            return true;
        }
        // A mapped frame: split huge blocks so the poison stays on one base
        // page (POISONED ∧ HUGE_HEAD is illegal), kill any in-flight copy of
        // stale data, then mark and try to soft-offline.
        if self.procs[owner.pid.0 as usize].space.is_huge_mapped(head) {
            self.split_block(owner.pid, head);
        } else {
            self.abort_migration(owner.pid, head, false);
        }
        let base = self.procs[owner.pid.0 as usize].space.pte_page(owner.vpn);
        self.procs[owner.pid.0 as usize]
            .space
            .entry_mut(base)
            .flags
            .set(PageFlags::POISONED);
        let now = self.clock.now();
        self.trace.emit(now, || TraceEvent::FramePoison {
            pid: owner.pid.0,
            vpn: base.0,
        });
        // Soft-offline destination: the nearest *healthy* neighbor over the
        // (possibly spliced) chain, preferring the slower side — on a fully
        // healthy chain that is one hop down, or one hop up from the last
        // tier, exactly the historical "other tier" behaviour. With no
        // healthy neighbor at all the flag stays set; the next successful
        // migration or swap-out quarantines the frame.
        if let Some(dest) = self.nearest_healthy_neighbor(tier) {
            let _ = self.migrate(owner.pid, base, dest, MigrateMode::Async);
        }
        true
    }

    /// Retires every in-flight transaction whose copy is done by the current
    /// clock, in completion order, rolling the fault plan's copy-fault dice
    /// for each. Also fires due capacity events and retires shrink debt.
    /// Drivers call this whenever sim time advances. Returns transactions
    /// completed (faulted transactions are not counted).
    pub fn complete_due_migrations(&mut self) -> u32 {
        let now = self.clock.now();
        // Called on every sim-time advance, which on the driver's access
        // loop means roughly once per access; the common case is an idle
        // engine, so bail with a few cheap reads before touching the
        // fault-plan and retire machinery.
        if self.fault.is_none()
            && !self.health_active
            && !self.any_shrink_debt()
            && !self.engine.any_due(now)
        {
            return 0;
        }
        self.service_fault_plan(now);
        let mut n = 0;
        while let Some(txn) = self.engine.pop_due(now) {
            match self.roll_txn_fault() {
                CopyFault::None => {
                    self.complete_txn(txn);
                    n += 1;
                }
                fault => {
                    self.fail_txn(txn, fault, true);
                }
            }
        }
        if self.health_active {
            self.service_tier_health();
        }
        self.drain_shrink_debt();
        n
    }

    /// Aborts the in-flight transaction on the unit headed by `head`, if
    /// any: the destination reservation is freed, the head's `MIGRATING` bit
    /// clears, and — for write aborts — the head is re-dirtied (the copy is
    /// stale the instant the store lands). The bandwidth the copy occupied
    /// is not refunded. Returns whether a transaction was aborted.
    pub fn abort_migration(&mut self, pid: ProcessId, head: Vpn, redirty: bool) -> bool {
        let Some(id) = self.engine.find(pid, head) else {
            return false;
        };
        let txn = self.engine.remove(id).expect("id just found");
        for pfn in &txn.dest_pfns {
            self.frames[txn.to.index()].free(*pfn);
        }
        let e = self.procs[pid.0 as usize].space.entry_mut(head);
        e.flags.clear(PageFlags::MIGRATING);
        if redirty {
            e.flags.set(PageFlags::DIRTY);
        }
        self.stats.aborted_migrations += 1;
        if txn.evac {
            // The unit stays on the failing tier; the pump re-issues it
            // (counting a fresh evacuation), so the abort retires this one.
            self.stats.evac_faulted_pages += txn.unit as u64;
        }
        self.trace
            .emit(self.clock.now(), || TraceEvent::MigrateAbort {
                pid: pid.0,
                vpn: head.0,
                pages: txn.unit,
                dir: migrate_dir(txn.from, txn.to),
            });
        true
    }

    /// Migrates the mapping unit containing `vpn` to `to` with synchronous
    /// completion: a compat wrapper that opens a transaction and force-
    /// completes it in the same call, preserving the pre-engine
    /// instantaneous-migration semantics for the baseline policies. Returns
    /// the number of base pages moved.
    pub fn migrate(
        &mut self,
        pid: ProcessId,
        vpn: Vpn,
        to: TierId,
        mode: MigrateMode,
    ) -> Result<u32, MigrateError> {
        let (id, unit) = self.begin_migrate_txn(pid, vpn, to, mode, false)?;
        let txn = self.engine.remove(id).expect("transaction just begun");
        match self.roll_txn_fault() {
            CopyFault::None => {
                self.complete_txn(txn);
                Ok(unit)
            }
            // The caller is present and sees the error directly, so the
            // failure is not queued for the async drain.
            fault => Err(self.fail_txn(txn, fault, false)),
        }
    }

    /// Splits the 2 MiB block containing `vpn` into base mappings. A split
    /// invalidates the in-flight unit, so any transaction on the block is
    /// aborted first. Policies must use this over raw
    /// [`AddressSpace::split_block`] so the abort rule holds.
    pub fn split_block(&mut self, pid: ProcessId, vpn: Vpn) {
        let head = self.procs[pid.0 as usize].space.pte_page(vpn);
        self.abort_migration(pid, head, false);
        self.procs[pid.0 as usize].space.split_block(head);
    }

    /// Transactions currently in flight. Exposed for the `tiering-verify`
    /// invariant oracle and for period-sample gauges.
    pub fn in_flight_migrations(&self) -> impl Iterator<Item = &MigrationTxn> {
        self.engine.iter()
    }

    /// Number of transactions currently in flight.
    pub fn migration_in_flight_count(&self) -> usize {
        self.engine.in_flight()
    }

    /// Re-caps the migration engine's in-flight slot budget (see
    /// [`MigrationEngine::set_inflight_slots`]). The multi-tenant admission
    /// hook calls this at every barrier with the tenant's granted share.
    pub fn set_inflight_slots(&mut self, slots: usize) {
        self.engine.set_inflight_slots(slots);
    }

    /// Records a multi-tenant admission grant into this tenant's trace.
    /// Only the sharded runner calls this (and only with the hook enabled),
    /// so hook-off runs record exactly the event stream they always did.
    pub fn trace_admission(&mut self, tenant: u32, granted: u32, in_flight: u32, starvation: u32) {
        let now = self.clock.now();
        self.trace.emit(now, || TraceEvent::Admission {
            tenant,
            granted,
            in_flight,
            starvation,
        });
    }

    /// Destination frames reserved by in-flight transactions in `tier`.
    /// Exposed for the `tiering-verify` invariant oracle.
    pub fn migration_reserved_frames(&self, tier: TierId) -> u32 {
        self.engine.reserved_frames(tier)
    }

    /// Promotes a unit to the fast tier, demoting inactive victims first if
    /// the fast tier lacks space. Victim demotions are charged in the same
    /// mode. Returns pages promoted.
    pub fn promote_with_reclaim(
        &mut self,
        pid: ProcessId,
        vpn: Vpn,
        mode: MigrateMode,
    ) -> Result<u32, MigrateError> {
        self.promote_with_reclaim_to(pid, vpn, TierId::FAST, mode)
    }

    /// Promotes a unit one hop up into tier `to`, demoting inactive victims
    /// of `to` one hop further down first if `to` lacks space — the cascade
    /// step a chained policy runs per adjacent pair. Victim demotions are
    /// charged in the same mode. Returns pages promoted.
    pub fn promote_with_reclaim_to(
        &mut self,
        pid: ProcessId,
        vpn: Vpn,
        to: TierId,
        mode: MigrateMode,
    ) -> Result<u32, MigrateError> {
        let space = &self.procs[pid.0 as usize].space;
        let head = space.pte_page(vpn);
        if !space.entry(head).present() {
            return self.fail_migrate(to, MigrateError::NotPresent);
        }
        if space.entry(head).tier() == to {
            return self.fail_migrate(to, MigrateError::SameTier);
        }
        let unit = if space.is_huge_mapped(head) {
            HUGE_2M_PAGES
        } else {
            1
        };
        // Victims leave `to` for the next healthy tier down the (possibly
        // spliced) chain; a promotion target is never the bottom tier (the
        // page comes from below it), so on a healthy chain the destination
        // always exists. With every lower tier unhealthy there is nowhere
        // to demote — skip the reclaim loop and let the plain migrate
        // report `NoSpace`.
        let victim_dest = (to.index() + 1..self.cfg.num_tiers())
            .map(|t| TierId(t as u8))
            .find(|t| self.health[t.index()].accepts_pages() && self.route_allowed(to, *t));
        // Demote until there's room, bounded to avoid pathological loops when
        // the inactive list is all-hot. A failed victim demotion is counted,
        // and a `NotPresent` victim (stale by the time we got to it) does not
        // burn the attempt budget — it freed nothing and cost nothing.
        let mut attempts = 0;
        if let Some(victim_dest) = victim_dest {
            while self.free_frames(to) < unit && attempts < 4 * unit {
                match self.pop_inactive_victim(to) {
                    Some((vp, vv)) => match self.migrate(vp, vv, victim_dest, mode) {
                        Ok(_) => attempts += 1,
                        Err(MigrateError::NotPresent) => {
                            self.stats.failed_demotions += 1;
                        }
                        Err(_) => {
                            self.stats.failed_demotions += 1;
                            attempts += 1;
                        }
                    },
                    None => break,
                }
            }
        }
        self.migrate(pid, vpn, to, mode)
    }

    /// Outstanding async migration backlog relative to the global clock:
    /// the fullest edge channel's queued copy time.
    pub fn migration_backlog(&self) -> Nanos {
        self.engine.max_backlog(self.clock.now())
    }

    /// Outstanding async copy backlog on the directed edge `from → to`.
    pub fn edge_backlog(&self, from: TierId, to: TierId) -> Nanos {
        self.engine.backlog(from, to, self.clock.now())
    }

    /// Schedules a policy event `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: Nanos, token: u64) {
        let at = self.clock.now() + delay;
        self.events.schedule(at, token);
    }

    /// Charges the cost of visiting `n` PTEs during a scan to `pid` (the scan
    /// runs in task context, as `task_numa_work` does) and counts them.
    pub fn charge_scan(&mut self, pid: ProcessId, n: u64) {
        self.stats.scanned_ptes += n;
        let cost = self.cfg.cost.scan_pte.scale(n);
        self.charge_kernel(Some(pid), cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sys() -> TieredSystem {
        // 64 fast + 192 slow frames; watermarks floor at min=4/low=6/high=8.
        TieredSystem::new(SystemConfig::dram_pmem(64, 192))
    }

    #[test]
    fn scan_budget_saturates_instead_of_wrapping() {
        // The shape every daemon uses: fast-tier frames × event interval /
        // scan period. 1M frames pro-rated over a 100 s interval against a
        // 1 µs period is 10^14 pages — the old `as u32` wrapped this to a
        // near-zero budget and the daemon silently stopped aging.
        let frames = 1 << 20;
        let interval = Nanos(100_000_000_000);
        let period = Nanos(1_000);
        let wrapped = (frames as u64 * interval.as_nanos() / period.as_nanos().max(1)) as u32;
        assert_ne!(
            wrapped,
            scan_budget_pages(frames, interval, period),
            "regression sentinel: the bare cast really does wrap here"
        );
        assert_eq!(scan_budget_pages(frames, interval, period), u32::MAX);
        // Sane in-range behaviour: 1000 frames, interval == period / 4.
        assert_eq!(scan_budget_pages(1000, Nanos(250), Nanos(1_000)), 250);
        // Zero-length period must not divide by zero.
        assert_eq!(scan_budget_pages(7, Nanos(3), Nanos(0)), 21);
    }

    #[test]
    fn first_touch_fills_fast_then_slow() {
        let mut sys = small_sys();
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        // Fast tier keeps `high`=8 frames free; 56 pages land fast, 72 slow.
        let [fast, slow, ..] = sys.process(pid).space.resident_pages();
        assert_eq!(fast, 56);
        assert_eq!(slow, 72);
        assert_eq!(sys.stats.demand_faults, 128);
    }

    #[test]
    fn access_latency_reflects_tier() {
        let mut sys = small_sys();
        let pid = sys.add_process(4, PageSize::Base);
        let r1 = sys.access(pid, Vpn(0), false);
        assert_eq!(r1.tier, TierId::FAST);
        assert!(r1.demand_fault);
        let r2 = sys.access(pid, Vpn(0), false);
        assert!(!r2.demand_fault);
        assert!(r2.latency < r1.latency);
        // Fast read ≈ cpu_op + 80ns.
        assert_eq!(r2.latency.as_nanos(), 15 + 80);
    }

    #[test]
    fn writes_cost_more_on_slow_tier() {
        let mut sys = small_sys();
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        let read = sys.access(pid, Vpn(100), false);
        let write = sys.access(pid, Vpn(100), true);
        assert_eq!(read.tier, TierId::SLOW);
        assert!(write.latency > read.latency);
    }

    #[test]
    fn prot_none_faults_once_and_clears() {
        let mut sys = small_sys();
        let pid = sys.add_process(4, PageSize::Base);
        sys.access(pid, Vpn(0), false);
        sys.process_mut(pid)
            .space
            .entry_mut(Vpn(0))
            .flags
            .set(PageFlags::PROT_NONE);
        let r = sys.access(pid, Vpn(0), false);
        assert!(r.hint_fault);
        let r2 = sys.access(pid, Vpn(0), false);
        assert!(!r2.hint_fault);
        assert_eq!(sys.stats.hint_faults, 1);
    }

    #[test]
    fn probed_flag_reported_on_fault() {
        let mut sys = small_sys();
        let pid = sys.add_process(4, PageSize::Base);
        sys.access(pid, Vpn(1), false);
        let e = sys.process_mut(pid).space.entry_mut(Vpn(1));
        e.flags.set(PageFlags::PROT_NONE | PageFlags::PROBED);
        let r = sys.access(pid, Vpn(1), false);
        assert!(r.hint_fault);
        assert!(r.probed_fault);
    }

    #[test]
    fn migrate_moves_frames_between_tiers() {
        let mut sys = small_sys();
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        let slow_used_before = sys.used_frames(TierId::SLOW);
        let moved = sys
            .migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async)
            .unwrap();
        assert_eq!(moved, 1);
        assert_eq!(sys.process(pid).space.entry(Vpn(100)).tier(), TierId::FAST);
        assert_eq!(sys.used_frames(TierId::SLOW), slow_used_before - 1);
        assert_eq!(sys.stats.promoted_pages, 1);
        assert_eq!(sys.stats.migration_bytes, 4096);
    }

    #[test]
    fn migrate_same_tier_rejected() {
        let mut sys = small_sys();
        let pid = sys.add_process(4, PageSize::Base);
        sys.access(pid, Vpn(0), false);
        assert_eq!(
            sys.migrate(pid, Vpn(0), TierId::FAST, MigrateMode::Async),
            Err(MigrateError::SameTier)
        );
    }

    #[test]
    fn migrate_unmapped_rejected() {
        let mut sys = small_sys();
        let pid = sys.add_process(4, PageSize::Base);
        assert_eq!(
            sys.migrate(pid, Vpn(0), TierId::FAST, MigrateMode::Async),
            Err(MigrateError::NotPresent)
        );
    }

    #[test]
    fn sync_migration_stalls_the_waiter() {
        let mut sys = small_sys();
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        let before = sys.process(pid).vtime;
        sys.migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Sync(pid))
            .unwrap();
        assert!(sys.process(pid).vtime > before);
    }

    #[test]
    fn async_migration_builds_backlog_not_stall() {
        let mut sys = small_sys();
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        let before = sys.process(pid).vtime;
        sys.migrate(pid, Vpn(101), TierId::FAST, MigrateMode::Async)
            .unwrap();
        assert_eq!(sys.process(pid).vtime, before);
        assert!(sys.migration_backlog() > Nanos::ZERO);
    }

    #[test]
    fn promote_with_reclaim_demotes_victims() {
        let mut sys = small_sys();
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        // Fast tier is at watermark; fill it completely by promoting until
        // free, forcing reclaim of cold fast pages.
        // First exhaust free frames.
        let mut v = 60;
        while sys.free_frames(TierId::FAST) > 0 {
            let _ = sys.migrate(pid, Vpn(v), TierId::FAST, MigrateMode::Async);
            v += 1;
        }
        let demoted_before = sys.stats.demoted_pages;
        let r = sys.promote_with_reclaim(pid, Vpn(v), MigrateMode::Async);
        assert_eq!(r, Ok(1));
        assert!(sys.stats.demoted_pages > demoted_before);
        assert_eq!(sys.process(pid).space.entry(Vpn(v)).tier(), TierId::FAST);
    }

    #[test]
    fn pop_inactive_victim_gives_second_chance() {
        let mut sys = small_sys();
        let pid = sys.add_process(8, PageSize::Base);
        for i in 0..8 {
            sys.access(pid, Vpn(i), false);
        }
        // All pages are on the active list with accessed bits set. First they
        // are aged (bit cleared), then an untouched page becomes a victim.
        let victim = sys.pop_inactive_victim(TierId::FAST);
        assert!(victim.is_some());
        let (_vp, vv) = victim.unwrap();
        // The victim's accessed bit must be clear (it got no second touch).
        assert!(!sys
            .process(pid)
            .space
            .entry(vv)
            .flags
            .has(PageFlags::ACCESSED));
    }

    #[test]
    fn huge_mapping_faults_and_migrates_as_block() {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(2048, 2048));
        let pid = sys.add_process(1024, PageSize::Huge2M);
        let r = sys.access(pid, Vpn(700), false);
        assert!(r.demand_fault);
        // One demand fault mapped the whole 512-page block.
        assert_eq!(sys.stats.demand_faults, 1);
        let [fast, ..] = sys.process(pid).space.resident_pages();
        assert_eq!(fast, 512);
        // Accessing another page of the block does not fault.
        let r2 = sys.access(pid, Vpn(701), false);
        assert!(!r2.demand_fault);
        // Migrating any page of the block moves all 512 pages.
        let moved = sys
            .migrate(pid, Vpn(700), TierId::SLOW, MigrateMode::Async)
            .unwrap();
        assert_eq!(moved, 512);
        assert_eq!(sys.stats.demoted_pages, 512);
        assert_eq!(sys.used_frames(TierId::SLOW), 512);
    }

    #[test]
    fn huge_block_needs_contiguous_space_budget() {
        // Slow tier too small for a 512-page block: allocation must go fast.
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(1024, 100));
        let pid = sys.add_process(512, PageSize::Huge2M);
        sys.access(pid, Vpn(0), false);
        assert_eq!(sys.process(pid).space.entry(Vpn(0)).tier(), TierId::FAST);
        assert_eq!(
            sys.migrate(pid, Vpn(0), TierId::SLOW, MigrateMode::Async),
            Err(MigrateError::NoSpace)
        );
    }

    #[test]
    fn min_vtime_scheduling_is_fair() {
        let mut sys = small_sys();
        let a = sys.add_process(4, PageSize::Base);
        let b = sys.add_process(4, PageSize::Base);
        assert_eq!(sys.min_vtime_process(), Some(a));
        sys.access(a, Vpn(0), false);
        assert_eq!(sys.min_vtime_process(), Some(b));
        sys.process_mut(b).running = false;
        assert_eq!(sys.min_vtime_process(), Some(a));
    }

    #[test]
    fn kernel_charge_accounting() {
        let mut sys = small_sys();
        let pid = sys.add_process(4, PageSize::Base);
        sys.charge_kernel(Some(pid), Nanos(500));
        assert_eq!(sys.stats.kernel_time, Nanos(500));
        assert_eq!(sys.process(pid).vtime, Nanos(500));
        sys.charge_kernel(None, Nanos(100));
        assert_eq!(sys.stats.kernel_time, Nanos(600));
        assert_eq!(sys.process(pid).vtime, Nanos(500));
    }

    #[test]
    fn swap_out_and_major_fault_round_trip() {
        let mut sys = small_sys();
        let pid = sys.add_process(16, PageSize::Base);
        sys.access(pid, Vpn(3), true);
        assert_eq!(sys.process(pid).resident_frames, 1);
        let freed = sys.swap_out(pid, Vpn(3)).unwrap();
        assert_eq!(freed, 1);
        assert_eq!(sys.process(pid).resident_frames, 0);
        assert!(!sys.process(pid).space.entry(Vpn(3)).present());
        assert!(sys
            .process(pid)
            .space
            .entry(Vpn(3))
            .flags
            .has(PageFlags::SWAPPED));
        assert_eq!(sys.stats.swapped_out_pages, 1);
        // Next access is a major fault, slower than a demand fault.
        let demand_latency = {
            let mut s2 = small_sys();
            let p2 = s2.add_process(4, PageSize::Base);
            s2.access(p2, Vpn(0), false).latency
        };
        let r = sys.access(pid, Vpn(3), false);
        assert!(r.demand_fault);
        assert_eq!(sys.stats.swap_in_faults, 1);
        assert!(r.latency > demand_latency);
        assert!(sys.process(pid).space.entry(Vpn(3)).present());
        assert!(!sys
            .process(pid)
            .space
            .entry(Vpn(3))
            .flags
            .has(PageFlags::SWAPPED));
    }

    #[test]
    fn swap_out_unmapped_fails() {
        let mut sys = small_sys();
        let pid = sys.add_process(4, PageSize::Base);
        assert_eq!(sys.swap_out(pid, Vpn(0)), Err(MigrateError::NotPresent));
    }

    #[test]
    fn memory_limit_accounting() {
        let mut sys = small_sys();
        let pid = sys.add_process(64, PageSize::Base);
        sys.set_memory_limit(pid, Some(10));
        for i in 0..20 {
            sys.access(pid, Vpn(i), false);
        }
        assert_eq!(sys.over_limit_frames(pid), 10);
        for i in 0..10 {
            sys.swap_out(pid, Vpn(i)).unwrap();
        }
        assert_eq!(sys.over_limit_frames(pid), 0);
        sys.set_memory_limit(pid, None);
        assert_eq!(sys.over_limit_frames(pid), 0);
    }

    #[test]
    fn huge_swap_moves_whole_block() {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(2048, 2048));
        let pid = sys.add_process(1024, PageSize::Huge2M);
        sys.access(pid, Vpn(100), false);
        assert_eq!(sys.process(pid).resident_frames, 512);
        let freed = sys.swap_out(pid, Vpn(100)).unwrap();
        assert_eq!(freed, 512);
        assert_eq!(sys.stats.swapped_out_pages, 512);
        let r = sys.access(pid, Vpn(100), false);
        assert!(r.demand_fault);
        assert_eq!(sys.stats.swap_in_faults, 1);
        assert_eq!(sys.process(pid).resident_frames, 512);
    }

    fn huge_sys() -> (TieredSystem, ProcessId) {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(2048, 2048));
        let pid = sys.add_process(1024, PageSize::Huge2M);
        sys.access(pid, Vpn(700), false);
        (sys, pid)
    }

    #[test]
    fn begin_migrate_leaves_old_copy_mapped_until_completion() {
        let mut sys = small_sys();
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        let fast_free = sys.free_frames(TierId::FAST);
        let moved = sys
            .begin_migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async)
            .unwrap();
        assert_eq!(moved, 1);
        // In flight: reservation holds a fast frame, the PTE still points at
        // the slow copy, and reads keep hitting it without aborting.
        assert_eq!(sys.free_frames(TierId::FAST), fast_free - 1);
        assert_eq!(sys.migration_reserved_frames(TierId::FAST), 1);
        assert_eq!(sys.migration_in_flight_count(), 1);
        let e = sys.process(pid).space.entry(Vpn(100));
        assert_eq!(e.tier(), TierId::SLOW);
        assert!(e.flags.has(PageFlags::MIGRATING));
        let r = sys.access(pid, Vpn(100), false);
        assert_eq!(r.tier, TierId::SLOW);
        assert_eq!(sys.stats.promoted_pages, 0);
        // Completion is clock-driven.
        assert_eq!(sys.complete_due_migrations(), 0);
        sys.clock.advance(Nanos::from_millis(1));
        assert_eq!(sys.complete_due_migrations(), 1);
        let e = sys.process(pid).space.entry(Vpn(100));
        assert_eq!(e.tier(), TierId::FAST);
        assert!(!e.flags.has(PageFlags::MIGRATING));
        assert_eq!(sys.stats.promoted_pages, 1);
        assert_eq!(sys.stats.begun_migrations, 1);
        assert_eq!(sys.stats.completed_migrations, 1);
        assert_eq!(sys.migration_in_flight_count(), 0);
        assert_eq!(sys.migration_reserved_frames(TierId::FAST), 0);
    }

    #[test]
    fn write_aborts_in_flight_migration_and_redirties() {
        let mut sys = small_sys();
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        let fast_free = sys.free_frames(TierId::FAST);
        sys.begin_migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async)
            .unwrap();
        sys.access(pid, Vpn(100), true);
        assert_eq!(sys.stats.aborted_migrations, 1);
        assert_eq!(sys.migration_in_flight_count(), 0);
        // The reservation was released and the page stays slow, dirty.
        assert_eq!(sys.free_frames(TierId::FAST), fast_free);
        let e = sys.process(pid).space.entry(Vpn(100));
        assert_eq!(e.tier(), TierId::SLOW);
        assert!(!e.flags.has(PageFlags::MIGRATING));
        assert!(e.flags.has(PageFlags::DIRTY));
        // Nothing left to complete.
        sys.clock.advance(Nanos::from_millis(1));
        assert_eq!(sys.complete_due_migrations(), 0);
        assert_eq!(sys.stats.promoted_pages, 0);
        assert_eq!(
            sys.stats.begun_migrations,
            sys.stats.completed_migrations + sys.stats.aborted_migrations
        );
    }

    #[test]
    fn backpressure_when_slots_exhausted() {
        let mut cfg = SystemConfig::dram_pmem(64, 192);
        cfg.migration.inflight_slots = 1;
        let mut sys = TieredSystem::new(cfg);
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        sys.begin_migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async)
            .unwrap();
        assert_eq!(
            sys.begin_migrate(pid, Vpn(101), TierId::FAST, MigrateMode::Async),
            Err(MigrateError::Backpressure)
        );
        assert_eq!(
            sys.stats.failed_fast_migrations[MigrateError::Backpressure.index()],
            1
        );
        // Draining the table restores admission.
        sys.clock.advance(Nanos::from_millis(1));
        sys.complete_due_migrations();
        assert!(sys
            .begin_migrate(pid, Vpn(101), TierId::FAST, MigrateMode::Async)
            .is_ok());
    }

    #[test]
    fn backpressure_when_backlog_cap_exhausted() {
        let mut cfg = SystemConfig::dram_pmem(64, 192);
        cfg.migration.backlog_cap = Nanos::from_micros(4);
        let mut sys = TieredSystem::new(cfg);
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        // Each async copy queues ~3 µs on the fast channel; the second one
        // exceeds the 4 µs cap.
        sys.begin_migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async)
            .unwrap();
        sys.begin_migrate(pid, Vpn(101), TierId::FAST, MigrateMode::Async)
            .unwrap();
        assert_eq!(
            sys.begin_migrate(pid, Vpn(102), TierId::FAST, MigrateMode::Async),
            Err(MigrateError::Backpressure)
        );
        assert!(sys.migration_backlog() > Nanos::from_micros(4));
    }

    #[test]
    fn duplicate_begin_on_in_flight_unit_backpressures() {
        let mut sys = small_sys();
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        sys.begin_migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async)
            .unwrap();
        assert_eq!(
            sys.begin_migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async),
            Err(MigrateError::Backpressure)
        );
        // The in-flight page also refuses the compat (instant) path.
        assert_eq!(
            sys.migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async),
            Err(MigrateError::Backpressure)
        );
    }

    #[test]
    fn sync_begin_charges_waiter_and_completes_on_next_pump() {
        let mut sys = small_sys();
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        let before = sys.process(pid).vtime;
        sys.begin_migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Sync(pid))
            .unwrap();
        assert!(sys.process(pid).vtime > before);
        // The waiter already paid: the copy is due immediately, even with
        // the clock unmoved.
        assert_eq!(sys.complete_due_migrations(), 1);
        assert_eq!(sys.process(pid).space.entry(Vpn(100)).tier(), TierId::FAST);
    }

    #[test]
    fn huge_write_abort_releases_all_512_reserved_frames() {
        let (mut sys, pid) = huge_sys();
        assert_eq!(sys.free_frames(TierId::SLOW), 2048);
        let moved = sys
            .begin_migrate(pid, Vpn(700), TierId::SLOW, MigrateMode::Async)
            .unwrap();
        assert_eq!(moved, 512);
        assert_eq!(sys.migration_reserved_frames(TierId::SLOW), 512);
        assert_eq!(sys.free_frames(TierId::SLOW), 2048 - 512);
        // A store to any page of the block kills the whole transaction.
        sys.access(pid, Vpn(701), true);
        assert_eq!(sys.stats.aborted_migrations, 1);
        assert_eq!(sys.migration_reserved_frames(TierId::SLOW), 0);
        assert_eq!(sys.free_frames(TierId::SLOW), 2048);
        assert_eq!(sys.stats.demoted_pages, 0);
        let e = sys.process(pid).space.entry(Vpn(700).huge_head());
        assert!(!e.flags.has(PageFlags::MIGRATING));
        assert_eq!(e.tier(), TierId::FAST);
    }

    #[test]
    fn split_during_in_flight_huge_migration_aborts() {
        let (mut sys, pid) = huge_sys();
        sys.begin_migrate(pid, Vpn(700), TierId::SLOW, MigrateMode::Async)
            .unwrap();
        sys.split_block(pid, Vpn(700));
        assert_eq!(sys.stats.aborted_migrations, 1);
        assert_eq!(sys.migration_reserved_frames(TierId::SLOW), 0);
        assert_eq!(sys.migration_in_flight_count(), 0);
        let head = Vpn(700).huge_head();
        let e = sys.process(pid).space.entry(head);
        assert!(!e.flags.has(PageFlags::MIGRATING));
        assert!(e.flags.has(PageFlags::HUGE_SPLIT));
        // Late pump finds nothing; the block stays fast, now as base pages.
        sys.clock.advance(Nanos::from_millis(10));
        assert_eq!(sys.complete_due_migrations(), 0);
        assert_eq!(sys.stats.demoted_pages, 0);
    }

    #[test]
    fn swap_out_aborts_in_flight_migration() {
        let mut sys = small_sys();
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        let fast_free = sys.free_frames(TierId::FAST);
        sys.begin_migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async)
            .unwrap();
        sys.swap_out(pid, Vpn(100)).unwrap();
        assert_eq!(sys.stats.aborted_migrations, 1);
        assert_eq!(sys.free_frames(TierId::FAST), fast_free);
        assert!(!sys.process(pid).space.entry(Vpn(100)).present());
    }

    #[test]
    fn failed_victim_demotions_are_counted_not_swallowed() {
        // 64 fast + 8 slow: demand paging fills both tiers completely
        // (56 fast, 8 slow, then the last 8 fast), so every reclaim victim
        // demotion hits a full slow tier.
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(64, 8));
        let pid = sys.add_process(72, PageSize::Base);
        for i in 0..72 {
            sys.access(pid, Vpn(i), false);
        }
        assert_eq!(sys.free_frames(TierId::FAST), 0);
        assert_eq!(sys.free_frames(TierId::SLOW), 0);
        let r = sys.promote_with_reclaim(pid, Vpn(60), MigrateMode::Async);
        assert_eq!(r, Err(MigrateError::NoSpace));
        // The attempt budget is 4 × unit; every victim demotion failed with
        // NoSpace and was counted instead of silently dropped.
        assert_eq!(sys.stats.failed_demotions, 4);
        assert!(sys.stats.failed_promotions > 0);
    }

    #[test]
    fn failed_fast_migrations_table_covers_every_reason() {
        let mut sys = small_sys();
        let pid = sys.add_process(128, PageSize::Base);
        sys.access(pid, Vpn(0), false);
        // NotPresent.
        assert!(sys
            .migrate(pid, Vpn(5), TierId::FAST, MigrateMode::Async)
            .is_err());
        // SameTier (page 0 landed fast).
        assert!(sys
            .migrate(pid, Vpn(0), TierId::FAST, MigrateMode::Async)
            .is_err());
        assert_eq!(
            sys.stats.failed_fast_migrations[MigrateError::NotPresent.index()],
            1
        );
        assert_eq!(
            sys.stats.failed_fast_migrations[MigrateError::SameTier.index()],
            1
        );
        // Demotion failures stay out of the fast-tier table.
        assert!(sys
            .migrate(pid, Vpn(5), TierId::SLOW, MigrateMode::Async)
            .is_err());
        assert_eq!(
            sys.stats.failed_fast_migrations[MigrateError::NotPresent.index()],
            1
        );
        // NoSpace keeps feeding the historical counter too.
        let mut full = TieredSystem::new(SystemConfig::dram_pmem(8, 600));
        let p2 = full.add_process(512, PageSize::Base);
        for i in 0..512 {
            full.access(p2, Vpn(i), false);
        }
        while full.free_frames(TierId::FAST) > 0 {
            let v = 512 - 1 - full.free_frames(TierId::FAST);
            let _ = full.migrate(p2, Vpn(v), TierId::FAST, MigrateMode::Async);
        }
        let before = full.stats.failed_promotions;
        assert_eq!(
            full.migrate(p2, Vpn(500), TierId::FAST, MigrateMode::Async),
            Err(MigrateError::NoSpace)
        );
        assert_eq!(full.stats.failed_promotions, before + 1);
        assert_eq!(
            full.stats.failed_fast_migrations[MigrateError::NoSpace.index()],
            full.stats.failed_promotions
        );
    }

    #[test]
    fn compat_migrate_preserves_flow_conservation() {
        let mut sys = small_sys();
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        sys.migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async)
            .unwrap();
        sys.begin_migrate(pid, Vpn(101), TierId::FAST, MigrateMode::Async)
            .unwrap();
        sys.access(pid, Vpn(101), true); // abort
        sys.begin_migrate(pid, Vpn(102), TierId::FAST, MigrateMode::Async)
            .unwrap();
        assert_eq!(sys.stats.begun_migrations, 3);
        assert_eq!(
            sys.stats.begun_migrations,
            sys.stats.completed_migrations
                + sys.stats.aborted_migrations
                + sys.migration_in_flight_count() as u64
        );
    }

    /// Every `MigrateError` variant, in `index()` order. The exhaustive
    /// match inside `migrate_error_reasons_table_is_exhaustive` forces a
    /// compile error here whenever a variant is added without updating
    /// `COUNT`/`REASONS` (the `[&str; COUNT]` type already pins the array
    /// length at compile time).
    const ALL_ERRORS: [MigrateError; MigrateError::COUNT] = [
        MigrateError::NotPresent,
        MigrateError::SameTier,
        MigrateError::NoSpace,
        MigrateError::Backpressure,
        MigrateError::CopyFault,
        MigrateError::Poisoned,
        MigrateError::NonAdjacent,
        MigrateError::TierOffline,
    ];

    #[test]
    fn migrate_error_reasons_table_is_exhaustive() {
        for (i, e) in ALL_ERRORS.iter().enumerate() {
            assert_eq!(e.index(), i, "{:?} out of index order", e);
            let expect = match e {
                MigrateError::NotPresent => "not_present",
                MigrateError::SameTier => "same_tier",
                MigrateError::NoSpace => "no_space",
                MigrateError::Backpressure => "backpressure",
                MigrateError::CopyFault => "copy_fault",
                MigrateError::Poisoned => "poisoned",
                MigrateError::NonAdjacent => "non_adjacent",
                MigrateError::TierOffline => "tier_offline",
            };
            assert_eq!(MigrateError::REASONS[i], expect);
        }
    }

    /// Drives every `MigrateError` variant through the promotion path and
    /// checks each lands in its own `failed_fast_migrations` cell.
    #[test]
    fn every_migrate_error_reaches_its_failure_cell() {
        // NotPresent / SameTier on a plain system.
        let mut sys = small_sys();
        let pid = sys.add_process(128, PageSize::Base);
        sys.access(pid, Vpn(0), false);
        let _ = sys.migrate(pid, Vpn(5), TierId::FAST, MigrateMode::Async);
        let _ = sys.migrate(pid, Vpn(0), TierId::FAST, MigrateMode::Async);
        // Backpressure via a second begin on the same in-flight unit.
        for i in 1..128 {
            sys.access(pid, Vpn(i), false);
        }
        sys.begin_migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async)
            .unwrap();
        let _ = sys.begin_migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async);
        let t = &sys.stats.failed_fast_migrations;
        assert_eq!(t[MigrateError::NotPresent.index()], 1);
        assert_eq!(t[MigrateError::SameTier.index()], 1);
        assert_eq!(t[MigrateError::Backpressure.index()], 1);

        // NoSpace on a full fast tier.
        let mut full = TieredSystem::new(SystemConfig::dram_pmem(8, 600));
        let p2 = full.add_process(512, PageSize::Base);
        for i in 0..512 {
            full.access(p2, Vpn(i), false);
        }
        while full.free_frames(TierId::FAST) > 0 {
            let v = 512 - 1 - full.free_frames(TierId::FAST);
            let _ = full.migrate(p2, Vpn(v), TierId::FAST, MigrateMode::Async);
        }
        assert_eq!(
            full.migrate(p2, Vpn(500), TierId::FAST, MigrateMode::Async),
            Err(MigrateError::NoSpace)
        );
        assert_eq!(
            full.stats.failed_fast_migrations[MigrateError::NoSpace.index()],
            full.stats.failed_promotions
        );

        // CopyFault / Poisoned via deterministic fault plans.
        for (err, plan) in [
            (MigrateError::CopyFault, {
                let mut p = FaultPlan::inert(1);
                p.copy_transient = 1.0;
                p
            }),
            (MigrateError::Poisoned, {
                let mut p = FaultPlan::inert(1);
                p.copy_poison = 1.0;
                p
            }),
        ] {
            let mut cfg = SystemConfig::dram_pmem(64, 192);
            cfg.fault_plan = Some(plan);
            let mut fsys = TieredSystem::new(cfg);
            let fp = fsys.add_process(128, PageSize::Base);
            for i in 0..128 {
                fsys.access(fp, Vpn(i), false);
            }
            assert_eq!(
                fsys.migrate(fp, Vpn(100), TierId::FAST, MigrateMode::Async),
                Err(err)
            );
            assert_eq!(fsys.stats.failed_fast_migrations[err.index()], 1);
        }

        // NonAdjacent: a two-hop move on a three-tier chain.
        let mut tri = TieredSystem::new(SystemConfig::three_tier(16, 512, 512));
        let p3 = tri.add_process(256, PageSize::Base);
        for i in 0..256 {
            tri.access(p3, Vpn(i), false);
        }
        // Allocation spilled past the tiny fast tier into the middle tier;
        // push one page down to the bottom, then ask for the illegal 2→0 hop.
        let mid_page = (0..256)
            .map(Vpn)
            .find(|&v| tri.process(p3).space.entry(v).tier() == TierId(1))
            .expect("some page landed in the middle tier");
        tri.migrate(p3, mid_page, TierId(2), MigrateMode::Async)
            .unwrap();
        assert_eq!(
            tri.migrate(p3, mid_page, TierId::FAST, MigrateMode::Async),
            Err(MigrateError::NonAdjacent)
        );
        assert_eq!(
            tri.stats.failed_fast_migrations[MigrateError::NonAdjacent.index()],
            1
        );

        // TierOffline: aim a demotion at a tier that has gone offline. The
        // per-reason table only counts promotions, and tier 0 can never go
        // offline, so this variant is checked on the error return alone.
        tri.apply_tier_event(TierEvent {
            at: Nanos(0),
            tier: TierId(2),
            kind: TierEventKind::Offline { deadline: Nanos(0) },
        });
        let still_mid = (0..256)
            .map(Vpn)
            .find(|&v| tri.process(p3).space.entry(v).tier() == TierId(1))
            .expect("a page still sits in the middle tier");
        assert_eq!(
            tri.migrate(p3, still_mid, TierId(2), MigrateMode::Async),
            Err(MigrateError::TierOffline)
        );
    }

    #[test]
    fn transient_copy_fault_releases_reservation_and_reports() {
        let mut cfg = SystemConfig::dram_pmem(64, 192);
        let mut plan = FaultPlan::inert(3);
        plan.copy_transient = 1.0;
        cfg.fault_plan = Some(plan);
        let mut sys = TieredSystem::new(cfg);
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        let fast_free = sys.free_frames(TierId::FAST);
        sys.begin_migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async)
            .unwrap();
        sys.clock.advance(Nanos::from_millis(1));
        // The copy comes due but the roll fails it: nothing completed.
        assert_eq!(sys.complete_due_migrations(), 0);
        assert_eq!(sys.stats.transient_copy_faults, 1);
        assert_eq!(sys.free_frames(TierId::FAST), fast_free);
        let e = sys.process(pid).space.entry(Vpn(100));
        assert_eq!(e.tier(), TierId::SLOW);
        assert!(!e.flags.has(PageFlags::MIGRATING));
        let failures = sys.take_migration_failures();
        assert_eq!(
            failures,
            vec![MigrationFailure {
                pid,
                head: Vpn(100),
                unit: 1,
                from: TierId::SLOW,
                to: TierId::FAST,
                reason: MigrateError::CopyFault,
            }]
        );
        assert!(
            sys.take_migration_failures().is_empty(),
            "drain is one-shot"
        );
        // A retry of the same migration is valid and (with the dice removed)
        // would succeed: admission accepts it again.
        assert!(sys
            .begin_migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async)
            .is_ok());
    }

    #[test]
    fn poison_copy_fault_quarantines_one_destination_frame() {
        let mut cfg = SystemConfig::dram_pmem(64, 192);
        let mut plan = FaultPlan::inert(4);
        plan.copy_poison = 1.0;
        cfg.fault_plan = Some(plan);
        let mut sys = TieredSystem::new(cfg);
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        let fast_free = sys.free_frames(TierId::FAST);
        sys.begin_migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async)
            .unwrap();
        sys.clock.advance(Nanos::from_millis(1));
        assert_eq!(sys.complete_due_migrations(), 0);
        assert_eq!(sys.stats.poisoned_copy_faults, 1);
        assert_eq!(sys.stats.quarantined_frames, 1);
        assert_eq!(sys.quarantined_frames(TierId::FAST), 1);
        // One frame went bad: the free pool is one short of where it was.
        assert_eq!(sys.free_frames(TierId::FAST), fast_free - 1);
        assert_eq!(sys.total_frames(TierId::FAST), 63);
        // The source mapping survived.
        assert_eq!(sys.process(pid).space.entry(Vpn(100)).tier(), TierId::SLOW);
    }

    #[test]
    fn poison_frame_soft_offlines_resident_page() {
        let mut sys = small_sys();
        let pid = sys.add_process(16, PageSize::Base);
        sys.access(pid, Vpn(3), false);
        let e = sys.process(pid).space.entry(Vpn(3));
        assert_eq!(e.tier(), TierId::FAST);
        let bad = e.pfn;
        assert!(sys.poison_frame(TierId::FAST, bad));
        // Soft-offline ran inline: the page moved to the slow tier, the bad
        // frame is quarantined, and the POISONED flag cleared with the move.
        let e = sys.process(pid).space.entry(Vpn(3));
        assert_eq!(e.tier(), TierId::SLOW);
        assert!(!e.flags.has(PageFlags::POISONED));
        assert!(sys.frame_is_quarantined(TierId::FAST, bad));
        assert_eq!(sys.stats.quarantined_frames, 1);
        assert_eq!(sys.total_frames(TierId::FAST), 63);
        // Poisoning the same frame again is a no-op.
        assert!(!sys.poison_frame(TierId::FAST, bad));
        assert_eq!(sys.stats.quarantined_frames, 1);
    }

    #[test]
    fn poison_mid_tier_frame_rehomes_to_nearest_healthy_neighbor() {
        // Three-tier chain with room everywhere: demote a few pages into
        // the CXL mid tier, then poison one of their frames. Soft-offline
        // must pick the nearest *healthy* neighbor — slower side on a
        // healthy chain, the fast tier once the slower side is gone.
        let mut sys = TieredSystem::new(SystemConfig::three_tier(64, 128, 64));
        let pid = sys.add_process(40, PageSize::Base);
        for i in 0..40 {
            sys.access(pid, Vpn(i), false);
        }
        for i in 0..8 {
            sys.migrate(pid, Vpn(i), TierId(1), MigrateMode::Async)
                .unwrap();
        }
        let bad = sys.process(pid).space.entry(Vpn(3)).pfn;
        assert!(sys.poison_frame(TierId(1), bad));
        // Healthy chain: the mid tier's soft-offline destination is one
        // hop down (slower side preferred), never two hops to the top.
        let e = sys.process(pid).space.entry(Vpn(3));
        assert_eq!(e.tier(), TierId(2));
        assert!(!e.flags.has(PageFlags::POISONED));
        assert!(sys.frame_is_quarantined(TierId(1), bad));

        // Take the bottom tier offline (zero-deadline forced drain pushes
        // its one page back to the mid tier and splices the chain): the
        // slower neighbor no longer accepts pages, so the next mid-tier
        // poison must rehome *up* to the fast tier instead.
        sys.apply_tier_event(TierEvent {
            at: Nanos(0),
            tier: TierId(2),
            kind: TierEventKind::Offline { deadline: Nanos(0) },
        });
        assert_eq!(sys.tier_health(TierId(2)), TierHealth::Offline);
        let bad = sys.process(pid).space.entry(Vpn(5)).pfn;
        assert_eq!(sys.process(pid).space.entry(Vpn(5)).tier(), TierId(1));
        assert!(sys.poison_frame(TierId(1), bad));
        let e = sys.process(pid).space.entry(Vpn(5));
        assert_eq!(e.tier(), TierId::FAST);
        assert!(!e.flags.has(PageFlags::POISONED));
        assert!(sys.frame_is_quarantined(TierId(1), bad));
    }

    #[test]
    fn poison_free_frame_quarantines_directly() {
        let mut sys = small_sys();
        let pid = sys.add_process(4, PageSize::Base);
        sys.access(pid, Vpn(0), false);
        let pfn = sys.process(pid).space.entry(Vpn(0)).pfn;
        sys.swap_out(pid, Vpn(0)).unwrap();
        assert!(sys.poison_frame(TierId::FAST, pfn));
        assert!(sys.frame_is_quarantined(TierId::FAST, pfn));
        assert_eq!(sys.stats.quarantined_frames, 1);
    }

    #[test]
    fn poison_reserved_copy_destination_aborts_and_quarantines() {
        let mut sys = small_sys();
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        sys.begin_migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async)
            .unwrap();
        let dest = sys
            .in_flight_migrations()
            .next()
            .expect("one txn in flight")
            .dest_pfns[0];
        assert!(sys.poison_frame(TierId::FAST, dest));
        assert_eq!(sys.stats.aborted_migrations, 1);
        assert_eq!(sys.migration_in_flight_count(), 0);
        assert!(sys.frame_is_quarantined(TierId::FAST, dest));
        // The source page survived untouched in the slow tier.
        let e = sys.process(pid).space.entry(Vpn(100));
        assert_eq!(e.tier(), TierId::SLOW);
        assert!(!e.flags.has(PageFlags::MIGRATING));
    }

    #[test]
    fn poison_huge_mapped_frame_splits_before_poisoning() {
        let (mut sys, pid) = huge_sys();
        let head = Vpn(700).huge_head();
        let bad = sys.process(pid).space.entry(Vpn(703)).pfn;
        assert!(sys.poison_frame(TierId::FAST, bad));
        // The block was split so the poison stays on one base page; that
        // page soft-offlined to the slow tier.
        assert!(!sys.process(pid).space.is_huge_mapped(head));
        let e = sys.process(pid).space.entry(Vpn(703));
        assert_eq!(e.tier(), TierId::SLOW);
        assert!(!e.flags.has(PageFlags::POISONED));
        assert!(sys.frame_is_quarantined(TierId::FAST, bad));
        // Its neighbours stayed fast.
        assert_eq!(sys.process(pid).space.entry(Vpn(702)).tier(), TierId::FAST);
    }

    #[test]
    fn swap_out_quarantines_poisoned_frame() {
        // Fill the slow tier so soft-offline migration fails and the
        // POISONED flag stays set, then reclaim the page.
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(64, 8));
        let pid = sys.add_process(72, PageSize::Base);
        for i in 0..72 {
            sys.access(pid, Vpn(i), false);
        }
        assert_eq!(sys.free_frames(TierId::SLOW), 0);
        // Vpn(0) landed fast; its soft-offline has nowhere to go.
        let bad = sys.process(pid).space.entry(Vpn(0)).pfn;
        assert!(sys.poison_frame(TierId::FAST, bad));
        let e = sys.process(pid).space.entry(Vpn(0));
        assert!(e.flags.has(PageFlags::POISONED), "soft-offline had no room");
        assert_eq!(sys.stats.quarantined_frames, 0);
        sys.swap_out(pid, Vpn(0)).unwrap();
        assert!(sys.frame_is_quarantined(TierId::FAST, bad));
        assert_eq!(sys.stats.quarantined_frames, 1);
        let e = sys.process(pid).space.entry(Vpn(0));
        assert!(!e.flags.has(PageFlags::POISONED));
        assert!(e.flags.has(PageFlags::SWAPPED));
    }

    #[test]
    fn shrink_fast_offlines_and_rescales_watermarks() {
        let mut sys = small_sys();
        let pid = sys.add_process(32, PageSize::Base);
        for i in 0..32 {
            sys.access(pid, Vpn(i), false);
        }
        assert_eq!(sys.total_frames(TierId::FAST), 64);
        let wm_before = sys.watermarks;
        let got = sys.shrink_fast(16);
        assert_eq!(got, 16);
        assert_eq!(sys.total_frames(TierId::FAST), 48);
        assert_eq!(sys.offlined_frames(TierId::FAST), 16);
        assert_eq!(sys.stats.offlined_frames, 16);
        assert_eq!(sys.shrink_debt(), 0);
        assert!(sys.watermarks.well_ordered());
        assert!(sys.watermarks.pro <= (48u32 / 4).max(sys.watermarks.high));
        let _ = wm_before;
        // Grow restores them and the usable size returns.
        assert_eq!(sys.grow_fast(16), 16);
        assert_eq!(sys.total_frames(TierId::FAST), 64);
        assert_eq!(sys.stats.restored_frames, 16);
    }

    #[test]
    fn shrink_debt_is_retired_as_frames_free_up() {
        let mut sys = small_sys();
        let pid = sys.add_process(64, PageSize::Base);
        for i in 0..64 {
            sys.access(pid, Vpn(i), false);
        }
        // 56 fast frames used, 8 free; ask for more than the free pool.
        let got = sys.shrink_fast(20);
        assert_eq!(got, 8);
        assert_eq!(sys.shrink_debt(), 12);
        assert_eq!(sys.total_frames(TierId::FAST), 56);
        // Demote pages; the pump retires debt from the freed frames.
        for i in 0..12 {
            sys.migrate(pid, Vpn(i), TierId::SLOW, MigrateMode::Async)
                .unwrap();
        }
        sys.complete_due_migrations();
        assert_eq!(sys.shrink_debt(), 0);
        assert_eq!(sys.offlined_frames(TierId::FAST), 20);
        assert_eq!(sys.total_frames(TierId::FAST), 44);
        assert_eq!(sys.stats.offlined_frames, 20);
        // Grow first cancels debt, then restores offlined frames.
        assert_eq!(sys.grow_fast(20), 20);
        assert_eq!(sys.total_frames(TierId::FAST), 64);
    }

    #[test]
    fn planned_capacity_event_fires_at_its_time() {
        let mut cfg = SystemConfig::dram_pmem(64, 192);
        let mut plan = FaultPlan::inert(5);
        plan.capacity_events = vec![crate::fault::CapacityEvent {
            at: Nanos::from_millis(10),
            kind: CapacityKind::ShrinkFastFraction(0.25),
        }];
        cfg.fault_plan = Some(plan);
        let mut sys = TieredSystem::new(cfg);
        let pid = sys.add_process(16, PageSize::Base);
        for i in 0..16 {
            sys.access(pid, Vpn(i), false);
        }
        sys.clock.advance(Nanos::from_millis(5));
        sys.complete_due_migrations();
        assert_eq!(sys.total_frames(TierId::FAST), 64, "not due yet");
        sys.clock.advance(Nanos::from_millis(6));
        sys.complete_due_migrations();
        assert_eq!(sys.total_frames(TierId::FAST), 48, "25% shrink fired");
    }

    #[test]
    fn degrade_window_stretches_copy_backlog() {
        let healthy = {
            let mut sys = small_sys();
            let pid = sys.add_process(128, PageSize::Base);
            for i in 0..128 {
                sys.access(pid, Vpn(i), false);
            }
            sys.begin_migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async)
                .unwrap();
            sys.migration_backlog()
        };
        let mut sys = small_sys();
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        sys.degrade_channel(DegradeWindow {
            tier: TierId::FAST,
            from: Nanos::ZERO,
            until: Nanos::from_secs(1),
            cost_multiplier: 4.0,
        });
        sys.begin_migrate(pid, Vpn(100), TierId::FAST, MigrateMode::Async)
            .unwrap();
        let degraded = sys.migration_backlog();
        assert!(
            degraded > healthy,
            "degraded backlog {:?} should exceed healthy {:?}",
            degraded,
            healthy
        );
    }

    #[test]
    fn fault_free_run_draws_nothing_and_changes_nothing() {
        // The same access pattern with and without an inert fault plan must
        // be byte-identical in stats: the plan only matters when armed.
        let run = |plan: Option<FaultPlan>| {
            let mut cfg = SystemConfig::dram_pmem(64, 192);
            cfg.fault_plan = plan;
            let mut sys = TieredSystem::new(cfg);
            let pid = sys.add_process(128, PageSize::Base);
            for i in 0..128 {
                sys.access(pid, Vpn(i), false);
            }
            for i in 64..80 {
                let _ = sys.migrate(pid, Vpn(i), TierId::FAST, MigrateMode::Async);
            }
            sys.clock.advance(Nanos::from_millis(2));
            sys.complete_due_migrations();
            (
                sys.stats.promoted_pages,
                sys.stats.completed_migrations,
                sys.stats.transient_copy_faults,
                sys.free_frames(TierId::FAST),
            )
        };
        assert_eq!(run(None), run(Some(FaultPlan::inert(99))));
    }

    #[test]
    fn stats_track_tier_split() {
        let mut sys = small_sys();
        let pid = sys.add_process(128, PageSize::Base);
        for i in 0..128 {
            sys.access(pid, Vpn(i), false);
        }
        // 56 fast + 72 slow demand accesses.
        assert_eq!(sys.stats.reads[TierId::FAST.index()], 56);
        assert_eq!(sys.stats.reads[TierId::SLOW.index()], 72);
        let fmar = sys.stats.fmar();
        assert!((fmar - 56.0 / 128.0).abs() < 1e-12);
    }
}
