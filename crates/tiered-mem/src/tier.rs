//! Memory tiers and their performance characteristics.

use sim_clock::Nanos;

use crate::addr::BASE_PAGE_BYTES;

/// The two memory tiers of the fast-slow architecture studied by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TierId {
    /// DRAM: low latency, small capacity.
    Fast,
    /// NVM / CXL memory: higher latency (with write asymmetry for Optane-like
    /// devices), large capacity, exposed as a CPU-less NUMA node.
    Slow,
}

impl TierId {
    /// The other tier.
    pub fn other(self) -> TierId {
        match self {
            TierId::Fast => TierId::Slow,
            TierId::Slow => TierId::Fast,
        }
    }

    /// Dense index for per-tier arrays.
    pub fn index(self) -> usize {
        match self {
            TierId::Fast => 0,
            TierId::Slow => 1,
        }
    }

    /// Both tiers, fast first.
    pub const ALL: [TierId; 2] = [TierId::Fast, TierId::Slow];
}

/// Performance and capacity specification of one tier.
///
/// Defaults model the paper's testbed: DDR4 DRAM (~80 ns loads) and Intel
/// Optane PMem in a CPU-less NUMA node (~200 ns loads, markedly slower
/// stores — the asymmetry behind Chrono's larger wins on write-heavy
/// workloads in Fig 6).
#[derive(Debug, Clone)]
pub struct TierSpec {
    /// Capacity in base-page frames.
    pub frames: u32,
    /// Unloaded latency of a load served by this tier.
    pub read_latency: Nanos,
    /// Unloaded latency of a store served by this tier.
    pub write_latency: Nanos,
    /// Sustained bandwidth available for page migration, bytes/second.
    pub migration_bandwidth: u64,
    /// Random-access service capacity in operations/second; beyond ~70 %
    /// utilization, queueing inflates latency (Optane's on-DIMM buffering
    /// collapses under random traffic — the saturation behaviour
    /// characterized by Xiang et al. [82] that the paper's workloads hit).
    pub access_capacity_ops: u64,
    /// Device occupancy of a store relative to a load (Optane writes consume
    /// ~2.5× the device time of reads).
    pub write_weight: f64,
}

impl TierSpec {
    /// DRAM-like tier with the given frame count.
    pub fn dram(frames: u32) -> TierSpec {
        TierSpec {
            frames,
            read_latency: Nanos(80),
            write_latency: Nanos(90),
            migration_bandwidth: 10 * 1024 * 1024 * 1024, // 10 GiB/s
            access_capacity_ops: 400_000_000,
            write_weight: 1.0,
        }
    }

    /// Optane-PMem-like tier with the given frame count.
    pub fn pmem(frames: u32) -> TierSpec {
        TierSpec {
            frames,
            read_latency: Nanos(250),
            write_latency: Nanos(450),
            migration_bandwidth: 4 * 1024 * 1024 * 1024, // 4 GiB/s
            access_capacity_ops: 20_000_000,
            write_weight: 2.5,
        }
    }

    /// CXL-attached-DRAM-like tier (symmetric, ~200 ns) with the given frames.
    pub fn cxl(frames: u32) -> TierSpec {
        TierSpec {
            frames,
            read_latency: Nanos(200),
            write_latency: Nanos(220),
            migration_bandwidth: 8 * 1024 * 1024 * 1024,
            access_capacity_ops: 120_000_000,
            write_weight: 1.2,
        }
    }

    /// Capacity in bytes.
    pub fn bytes(&self) -> u64 {
        self.frames as u64 * BASE_PAGE_BYTES
    }

    /// Time to copy `pages` base pages over this tier's migration bandwidth.
    pub fn transfer_time(&self, pages: u64) -> Nanos {
        let bytes = pages * BASE_PAGE_BYTES;
        Nanos(bytes.saturating_mul(1_000_000_000) / self.migration_bandwidth.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_flips() {
        assert_eq!(TierId::Fast.other(), TierId::Slow);
        assert_eq!(TierId::Slow.other(), TierId::Fast);
    }

    #[test]
    fn indices_are_dense() {
        assert_eq!(TierId::Fast.index(), 0);
        assert_eq!(TierId::Slow.index(), 1);
    }

    #[test]
    fn pmem_has_write_asymmetry() {
        let t = TierSpec::pmem(1024);
        assert!(t.write_latency > t.read_latency);
    }

    #[test]
    fn dram_is_faster_than_pmem() {
        let d = TierSpec::dram(1024);
        let p = TierSpec::pmem(1024);
        assert!(d.read_latency < p.read_latency);
        assert!(d.write_latency < p.write_latency);
    }

    #[test]
    fn transfer_time_scales_with_pages() {
        let t = TierSpec::dram(1024);
        let one = t.transfer_time(1);
        let many = t.transfer_time(512);
        let ratio = many.as_nanos() as f64 / one.as_nanos() as f64;
        assert!((ratio - 512.0).abs() / 512.0 < 0.01, "ratio was {}", ratio);
        // 4 KiB over 10 GiB/s ≈ 381 ns.
        assert!(one.as_nanos() > 300 && one.as_nanos() < 500, "{:?}", one);
    }

    #[test]
    fn capacity_in_bytes() {
        assert_eq!(TierSpec::dram(256).bytes(), 256 * 4096);
    }
}
