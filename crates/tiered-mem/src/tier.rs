//! Memory tiers, their performance characteristics, and the tier chain.
//!
//! The substrate models an ordered *chain* of managed tiers — tier 0 is the
//! fastest (DRAM), higher indices are progressively slower/larger (CXL
//! memory, PMem) — with migration allowed only between adjacent tiers over
//! per-edge bandwidth channels ([`EdgeSpec`]). Swap remains the unmanaged
//! terminal backstop behind the last tier ([`TierChain::backstop`]): no
//! hotness tracking, just a place reclaimed pages go and major faults come
//! from. The classic two-tier DRAM+PMem shape of the paper's testbed is the
//! chain `[dram, pmem]`.

use sim_clock::Nanos;

use crate::addr::BASE_PAGE_BYTES;
use crate::config::SwapSpec;

/// Maximum number of managed tiers a chain may hold. Bounded by the 2-bit
/// tier-index encoding in [`crate::PageFlags`].
pub const MAX_TIERS: usize = 4;

/// Identifier of one managed tier: a dense index into the tier chain.
/// Tier 0 is the fastest; larger indices are slower.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TierId(pub u8);

impl TierId {
    /// The fastest tier (DRAM) — index 0.
    pub const FAST: TierId = TierId(0);
    /// The second tier — the "slow" tier of the classic two-tier shape.
    pub const SLOW: TierId = TierId(1);

    /// Dense index for per-tier arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the fastest (top) tier.
    #[inline]
    pub fn is_top(self) -> bool {
        self.0 == 0
    }

    /// The adjacent faster tier, or `None` at the top of the chain.
    #[inline]
    pub fn faster(self) -> Option<TierId> {
        self.0.checked_sub(1).map(TierId)
    }

    /// The adjacent slower tier (the caller must know the chain length).
    #[inline]
    pub fn slower(self) -> TierId {
        TierId(self.0 + 1)
    }
}

/// Health of one tier's failure domain. Driven by scheduled
/// [`crate::fault::TierEvent`]s (or the explicit
/// [`crate::TieredSystem::apply_tier_event`] API); the lifecycle is
/// `Online → Degrading → Evacuating → Offline → Rejoining → Online`, with
/// `Degrading` optional and `Rejoining` flipping back to `Online` on the
/// next migration-completion pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierHealth {
    /// Fully healthy: allocation, migration, and residency all allowed.
    Online,
    /// Device-level degradation until the given time: still a full chain
    /// member, but copies into the tier pay the degrade-window multiplier.
    Degrading {
        /// When the degradation window ends (exclusive).
        until: Nanos,
    },
    /// Being drained: no new residency, the emergency evacuation lane is
    /// pushing resident pages to the nearest healthy neighbor, and by
    /// `deadline` the tier force-drains and goes `Offline`.
    Evacuating {
        /// Absolute time by which the tier must be empty.
        deadline: Nanos,
    },
    /// Out of the chain: zero residency (oracle-enforced), frames offlined,
    /// and the chain spliced around the tier.
    Offline,
    /// Back from `Offline` but not yet re-admitted: frames are restored and
    /// the splice undone on the next migration-completion pass.
    Rejoining,
}

impl TierHealth {
    /// Whether the tier is a live chain member that may hold and accept
    /// pages (`Online` or `Degrading`).
    #[inline]
    pub fn accepts_pages(self) -> bool {
        matches!(self, TierHealth::Online | TierHealth::Degrading { .. })
    }

    /// Whether the tier has been spliced out of the chain (`Offline`, or
    /// still `Rejoining`). Evacuating tiers remain chain members so the
    /// drain can use their edges.
    #[inline]
    pub fn spliced_out(self) -> bool {
        matches!(self, TierHealth::Offline | TierHealth::Rejoining)
    }

    /// Compact code for trace digests and gauges (0 = Online so an
    /// all-healthy chain packs to 0 and fault-free digests are unchanged).
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            TierHealth::Online => 0,
            TierHealth::Degrading { .. } => 1,
            TierHealth::Evacuating { .. } => 2,
            TierHealth::Offline => 3,
            TierHealth::Rejoining => 4,
        }
    }

    /// Short human label for traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            TierHealth::Online => "online",
            TierHealth::Degrading { .. } => "degrading",
            TierHealth::Evacuating { .. } => "evacuating",
            TierHealth::Offline => "offline",
            TierHealth::Rejoining => "rejoining",
        }
    }
}

/// Performance and capacity specification of one tier.
///
/// Defaults model the paper's testbed: DDR4 DRAM (~80 ns loads) and Intel
/// Optane PMem in a CPU-less NUMA node (~200 ns loads, markedly slower
/// stores — the asymmetry behind Chrono's larger wins on write-heavy
/// workloads in Fig 6).
#[derive(Debug, Clone)]
pub struct TierSpec {
    /// Capacity in base-page frames.
    pub frames: u32,
    /// Unloaded latency of a load served by this tier.
    pub read_latency: Nanos,
    /// Unloaded latency of a store served by this tier.
    pub write_latency: Nanos,
    /// Sustained bandwidth available for page migration, bytes/second.
    pub migration_bandwidth: u64,
    /// Random-access service capacity in operations/second; beyond ~70 %
    /// utilization, queueing inflates latency (Optane's on-DIMM buffering
    /// collapses under random traffic — the saturation behaviour
    /// characterized by Xiang et al. [82] that the paper's workloads hit).
    pub access_capacity_ops: u64,
    /// Device occupancy of a store relative to a load (Optane writes consume
    /// ~2.5× the device time of reads).
    pub write_weight: f64,
}

impl TierSpec {
    /// DRAM-like tier with the given frame count.
    pub fn dram(frames: u32) -> TierSpec {
        TierSpec {
            frames,
            read_latency: Nanos(80),
            write_latency: Nanos(90),
            migration_bandwidth: 10 * 1024 * 1024 * 1024, // 10 GiB/s
            access_capacity_ops: 400_000_000,
            write_weight: 1.0,
        }
    }

    /// Optane-PMem-like tier with the given frame count.
    pub fn pmem(frames: u32) -> TierSpec {
        TierSpec {
            frames,
            read_latency: Nanos(250),
            write_latency: Nanos(450),
            migration_bandwidth: 4 * 1024 * 1024 * 1024, // 4 GiB/s
            access_capacity_ops: 20_000_000,
            write_weight: 2.5,
        }
    }

    /// CXL-attached-DRAM-like tier (symmetric, ~200 ns) with the given frames.
    pub fn cxl(frames: u32) -> TierSpec {
        TierSpec {
            frames,
            read_latency: Nanos(200),
            write_latency: Nanos(220),
            migration_bandwidth: 8 * 1024 * 1024 * 1024,
            access_capacity_ops: 120_000_000,
            write_weight: 1.2,
        }
    }

    /// Capacity in bytes.
    pub fn bytes(&self) -> u64 {
        self.frames as u64 * BASE_PAGE_BYTES
    }

    /// Time to copy `pages` base pages over this tier's migration bandwidth.
    pub fn transfer_time(&self, pages: u64) -> Nanos {
        let bytes = pages * BASE_PAGE_BYTES;
        Nanos(bytes.saturating_mul(1_000_000_000) / self.migration_bandwidth.max(1))
    }
}

/// Cost model of the copy channel between two adjacent tiers.
///
/// The default derived by [`EdgeSpec::between`] reproduces the historical
/// two-tier migration cost bit for bit: the copy runs at the *slower* of the
/// two endpoint bandwidths (`max` of the per-tier transfer times equals the
/// transfer time at the `min` bandwidth, since both are the same byte count
/// divided by each bandwidth), with no fixed edge latency and no write
/// asymmetry.
#[derive(Debug, Clone)]
pub struct EdgeSpec {
    /// Sustained copy bandwidth over this edge, bytes/second.
    pub bandwidth: u64,
    /// Fixed extra latency per migration over this edge (interconnect setup,
    /// e.g. a CXL switch hop). Zero on derived edges.
    pub extra_latency: Nanos,
    /// Multiplier on the copy time when moving *down* the edge (writing into
    /// the slower endpoint), modelling write-asymmetric devices. `1.0` (the
    /// derived default) charges nothing extra and skips the float path.
    pub write_asymmetry: f64,
}

impl EdgeSpec {
    /// Derives the compat edge between two adjacent tiers: bandwidth is the
    /// minimum of the endpoints', no extra latency, no write asymmetry.
    pub fn between(a: &TierSpec, b: &TierSpec) -> EdgeSpec {
        EdgeSpec {
            bandwidth: a.migration_bandwidth.min(b.migration_bandwidth),
            extra_latency: Nanos::ZERO,
            write_asymmetry: 1.0,
        }
    }

    /// Time to copy `pages` base pages over this edge's bandwidth.
    pub fn transfer_time(&self, pages: u64) -> Nanos {
        let bytes = pages * BASE_PAGE_BYTES;
        Nanos(bytes.saturating_mul(1_000_000_000) / self.bandwidth.max(1))
    }
}

/// An ordered chain of managed tiers, the copy edges between adjacent pairs,
/// and the unmanaged swap backstop behind the last tier.
#[derive(Debug, Clone)]
pub struct TierChain {
    /// Managed tiers, fastest first. Length 2..=[`MAX_TIERS`].
    pub tiers: Vec<TierSpec>,
    /// Copy edges; `edges[i]` connects `tiers[i]` and `tiers[i + 1]`.
    pub edges: Vec<EdgeSpec>,
    /// The unmanaged terminal: the swap device behind the last tier.
    pub backstop: SwapSpec,
}

impl TierChain {
    /// Builds a chain from tier specs, deriving each edge via
    /// [`EdgeSpec::between`] and using the default swap backstop.
    ///
    /// Panics if the chain has fewer than 2 or more than [`MAX_TIERS`] tiers.
    pub fn new(tiers: Vec<TierSpec>) -> TierChain {
        assert!(
            (2..=MAX_TIERS).contains(&tiers.len()),
            "tier chain must hold 2..={} tiers, got {}",
            MAX_TIERS,
            tiers.len()
        );
        let edges = tiers
            .windows(2)
            .map(|w| EdgeSpec::between(&w[0], &w[1]))
            .collect();
        TierChain {
            tiers,
            edges,
            backstop: SwapSpec::default(),
        }
    }

    /// Number of managed tiers.
    pub fn len(&self) -> usize {
        self.tiers.len()
    }

    /// A chain always holds at least two tiers.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The slowest (last) managed tier's id.
    pub fn last(&self) -> TierId {
        TierId(self.tiers.len() as u8 - 1)
    }

    /// Iterates the tier ids, fastest first.
    pub fn ids(&self) -> impl Iterator<Item = TierId> {
        (0..self.tiers.len() as u8).map(TierId)
    }

    /// The spec of one tier.
    pub fn tier(&self, id: TierId) -> &TierSpec {
        &self.tiers[id.index()]
    }

    /// Whether two tiers are adjacent in the chain.
    pub fn adjacent(&self, a: TierId, b: TierId) -> bool {
        let (a, b) = (a.index(), b.index());
        a < self.len() && b < self.len() && a.abs_diff(b) == 1
    }

    /// The edge connecting two *adjacent* tiers. Panics if not adjacent.
    pub fn edge_between(&self, a: TierId, b: TierId) -> &EdgeSpec {
        debug_assert!(self.adjacent(a, b), "no edge between {:?} and {:?}", a, b);
        &self.edges[a.index().min(b.index())]
    }

    /// Total capacity in frames across all managed tiers.
    pub fn total_frames(&self) -> u32 {
        self.tiers.iter().map(|t| t.frames).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense() {
        assert_eq!(TierId::FAST.index(), 0);
        assert_eq!(TierId::SLOW.index(), 1);
        assert!(TierId::FAST.is_top());
        assert!(!TierId::SLOW.is_top());
    }

    #[test]
    fn chain_neighbours() {
        assert_eq!(TierId::FAST.faster(), None);
        assert_eq!(TierId::SLOW.faster(), Some(TierId::FAST));
        assert_eq!(TierId::FAST.slower(), TierId::SLOW);
        assert_eq!(TierId(2).faster(), Some(TierId::SLOW));
    }

    #[test]
    fn pmem_has_write_asymmetry() {
        let t = TierSpec::pmem(1024);
        assert!(t.write_latency > t.read_latency);
    }

    #[test]
    fn dram_is_faster_than_pmem() {
        let d = TierSpec::dram(1024);
        let p = TierSpec::pmem(1024);
        assert!(d.read_latency < p.read_latency);
        assert!(d.write_latency < p.write_latency);
    }

    #[test]
    fn transfer_time_scales_with_pages() {
        let t = TierSpec::dram(1024);
        let one = t.transfer_time(1);
        let many = t.transfer_time(512);
        let ratio = many.as_nanos() as f64 / one.as_nanos() as f64;
        assert!((ratio - 512.0).abs() / 512.0 < 0.01, "ratio was {}", ratio);
        // 4 KiB over 10 GiB/s ≈ 381 ns.
        assert!(one.as_nanos() > 300 && one.as_nanos() < 500, "{:?}", one);
    }

    #[test]
    fn capacity_in_bytes() {
        assert_eq!(TierSpec::dram(256).bytes(), 256 * 4096);
    }

    #[test]
    fn derived_edge_reproduces_two_tier_copy_cost() {
        // max(per-tier transfer times) == transfer time at min bandwidth,
        // bit for bit — the compat proof behind every existing golden.
        let d = TierSpec::dram(1024);
        let p = TierSpec::pmem(1024);
        let e = EdgeSpec::between(&d, &p);
        assert_eq!(e.bandwidth, p.migration_bandwidth);
        assert_eq!(e.extra_latency, Nanos::ZERO);
        assert_eq!(e.write_asymmetry, 1.0);
        for pages in [1u64, 7, 512, 4096] {
            assert_eq!(
                e.transfer_time(pages),
                d.transfer_time(pages).max(p.transfer_time(pages))
            );
        }
    }

    #[test]
    fn chain_derives_adjacent_edges() {
        let c = TierChain::new(vec![
            TierSpec::dram(64),
            TierSpec::cxl(128),
            TierSpec::pmem(256),
        ]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.edges.len(), 2);
        assert_eq!(c.last(), TierId(2));
        assert_eq!(c.total_frames(), 64 + 128 + 256);
        assert!(c.adjacent(TierId(0), TierId(1)));
        assert!(c.adjacent(TierId(2), TierId(1)));
        assert!(!c.adjacent(TierId(0), TierId(2)));
        assert!(!c.adjacent(TierId(0), TierId(0)));
        // dram↔cxl runs at CXL bandwidth; cxl↔pmem at PMem bandwidth.
        assert_eq!(c.edge_between(TierId(0), TierId(1)).bandwidth, 8 << 30);
        assert_eq!(c.edge_between(TierId(1), TierId(2)).bandwidth, 4 << 30);
        let ids: Vec<u8> = c.ids().map(|t| t.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "tier chain must hold")]
    fn chain_rejects_single_tier() {
        TierChain::new(vec![TierSpec::dram(64)]);
    }

    #[test]
    fn tier_health_codes_are_dense_and_online_is_zero() {
        let states = [
            TierHealth::Online,
            TierHealth::Degrading { until: Nanos(1) },
            TierHealth::Evacuating { deadline: Nanos(1) },
            TierHealth::Offline,
            TierHealth::Rejoining,
        ];
        for (i, s) in states.iter().enumerate() {
            assert_eq!(s.code() as usize, i, "codes are dense in lifecycle order");
        }
        assert_eq!(TierHealth::Online.code(), 0, "all-healthy packs to zero");
        let labels: std::collections::BTreeSet<&str> = states.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), states.len(), "labels are distinct");
        assert!(TierHealth::Online.accepts_pages());
        assert!(TierHealth::Degrading { until: Nanos(1) }.accepts_pages());
        assert!(!TierHealth::Evacuating { deadline: Nanos(1) }.accepts_pages());
        assert!(!TierHealth::Offline.accepts_pages());
        assert!(!TierHealth::Rejoining.accepts_pages());
        assert!(TierHealth::Offline.spliced_out());
        assert!(TierHealth::Rejoining.spliced_out());
        assert!(!TierHealth::Evacuating { deadline: Nanos(1) }.spliced_out());
    }
}
