//! Memory watermarks, including Chrono's promotion-aware `pro` watermark.
//!
//! Linux tracks `min < low < high` free-page watermarks per zone; reclaim is
//! triggered when free memory falls below `low` and runs until `high`. The
//! paper adds a fourth, `pro`, *above* `high`: proactive demotion frees
//! fast-tier pages until `pro` so that promotions always find headroom. The
//! `high→pro` gap is sized as *twice the scan interval times the promotion
//! rate limit* (Section 3.3.1).

use sim_clock::Nanos;

use crate::addr::BASE_PAGE_BYTES;

/// Free-frame watermarks for one tier, in frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermarks {
    /// Absolute floor; allocations below this fail over to the other tier.
    pub min: u32,
    /// Reclaim wake-up level.
    pub low: u32,
    /// Reclaim target level.
    pub high: u32,
    /// Chrono's promotion-aware target; `pro >= high`.
    pub pro: u32,
}

impl Watermarks {
    /// Linux-like defaults scaled to the tier size: `min` = 0.4 %,
    /// `low` = 0.5 %, `high` = 0.6 % of frames (with small floors so tiny
    /// test tiers still behave), `pro` initially equal to `high`.
    pub fn scaled_to(frames: u32) -> Watermarks {
        let pct = |p: u32| -> u32 { ((frames as u64 * p as u64) / 1000) as u32 };
        let min = pct(4).max(4);
        let low = pct(5).max(6);
        let high = pct(6).max(8);
        Watermarks {
            min,
            low,
            high,
            pro: high,
        }
    }

    /// Recomputes `pro` per the paper: `high + 2 × scan_interval × rate_limit`
    /// (rate limit in bytes/second, converted to frames), clamped so at most
    /// a quarter of the tier is kept free — the paper's own gap (2 × 60 s ×
    /// 100 MB/s = 12 GB of 64 GB DRAM ≈ 19 %) sits under this bound, and a
    /// pathological rate limit must not evict the tier.
    pub fn retune_pro(
        &mut self,
        total_frames: u32,
        scan_interval: Nanos,
        rate_limit_bytes_per_sec: u64,
    ) {
        let window_secs = 2.0 * scan_interval.as_secs_f64();
        let bytes = rate_limit_bytes_per_sec as f64 * window_secs;
        let frames = (bytes / BASE_PAGE_BYTES as f64).ceil() as u32;
        self.pro = self
            .high
            .saturating_add(frames)
            .min(total_frames / 4)
            .max(self.high);
    }

    /// Checks the invariant `min <= low <= high <= pro`.
    pub fn well_ordered(&self) -> bool {
        self.min <= self.low && self.low <= self.high && self.high <= self.pro
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_defaults_are_ordered() {
        for frames in [16u32, 1024, 65_536, 1 << 22] {
            let w = Watermarks::scaled_to(frames);
            assert!(w.well_ordered(), "{:?} for {} frames", w, frames);
        }
    }

    #[test]
    fn retune_pro_uses_rate_window() {
        let mut w = Watermarks::scaled_to(65_536);
        let high = w.high;
        // 100 MB/s for 2×1 s = 200 MB = 51200 pages.
        w.retune_pro(65_536, Nanos::from_secs(1), 100 * 1024 * 1024);
        assert!(w.pro > high);
        assert!(w.well_ordered());
        // Clamped to a quarter of the tier.
        assert!(w.pro <= 65_536 / 4);
    }

    #[test]
    fn retune_pro_never_drops_below_high() {
        let mut w = Watermarks::scaled_to(65_536);
        w.retune_pro(65_536, Nanos::from_millis(1), 0);
        assert_eq!(w.pro, w.high);
    }

    #[test]
    fn huge_rate_limit_is_clamped() {
        let mut w = Watermarks::scaled_to(1024);
        w.retune_pro(1024, Nanos::from_secs(60), u64::MAX / 4);
        assert_eq!(w.pro, 256);
        assert!(w.well_ordered());
    }

    #[test]
    fn retune_pro_tracks_capacity_shrink() {
        // Tune `pro` against a full-size tier, then re-tune against a
        // hotplug-shrunk one: the quarter-of-tier clamp must pull `pro`
        // back down below the old value without breaking the ordering.
        let mut w = Watermarks::scaled_to(65_536);
        w.retune_pro(65_536, Nanos::from_secs(1), 100 * 1024 * 1024);
        let pro_full = w.pro;
        assert!(pro_full > w.high);
        w.retune_pro(16_384, Nanos::from_secs(1), 100 * 1024 * 1024);
        assert!(w.pro < pro_full, "shrink must shrink the headroom target");
        assert!(w.pro <= 16_384 / 4);
        assert!(w.well_ordered());
    }

    #[test]
    fn retune_pro_survives_shrink_below_high() {
        // Shrink the tier so far that a quarter of it sits *under* the old
        // `high` watermark: the `max(high)` floor must win — never an
        // underflowed or inverted set.
        let mut w = Watermarks::scaled_to(65_536);
        assert!(w.high > 64 / 4);
        w.retune_pro(64, Nanos::from_secs(1), 100 * 1024 * 1024);
        assert_eq!(w.pro, w.high, "floor at high, not total/4");
        assert!(w.well_ordered());
    }

    #[test]
    fn rescale_after_shrink_reorders_and_preserves_headroom_intent() {
        // Mirror of `TieredSystem::rescale_watermarks`: on hotplug the
        // base trio is recomputed for the new size and the prior `pro` is
        // carried over, clamped into the new legal band.
        let old = {
            let mut w = Watermarks::scaled_to(65_536);
            w.retune_pro(65_536, Nanos::from_secs(1), 100 * 1024 * 1024);
            w
        };
        for usable in [32_768u32, 4_096, 512, 64, 16] {
            let mut w = Watermarks::scaled_to(usable);
            w.pro = old.pro.clamp(w.high, (usable / 4).max(w.high));
            assert!(w.well_ordered(), "{:?} at {} frames", w, usable);
            assert!(w.pro <= (usable / 4).max(w.high));
            // Demotion drain target never exceeds the tier itself, so a
            // reclaim loop `while free < pro` cannot underflow `used`.
            assert!(w.pro <= usable.max(w.high));
        }
    }
}
