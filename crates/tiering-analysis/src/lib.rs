//! Static analysis for the tiering workspace: the bug classes PR 1 and
//! PR 2 caught at runtime, caught before the code runs.
//!
//! Three pillars, all dependency-free (no `syn`, no `regex` — this crate
//! must build in the offline CI container):
//!
//! - [`lint`] — **chrono-lint**, a lexical scanner over the workspace
//!   sources enforcing repo-specific rules clippy cannot express:
//!   determinism hygiene (no wall clocks, no hash-order iteration in the
//!   simulator crates), the timestamp-narrowing-cast audit (the
//!   `cit_from_word` wrap-bug class), unit-suffix consistency,
//!   `PageFlags` encapsulation, and the chrono-race concurrency
//!   discipline (`shared-state`, `rng-stream`, `barrier-phase`) over the
//!   sharding modules. Findings are machine-readable
//!   (`file:line [rule] snippet`, or the [`findings_to_json`] document)
//!   and waivable inline (`// lint:allow(<rule>) reason`) or via a
//!   committed baseline.
//! - [`model`] — an **exhaustive small-scope model checker** for the page
//!   lifecycle: the transition relation (scan-unmap, hint-fault, probe,
//!   candidate filter, enqueue, promote, demote, split, swap-out/in,
//!   reclaim, LRU moves) declared as pure functions over
//!   `(PageFlags, queued)` words, the full reachable set enumerated
//!   exactly over the 2^16 state space, and every reachable state checked
//!   against the declared legality predicates. The reachable projection
//!   also backs the runtime ⊆ static *bridge check* wired into the
//!   tiering-verify oracle. The sibling [`tier_health`] model does the
//!   same for the tier failure-domain lifecycle (`Online → Degrading →
//!   Evacuating → Offline → Rejoining`): residency and evacuation
//!   transactions abstracted per tier, the reachable set enumerated
//!   exactly, and `Offline`-with-residency proven unreachable statically
//!   — the twin of the runtime oracle's `tier_offline_residency` check.
//! - [`race`] — **chrono-race**, an exhaustive shard-interleaving model
//!   checker for the barrier protocol: every schedule of small
//!   multi-shard configurations over the MigrationTxn × admission-slot ×
//!   fault-completion state is enumerated (memoized DAG + path-count DP,
//!   so certified schedule counts are exact multinomials), each asserted
//!   to converge to one canonical post-barrier state and to conserve
//!   slot flow. Its independently implemented [`canonical_grants`] also
//!   serves as the N-version admission oracle tiering-verify replays
//!   every live barrier decision through.
//!
//! `harness lint`, `harness model-check`, and `harness race-check` drive
//! all three from CI.

#![warn(missing_docs)]

pub mod lint;
pub mod model;
pub mod race;
pub mod tier_health;

use std::path::{Path, PathBuf};

pub use lint::{
    findings_from_json, findings_to_json, lint_source, lint_workspace, Finding, LintReport,
    RESTRICTED_CRATES, RESTRICTED_FILES, RULES,
};
pub use model::{
    check_model, flag_word_reachable, legality_rules, render_report, transitions, LegalityRule,
    ModelReport, Transition, QUEUED,
};
pub use race::{
    canonical_grants, check_races, race_configs, render_race_report, GrantRule, RaceClaim,
    RaceConfig, RaceOp, RaceReport,
};
pub use tier_health::{
    check_health_model, describe_health_state, health_legality_rules, health_transitions,
    render_health_report, HealthLegalityRule, HealthReport, HealthTransition,
};

/// The workspace root, resolved from this crate's manifest directory
/// (`crates/tiering-analysis` → two levels up). The lint scanner and the
/// golden/baseline files are all addressed relative to this.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives two levels under the workspace root")
        .to_path_buf()
}

/// Path of the committed lint waiver baseline.
pub fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("lint-baseline.txt")
}

/// Path of the committed reachability golden.
pub fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("goldens/reachable_states.txt")
}

/// Path of the committed chrono-race exploration golden.
pub fn race_golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("goldens/race_exploration.txt")
}

/// Path of the committed tier failure-domain lifecycle golden.
pub fn tier_health_golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("goldens/tier_health_states.txt")
}
