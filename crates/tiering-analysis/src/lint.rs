//! chrono-lint: a lexical scanner for repo-specific determinism and
//! encapsulation rules.
//!
//! The scanner is deliberately line-oriented and token-based rather than a
//! real parser: every rule here keys off local, single-line evidence
//! (a call to `Instant::now`, a `.iter()` on a name bound to a `HashMap`,
//! an `as u32` next to a timestamp identifier), so a lexical pass finds the
//! same sites `syn` would at a fraction of the complexity — and with zero
//! dependencies, which the offline CI container requires.
//!
//! False positives are expected and cheap: any finding can be waived inline
//! with `// lint:allow(<rule>) reason` (same line or the line above) or in
//! the committed baseline file. CI requires zero *unwaived* findings.

use std::fmt;
use std::fs;
use std::path::Path;

/// Crates whose sources must stay bit-deterministic: no wall clocks, no
/// hash-order iteration. Everything the simulator's trace digests depend on.
pub const RESTRICTED_CRATES: [&str; 5] = [
    "sim-clock",
    "tiered-mem",
    "chrono-core",
    "tiering-policies",
    "workloads",
];

/// Individual files outside the restricted crates that the determinism
/// rules also cover: the shard/tenant modules whose code runs (or feeds)
/// the parallel shard-step phase. `harness` as a crate stays unrestricted
/// (it times real wall-clock runs), but its fleet runner is shard-era code,
/// and the tier-chaos sharded driver in tiering-verify schedules the tier
/// events every shard must observe at the same barrier.
pub const RESTRICTED_FILES: [&str; 4] = [
    "crates/tiering-policies/src/shard.rs",
    "crates/tiered-mem/src/partition.rs",
    "crates/harness/src/tenants.rs",
    "crates/tiering-verify/src/sharded.rs",
];

/// Files whose code participates in the barrier protocol: the chrono-race
/// rules (`rng-stream` mutable-RNG audit, `barrier-phase` callgraph audit)
/// apply here. A superset relationship with [`RESTRICTED_FILES`] is not
/// required but currently holds.
pub const BARRIER_PHASE_FILES: [&str; 4] = [
    "crates/tiering-policies/src/shard.rs",
    "crates/tiered-mem/src/partition.rs",
    "crates/harness/src/tenants.rs",
    "crates/tiering-verify/src/sharded.rs",
];

/// Cross-shard mutators that may only be invoked from the single-threaded
/// barrier section (or from setup code), never from the parallel shard-step
/// phase. The `barrier-phase` rule walks a callgraph-lite closure from the
/// `thread::scope` spawn bodies and the shard-step entry points and flags
/// any call to one of these inside that closure.
pub const BARRIER_ONLY_MUTATORS: [&str; 6] = [
    "admission_grants",
    "apply",
    "set_inflight_slots",
    "trace_admission",
    "split_weighted",
    "split_even",
];

/// Function names treated as entry points of the parallel shard-step phase
/// even when no `thread::scope` body names them directly (the sequential
/// 1-thread path calls them too, and the discipline must hold there).
const SHARD_STEP_ROOTS: [&str; 2] = ["step_to", "step_until"];

/// The rule catalog: `(name, what it flags)`. Kept in one place so docs,
/// tests, and `harness lint --rules` agree.
pub const RULES: [(&str, &str); 9] = [
    (
        "wall-clock",
        "Instant::now / SystemTime / thread_rng in a deterministic crate",
    ),
    (
        "hash-iter",
        "iteration over a HashMap/HashSet binding in a deterministic crate (order is random per process)",
    ),
    (
        "timestamp-cast",
        "bare `as` narrowing on a timestamp-like identifier (*_ms/*_us/*_at/cit*/stamp*) without wrapping_/checked_/try_into",
    ),
    (
        "unit-mix",
        "*_ms/us/ns and *_bucket/*_idx identifiers mixed in one arithmetic expression without a conversion helper",
    ),
    (
        "flags-encapsulation",
        "raw bit access to the PageFlags word (flags.0 / PageFlags(..)) outside tiered-mem/src/page.rs",
    ),
    (
        "bad-waiver",
        "a lint:allow waiver with no rule name or no reason text",
    ),
    (
        "shared-state",
        "interior mutability / shared-state primitive (static mut, RefCell, Mutex, Atomic*, unsafe, ...) in shard-visible deterministic code",
    ),
    (
        "rng-stream",
        "a DetRng::split stream consumed by two call sites in one file, or &mut DetRng crossing into barrier-phase code",
    ),
    (
        "barrier-phase",
        "a cross-shard mutator (admission grants, slot caps, partition surgery) reachable from the parallel shard-step phase",
    ),
];

/// How a finding was silenced, if it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Waived {
    /// Not silenced: counts against CI.
    No,
    /// Silenced by an inline `// lint:allow(rule) reason` comment.
    Inline,
    /// Silenced by an entry in the committed baseline file.
    Baseline,
}

/// One lint hit: rule, location, and the offending source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name from [`RULES`].
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The trimmed source line.
    pub snippet: String,
    /// Whether (and how) the finding is waived.
    pub waived: Waived,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.snippet
        )?;
        match self.waived {
            Waived::No => Ok(()),
            Waived::Inline => write!(f, "  (waived inline)"),
            Waived::Baseline => write!(f, "  (waived: baseline)"),
        }
    }
}

/// A full workspace lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every finding, waived or not, in (file, line) order.
    pub findings: Vec<Finding>,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// Baseline entries that matched nothing (stale; candidates for removal).
    pub stale_baseline: Vec<String>,
}

impl LintReport {
    /// Findings that count against CI.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.waived == Waived::No)
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Splits a code fragment into identifier-ish tokens.
fn tokens(code: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, c) in code.char_indices() {
        if is_ident_char(c) {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(s) = start.take() {
            out.push(&code[s..i]);
        }
    }
    if let Some(s) = start {
        out.push(&code[s..]);
    }
    out
}

/// Index where the line comment starts, if any, skipping `//` inside string
/// literals.
fn comment_start(line: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_string => i += 1, // skip the escaped char
            b'"' => in_string = !in_string,
            b'/' if !in_string && i + 1 < bytes.len() && bytes[i + 1] == b'/' => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Blanks out string-literal contents (and quote-bearing char literals) so
/// rule patterns never match inside literals — e.g. a log message quoting
/// `flags.0` is not a raw flag access.
fn strip_strings(code: &str) -> String {
    let b = code.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    let mut in_str = false;
    while i < b.len() {
        let c = b[i];
        if in_str {
            if c == b'\\' {
                out.extend([b' ', b' ']);
                i += 2;
                continue;
            }
            if c == b'"' {
                in_str = false;
                out.push(c);
            } else {
                out.push(b' ');
            }
        } else if c == b'"' {
            in_str = true;
            out.push(c);
        } else if c == b'\'' && i + 2 < b.len() && b[i + 2] == b'\'' && b[i + 1] != b'\\' {
            // 'x' char literal (possibly 'x' == '"'): blank the payload.
            out.extend([b'\'', b' ', b'\'']);
            i += 3;
            continue;
        } else {
            out.push(c);
        }
        i += 1;
    }
    String::from_utf8(out).unwrap_or_else(|_| code.to_string())
}

/// A parsed `lint:allow(rule) reason` waiver, or a malformed one.
enum WaiverParse {
    Ok(String),
    Malformed,
}

/// Extracts a waiver from a comment, if one is present.
fn parse_waiver(comment: &str) -> Option<WaiverParse> {
    let at = comment.find("lint:allow")?;
    let rest = &comment[at + "lint:allow".len()..];
    let Some(rest) = rest.trim_start().strip_prefix('(') else {
        return Some(WaiverParse::Malformed);
    };
    let Some(close) = rest.find(')') else {
        return Some(WaiverParse::Malformed);
    };
    let rule = rest[..close].trim();
    let reason = rest[close + 1..].trim();
    if rule.is_empty() || reason.len() < 3 {
        return Some(WaiverParse::Malformed);
    }
    Some(WaiverParse::Ok(rule.to_string()))
}

/// Whether an identifier looks like a millisecond/microsecond/timestamp
/// quantity (the `cit_from_word` wrap-bug class).
fn is_timestampish(ident: &str) -> bool {
    ident == "ms"
        || ident == "us"
        || ident.ends_with("_ms")
        || ident.ends_with("_us")
        || ident.ends_with("_ns")
        || ident.ends_with("_nanos")
        || ident.ends_with("_millis")
        || ident.ends_with("_micros")
        || ident.ends_with("_at")
        || ident.ends_with("_stamp")
        || ident.starts_with("cit")
        || ident.starts_with("stamp")
        || ident == "as_nanos"
}

/// Whether an identifier names a table slot rather than a time quantity.
fn is_bucketish(ident: &str) -> bool {
    ident.ends_with("_bucket") || ident.ends_with("_idx")
}

/// Whether a `name` occurrence at byte `at` in `code` has identifier
/// boundaries on both sides.
fn bounded_at(code: &str, at: usize, len: usize) -> bool {
    let before_ok = at == 0 || !is_ident_char(code[..at].chars().next_back().unwrap());
    let after_ok = code[at + len..]
        .chars()
        .next()
        .map(|c| !is_ident_char(c))
        .unwrap_or(true);
    before_ok && after_ok
}

/// All boundary-checked occurrences of `name` in `code`.
fn ident_occurrences(code: &str, name: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(name) {
        let at = from + pos;
        if bounded_at(code, at, name.len()) {
            out.push(at);
        }
        from = at + name.len();
    }
    out
}

/// Methods on a hash container whose visit order is nondeterministic.
const HASH_ITER_METHODS: [&str; 8] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".retain(",
];

/// Names bound to `HashMap`/`HashSet` in `lines` (declarations, fields, fn
/// params). Token-before-the-type heuristic: the last identifier before the
/// type name that is not a keyword.
fn hash_bound_names(lines: &[&str], test_start: usize) -> Vec<String> {
    const STOP: [&str; 10] = [
        "let",
        "mut",
        "pub",
        "static",
        "const",
        "ref",
        "std",
        "collections",
        "use",
        "crate",
    ];
    let mut names = Vec::new();
    for line in lines.iter().take(test_start) {
        let code = match comment_start(line) {
            Some(i) => &line[..i],
            None => line,
        };
        let code = &strip_strings(code)[..];
        for ty in ["HashMap", "HashSet"] {
            for at in ident_occurrences(code, ty) {
                let name = tokens(&code[..at])
                    .into_iter()
                    .rev()
                    .find(|t| !STOP.contains(t) && !t.chars().next().unwrap().is_ascii_digit());
                if let Some(n) = name {
                    if !names.iter().any(|x| x == n) {
                        names.push(n.to_string());
                    }
                }
            }
        }
    }
    names
}

/// Second-argument (stream id) expressions of every `DetRng::split(..)`
/// call on one stripped line, whitespace-normalized. A call whose closing
/// paren spills onto a later line contributes the rest of the line — the
/// scanner is line-oriented by design.
fn split_stream_args(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = code[from..].find("DetRng::split") {
        let after = from + p + "DetRng::split".len();
        from = after;
        let Some(open_rel) = code[after..].find('(') else {
            continue;
        };
        let args_start = after + open_rel + 1;
        let mut depth = 1i32;
        let mut comma = None;
        let mut end = code.len();
        for (i, c) in code[args_start..].char_indices() {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => {
                    depth -= 1;
                    if depth == 0 {
                        end = args_start + i;
                        break;
                    }
                }
                ',' if depth == 1 && comma.is_none() => comma = Some(args_start + i),
                _ => {}
            }
        }
        if let Some(c) = comma {
            let expr: String = code[c + 1..end].split_whitespace().collect();
            if !expr.is_empty() {
                out.push(expr);
            }
        }
    }
    out
}

/// One lexically parsed `fn` item: its name and the 0-based inclusive line
/// range of its body (from the opening brace to the matching close).
struct FnItem {
    name: String,
    body: (usize, usize),
}

/// Lexical `fn` items of a stripped source. Brace counting over the
/// comment- and string-stripped text; nested items (closures, inner fns)
/// stay inside their parent's range, which is what the reachability walk
/// wants.
fn parse_fns(code_lines: &[String]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut depth = 0i32;
    let mut pending: Option<String> = None;
    let mut open: Vec<(String, i32, usize)> = Vec::new();
    for (idx, line) in code_lines.iter().enumerate() {
        let toks = tokens(line);
        for w in toks.windows(2) {
            if w[0] == "fn" {
                pending = Some(w[1].to_string());
            }
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some(name) = pending.take() {
                        open.push((name, depth, idx));
                    }
                }
                '}' => {
                    if let Some((_, d, _)) = open.last() {
                        if *d == depth {
                            let (name, _, start) = open.pop().expect("non-empty open stack");
                            fns.push(FnItem {
                                name,
                                body: (start, idx),
                            });
                        }
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
    }
    fns
}

/// Identifiers immediately followed by `(` on one stripped line — the
/// call sites the `barrier-phase` audit walks.
fn called_idents(code: &str) -> Vec<String> {
    let b = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if is_ident_char(b[i] as char) {
            let s = i;
            while i < b.len() && is_ident_char(b[i] as char) {
                i += 1;
            }
            if i < b.len()
                && b[i] == b'('
                && !code[s..i]
                    .chars()
                    .next()
                    .expect("non-empty")
                    .is_ascii_digit()
            {
                out.push(code[s..i].to_string());
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Inclusive 0-based line spans of every `thread::scope(..)` argument list
/// — the lexical extent of the parallel shard-step phase.
fn thread_scope_spans(code_lines: &[String]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    // 0 = outside; -1 = saw `thread::scope`, waiting for `(`; >0 = depth.
    let mut depth = 0i32;
    let mut start = 0usize;
    for (idx, line) in code_lines.iter().enumerate() {
        let mut offset = 0;
        if depth == 0 {
            match line.find("thread::scope") {
                Some(p) => {
                    offset = p + "thread::scope".len();
                    start = idx;
                    depth = -1;
                }
                None => continue,
            }
        }
        for c in line[offset..].chars() {
            match c {
                '(' => depth = if depth == -1 { 1 } else { depth + 1 },
                ')' if depth > 0 => {
                    depth -= 1;
                    if depth == 0 {
                        spans.push((start, idx));
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    spans
}

/// The `barrier-phase` callgraph-lite audit: line indices (0-based) and
/// offending mutator names for every [`BARRIER_ONLY_MUTATORS`] call
/// reachable from the parallel shard-step phase. The phase is the union of
/// every `thread::scope` argument span and the bodies of locally defined
/// functions transitively reachable from calls in those spans (or named in
/// [`SHARD_STEP_ROOTS`]). Calls into other files go dark — the lexical
/// soundness caveat DESIGN.md §9 documents.
fn barrier_phase_audit(code_lines: &[String]) -> Vec<(usize, String)> {
    let fns = parse_fns(code_lines);
    let spans = thread_scope_spans(code_lines);

    let mut frontier: Vec<String> = SHARD_STEP_ROOTS.iter().map(|s| s.to_string()).collect();
    let mut parallel_lines: Vec<(usize, usize)> = spans.clone();
    for &(a, b) in &spans {
        for line in &code_lines[a..=b.min(code_lines.len() - 1)] {
            for id in called_idents(line) {
                if !matches!(id.as_str(), "scope" | "spawn") && !frontier.contains(&id) {
                    frontier.push(id);
                }
            }
        }
    }
    // Transitive closure over locally defined functions.
    let mut i = 0;
    while i < frontier.len() {
        let name = frontier[i].clone();
        for f in fns.iter().filter(|f| f.name == name) {
            parallel_lines.push(f.body);
            for line in &code_lines[f.body.0..=f.body.1.min(code_lines.len() - 1)] {
                for id in called_idents(line) {
                    if !frontier.contains(&id) {
                        frontier.push(id);
                    }
                }
            }
        }
        i += 1;
    }

    let mut out = Vec::new();
    for &(a, b) in &parallel_lines {
        for (idx, line) in code_lines
            .iter()
            .enumerate()
            .take(b.min(code_lines.len() - 1) + 1)
            .skip(a)
        {
            for id in called_idents(line) {
                if BARRIER_ONLY_MUTATORS.contains(&id.as_str())
                    && !out.iter().any(|(l, n)| *l == idx && *n == id)
                {
                    out.push((idx, id));
                }
            }
        }
    }
    out.sort();
    out
}

/// Lints one source file. `crate_name` decides whether the determinism
/// rules apply; `rel_path` decides the `PageFlags` encapsulation exemption.
/// Code at and below the first `#[cfg(test)]` line is skipped entirely —
/// tests may freely use wall clocks, hash iteration, and fixture casts.
pub fn lint_source(crate_name: &str, rel_path: &str, source: &str) -> Vec<Finding> {
    let lines: Vec<&str> = source.lines().collect();
    let restricted =
        RESTRICTED_CRATES.contains(&crate_name) || RESTRICTED_FILES.contains(&rel_path);
    let barrier_phase = BARRIER_PHASE_FILES.contains(&rel_path);
    let is_page_rs = rel_path.ends_with("tiered-mem/src/page.rs");
    let test_start = lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
        .unwrap_or(lines.len());

    // Waivers by line index; a waiver covers its own line and the next.
    let mut waivers: Vec<(usize, String)> = Vec::new();
    let mut raw = Vec::new();

    for (idx, line) in lines.iter().enumerate().take(test_start) {
        let (code, comment) = match comment_start(line) {
            Some(i) => (&line[..i], &line[i..]),
            None => (*line, ""),
        };
        let code = &strip_strings(code)[..];
        match parse_waiver(comment) {
            Some(WaiverParse::Ok(rule)) => waivers.push((idx, rule)),
            Some(WaiverParse::Malformed) => raw.push(Finding {
                rule: "bad-waiver",
                file: rel_path.to_string(),
                line: idx + 1,
                snippet: line.trim().to_string(),
                waived: Waived::No,
            }),
            None => {}
        }
        let mut hit = |rule: &'static str| {
            raw.push(Finding {
                rule,
                file: rel_path.to_string(),
                line: idx + 1,
                snippet: line.trim().to_string(),
                waived: Waived::No,
            })
        };

        // wall-clock: any nondeterministic time/randomness source.
        if restricted
            && ["Instant::now", "SystemTime", "thread_rng"]
                .iter()
                .any(|p| code.contains(p))
        {
            hit("wall-clock");
        }

        // shared-state: interior mutability or synchronization primitives in
        // shard-visible deterministic code. Any of these inside shard-step
        // code can carry cross-thread nondeterminism (lock-acquisition
        // order, atomic interleavings, aliased mutation), so the rule bans
        // them wholesale; legitimate uses go through the waiver table.
        if restricted {
            let toks = tokens(code);
            let shared = toks.iter().any(|t| {
                matches!(
                    *t,
                    "RefCell"
                        | "Cell"
                        | "UnsafeCell"
                        | "OnceCell"
                        | "OnceLock"
                        | "LazyLock"
                        | "Mutex"
                        | "RwLock"
                        | "Condvar"
                        | "thread_local"
                        | "unsafe"
                ) || t.starts_with("Atomic")
            }) || code.contains("static mut");
            if shared {
                hit("shared-state");
            }
        }

        // rng-stream (mutable-RNG half): a `&mut DetRng` flowing through a
        // barrier-phase module's API means one RNG stream is being consumed
        // from code that runs in (or feeds) the barrier protocol — streams
        // must stay pinned to exactly one shard context.
        if barrier_phase && code.contains("&mut DetRng") {
            hit("rng-stream");
        }

        // timestamp-cast: `x_ms as u32`-style modular narrowing.
        let has_cast = [
            " as u8", " as u16", " as u32", " as u64", " as i32", " as i64",
        ]
        .iter()
        .any(|c| {
            let mut from = 0;
            while let Some(p) = code[from..].find(c) {
                let end = from + p + c.len();
                // Reject prefixes of longer tokens (` as u8` in ` as u8x`).
                if code[end..]
                    .chars()
                    .next()
                    .map(|ch| !ch.is_ascii_alphanumeric())
                    .unwrap_or(true)
                {
                    return true;
                }
                from = end;
            }
            false
        });
        let exempted = [
            "wrapping_",
            "checked_",
            "saturating_",
            "try_into",
            "try_from",
        ]
        .iter()
        .any(|e| code.contains(e));
        if has_cast && !exempted && tokens(code).iter().any(|t| is_timestampish(t)) {
            hit("timestamp-cast");
        }

        // unit-mix: time-suffixed and slot-suffixed identifiers in one
        // arithmetic expression, with no conversion helper in sight.
        {
            let toks = tokens(code);
            let timeish = toks
                .iter()
                .any(|t| t.ends_with("_ms") || t.ends_with("_us") || t.ends_with("_ns"));
            let bucketish = toks.iter().any(|t| is_bucketish(t));
            let converter = toks
                .iter()
                .any(|t| t.contains("_of") || t.starts_with("to_") || t.starts_with("from_"));
            let arith = code
                .replace("->", "")
                .chars()
                .any(|c| matches!(c, '+' | '-' | '*' | '/' | '%'));
            if timeish && bucketish && arith && !converter {
                hit("unit-mix");
            }
        }

        // flags-encapsulation: raw flag-word arithmetic outside page.rs.
        if !is_page_rs
            && (code.contains("flags.0")
                || ident_occurrences(code, "PageFlags")
                    .iter()
                    .any(|&at| code[at + "PageFlags".len()..].starts_with('(')))
        {
            hit("flags-encapsulation");
        }
    }

    // hash-iter needs the whole-file name set first.
    if restricted {
        let names = hash_bound_names(&lines, test_start);
        for (idx, line) in lines.iter().enumerate().take(test_start) {
            let code = match comment_start(line) {
                Some(i) => &line[..i],
                None => line,
            };
            let code = &strip_strings(code)[..];
            let iterated = names.iter().any(|name| {
                ident_occurrences(code, name).iter().any(|&at| {
                    let after = &code[at + name.len()..];
                    if HASH_ITER_METHODS.iter().any(|m| after.starts_with(m)) {
                        return true;
                    }
                    // for-loop iteration: `for x in map` / `in &map` /
                    // `in &mut map`, allowing a `self.`/path prefix.
                    let bytes = code.as_bytes();
                    let mut s = at;
                    while s > 0 && (is_ident_char(bytes[s - 1] as char) || bytes[s - 1] == b'.') {
                        s -= 1;
                    }
                    let head = &code[..s];
                    ["in ", "in &", "in &mut "]
                        .iter()
                        .any(|p| head.ends_with(p))
                })
            });
            if iterated {
                raw.push(Finding {
                    rule: "hash-iter",
                    file: rel_path.to_string(),
                    line: idx + 1,
                    snippet: line.trim().to_string(),
                    waived: Waived::No,
                });
            }
        }
    }

    // rng-stream (duplicate-consumption half) and barrier-phase both need
    // whole-file context over the stripped production code.
    if restricted || barrier_phase {
        let stripped: Vec<String> = lines
            .iter()
            .take(test_start)
            .map(|line| {
                let code = match comment_start(line) {
                    Some(i) => &line[..i],
                    None => line,
                };
                strip_strings(code)
            })
            .collect();

        // rng-stream: a `DetRng::split` stream id consumed by two distinct
        // call sites in one file means two contexts draw from (what is meant
        // to be) one shard's private stream.
        if restricted {
            let mut streams: Vec<(String, usize)> = Vec::new();
            for (idx, code) in stripped.iter().enumerate() {
                for expr in split_stream_args(code) {
                    if let Some((_, first)) = streams.iter().find(|(e, _)| *e == expr) {
                        raw.push(Finding {
                            rule: "rng-stream",
                            file: rel_path.to_string(),
                            line: idx + 1,
                            snippet: format!(
                                "{}  (stream `{expr}` already split at line {})",
                                lines[idx].trim(),
                                first + 1
                            ),
                            waived: Waived::No,
                        });
                    } else {
                        streams.push((expr, idx));
                    }
                }
            }
        }

        // barrier-phase: cross-shard mutators reachable from the parallel
        // shard-step phase.
        if barrier_phase {
            for (idx, mutator) in barrier_phase_audit(&stripped) {
                raw.push(Finding {
                    rule: "barrier-phase",
                    file: rel_path.to_string(),
                    line: idx + 1,
                    snippet: format!(
                        "{}  (cross-shard mutator `{mutator}` reachable from the shard-step phase)",
                        lines[idx].trim()
                    ),
                    waived: Waived::No,
                });
            }
        }
    }

    // Resolve inline waivers: a waiver covers its own line, the rest of
    // its comment block, and the first code line after it (so a multi-line
    // justification above the flagged statement works).
    for f in &mut raw {
        let idx = f.line - 1;
        let covered = |w: usize| {
            if w == idx {
                return true;
            }
            if w > idx {
                return false;
            }
            // Every line strictly between the waiver and the finding must
            // be comment-only for the waiver to reach it.
            (w + 1..idx).all(|j| lines[j].trim_start().starts_with("//"))
        };
        if waivers
            .iter()
            .any(|(w, rule)| covered(*w) && rule == f.rule)
        {
            f.waived = Waived::Inline;
        }
    }
    raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    raw
}

/// Escapes a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The machine-readable `harness lint --json` document: scan summary plus
/// one object per finding (`rule`, `file`, `line`, `waived`, `snippet`).
/// Hand-rolled (no serde — the workspace is offline/dependency-free);
/// [`findings_from_json`] is the committed round-trip proof of the schema.
pub fn findings_to_json(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"unwaived\": {},\n",
        report.files_scanned,
        report.unwaived().count()
    ));
    out.push_str("  \"stale_baseline\": [");
    for (i, s) in report.stale_baseline.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\"", json_escape(s)));
    }
    out.push_str("],\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let waived = match f.waived {
            Waived::No => "no",
            Waived::Inline => "inline",
            Waived::Baseline => "baseline",
        };
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&format!(
            "{{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"waived\": \"{}\", \"snippet\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            waived,
            json_escape(&f.snippet)
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Minimal cursor over the `--json` document.
struct JsonCursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> JsonCursor<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && (self.b[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        self.skip_ws();
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        while self.i < self.b.len() {
            let c = self.b[self.i];
            self.i += 1;
            match c {
                b'"' => return Some(out),
                b'\\' => {
                    let e = *self.b.get(self.i)?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = std::str::from_utf8(self.b.get(self.i..self.i + 4)?).ok()?;
                            self.i += 4;
                            out.push(char::from_u32(u32::from_str_radix(hex, 16).ok()?)?);
                        }
                        _ => return None,
                    }
                }
                c => out.push(c as char),
            }
        }
        None
    }

    fn number(&mut self) -> Option<usize> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()?
            .parse()
            .ok()
    }
}

/// Parses a [`findings_to_json`] document back into findings (plus the
/// `files_scanned` count and stale-baseline list). Returns `None` on any
/// schema violation — the round-trip test keeps producer and consumer in
/// lockstep so CI annotators can rely on the shape.
pub fn findings_from_json(text: &str) -> Option<(usize, Vec<Finding>, Vec<String>)> {
    let mut c = JsonCursor {
        b: text.as_bytes(),
        i: 0,
    };
    c.eat(b'{')?;
    let mut files_scanned = 0usize;
    let mut stale = Vec::new();
    let mut findings = Vec::new();
    loop {
        if c.peek() == Some(b'}') {
            c.eat(b'}')?;
            break;
        }
        let key = c.string()?;
        c.eat(b':')?;
        match key.as_str() {
            "files_scanned" => files_scanned = c.number()?,
            "unwaived" => {
                c.number()?;
            }
            "stale_baseline" => {
                c.eat(b'[')?;
                while c.peek() != Some(b']') {
                    stale.push(c.string()?);
                    if c.peek() == Some(b',') {
                        c.eat(b',')?;
                    }
                }
                c.eat(b']')?;
            }
            "findings" => {
                c.eat(b'[')?;
                while c.peek() != Some(b']') {
                    c.eat(b'{')?;
                    let (mut rule, mut file, mut line, mut waived, mut snippet) =
                        (None, None, None, None, None);
                    while c.peek() != Some(b'}') {
                        let k = c.string()?;
                        c.eat(b':')?;
                        match k.as_str() {
                            "rule" => rule = Some(c.string()?),
                            "file" => file = Some(c.string()?),
                            "line" => line = Some(c.number()?),
                            "waived" => waived = Some(c.string()?),
                            "snippet" => snippet = Some(c.string()?),
                            _ => return None,
                        }
                        if c.peek() == Some(b',') {
                            c.eat(b',')?;
                        }
                    }
                    c.eat(b'}')?;
                    // Rule names intern back into the static catalog.
                    let rule_name = rule?;
                    let rule = RULES.iter().find(|(n, _)| *n == rule_name)?.0;
                    findings.push(Finding {
                        rule,
                        file: file?,
                        line: line?,
                        snippet: snippet?,
                        waived: match waived.as_deref()? {
                            "no" => Waived::No,
                            "inline" => Waived::Inline,
                            "baseline" => Waived::Baseline,
                            _ => return None,
                        },
                    });
                    if c.peek() == Some(b',') {
                        c.eat(b',')?;
                    }
                }
                c.eat(b']')?;
            }
            _ => return None,
        }
        if c.peek() == Some(b',') {
            c.eat(b',')?;
        }
    }
    Some((files_scanned, findings, stale))
}

/// Recursively collects `.rs` files under `dir`, sorted for determinism.
fn rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rs_files(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Parses the baseline file: non-comment lines of `rule<TAB>file<TAB>snippet`.
fn parse_baseline(text: &str) -> Vec<(String, String, String)> {
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.splitn(3, '\t');
            Some((
                parts.next()?.to_string(),
                parts.next()?.to_string(),
                parts.next()?.trim().to_string(),
            ))
        })
        .collect()
}

/// Lints every workspace crate's `src/` tree plus the root facade `src/`.
///
/// `baseline` is the committed waiver list (`rule\tfile\tsnippet` lines,
/// matched on trimmed snippet text so entries survive line drift). Every
/// crate under `crates/` is scanned; `harness` is unrestricted for
/// wall-clock use, and its bench module carries explicit waivers anyway.
pub fn lint_workspace(root: &Path, baseline: &str) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    let mut targets: Vec<(String, std::path::PathBuf)> = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir.file_name().unwrap().to_string_lossy().to_string();
        targets.push((name, dir.join("src")));
    }
    targets.push(("chrono-repro".to_string(), root.join("src")));

    let mut findings = Vec::new();
    for (crate_name, src_dir) in targets {
        let mut files = Vec::new();
        rs_files(&src_dir, &mut files);
        for path in files {
            report.files_scanned += 1;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let source = fs::read_to_string(&path)?;
            findings.extend(lint_source(&crate_name, &rel, &source));
        }
    }

    // Baseline pass: a finding matching (rule, file, snippet) is waived.
    let entries = parse_baseline(baseline);
    let mut used = vec![false; entries.len()];
    for f in &mut findings {
        if f.waived != Waived::No {
            continue;
        }
        if let Some(i) = entries
            .iter()
            .position(|(r, file, snip)| r == f.rule && file == &f.file && snip == &f.snippet)
        {
            f.waived = Waived::Baseline;
            used[i] = true;
        }
    }
    report.stale_baseline = entries
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|((r, f, s), _)| format!("{r}\t{f}\t{s}"))
        .collect();

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report.findings = findings;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unwaived(findings: &[Finding]) -> Vec<&Finding> {
        findings.iter().filter(|f| f.waived == Waived::No).collect()
    }

    #[test]
    fn wall_clock_flagged_in_restricted_crate_only() {
        let src = "fn t() { let x = Instant::now(); }\n";
        let hits = lint_source("chrono-core", "crates/chrono-core/src/x.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "wall-clock");
        assert_eq!(hits[0].line, 1);
        // The harness may time real wall-clock runs; unrestricted.
        let hits = lint_source("harness", "crates/harness/src/x.rs", src);
        assert!(hits.is_empty());
    }

    #[test]
    fn hash_iteration_flagged_with_binding_tracking() {
        let src = "\
use std::collections::HashMap;
struct S { rounds: HashMap<u64, u32> }
impl S {
    fn bad(&self) -> u64 { self.rounds.keys().sum() }
    fn also_bad(&self) { for k in &self.rounds { let _ = k; } }
    fn fine(&self) -> usize { self.rounds.len() }
}
";
        let hits = lint_source("chrono-core", "crates/chrono-core/src/x.rs", src);
        let rules: Vec<_> = hits.iter().map(|f| (f.rule, f.line)).collect();
        assert_eq!(rules, vec![("hash-iter", 4), ("hash-iter", 5)]);
    }

    #[test]
    fn hash_iteration_negative_on_btreemap() {
        let src = "\
use std::collections::BTreeMap;
struct S { rounds: BTreeMap<u64, u32> }
impl S { fn fine(&self) -> u64 { self.rounds.keys().sum() } }
";
        let hits = lint_source("chrono-core", "crates/chrono-core/src/x.rs", src);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn timestamp_cast_positive_waived_negative() {
        // Positive: bare modular narrowing of a millisecond quantity.
        let bad = "fn f(scan_ms: u64) -> u32 { scan_ms as u32 }\n";
        let hits = lint_source("chrono-core", "crates/chrono-core/src/x.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "timestamp-cast");
        assert_eq!(hits[0].waived, Waived::No);

        // Waived: same code with an inline justification.
        let waived = "\
// lint:allow(timestamp-cast) intentional modular stamp, consumers wrap
fn f(scan_ms: u64) -> u32 { scan_ms as u32 }
";
        let hits = lint_source("chrono-core", "crates/chrono-core/src/x.rs", waived);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].waived, Waived::Inline);

        // Negative: wrapping arithmetic is the blessed idiom.
        let good = "fn f(scan_ms: u32, t0: u32) -> u32 { scan_ms.wrapping_sub(t0) }\n";
        assert!(lint_source("chrono-core", "crates/chrono-core/src/x.rs", good).is_empty());
        // Negative: non-timestamp identifiers cast freely.
        let good = "fn f(frames: u64) -> u32 { frames as u32 }\n";
        assert!(lint_source("chrono-core", "crates/chrono-core/src/x.rs", good).is_empty());
    }

    #[test]
    fn unit_mix_flags_time_vs_slot_arithmetic() {
        let bad = "let x = interval_ms + hot_bucket;\n";
        let hits = lint_source("chrono-core", "crates/chrono-core/src/x.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "unit-mix");
        // A conversion helper on the line is the sanctioned pattern.
        let good = "let x = bucket_of(interval_ms) + hot_bucket;\n";
        assert!(lint_source("chrono-core", "crates/chrono-core/src/x.rs", good).is_empty());
        // No arithmetic: a struct literal mentioning both is fine.
        let good = "S { interval_ms, hot_bucket }\n";
        assert!(lint_source("chrono-core", "crates/chrono-core/src/x.rs", good).is_empty());
    }

    #[test]
    fn flags_encapsulation_outside_page_rs() {
        let bad = "let raw = e.flags.0 & 0x3;\nlet f = PageFlags(0);\n";
        let hits = lint_source("tiered-mem", "crates/tiered-mem/src/system.rs", bad);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|f| f.rule == "flags-encapsulation"));
        // page.rs itself owns the representation.
        assert!(lint_source("tiered-mem", "crates/tiered-mem/src/page.rs", bad).is_empty());
        // Named accessors are the point of the rule.
        let good = "let f = PageFlags::from_bits(0); let b = f.bits();\n";
        assert!(lint_source("tiered-mem", "crates/tiered-mem/src/system.rs", good).is_empty());
    }

    #[test]
    fn bad_waiver_is_reported() {
        let src = "// lint:allow(timestamp-cast)\nfn f(scan_ms: u64) -> u32 { scan_ms as u32 }\n";
        let hits = lint_source("chrono-core", "crates/chrono-core/src/x.rs", src);
        // Reason-less waiver does not silence, and is itself a finding.
        assert!(hits.iter().any(|f| f.rule == "bad-waiver"));
        assert!(hits
            .iter()
            .any(|f| f.rule == "timestamp-cast" && f.waived == Waived::No));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    fn t() { let _ = Instant::now(); let x: HashMap<u8,u8> = HashMap::new(); for _ in &x {} }
}
";
        assert!(lint_source("chrono-core", "crates/chrono-core/src/x.rs", src).is_empty());
    }

    #[test]
    fn baseline_waives_and_reports_stale_entries() {
        let entries = parse_baseline(
            "# comment\nwall-clock\tcrates/x/src/a.rs\tlet t = Instant::now();\nhash-iter\tgone.rs\tfor x in m {}\n",
        );
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "wall-clock");
    }

    #[test]
    fn shared_state_flagged_in_restricted_code_only() {
        for bad in [
            "static mut COUNTER: u32 = 0;\n",
            "let m = Mutex::new(0);\n",
            "let c = RefCell::new(0);\n",
            "use std::sync::atomic::AtomicU64;\n",
            "unsafe { *p = 1; }\n",
        ] {
            let hits = lint_source("tiering-policies", "crates/tiering-policies/src/x.rs", bad);
            assert_eq!(hits.len(), 1, "{bad:?} -> {hits:?}");
            assert_eq!(hits[0].rule, "shared-state");
            // Unrestricted crates (e.g. the analysis tooling itself) are free.
            assert!(
                lint_source("tiering-analysis", "crates/tiering-analysis/src/x.rs", bad).is_empty()
            );
        }
        // Restriction also applies by file, not just by crate.
        let hits = lint_source(
            "harness",
            "crates/harness/src/tenants.rs",
            "let m = Mutex::new(0);\n",
        );
        assert!(hits.iter().any(|f| f.rule == "shared-state"));
        // Waivable like any other rule.
        let waived = "\
// lint:allow(shared-state) startup-only registration, never in shard-step
static mut COUNTER: u32 = 0;
";
        let hits = lint_source(
            "tiering-policies",
            "crates/tiering-policies/src/x.rs",
            waived,
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].waived, Waived::Inline);
    }

    #[test]
    fn rng_stream_flags_duplicate_split_consumption() {
        let bad = "\
let a = DetRng::split(seed, 7);
let b = DetRng::split(seed, 7);
";
        let hits = lint_source("tiering-policies", "crates/tiering-policies/src/x.rs", bad);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "rng-stream");
        assert_eq!(hits[0].line, 2);
        assert!(hits[0].snippet.contains("already split at line 1"));
        // Distinct stream ids: each stream has exactly one consumer.
        let good = "\
let a = DetRng::split(seed, 7);
let b = DetRng::split(seed, 8);
";
        assert!(
            lint_source("tiering-policies", "crates/tiering-policies/src/x.rs", good).is_empty()
        );
        // Whitespace-insensitive stream matching.
        let bad = "let a = DetRng::split(s, id + 1);\nlet b = DetRng::split(s, id+1);\n";
        let hits = lint_source("tiering-policies", "crates/tiering-policies/src/x.rs", bad);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn rng_stream_flags_mut_detrng_in_barrier_phase_files() {
        let src = "fn feed(rng: &mut DetRng) {}\n";
        let hits = lint_source(
            "tiering-policies",
            "crates/tiering-policies/src/shard.rs",
            src,
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "rng-stream");
        // Ordinary restricted code may pass RNGs by &mut freely.
        assert!(lint_source("chrono-core", "crates/chrono-core/src/x.rs", src).is_empty());
    }

    #[test]
    fn barrier_phase_flags_mutators_reachable_from_shard_step() {
        let src = "\
fn step_to(&mut self) { self.tick(); }
fn tick(&mut self) { let g = admission_grants(4, &claims); }
fn barrier(&mut self) { ctl.apply(1, 2); }
";
        let hits = lint_source(
            "tiering-policies",
            "crates/tiering-policies/src/shard.rs",
            src,
        );
        // `admission_grants` is transitively reachable from the step root;
        // `apply` in the barrier fn is not reachable and stays legal.
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "barrier-phase");
        assert_eq!(hits[0].line, 2);
        assert!(hits[0].snippet.contains("admission_grants"));
    }

    #[test]
    fn barrier_phase_walks_thread_scope_bodies() {
        let src = "\
fn run(&mut self) {
    thread::scope(|s| {
        s.spawn(|| worker());
    });
}
fn worker() { let g = split_weighted(64, 128, &w); }
";
        let hits = lint_source(
            "tiering-policies",
            "crates/tiering-policies/src/shard.rs",
            src,
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "barrier-phase");
        assert_eq!(hits[0].line, 6);
        // The same mutator outside any parallel span is legal.
        let good = "fn barrier(&mut self) { let p = split_weighted(64, 128, &w); }\n";
        assert!(lint_source(
            "tiering-policies",
            "crates/tiering-policies/src/shard.rs",
            good
        )
        .is_empty());
    }

    #[test]
    fn json_round_trips_findings() {
        let report = LintReport {
            findings: vec![
                Finding {
                    rule: "wall-clock",
                    file: "crates/x/src/a.rs".into(),
                    line: 12,
                    snippet: "let t = Instant::now(); // \"quoted\"\\tail".into(),
                    waived: Waived::Inline,
                },
                Finding {
                    rule: "barrier-phase",
                    file: "crates/y/src/b.rs".into(),
                    line: 3,
                    snippet: "apply(1, 2)  (cross-shard mutator `apply` ...)".into(),
                    waived: Waived::No,
                },
            ],
            files_scanned: 61,
            stale_baseline: vec!["hash-iter\tgone.rs\tfor x in m {}".into()],
        };
        let json = findings_to_json(&report);
        let (files, findings, stale) = findings_from_json(&json).expect("parse back");
        assert_eq!(files, 61);
        assert_eq!(findings, report.findings);
        assert_eq!(stale, report.stale_baseline);
        assert!(json.contains("\"unwaived\": 1"));
    }

    #[test]
    fn whole_workspace_is_clean() {
        // The CI gate, as a unit test: zero unwaived findings against the
        // committed baseline.
        let baseline = std::fs::read_to_string(crate::baseline_path()).unwrap_or_default();
        let report = lint_workspace(&crate::workspace_root(), &baseline).unwrap();
        let bad: Vec<String> = unwaived(&report.findings)
            .iter()
            .map(|f| f.to_string())
            .collect();
        assert!(
            bad.is_empty(),
            "unwaived lint findings:\n{}",
            bad.join("\n")
        );
        assert!(
            report.stale_baseline.is_empty(),
            "stale baseline entries: {:?}",
            report.stale_baseline
        );
        assert!(
            report.files_scanned > 40,
            "scanned {}",
            report.files_scanned
        );
    }
}
