//! Exhaustive small-scope model checking of the page lifecycle.
//!
//! The state of one page, as far as the substrate and every policy are
//! concerned, is its 16-bit [`PageFlags`] word (the residency tier is the
//! two-bit index spread across `TIER_LO`/`TIER_HI`) plus one bit of
//! promotion-queue membership. That is 2^17 = 131072 states — small enough
//! to enumerate the reachable set *exactly* rather than sample it, which is
//! the whole trick: the transition relation below restates, as pure
//! functions, what `TieredSystem`, `AddressSpace`, `ChronoPolicy`, and the
//! baseline policies actually do to a page's flags (scan-unmap, hint-fault,
//! DCSC probes, candidate filtering, enqueue, two-phase migration
//! begin/abort/complete along adjacent tier edges, split, swap-out/in,
//! reclaim, LRU rotation), and a BFS from the zero state visits everything
//! those functions can ever produce.
//!
//! Two consumers:
//!
//! - `harness model-check` asserts that no reachable state violates the
//!   declared [`legality_rules`] (e.g. `PROT_NONE ∧ ¬PRESENT`,
//!   `HUGE_HEAD ∧ HUGE_SPLIT`, `PRESENT ∧ SWAPPED` must be unreachable) and
//!   diffs the rendered reachable set against the committed golden.
//! - The tiering-verify oracle calls [`flag_word_reachable`] after every
//!   fuzz op: every flag word observed at runtime must be ⊆ the statically
//!   reachable set (the runtime ⊆ static *bridge check*). The model is a
//!   deliberate over-approximation — transitions fire from any state
//!   satisfying their guard, ignoring cross-page context — so the bridge
//!   direction is sound: a runtime word outside the set is always a bug in
//!   either the substrate or the model's claims, never fuzzer bad luck.

use std::sync::OnceLock;

use tiered_mem::{PageFlags, MAX_TIERS};

/// Model-only bit: the page sits in a policy promotion queue. Lives just
/// above the real flag bits so one `u32` holds the whole model state.
pub const QUEUED: u32 = 1 << PageFlags::BITS;

/// Total model state space: every flag bit plus the queued bit.
pub const STATE_SPACE: usize = 1 << (PageFlags::BITS + 1);

const P: u32 = PageFlags::PRESENT as u32;
const PN: u32 = PageFlags::PROT_NONE as u32;
const A: u32 = PageFlags::ACCESSED as u32;
const D: u32 = PageFlags::DIRTY as u32;
const PB: u32 = PageFlags::PROBED as u32;
const DEM: u32 = PageFlags::DEMOTED as u32;
const HH: u32 = PageFlags::HUGE_HEAD as u32;
const HS: u32 = PageFlags::HUGE_SPLIT as u32;
const TL: u32 = PageFlags::TIER_LO as u32;
const TH: u32 = PageFlags::TIER_HI as u32;
const LA: u32 = PageFlags::LRU_ACTIVE as u32;
const C: u32 = PageFlags::CANDIDATE as u32;
const POL: u32 = PageFlags::POLICY_BIT as u32;
const SW: u32 = PageFlags::SWAPPED as u32;
const MIG: u32 = PageFlags::MIGRATING as u32;
const PSN: u32 = PageFlags::POISONED as u32;
const MASK: u32 = PageFlags::MASK as u32;

fn has(s: u32, m: u32) -> bool {
    s & m == m
}

/// Decodes the residency tier index from the two tier bits (`TIER_LO` is
/// stored inverted) — the model-side mirror of `PageFlags::tier`.
fn tier_of(s: u32) -> u8 {
    (u8::from(s & TH != 0) << 1) | u8::from(s & TL == 0)
}

/// Encodes tier index `t` into the tier bits of `s` — the model-side mirror
/// of `PageFlags::set_tier`.
fn with_tier(s: u32, t: u8) -> u32 {
    debug_assert!((t as usize) < MAX_TIERS);
    let mut s = s & !(TL | TH);
    if t & 1 == 0 {
        s |= TL;
    }
    if t >> 1 != 0 {
        s |= TH;
    }
    s
}

/// Whether the page sits in the top (fast) tier.
fn in_fast(s: u32) -> bool {
    tier_of(s) == 0
}

/// Flag bits a never-mapped huge-block tail entry can carry: its tier (set
/// by `demand_map`/`migrate` on the whole block) and the accessed/dirty
/// stamps `TieredSystem::access` leaves on the faulted base offset.
const TAIL_MASK: u32 = TL | TH | A | D;

/// One named transition of the page lifecycle: `apply` returns every
/// successor state (empty when the guard rejects the state).
pub struct Transition {
    /// Name used in reports and the self-test.
    pub name: &'static str,
    /// The pure transition function.
    pub apply: fn(u32) -> Vec<u32>,
}

/// The full transition relation. Each entry cites the code it abstracts;
/// guards and effects must be kept in sync with those sites (the bridge
/// check and the committed golden both fail loudly when they drift).
pub fn transitions() -> Vec<Transition> {
    vec![
        // TieredSystem::access → demand_map (+ swap-in): maps the PTE page,
        // clearing SWAPPED, choosing a tier (pick_alloc_tier can spill into
        // any tier of the chain), optionally as a huge head, and inserting
        // into the active LRU; the access then stamps A (and D on writes).
        // A split block can never be huge-mapped again.
        Transition {
            name: "demand_fault",
            apply: |s| {
                if has(s, P) {
                    return vec![];
                }
                let mut out = Vec::new();
                for tier in 0..MAX_TIERS as u8 {
                    for dirty in [0, D] {
                        let base = (with_tier(s & !SW, tier) | P | LA | A | dirty) & !PN;
                        out.push(base);
                        if !has(s, HS) {
                            out.push(base | HH);
                        }
                    }
                }
                out
            },
        },
        // TieredSystem::access on a present page: a hint fault consumes
        // PROT_NONE; the hardware bits are stamped.
        Transition {
            name: "access_present",
            apply: |s| {
                if !has(s, P) {
                    return vec![];
                }
                vec![(s & !PN) | A, (s & !PN) | A | D]
            },
        },
        // demand_map/migrate on a huge block: tail entries (never PRESENT
        // while the block is intact) get only their tier flipped.
        Transition {
            name: "tail_set_tier",
            apply: |s| {
                if has(s, P) || s & !TAIL_MASK != 0 {
                    return vec![];
                }
                (0..MAX_TIERS as u8).map(|t| with_tier(s, t)).collect()
            },
        },
        // TieredSystem::access on a huge mapping: the faulted base offset's
        // tail entry is stamped A/D without ever becoming PRESENT.
        Transition {
            name: "tail_touch",
            apply: |s| {
                if has(s, P) || s & !TAIL_MASK != 0 {
                    return vec![];
                }
                vec![s | A, s | A | D]
            },
        },
        // Ticking-scan / NUMA-balancing scan: poison a present PTE. The
        // linux_nb and autotiering scanners poison every tier, so the guard
        // is presence alone.
        Transition {
            name: "scan_unmap",
            apply: |s| if has(s, P) { vec![s | PN] } else { vec![] },
        },
        // ChronoPolicy::issue_probes: PG_probed + PROT_NONE on a present,
        // unpoisoned, unprobed page.
        Transition {
            name: "probe_issue",
            apply: |s| {
                if has(s, P) && !has(s, PN) && !has(s, PB) {
                    vec![s | PB | PN]
                } else {
                    vec![]
                }
            },
        },
        // ChronoPolicy::handle_probe_fault, first round: re-arm the poison,
        // keeping PG_probed.
        Transition {
            name: "probe_rearm",
            apply: |s| {
                if has(s, P | PB) && !has(s, PN) {
                    vec![s | PN]
                } else {
                    vec![]
                }
            },
        },
        // ChronoPolicy::handle_probe_fault, second round: the probe
        // completes (the hint fault itself already cleared PROT_NONE).
        Transition {
            name: "probe_complete",
            apply: |s| {
                if has(s, P | PB) && !has(s, PN) {
                    vec![s & !PB]
                } else {
                    vec![]
                }
            },
        },
        // ChronoPolicy::expire_stale_probes: drop the probe and its poison.
        Transition {
            name: "probe_expire",
            apply: |s| {
                if has(s, PB) {
                    vec![s & !(PB | PN)]
                } else {
                    vec![]
                }
            },
        },
        // ChronoPolicy::handle_scan_fault (and the memtis/flexmem deferred
        // queues): a page below the top tier that passed the candidate
        // filter is marked CANDIDATE and enqueued for promotion.
        Transition {
            name: "candidate_enqueue",
            apply: |s| {
                if has(s, P) && !in_fast(s) && !has(s, C) {
                    vec![s | C | QUEUED]
                } else {
                    vec![]
                }
            },
        },
        // PromotionQueue drain / deferred-queue drop: leaving the queue
        // always clears CANDIDATE (promotion itself is a separate step).
        Transition {
            name: "dequeue",
            apply: |s| {
                if has(s, QUEUED) {
                    vec![s & !(QUEUED | C)]
                } else {
                    vec![]
                }
            },
        },
        // TieredSystem::begin_migrate: opens a two-phase transaction on the
        // head of a present unit that is not already in flight. The PTE is
        // otherwise untouched — the old copy keeps serving reads.
        Transition {
            name: "migrate_begin",
            apply: |s| {
                if has(s, P) && !has(s, MIG) {
                    vec![s | MIG]
                } else {
                    vec![]
                }
            },
        },
        // TieredSystem::abort_migration: a write to the in-flight unit (or
        // a split/swap-out racing the copy) kills the transaction. The
        // write-abort path re-dirties; the split/swap paths just clear.
        Transition {
            name: "migrate_abort",
            apply: |s| {
                if has(s, P | MIG) {
                    vec![s & !MIG, (s & !MIG) | D]
                } else {
                    vec![]
                }
            },
        },
        // TieredSystem::complete_txn on an up edge (both the compat
        // `migrate` wrapper and clock-driven completion retire through it):
        // the page moves one tier toward the top, clearing the transaction
        // mark and the transient marks (poison, candidacy, probe, thrash
        // watch, frame poisoning — the bad source frame is quarantined, the
        // page now sits on a healthy one), landing on the active LRU of the
        // destination tier.
        Transition {
            name: "promote",
            apply: |s| {
                let t = tier_of(s);
                if has(s, P | MIG) && t > 0 {
                    vec![with_tier(s & !(PN | C | PB | DEM | MIG | PSN), t - 1) | LA]
                } else {
                    vec![]
                }
            },
        },
        // TieredSystem::complete_txn on a down edge: same clears minus the
        // thrash watch; lands on the inactive LRU one tier below.
        Transition {
            name: "demote",
            apply: |s| {
                let t = tier_of(s);
                if has(s, P | MIG) && (t as usize) < MAX_TIERS - 1 {
                    vec![with_tier(s & !(PN | C | PB | LA | MIG | PSN), t + 1)]
                } else {
                    vec![]
                }
            },
        },
        // TieredSystem::poison_frame (fault injection): an uncorrectable
        // error marks the resident page; any in-flight transaction is
        // aborted first, and huge mappings are split before the specific
        // base page is marked, so neither MIG nor HUGE_HEAD co-occur with
        // the poisoning itself. Soft-offline then retires the page through
        // the ordinary migrate (promote/demote clear PSN and quarantine the
        // bad frame) or swap-out paths.
        Transition {
            name: "frame_poison",
            apply: |s| {
                if has(s, P) && !has(s, MIG) && !has(s, PSN) && !has(s, HH) {
                    vec![s | PSN]
                } else {
                    vec![]
                }
            },
        },
        // ChronoPolicy::proactive_demote, after a successful demotion: arm
        // the thrashing monitor and poison for the re-fault.
        Transition {
            name: "thrash_arm",
            apply: |s| {
                if has(s, P) && !in_fast(s) {
                    vec![s | DEM | PN]
                } else {
                    vec![]
                }
            },
        },
        // ChronoPolicy::handle_scan_fault on a watched page: the thrash is
        // recorded and the watch cleared.
        Transition {
            name: "thrash_clear",
            apply: |s| {
                if has(s, P | DEM) && !in_fast(s) {
                    vec![s & !DEM]
                } else {
                    vec![]
                }
            },
        },
        // flexmem's two-touch marker: POLICY_BIT toggles on present
        // lower-tier pages (it may then persist across promotions).
        Transition {
            name: "policy_bit_toggle",
            apply: |s| {
                if has(s, P) && !in_fast(s) {
                    vec![s | POL, s & !POL]
                } else {
                    vec![]
                }
            },
        },
        // Clock-style scanners (telescope, multiclock) and LRU aging read
        // and clear the accessed bit of present pages.
        Transition {
            name: "clear_accessed",
            apply: |s| if has(s, P) { vec![s & !A] } else { vec![] },
        },
        // lru_insert(Active|Inactive) via aging, rotation, or the fuzzer's
        // LruMove: flips the list bit of a present page.
        Transition {
            name: "lru_rotate",
            apply: |s| {
                if has(s, P) {
                    vec![s | LA, s & !LA]
                } else {
                    vec![]
                }
            },
        },
        // TieredSystem::swap_out: an in-flight migration is aborted first,
        // then the head loses presence and every transient mark; the tier
        // bits, LRU_ACTIVE, HUGE_HEAD, HUGE_SPLIT and POLICY_BIT are left
        // stale (and queue membership is unaffected — the drain discovers
        // the eviction later). A poisoned page's freed frame is quarantined
        // and the mark cleared — the swap copy is clean data on a clean
        // device.
        Transition {
            name: "swap_out",
            apply: |s| {
                if has(s, P) {
                    vec![(s & !(P | PN | A | D | PB | DEM | C | MIG | PSN)) | SW]
                } else {
                    vec![]
                }
            },
        },
        // TieredSystem::split_block: an in-flight migration of the block is
        // aborted, then the head trades HUGE_HEAD for HUGE_SPLIT; every
        // tail inherits the head's post-abort word minus HUGE_HEAD (tails
        // keep their own pfn/stamp but not their flags).
        Transition {
            name: "split",
            apply: |s| {
                if has(s, HS) {
                    return vec![];
                }
                vec![(s | HS) & !(HH | MIG), s & !(HH | MIG)]
            },
        },
    ]
}

/// A legality predicate over model states: `illegal` returns true for
/// states that must be unreachable.
pub struct LegalityRule {
    /// Stable name used in reports.
    pub name: &'static str,
    /// The predicate (true ⇒ the state is illegal).
    pub illegal: fn(u32) -> bool,
}

/// The declared legal-state rules. These are the combination rules that
/// previously lived only in comments and the runtime oracle.
pub fn legality_rules() -> Vec<LegalityRule> {
    vec![
        // A poisoned PTE with nothing mapped (covers PROT_NONE ∧ SWAPPED):
        // a hint fault on it would demand-map instead of hinting.
        LegalityRule {
            name: "prot_none_requires_present",
            illegal: |s| has(s, PN) && !has(s, P),
        },
        // A page cannot be both resident and on the swap device.
        LegalityRule {
            name: "present_excludes_swapped",
            illegal: |s| has(s, P | SW),
        },
        // A block is either an intact huge mapping or split, never both.
        LegalityRule {
            name: "huge_head_excludes_split",
            illegal: |s| has(s, HH | HS),
        },
        // The thrashing monitor only watches resident lower-tier pages.
        LegalityRule {
            name: "demoted_requires_present",
            illegal: |s| has(s, DEM) && !has(s, P),
        },
        LegalityRule {
            name: "demoted_excludes_fast",
            illegal: |s| has(s, DEM) && in_fast(s),
        },
        // Promotion candidacy means "resident below the top tier".
        LegalityRule {
            name: "candidate_requires_present",
            illegal: |s| has(s, C) && !has(s, P),
        },
        LegalityRule {
            name: "candidate_excludes_fast",
            illegal: |s| has(s, C) && in_fast(s),
        },
        // A DCSC probe outlives neither its page nor a migration.
        LegalityRule {
            name: "probed_requires_present",
            illegal: |s| has(s, PB) && !has(s, P),
        },
        // swap_out scrubs the hardware bits; nothing re-stamps a swapped
        // page without first demand-mapping it.
        LegalityRule {
            name: "swapped_is_clean",
            illegal: |s| has(s, SW) && s & (A | D) != 0,
        },
        // A migration transaction is only ever open on a mapped head; every
        // unmap path (swap-out, split of the head) aborts it first.
        LegalityRule {
            name: "migrating_requires_present",
            illegal: |s| has(s, MIG) && !has(s, P),
        },
        // Frame poisoning marks a *resident* page awaiting soft-offline;
        // every unmap path (migrate-complete, swap-out) quarantines the bad
        // frame and clears the mark in the same step.
        LegalityRule {
            name: "poisoned_requires_present",
            illegal: |s| has(s, PSN) && !has(s, P),
        },
        // Huge mappings are split before the specific base page is marked,
        // so an intact huge head is never itself poisoned.
        LegalityRule {
            name: "poisoned_excludes_huge_head",
            illegal: |s| has(s, PSN | HH),
        },
    ]
}

/// Result of one exhaustive enumeration.
pub struct ModelReport {
    /// Every reachable state word (flag bits plus [`QUEUED`]), sorted.
    pub reachable: Vec<u32>,
    /// Reachable states violating a legality rule, with the rule name.
    pub illegal: Vec<(u32, &'static str)>,
    /// Transitions that never fired from any reachable state (dead
    /// transitions indicate a guard typo).
    pub dead_transitions: Vec<&'static str>,
}

/// Enumerates the exact reachable set from the zero state (a fresh
/// `PageEntry::default()` word) under `ts`, then applies `rules`.
pub fn check_model(ts: &[Transition], rules: &[LegalityRule]) -> ModelReport {
    let mut seen = vec![false; STATE_SPACE];
    let mut fired = vec![false; ts.len()];
    let mut frontier = vec![0u32];
    seen[0] = true;
    while let Some(s) = frontier.pop() {
        for (i, t) in ts.iter().enumerate() {
            for succ in (t.apply)(s) {
                debug_assert!(
                    (succ as usize) < STATE_SPACE,
                    "{} produced out-of-space state {succ:#x}",
                    t.name
                );
                fired[i] = true;
                if !seen[succ as usize] {
                    seen[succ as usize] = true;
                    frontier.push(succ);
                }
            }
        }
    }
    let reachable: Vec<u32> = (0..STATE_SPACE)
        .filter(|&s| seen[s])
        .map(|s| s as u32)
        .collect();
    let mut illegal = Vec::new();
    for &s in &reachable {
        for r in rules {
            if (r.illegal)(s & MASK) {
                illegal.push((s, r.name));
            }
        }
    }
    let dead_transitions = ts
        .iter()
        .zip(&fired)
        .filter(|(_, &f)| !f)
        .map(|(t, _)| t.name)
        .collect();
    ModelReport {
        reachable,
        illegal,
        dead_transitions,
    }
}

/// Words in the flag-word reachability bitmap (one bit per possible word).
const BITMAP_WORDS: usize = (1usize << PageFlags::BITS) / 64;

/// The statically reachable *flag-word* projection (queue bit dropped),
/// as a bitmap over every possible flag word. Computed once, lazily.
fn reachable_words() -> &'static [u64; BITMAP_WORDS] {
    static WORDS: OnceLock<[u64; BITMAP_WORDS]> = OnceLock::new();
    WORDS.get_or_init(|| {
        let report = check_model(&transitions(), &[]);
        let mut bits = [0u64; BITMAP_WORDS];
        for s in report.reachable {
            let w = s & MASK;
            bits[(w >> 6) as usize] |= 1 << (w & 63);
        }
        bits
    })
}

/// The bridge check: whether a runtime-observed `PageFlags` word is inside
/// the statically reachable set. Every word the substrate can legitimately
/// produce must satisfy this; the tiering-verify oracle asserts it after
/// every fuzz op.
pub fn flag_word_reachable(word: u16) -> bool {
    let w = word as u32;
    reachable_words()[(w >> 6) as usize] & (1 << (w & 63)) != 0
}

/// Renders a report in the committed-golden format: a header, then one
/// line per reachable state (`hex  [Q|]NAMES`).
pub fn render_report(report: &ModelReport) -> String {
    let mut out = String::new();
    out.push_str("# PageFlags lifecycle reachability (regenerate: harness model-check --bless)\n");
    out.push_str(&format!(
        "# reachable: {} of {} states ({} flag bits + queued)\n",
        report.reachable.len(),
        STATE_SPACE,
        PageFlags::BITS,
    ));
    let words: std::collections::BTreeSet<u32> =
        report.reachable.iter().map(|&s| s & MASK).collect();
    out.push_str(&format!("# distinct flag words: {}\n", words.len()));
    for &s in &report.reachable {
        let q = if s & QUEUED != 0 { "Q|" } else { "" };
        out.push_str(&format!(
            "{:05x} {}{}\n",
            s,
            q,
            PageFlags::from_bits((s & MASK) as u16).describe()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The historical fast-tier word shape: `TIER_LO` set, `TIER_HI` clear —
    /// exactly the old single-bit `IN_FAST` encoding.
    const F: u32 = TL;

    #[test]
    fn reachable_set_is_legal_and_nontrivial() {
        let report = check_model(&transitions(), &legality_rules());
        let pretty: Vec<String> = report
            .illegal
            .iter()
            .map(|(s, r)| {
                format!(
                    "{r}: {:05x} {}",
                    s,
                    PageFlags::from_bits((s & MASK) as u16).describe()
                )
            })
            .collect();
        assert!(
            pretty.is_empty(),
            "illegal reachable states:\n{}",
            pretty.join("\n")
        );
        assert!(
            report.dead_transitions.is_empty(),
            "dead: {:?}",
            report.dead_transitions
        );
        // Sanity bounds: far more than the handful of states a trivial
        // model would produce, far less than the whole space.
        assert!(report.reachable.len() > 100, "{}", report.reachable.len());
        assert!(
            report.reachable.len() < STATE_SPACE / 2,
            "{}",
            report.reachable.len()
        );
    }

    #[test]
    fn tier_codec_matches_page_flags() {
        // The model-side tier codec must mirror PageFlags::tier/set_tier
        // exactly, or the bridge check silently diverges from the substrate.
        for t in 0..MAX_TIERS as u8 {
            let s = with_tier(P | A, t);
            assert_eq!(tier_of(s), t);
            let mut f = PageFlags::from_bits((P | A) as u16);
            f.set_tier(tiered_mem::TierId(t));
            assert_eq!(s, f.bits() as u32);
        }
        // The zero state decodes as tier 1 (slow), like a default entry.
        assert_eq!(tier_of(0), 1);
        assert!(in_fast(F));
    }

    #[test]
    fn key_states_classified_correctly() {
        // Paper-meaningful states that must be reachable.
        for (word, why) in [
            (0u32, "fresh entry"),
            (P | A | LA | F, "hot fast page on the active list"),
            (P | PN | PB, "mid-probe DCSC page"),
            (P | DEM | PN, "thrash-watched page after proactive demotion"),
            (P | C, "enqueued candidate"),
            (SW | LA | F, "swapped page with stale fast/LRU bits"),
            (P | HS | A, "present head of a split block"),
            (A | D | F, "touched tail of an intact fast huge block"),
            (
                P | A | LA | F | MIG,
                "fast page mid-demotion, copy in flight",
            ),
            (
                P | A | D | MIG,
                "slow page mid-promotion after a write-abort race",
            ),
            (P | PSN | A, "poisoned resident page awaiting soft-offline"),
            (
                P | PSN | MIG | F,
                "poisoned fast page with the soft-offline copy in flight",
            ),
            (P | PSN | HS, "poisoned base page of a split huge block"),
            // Deep-chain states: the tier-2 and tier-3 encodings.
            (with_tier(P | A | LA, 2), "hot page resident in tier 2"),
            (with_tier(P | C, 3) | QUEUED, "queued candidate in tier 3"),
            (
                with_tier(P | DEM | PN, 2),
                "thrash-watched page demoted into tier 2",
            ),
            (with_tier(A | D, 3), "touched tail of a tier-3 huge block"),
        ] {
            assert!(
                flag_word_reachable((word & MASK) as u16),
                "{why}: {:05x} should be reachable",
                word
            );
        }
        // Declared-illegal states that must not be.
        for (word, why) in [
            (PN, "poison without presence"),
            (P | SW, "present and swapped"),
            (HH | HS | P, "head and split at once"),
            (DEM, "thrash watch on an unmapped page"),
            (C | F | P, "fast-tier candidate"),
            (SW | D, "dirty swapped page"),
            (MIG, "transaction on an unmapped page"),
            (SW | MIG, "transaction on a swapped page"),
            (PSN, "poison mark on an unmapped page"),
            (SW | PSN, "poison mark surviving a swap-out"),
            (P | PSN | HH, "poison mark on an intact huge head"),
        ] {
            assert!(
                !flag_word_reachable(word as u16),
                "{why}: {:05x} should be unreachable",
                word
            );
        }
        // TIER_HI alone is a valid word now: an unmapped tier-3 tail. The
        // old model asserted bit 15 unreachable; the tier-index encoding
        // deliberately claimed it.
        assert!(flag_word_reachable(PageFlags::TIER_HI));
    }

    #[test]
    fn self_test_injected_illegal_transition_is_reported() {
        // The model checker must actually be able to fail: add a buggy
        // transition that arms the thrashing monitor without checking
        // presence (the guard the real proactive_demote relies on) and
        // assert the violation is caught and attributed.
        let mut ts = transitions();
        ts.push(Transition {
            name: "buggy_thrash_arm_without_present",
            apply: |s| if !has(s, P) { vec![s | DEM] } else { vec![] },
        });
        let report = check_model(&ts, &legality_rules());
        assert!(
            report
                .illegal
                .iter()
                .any(|(s, rule)| *rule == "demoted_requires_present" && !has(*s, P)),
            "injected illegal transition was not reported"
        );
    }

    #[test]
    fn render_is_stable_and_parseable() {
        let report = check_model(&transitions(), &[]);
        let text = render_report(&report);
        assert!(text.starts_with("# PageFlags lifecycle reachability"));
        // One body line per reachable state, each starting with its hex word.
        let body: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(body.len(), report.reachable.len());
        assert!(body[0].starts_with("00000 "));
    }
}
