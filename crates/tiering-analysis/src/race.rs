//! chrono-race: exhaustive small-scope checking of the shard barrier
//! protocol.
//!
//! PR 7's `ShardedSim` promises that trace digests are independent of how
//! shards are scheduled onto threads: each shard's step is a pure function
//! of its own state, and cross-shard effects (admission grants, slot caps)
//! are applied only at single-threaded barriers, in tenant-id order. This
//! module proves the *protocol* half of that promise by brute force: it
//! enumerates **every interleaving** of shard steps between barriers for
//! small configurations (2–3 shards, 2–3 barrier windows) of the
//! MigrationTxn × admission-slot × fault-completion protocol, and asserts
//! that
//!
//! - every schedule reaches the **same canonical post-barrier state**
//!   (commutativity of the conservative time-stepping design), and
//! - **slot-flow conservation** holds at every explored state:
//!   `begun == completed + aborted + faulted + in_flight`, per shard.
//!
//! The transition functions mirror the real code sites: [`RaceOp`] mirrors
//! `TieredSystem::begin_migrate` (bounded by the barrier-granted slot cap,
//! rejections counted as backpressure), write-abort, and completion /
//! fault-completion retiring in-flight transactions;
//! [`barrier`](self) mirrors `AdmissionControl::apply` (activity-delta
//! demand detection, first-barrier treats everyone as demanding, grants
//! applied in tenant-id order) over [`canonical_grants`] — an
//! **independent reimplementation** of
//! `tiering_policies::shard::admission_grants`, used N-version style both
//! here and by the `tiering-verify` fuzz oracle as the runtime bridge
//! (observed barrier grants must equal the enumerated canonical grants).
//!
//! Exploration is a memoized DAG walk: nodes are `(per-shard program
//! counters, global state)` and path counts are summed per node, so the
//! number of *schedules* certified is exact (the multinomial
//! `(Σkᵢ)!/Πkᵢ!`) while the number of *distinct states* visited stays
//! small. The order in which shards *finish* a window is part of the state
//! (`arrivals`), which is what lets the self-test inject an
//! order-dependent grant rule ([`GrantRule::ArrivalOrder`]) and prove the
//! checker catches it: under that rule the post-barrier states fail to
//! collapse to one.

use std::collections::BTreeMap;

/// One shard-step operation of the migration protocol model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceOp {
    /// `begin_migrate`: consumes a granted slot, or counts backpressure
    /// when the shard's cap is exhausted.
    Begin,
    /// A write to a page with an active copy: aborts one in-flight
    /// transaction (no-op when nothing is in flight).
    Write,
    /// `complete_due_migrations` retiring one transaction normally.
    Complete,
    /// A copy fault retiring one transaction abnormally (PR 5's
    /// transient/poisoned completion path).
    Fault,
}

/// How the barrier orders demanding shards when building slot claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantRule {
    /// Tenant-id order — the shipped `AdmissionControl::apply` behavior.
    TenantId,
    /// The order shards happened to finish the window — the injected bug
    /// the self-test must catch (grants then depend on the schedule).
    ArrivalOrder,
}

/// One demanding tenant's claim on the slot pool, as the model and the
/// runtime bridge see it. Field-for-field the same data as
/// `tiering_policies::shard::SlotClaim`; duplicated here so the analysis
/// crate stays dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceClaim {
    /// Admission weight (zero behaves as one).
    pub weight: u64,
    /// Consecutive barriers this tenant demanded and received nothing.
    pub starvation: u32,
}

/// Independent reimplementation of the barrier grant computation
/// (`admission_grants` in `tiering-policies/src/shard.rs`), kept
/// deliberately different in structure — closed-form round-robin instead
/// of a modular loop, selection sort keys instead of tuple sorts — so a
/// bug in either copy shows up as a mismatch. The `tiering-verify` oracle
/// compares the two on every fuzzed barrier.
///
/// Weighted regime (`total_slots ≥ 2·n`): every claimant is floored at
/// `max(1, ceil(total·wᵢ / 2Σw))`; the leftover goes round-robin in
/// largest-deficit order (ties: starvation descending, then claim index).
/// Scarce regime: one slot each to the `total_slots` most-starved (then
/// heaviest, then lowest-index) claimants.
pub fn canonical_grants(total_slots: u64, claims: &[RaceClaim]) -> Vec<u64> {
    let n = claims.len();
    if n == 0 || total_slots == 0 {
        return vec![0; n];
    }
    let w = |i: usize| u128::from(claims[i].weight.max(1));
    if u128::from(total_slots) >= 2 * n as u128 {
        let sum_w: u128 = (0..n).map(w).sum();
        let mut grants: Vec<u64> = (0..n)
            .map(|i| {
                let num = u128::from(total_slots) * w(i);
                (num.div_ceil(2 * sum_w) as u64).max(1)
            })
            .collect();
        let assigned: u64 = grants.iter().sum();
        let leftover = total_slots - assigned;
        let deficit = |i: usize| num_deficit(u128::from(total_slots) * w(i), grants[i], sum_w);
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| {
            deficit(b)
                .cmp(&deficit(a))
                .then(claims[b].starvation.cmp(&claims[a].starvation))
                .then(a.cmp(&b))
        });
        // Round-robin over the ranking, in closed form: position p in the
        // ranking receives ⌊leftover/n⌋ plus one if p < leftover mod n.
        let per = leftover / n as u64;
        let extra = (leftover % n as u64) as usize;
        for (pos, &i) in idx.iter().enumerate() {
            grants[i] += per + u64::from(pos < extra);
        }
        grants
    } else {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| {
            claims[b]
                .starvation
                .cmp(&claims[a].starvation)
                .then(claims[b].weight.cmp(&claims[a].weight))
                .then(a.cmp(&b))
        });
        let mut grants = vec![0u64; n];
        for &i in idx.iter().take(total_slots as usize) {
            grants[i] = 1;
        }
        grants
    }
}

/// Signed weighted-share deficit of a base grant: `num - base·Σw`.
fn num_deficit(num: u128, base: u64, sum_w: u128) -> i128 {
    num as i128 - (u128::from(base) * sum_w) as i128
}

/// Per-shard migration counters — the model's `ActivitySnapshot`, plus the
/// fault-completion counter the real snapshot folds into aborts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
struct Counters {
    begun: u64,
    completed: u64,
    aborted: u64,
    faulted: u64,
    backpressured: u64,
}

/// The global model state: every shard's protocol counters plus the
/// barrier-time admission bookkeeping (`AdmissionControl` mirrored), plus
/// the order shards finished the current window — kept *in* the state so
/// the exploration can distinguish (and the correct grant rule can be
/// shown to ignore) schedule-dependent arrival orders.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RaceState {
    counters: Vec<Counters>,
    in_flight: Vec<u64>,
    cap: Vec<u64>,
    starvation: Vec<u32>,
    granted_total: Vec<u64>,
    prev: Vec<Counters>,
    arrivals: Vec<u32>,
}

impl RaceState {
    fn new(shards: usize) -> RaceState {
        RaceState {
            counters: vec![Counters::default(); shards],
            in_flight: vec![0; shards],
            cap: vec![0; shards],
            starvation: vec![0; shards],
            granted_total: vec![0; shards],
            prev: vec![Counters::default(); shards],
            arrivals: Vec::new(),
        }
    }

    /// Stable one-line-per-shard rendering, used for the committed golden.
    fn render(&self, out: &mut String) {
        for i in 0..self.counters.len() {
            let c = self.counters[i];
            out.push_str(&format!(
                "  terminal shard{i}: begun={} completed={} aborted={} faulted={} \
                 backpressured={} in_flight={} cap={} granted_total={} starvation={}\n",
                c.begun,
                c.completed,
                c.aborted,
                c.faulted,
                c.backpressured,
                self.in_flight[i],
                self.cap[i],
                self.granted_total[i],
                self.starvation[i],
            ));
        }
    }
}

/// One shard-step transition applied to the *global* state. The checker
/// deliberately does not assume shard isolation — it applies ops to the
/// shared state object and lets the convergence assertion prove that the
/// outcome is schedule-independent anyway.
fn apply_op(st: &mut RaceState, shard: usize, op: RaceOp) {
    match op {
        RaceOp::Begin => {
            if st.in_flight[shard] < st.cap[shard] {
                st.counters[shard].begun += 1;
                st.in_flight[shard] += 1;
            } else {
                st.counters[shard].backpressured += 1;
            }
        }
        RaceOp::Write => {
            if st.in_flight[shard] > 0 {
                st.counters[shard].aborted += 1;
                st.in_flight[shard] -= 1;
            }
        }
        RaceOp::Complete => {
            if st.in_flight[shard] > 0 {
                st.counters[shard].completed += 1;
                st.in_flight[shard] -= 1;
            }
        }
        RaceOp::Fault => {
            if st.in_flight[shard] > 0 {
                st.counters[shard].faulted += 1;
                st.in_flight[shard] -= 1;
            }
        }
    }
}

/// Slot-flow conservation, checked at every explored state: every slot a
/// shard ever consumed is either retired (completed / write-aborted /
/// fault-completed) or still in flight.
fn conservation_violation(st: &RaceState) -> Option<String> {
    for (i, c) in st.counters.iter().enumerate() {
        let retired = c.completed + c.aborted + c.faulted;
        if c.begun != retired + st.in_flight[i] {
            return Some(format!(
                "shard{i}: begun={} != completed+aborted+faulted+in_flight={}+{}",
                c.begun, retired, st.in_flight[i]
            ));
        }
    }
    None
}

/// The single-threaded barrier, mirroring `AdmissionControl::apply`:
/// demand detection by activity delta (or in-flight work) since the last
/// barrier, claims built over the demanding shards, grants computed by
/// [`canonical_grants`] and applied in tenant-id order (slot cap, grant
/// total, starvation counters). `first` treats every shard as demanding.
fn barrier(st: &mut RaceState, weights: &[u64], total_slots: u64, rule: GrantRule, first: bool) {
    let n = st.counters.len();
    let mut active: Vec<usize> = Vec::new();
    for i in 0..n {
        let now = st.counters[i];
        let p = st.prev[i];
        let demanding = first
            || now.begun > p.begun
            || now.completed > p.completed
            || now.aborted > p.aborted
            || now.faulted > p.faulted
            || now.backpressured > p.backpressured
            || st.in_flight[i] > 0;
        st.prev[i] = now;
        if demanding {
            active.push(i);
        }
    }

    // The shipped rule orders claims by tenant id; the injected bug orders
    // them by window arrival, which leaks the schedule into the grants.
    let order: Vec<usize> = match rule {
        GrantRule::TenantId => active.clone(),
        GrantRule::ArrivalOrder => {
            let mut o: Vec<usize> = st
                .arrivals
                .iter()
                .map(|&id| id as usize)
                .filter(|i| active.contains(i))
                .collect();
            for &i in &active {
                if !o.contains(&i) {
                    o.push(i);
                }
            }
            o
        }
    };

    let mut grants = vec![0u64; n];
    if !order.is_empty() {
        let claims: Vec<RaceClaim> = order
            .iter()
            .map(|&i| RaceClaim {
                weight: weights[i],
                starvation: st.starvation[i],
            })
            .collect();
        for (&i, g) in order.iter().zip(canonical_grants(total_slots, &claims)) {
            grants[i] = g;
        }
    }

    for (i, &g) in grants.iter().enumerate() {
        st.cap[i] = g;
        st.granted_total[i] += g;
        if active.contains(&i) {
            if g > 0 {
                st.starvation[i] = 0;
            } else {
                st.starvation[i] += 1;
            }
        } else {
            st.starvation[i] = 0;
        }
    }
}

/// One small-scope configuration the checker explores exhaustively.
#[derive(Debug, Clone)]
pub struct RaceConfig {
    /// Stable name used in the report and golden.
    pub name: &'static str,
    /// Global migration-slot pool re-granted at every barrier.
    pub total_slots: u64,
    /// Per-shard admission weights (shard count = `weights.len()`).
    pub weights: Vec<u64>,
    /// Per-shard op script, re-run in every barrier window.
    pub scripts: Vec<Vec<RaceOp>>,
    /// Barrier windows to explore (each window: all interleavings of all
    /// shards' scripts, then one barrier).
    pub windows: usize,
}

/// The committed small-scope configurations. Chosen to cover both grant
/// regimes, backpressure (a shard scripted past its cap), the zero-cap
/// demand signal (backpressure deltas are how a capless shard demands),
/// write-aborts, fault completions, no-op retires on an empty pipeline,
/// and starvation-counter rotation under scarcity.
pub fn race_configs() -> Vec<RaceConfig> {
    use RaceOp::{Begin, Complete, Fault, Write};
    vec![
        // Two equal-weight shards over five slots: the weighted regime's
        // leftover distribution has a deficit tie that only the claim
        // ordering breaks — the sharpest lens for order-dependent grants.
        RaceConfig {
            name: "two-shard-tie",
            total_slots: 5,
            weights: vec![1, 1],
            scripts: vec![
                vec![Begin, Begin, Complete, Begin],
                vec![Begin, Begin, Begin, Write],
            ],
            windows: 2,
        },
        // Three equal shards over eight slots: weighted regime with a
        // two-slot leftover, plus a fault completion and a backpressured
        // third begin.
        RaceConfig {
            name: "three-shard-weighted",
            total_slots: 8,
            weights: vec![1, 1, 1],
            scripts: vec![
                vec![Begin, Complete, Begin, Begin],
                vec![Begin, Begin, Write, Fault],
                vec![Begin, Begin, Begin, Complete],
            ],
            windows: 2,
        },
        // Scarce regime: two slots across three shards, so somebody
        // starves every window and the starvation counter must rotate the
        // loser to the front — across three windows the grant pattern
        // visits every rotation.
        RaceConfig {
            name: "three-shard-scarce",
            total_slots: 2,
            weights: vec![2, 1, 1],
            scripts: vec![
                vec![Begin, Complete],
                vec![Begin, Write],
                vec![Begin, Begin],
            ],
            windows: 3,
        },
    ]
}

/// Per-window exploration statistics.
#[derive(Debug, Clone, Copy)]
pub struct WindowStats {
    /// Exact number of interleavings certified this window (path-count DP;
    /// equals the multinomial `(Σkᵢ)!/Πkᵢ!` per pre-window state).
    pub schedules: u64,
    /// Distinct `(program counters, state)` nodes visited this window.
    pub nodes: u64,
    /// Distinct post-barrier states. 1 = every schedule converged.
    pub post_states: usize,
}

/// One configuration's exploration result.
#[derive(Debug)]
pub struct ConfigReport {
    /// The configuration's name.
    pub name: &'static str,
    /// Per-window stats, in window order.
    pub windows: Vec<WindowStats>,
    /// Whether every window's post-barrier states collapsed to one.
    pub converged: bool,
    /// Rendered terminal states (one per surviving post-barrier state).
    pub terminal: String,
    /// Slot-flow checks performed.
    pub conservation_checks: u64,
    /// Slot-flow violations found (must be empty).
    pub violations: Vec<String>,
}

/// A full chrono-race run over a set of configurations.
#[derive(Debug)]
pub struct RaceReport {
    /// The grant rule explored.
    pub rule: GrantRule,
    /// Per-configuration results.
    pub configs: Vec<ConfigReport>,
}

impl RaceReport {
    /// Whether every configuration converged with zero conservation
    /// violations — the CI pass condition (under [`GrantRule::TenantId`]).
    pub fn ok(&self) -> bool {
        self.configs
            .iter()
            .all(|c| c.converged && c.violations.is_empty())
    }
}

/// Exhaustively explores every configuration under `rule`.
///
/// Per window, a memoized level-order walk over `(pcs, state)` nodes with
/// path counting: equivalent interleavings merge into one node whose count
/// is the number of schedules reaching it, so `schedules` is exact while
/// the node set stays small. After the window's ops, the barrier fires on
/// every distinct end state and the post-barrier set (arrival order
/// cleared — it is not supposed to matter) is the convergence check.
pub fn check_races(configs: &[RaceConfig], rule: GrantRule) -> RaceReport {
    let mut out = Vec::new();
    for cfg in configs {
        let n = cfg.weights.len();
        assert_eq!(cfg.scripts.len(), n, "one script per shard");
        let mut st0 = RaceState::new(n);
        barrier(&mut st0, &cfg.weights, cfg.total_slots, rule, true);

        let mut starts: Vec<RaceState> = vec![st0];
        let mut windows = Vec::new();
        let mut converged = true;
        let mut checks = 0u64;
        let mut violations = Vec::new();

        for _ in 0..cfg.windows {
            let total_ops: usize = cfg.scripts.iter().map(|s| s.len()).sum();
            let mut level: BTreeMap<(Vec<usize>, RaceState), u64> = starts
                .iter()
                .map(|s| ((vec![0usize; n], s.clone()), 1u64))
                .collect();
            let mut nodes = level.len() as u64;
            for _ in 0..total_ops {
                let mut next: BTreeMap<(Vec<usize>, RaceState), u64> = BTreeMap::new();
                for ((pcs, st), cnt) in &level {
                    for shard in 0..n {
                        if pcs[shard] >= cfg.scripts[shard].len() {
                            continue;
                        }
                        let mut s2 = st.clone();
                        apply_op(&mut s2, shard, cfg.scripts[shard][pcs[shard]]);
                        checks += 1;
                        if let Some(v) = conservation_violation(&s2) {
                            violations.push(v);
                        }
                        let mut pcs2 = pcs.clone();
                        pcs2[shard] += 1;
                        if pcs2[shard] == cfg.scripts[shard].len() {
                            s2.arrivals.push(shard as u32);
                        }
                        *next.entry((pcs2, s2)).or_insert(0) += cnt;
                    }
                }
                nodes += next.len() as u64;
                level = next;
            }

            let schedules: u64 = level.values().sum();
            let mut post: BTreeMap<RaceState, u64> = BTreeMap::new();
            for ((_, st), cnt) in level {
                let mut b = st;
                barrier(&mut b, &cfg.weights, cfg.total_slots, rule, false);
                b.arrivals.clear();
                *post.entry(b).or_insert(0) += cnt;
            }
            windows.push(WindowStats {
                schedules,
                nodes,
                post_states: post.len(),
            });
            if post.len() > 1 {
                converged = false;
            }
            starts = post.into_keys().collect();
        }

        let mut terminal = String::new();
        for s in &starts {
            s.render(&mut terminal);
        }
        out.push(ConfigReport {
            name: cfg.name,
            windows,
            converged,
            terminal,
            conservation_checks: checks,
            violations,
        });
    }
    RaceReport { rule, configs: out }
}

/// Stable textual rendering, diffed against the committed golden
/// (`goldens/race_exploration.txt`). Records the explored-state and
/// schedule counts so any drift in the protocol model, the grant
/// computation, or the exploration itself fails CI loudly.
pub fn render_race_report(report: &RaceReport) -> String {
    let mut out = String::new();
    out.push_str("chrono-race: exhaustive shard-interleaving exploration\n");
    out.push_str(&format!(
        "grant rule: {}\n",
        match report.rule {
            GrantRule::TenantId => "tenant-id",
            GrantRule::ArrivalOrder => "arrival-order (injected bug)",
        }
    ));
    let mut total_nodes = 0u64;
    let mut total_schedules = 0u64;
    for c in &report.configs {
        out.push_str(&format!("\nconfig {}:\n", c.name));
        for (w, s) in c.windows.iter().enumerate() {
            out.push_str(&format!(
                "  window {}: schedules={} nodes={} post-barrier-states={}\n",
                w + 1,
                s.schedules,
                s.nodes,
                s.post_states
            ));
            total_nodes += s.nodes;
            total_schedules += s.schedules;
        }
        out.push_str(&format!(
            "  converged: {}\n",
            if c.converged { "yes" } else { "NO" }
        ));
        out.push_str(&c.terminal);
        out.push_str(&format!(
            "  conservation: {} checks, {} violation(s)\n",
            c.conservation_checks,
            c.violations.len()
        ));
    }
    out.push_str(&format!(
        "\ntotal: {total_nodes} states explored, {total_schedules} schedules certified\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_grants_spends_the_pool_in_weighted_regime() {
        let claims = vec![
            RaceClaim {
                weight: 3,
                starvation: 0,
            },
            RaceClaim {
                weight: 1,
                starvation: 2,
            },
            RaceClaim {
                weight: 1,
                starvation: 0,
            },
        ];
        let grants = canonical_grants(64, &claims);
        assert_eq!(grants.iter().sum::<u64>(), 64);
        assert!(grants.iter().all(|&g| g >= 1));
        assert!(grants[0] > grants[1] && grants[0] > grants[2]);
    }

    #[test]
    fn canonical_grants_scarce_regime_serves_the_starved_first() {
        let claims = vec![
            RaceClaim {
                weight: 9,
                starvation: 0,
            },
            RaceClaim {
                weight: 1,
                starvation: 3,
            },
            RaceClaim {
                weight: 1,
                starvation: 1,
            },
        ];
        let grants = canonical_grants(2, &claims);
        assert_eq!(grants, vec![0, 1, 1]);
    }

    #[test]
    fn canonical_grants_empty_and_zero_pool() {
        assert!(canonical_grants(8, &[]).is_empty());
        let claims = vec![RaceClaim {
            weight: 1,
            starvation: 0,
        }];
        assert_eq!(canonical_grants(0, &claims), vec![0]);
    }

    #[test]
    fn schedule_counts_are_the_exact_multinomials() {
        let report = check_races(&race_configs(), GrantRule::TenantId);
        // two-shard-tie: 8 ops, 4+4 → 8!/(4!·4!) = 70 per window.
        assert_eq!(report.configs[0].windows[0].schedules, 70);
        assert_eq!(report.configs[0].windows[1].schedules, 70);
        // three-shard-weighted: 12 ops, 4+4+4 → 12!/(4!)³ = 34650.
        assert_eq!(report.configs[1].windows[0].schedules, 34650);
        // three-shard-scarce: 6 ops, 2+2+2 → 6!/(2!)³ = 90.
        assert_eq!(report.configs[2].windows[0].schedules, 90);
    }

    #[test]
    fn every_schedule_converges_and_conserves_under_tenant_id_order() {
        let report = check_races(&race_configs(), GrantRule::TenantId);
        assert!(report.ok(), "{}", render_race_report(&report));
        for c in &report.configs {
            assert!(c.converged, "{} diverged", c.name);
            assert!(c.violations.is_empty(), "{:?}", c.violations);
            assert!(c.windows.iter().all(|w| w.post_states == 1));
            assert!(c.conservation_checks > 0);
        }
    }

    #[test]
    fn self_test_injected_arrival_order_grants_are_caught() {
        // The injected bug: grants computed over claims in window-arrival
        // order. Slot-flow conservation still holds (the bug does not leak
        // slots), but convergence must fail — different schedules produce
        // different grant vectors, which is exactly the class of
        // nondeterminism the checker exists to catch.
        let report = check_races(&race_configs(), GrantRule::ArrivalOrder);
        assert!(!report.ok(), "injected order-dependent grants not caught");
        assert!(report.configs.iter().any(|c| !c.converged));
        assert!(report
            .configs
            .iter()
            .any(|c| c.windows.iter().any(|w| w.post_states > 1)));
        for c in &report.configs {
            assert!(c.violations.is_empty(), "{:?}", c.violations);
        }
    }

    #[test]
    fn scarce_config_rotates_the_starved_tenant() {
        let report = check_races(&race_configs(), GrantRule::TenantId);
        let scarce = &report.configs[2];
        assert!(scarce.converged);
        // Every shard's granted_total must be positive by the end: the
        // starvation counter front-runs each window's loser, so nobody is
        // shut out across the three windows.
        for i in 0..3 {
            assert!(
                scarce.terminal.contains(&format!("terminal shard{i}:")),
                "{}",
                scarce.terminal
            );
        }
        let starved_out = scarce
            .terminal
            .lines()
            .filter(|l| l.contains("granted_total=0"))
            .count();
        assert_eq!(starved_out, 0, "{}", scarce.terminal);
    }

    #[test]
    fn golden_matches_committed() {
        let rendered = render_race_report(&check_races(&race_configs(), GrantRule::TenantId));
        let golden = crate::race_golden_path();
        let committed = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
            panic!(
                "missing {} ({e}); run `harness race-check --bless`",
                golden.display()
            )
        });
        assert_eq!(
            committed, rendered,
            "race exploration drifted; inspect `harness race-check --bless` + git diff"
        );
    }
}
