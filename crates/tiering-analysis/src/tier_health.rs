//! Exhaustive small-scope model checking of the tier failure-domain
//! lifecycle.
//!
//! The state of one tier, as far as the failure-domain subsystem is
//! concerned, is its [`tiered_mem::TierHealth`] variant plus two abstractions of what
//! `TieredSystem` tracks per tier: a saturating residency level (none /
//! some / more — enough to distinguish "last page left" from "still
//! draining") and whether an emergency-evacuation copy is in flight off
//! the tier. That is 5 × 3 × 2 = 30 states, packed into a 6-bit word —
//! small enough to enumerate the reachable set *exactly*. The transition
//! relation below restates, as pure functions, what
//! `TieredSystem::apply_tier_event`, `pump_evacuation`, the forced
//! deadline drain, and `finish_offline` actually do to a tier, and a BFS
//! from the fresh `Online` state visits everything those functions can
//! ever produce.
//!
//! `harness model-check` asserts that no reachable state violates the
//! declared [`health_legality_rules`] — above all that `Offline` (and
//! `Rejoining`, which re-enters the chain empty) can never co-occur with
//! residency or an open evacuation transaction, the static mirror of the
//! runtime oracle's `tier_offline_residency` invariant — and diffs the
//! rendered reachable set against its committed golden. The injected
//! `Offline`-with-residency transition self-test proves the checker can
//! actually fail.

/// Health-state codes, mirrored from [`TierHealth::code`] (a unit test
/// holds the two in sync).
///
/// [`TierHealth::code`]: tiered_mem::TierHealth::code
pub const ONLINE: u32 = 0;
/// `Degrading { .. }` — still a full chain member.
pub const DEGRADING: u32 = 1;
/// `Evacuating { .. }` — draining toward the deadline.
pub const EVACUATING: u32 = 2;
/// `Offline` — spliced out, zero residency.
pub const OFFLINE: u32 = 3;
/// `Rejoining` — back but not yet re-admitted.
pub const REJOINING: u32 = 4;

/// Saturating residency levels: no resident pages, some, or more (the
/// third level keeps "drain one page" from collapsing into "drained").
pub const MAX_RESIDENCY: u32 = 2;

/// Total packed state space: 3 health bits, 2 residency bits, 1 in-flight
/// bit. Encodings with health > [`REJOINING`] or residency >
/// [`MAX_RESIDENCY`] are simply never produced or visited.
pub const HEALTH_STATE_SPACE: usize = 1 << 6;

/// Packs `(health, residency, inflight)` into one state word.
pub fn pack(health: u32, residency: u32, inflight: bool) -> u32 {
    debug_assert!(health <= REJOINING && residency <= MAX_RESIDENCY);
    (health << 3) | (residency << 1) | u32::from(inflight)
}

/// Health code of a packed state.
pub fn health_of(s: u32) -> u32 {
    s >> 3
}

/// Residency level of a packed state.
pub fn residency_of(s: u32) -> u32 {
    (s >> 1) & 0b11
}

/// Whether an evacuation copy is in flight off the tier.
pub fn inflight_of(s: u32) -> bool {
    s & 1 != 0
}

/// Whether the packed health accepts new residency — the model-side
/// mirror of [`tiered_mem::TierHealth::accepts_pages`].
fn accepts_pages(s: u32) -> bool {
    matches!(health_of(s), ONLINE | DEGRADING)
}

/// One named transition of the tier failure-domain lifecycle: `apply`
/// returns every successor state (empty when the guard rejects).
pub struct HealthTransition {
    /// Name used in reports and the self-test.
    pub name: &'static str,
    /// The pure transition function.
    pub apply: fn(u32) -> Vec<u32>,
}

/// The full transition relation. Each entry cites the `TieredSystem` code
/// it abstracts; guards and effects must be kept in sync with those sites
/// (the committed golden fails loudly when they drift).
pub fn health_transitions() -> Vec<HealthTransition> {
    vec![
        // demand_map / begin_migrate_txn admission: only a tier whose
        // health accepts_pages() ever gains residency.
        HealthTransition {
            name: "admit_page",
            apply: |s| {
                if accepts_pages(s) && residency_of(s) < MAX_RESIDENCY {
                    vec![pack(health_of(s), residency_of(s) + 1, inflight_of(s))]
                } else {
                    vec![]
                }
            },
        },
        // Ordinary migration-out, swap-out, or unmap: any chain member
        // (including an Evacuating donor — swapping accelerates the
        // drain) can lose residency at any time. An open evacuation copy
        // pins its source page: every unmap path (swap_out, split) aborts
        // the in-flight transaction first, which in the model is
        // evac_fault followed by this.
        HealthTransition {
            name: "page_leave",
            apply: |s| {
                if health_of(s) <= EVACUATING && residency_of(s) > u32::from(inflight_of(s)) {
                    vec![pack(health_of(s), residency_of(s) - 1, inflight_of(s))]
                } else {
                    vec![]
                }
            },
        },
        // apply_tier_event(Degrade): Online → Degrading. A Degrade event
        // on an already-Degrading tier just extends the window.
        HealthTransition {
            name: "degrade_event",
            apply: |s| {
                if matches!(health_of(s), ONLINE | DEGRADING) {
                    vec![pack(DEGRADING, residency_of(s), inflight_of(s))]
                } else {
                    vec![]
                }
            },
        },
        // The degrade window lapsing on the clock: Degrading → Online.
        HealthTransition {
            name: "degrade_expire",
            apply: |s| {
                if health_of(s) == DEGRADING {
                    vec![pack(ONLINE, residency_of(s), inflight_of(s))]
                } else {
                    vec![]
                }
            },
        },
        // apply_tier_event(Offline { deadline }): a live chain member
        // enters Evacuating; copies INTO the tier are aborted first, so
        // no new residency arrives from here on.
        HealthTransition {
            name: "offline_event",
            apply: |s| {
                if accepts_pages(s) {
                    vec![pack(EVACUATING, residency_of(s), inflight_of(s))]
                } else {
                    vec![]
                }
            },
        },
        // pump_evacuation: the emergency lane opens an evacuation copy
        // off the tier (bounded by edge bandwidth and admission).
        HealthTransition {
            name: "evac_issue",
            apply: |s| {
                if health_of(s) == EVACUATING && residency_of(s) > 0 && !inflight_of(s) {
                    vec![pack(EVACUATING, residency_of(s), true)]
                } else {
                    vec![]
                }
            },
        },
        // complete_txn on an evacuation transaction: the page is rehomed
        // (or spilled to swap) and leaves the tier. An Online event can
        // cancel the drain while the copy is in flight, so completion is
        // legal in any chain-member health, not just Evacuating.
        HealthTransition {
            name: "evac_complete",
            apply: |s| {
                if health_of(s) <= EVACUATING && inflight_of(s) && residency_of(s) > 0 {
                    vec![pack(health_of(s), residency_of(s) - 1, false)]
                } else {
                    vec![]
                }
            },
        },
        // abort_migration on an evacuation transaction (write race,
        // swap-out of the source, or device fault): the copy retires into
        // evac_faulted_pages and the page stays put — the next pump
        // re-issues it fresh.
        HealthTransition {
            name: "evac_fault",
            apply: |s| {
                if health_of(s) <= EVACUATING && inflight_of(s) {
                    vec![pack(health_of(s), residency_of(s), false)]
                } else {
                    vec![]
                }
            },
        },
        // The deadline passing: pump_evacuation switches to the forced
        // synchronous drain — open copies aborted, every remaining page
        // rehomed or swapped in one pass.
        HealthTransition {
            name: "forced_drain",
            apply: |s| {
                if health_of(s) == EVACUATING {
                    vec![pack(EVACUATING, 0, false)]
                } else {
                    vec![]
                }
            },
        },
        // finish_offline: only a fully drained tier (no residency, no
        // open evacuation) goes Offline; its frames are offlined and the
        // chain spliced around it.
        HealthTransition {
            name: "finish_offline",
            apply: |s| {
                if health_of(s) == EVACUATING && residency_of(s) == 0 && !inflight_of(s) {
                    vec![pack(OFFLINE, 0, false)]
                } else {
                    vec![]
                }
            },
        },
        // apply_tier_event(Online) mid-evacuation: the drain is called
        // off and the tier resumes as a full member, pages still on it.
        // Open evacuation copies are not aborted — they retire normally.
        HealthTransition {
            name: "online_event_cancels_drain",
            apply: |s| {
                if health_of(s) == EVACUATING {
                    vec![pack(ONLINE, residency_of(s), inflight_of(s))]
                } else {
                    vec![]
                }
            },
        },
        // apply_tier_event(Online) on an Offline tier: the device is
        // back; frames restore but the splice holds until re-admission.
        HealthTransition {
            name: "online_event_rejoins",
            apply: |s| {
                if health_of(s) == OFFLINE {
                    vec![pack(REJOINING, 0, false)]
                } else {
                    vec![]
                }
            },
        },
        // The next migration-completion pass re-splices the chain and
        // re-admits the tier: Rejoining → Online, still empty.
        HealthTransition {
            name: "readmit",
            apply: |s| {
                if health_of(s) == REJOINING {
                    vec![pack(ONLINE, 0, false)]
                } else {
                    vec![]
                }
            },
        },
    ]
}

/// A legality predicate over packed tier states: `illegal` returns true
/// for states that must be unreachable.
pub struct HealthLegalityRule {
    /// Stable name used in reports.
    pub name: &'static str,
    /// The predicate (true ⇒ the state is illegal).
    pub illegal: fn(u32) -> bool,
}

/// The declared legal-state rules for the tier lifecycle.
pub fn health_legality_rules() -> Vec<HealthLegalityRule> {
    vec![
        // The headline invariant: an Offline tier holds nothing — no
        // resident pages and no open evacuation copy. The runtime twin is
        // the oracle's `tier_offline_residency` check.
        HealthLegalityRule {
            name: "offline_holds_nothing",
            illegal: |s| health_of(s) == OFFLINE && (residency_of(s) > 0 || inflight_of(s)),
        },
        // A Rejoining tier came back from Offline and has not been
        // re-admitted: it must still be empty.
        HealthLegalityRule {
            name: "rejoining_is_empty",
            illegal: |s| health_of(s) == REJOINING && (residency_of(s) > 0 || inflight_of(s)),
        },
        // An open evacuation copy has a source page still on the tier —
        // every unmap path aborts the transaction before taking the page.
        HealthLegalityRule {
            name: "evac_txn_requires_residency",
            illegal: |s| inflight_of(s) && residency_of(s) == 0,
        },
    ]
}

/// Result of one exhaustive tier-lifecycle enumeration.
pub struct HealthReport {
    /// Every reachable packed state, sorted.
    pub reachable: Vec<u32>,
    /// Reachable states violating a legality rule, with the rule name.
    pub illegal: Vec<(u32, &'static str)>,
    /// Transitions that never fired from any reachable state.
    pub dead_transitions: Vec<&'static str>,
}

/// Human label for a packed state's health code.
fn health_label(code: u32) -> &'static str {
    match code {
        ONLINE => "online",
        DEGRADING => "degrading",
        EVACUATING => "evacuating",
        OFFLINE => "offline",
        REJOINING => "rejoining",
        _ => "invalid",
    }
}

/// Renders a packed state for reports: `health/res=N[/evac]`.
pub fn describe_health_state(s: u32) -> String {
    let mut out = format!("{}/res={}", health_label(health_of(s)), residency_of(s));
    if inflight_of(s) {
        out.push_str("/evac");
    }
    out
}

/// Enumerates the exact reachable set from the fresh state (`Online`,
/// empty, no evacuation in flight) under `ts`, then applies `rules`.
pub fn check_health_model(ts: &[HealthTransition], rules: &[HealthLegalityRule]) -> HealthReport {
    let start = pack(ONLINE, 0, false);
    let mut seen = [false; HEALTH_STATE_SPACE];
    let mut fired = vec![false; ts.len()];
    let mut frontier = vec![start];
    seen[start as usize] = true;
    while let Some(s) = frontier.pop() {
        for (i, t) in ts.iter().enumerate() {
            for succ in (t.apply)(s) {
                debug_assert!(
                    (succ as usize) < HEALTH_STATE_SPACE,
                    "{} produced out-of-space state {succ:#x}",
                    t.name
                );
                fired[i] = true;
                if !seen[succ as usize] {
                    seen[succ as usize] = true;
                    frontier.push(succ);
                }
            }
        }
    }
    let reachable: Vec<u32> = (0..HEALTH_STATE_SPACE)
        .filter(|&s| seen[s])
        .map(|s| s as u32)
        .collect();
    let mut illegal = Vec::new();
    for &s in &reachable {
        for r in rules {
            if (r.illegal)(s) {
                illegal.push((s, r.name));
            }
        }
    }
    let dead_transitions = ts
        .iter()
        .zip(&fired)
        .filter(|(_, &f)| !f)
        .map(|(t, _)| t.name)
        .collect();
    HealthReport {
        reachable,
        illegal,
        dead_transitions,
    }
}

/// Renders a report in the committed-golden format: a header, then one
/// line per reachable state (`hex  description`).
pub fn render_health_report(report: &HealthReport) -> String {
    let mut out = String::new();
    out.push_str(
        "# Tier failure-domain lifecycle reachability (regenerate: harness model-check --bless)\n",
    );
    out.push_str(&format!(
        "# reachable: {} of {} packed states (5 health x 3 residency x 2 evac-in-flight)\n",
        report.reachable.len(),
        HEALTH_STATE_SPACE,
    ));
    for &s in &report.reachable {
        out.push_str(&format!("{:02x} {}\n", s, describe_health_state(s)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::Nanos;
    use tiered_mem::TierHealth;

    #[test]
    fn health_codes_mirror_tier_health() {
        // The model-side codes must mirror TierHealth::code exactly, or
        // the model checks a lifecycle the substrate does not run.
        for (code, h) in [
            (ONLINE, TierHealth::Online),
            (DEGRADING, TierHealth::Degrading { until: Nanos(1) }),
            (EVACUATING, TierHealth::Evacuating { deadline: Nanos(1) }),
            (OFFLINE, TierHealth::Offline),
            (REJOINING, TierHealth::Rejoining),
        ] {
            assert_eq!(code, u32::from(h.code()));
            // And the model's admission guard mirrors accepts_pages.
            assert_eq!(accepts_pages(pack(code, 1, false)), h.accepts_pages());
        }
    }

    #[test]
    fn reachable_lifecycle_is_legal_and_complete() {
        let report = check_health_model(&health_transitions(), &health_legality_rules());
        let pretty: Vec<String> = report
            .illegal
            .iter()
            .map(|(s, r)| format!("{r}: {:02x} {}", s, describe_health_state(*s)))
            .collect();
        assert!(
            pretty.is_empty(),
            "illegal reachable states:\n{}",
            pretty.join("\n")
        );
        assert!(
            report.dead_transitions.is_empty(),
            "dead: {:?}",
            report.dead_transitions
        );
        // Key lifecycle states must be reachable...
        for (state, why) in [
            (
                pack(EVACUATING, MAX_RESIDENCY, true),
                "mid-drain with a copy in flight",
            ),
            (pack(OFFLINE, 0, false), "fully offlined tier"),
            (
                pack(REJOINING, 0, false),
                "device back, awaiting re-admission",
            ),
            (pack(DEGRADING, MAX_RESIDENCY, false), "degraded but loaded"),
            (
                pack(ONLINE, 1, true),
                "drain cancelled with the copy still in flight",
            ),
        ] {
            assert!(report.reachable.contains(&state), "{why} must be reachable");
        }
        // ...and the illegal ones must not be.
        for (state, why) in [
            (pack(OFFLINE, 1, false), "offline tier with residency"),
            (
                pack(OFFLINE, 0, true),
                "offline tier with an open evac copy",
            ),
            (pack(REJOINING, 1, false), "rejoining tier with residency"),
            (
                pack(ONLINE, 0, true),
                "evac copy with no source page resident",
            ),
        ] {
            assert!(
                !report.reachable.contains(&state),
                "{why} must be unreachable"
            );
        }
    }

    #[test]
    fn self_test_offline_with_residency_is_caught() {
        // The checker must actually be able to fail: inject a buggy
        // finish_offline that skips the drained-and-idle guard (the exact
        // bug the runtime oracle's tier_offline_residency invariant
        // exists to catch) and assert the violation is reported against
        // the right rule.
        let mut ts = health_transitions();
        ts.push(HealthTransition {
            name: "buggy_finish_offline_without_drain",
            apply: |s| {
                if health_of(s) == EVACUATING && residency_of(s) > 0 {
                    vec![pack(OFFLINE, residency_of(s), inflight_of(s))]
                } else {
                    vec![]
                }
            },
        });
        let report = check_health_model(&ts, &health_legality_rules());
        assert!(
            report
                .illegal
                .iter()
                .any(|(s, rule)| *rule == "offline_holds_nothing"
                    && health_of(*s) == OFFLINE
                    && residency_of(*s) > 0),
            "injected Offline-with-residency transition was not reported"
        );
    }

    #[test]
    fn render_is_stable_and_parseable() {
        let report = check_health_model(&health_transitions(), &[]);
        let text = render_health_report(&report);
        assert!(text.starts_with("# Tier failure-domain lifecycle reachability"));
        let body: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(body.len(), report.reachable.len());
        assert!(body[0].starts_with("00 online/res=0"));
    }

    #[test]
    #[ignore = "writes the tier-health golden; run explicitly to (re)bless it"]
    fn bless_tier_health_golden_only() {
        let report = check_health_model(&health_transitions(), &health_legality_rules());
        assert!(report.illegal.is_empty() && report.dead_transitions.is_empty());
        let path = crate::tier_health_golden_path();
        std::fs::write(&path, render_health_report(&report)).expect("write tier-health golden");
    }
}
