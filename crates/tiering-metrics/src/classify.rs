//! Hot-page identification scoring: F1 and page promotion ratio (Fig 2a).
//!
//! Following Section 2.4: ground-truth positives are pages in the workload's
//! hot region; predicted positives are the pages a policy placed in the fast
//! tier. The page promotion ratio (PPR) is promoted pages over accessed
//! slow-tier pages — an ideal policy has high F1 *and* low PPR.

/// Raw confusion-matrix counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionCounts {
    /// Hot pages placed in the fast tier.
    pub true_positive: u64,
    /// Cold pages placed in the fast tier.
    pub false_positive: u64,
    /// Hot pages left in the slow tier.
    pub false_negative: u64,
    /// Cold pages left in the slow tier.
    pub true_negative: u64,
}

impl ConfusionCounts {
    /// Tallies one page.
    pub fn tally(&mut self, actually_hot: bool, predicted_hot: bool) {
        match (actually_hot, predicted_hot) {
            (true, true) => self.true_positive += 1,
            (false, true) => self.false_positive += 1,
            (true, false) => self.false_negative += 1,
            (false, false) => self.true_negative += 1,
        }
    }

    /// Precision: TP / (TP + FP); zero when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positive + self.false_positive;
        if denom == 0 {
            0.0
        } else {
            self.true_positive as f64 / denom as f64
        }
    }

    /// Recall: TP / (TP + FN); zero when there are no actual positives.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positive + self.false_negative;
        if denom == 0 {
            0.0
        } else {
            self.true_positive as f64 / denom as f64
        }
    }

    /// F1: harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// A complete classification result for one policy run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Classification {
    /// Confusion counts over all pages.
    pub counts: ConfusionCounts,
    /// Total pages promoted to the fast tier during the run.
    pub promoted_pages: u64,
    /// Distinct slow-tier pages that were accessed during the run.
    pub accessed_slow_pages: u64,
}

impl Classification {
    /// Page promotion ratio: promotions per accessed slow-tier page. Values
    /// above 1 mean pages were promoted repeatedly (thrashing-prone).
    pub fn ppr(&self) -> f64 {
        if self.accessed_slow_pages == 0 {
            0.0
        } else {
            self.promoted_pages as f64 / self.accessed_slow_pages as f64
        }
    }

    /// F1-score convenience.
    pub fn f1(&self) -> f64 {
        self.counts.f1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let mut c = ConfusionCounts::default();
        for _ in 0..10 {
            c.tally(true, true);
        }
        for _ in 0..90 {
            c.tally(false, false);
        }
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn all_wrong_classifier() {
        let mut c = ConfusionCounts::default();
        c.tally(true, false);
        c.tally(false, true);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn partial_scores() {
        // 8 TP, 2 FP, 2 FN: precision 0.8, recall 0.8, F1 0.8.
        let c = ConfusionCounts {
            true_positive: 8,
            false_positive: 2,
            false_negative: 2,
            true_negative: 88,
        };
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.recall() - 0.8).abs() < 1e-12);
        assert!((c.f1() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_do_not_divide_by_zero() {
        let c = ConfusionCounts::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn ppr_counts_repeat_promotions() {
        let c = Classification {
            counts: ConfusionCounts::default(),
            promoted_pages: 150,
            accessed_slow_pages: 100,
        };
        assert!((c.ppr() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ppr_zero_when_nothing_accessed() {
        let c = Classification::default();
        assert_eq!(c.ppr(), 0.0);
    }
}
