//! Log-bucketed latency histograms.
//!
//! Latencies span ~15 ns (cache-warm fast-tier loads) to tens of
//! microseconds (hint faults with synchronous migration), so the histogram
//! uses logarithmic buckets: 64 per power of two, giving ≈1.1 % relative
//! resolution — more than enough to reproduce the paper's average/median/P99
//! comparisons while staying O(1) per sample and fixed-size.

use sim_clock::Nanos;

/// Sub-buckets per power of two.
const SUBBUCKETS: usize = 64;
/// Number of powers of two covered (2^0 .. 2^40 ns ≈ 18 minutes).
const POWERS: usize = 40;

/// A fixed-size log-scale histogram of nanosecond latencies.
#[derive(Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: vec![0; SUBBUCKETS * POWERS],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        let ns = ns.max(1);
        let pow = 63 - ns.leading_zeros() as usize; // floor(log2)
        let pow = pow.min(POWERS - 1);
        let base = 1u64 << pow;
        // Position within the power-of-two range, scaled to SUBBUCKETS.
        let frac = ((ns - base) as u128 * SUBBUCKETS as u128 / base as u128) as usize;
        pow * SUBBUCKETS + frac.min(SUBBUCKETS - 1)
    }

    fn bucket_lower_bound(idx: usize) -> u64 {
        let pow = idx / SUBBUCKETS;
        let frac = idx % SUBBUCKETS;
        let base = 1u64 << pow;
        base + (base as u128 * frac as u128 / SUBBUCKETS as u128) as u64
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Nanos) {
        self.record_in_bucket(latency, Self::bucket_of(latency.as_nanos()));
    }

    /// The bucket a latency lands in. Callers recording one sample into
    /// several histograms (e.g. all-accesses plus a read/write split) can
    /// compute this once and feed it to
    /// [`LatencyHistogram::record_in_bucket`].
    #[inline]
    pub fn bucket_index(latency: Nanos) -> usize {
        Self::bucket_of(latency.as_nanos())
    }

    /// Records a sample whose bucket was precomputed by
    /// [`LatencyHistogram::bucket_index`] for the same latency.
    #[inline]
    pub fn record_in_bucket(&mut self, latency: Nanos, bucket: usize) {
        let ns = latency.as_nanos();
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += ns as u128;
        self.max = self.max.max(ns);
        self.min = self.min.min(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or zero if empty.
    pub fn mean(&self) -> Nanos {
        if self.count == 0 {
            return Nanos::ZERO;
        }
        Nanos((self.sum / self.count as u128) as u64)
    }

    /// The `q`-quantile (0.0–1.0) as the lower bound of the containing
    /// bucket; `quantile(0.5)` is the median, `quantile(0.99)` the P99.
    pub fn quantile(&self, q: f64) -> Nanos {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return Nanos::ZERO;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Nanos(Self::bucket_lower_bound(i).min(self.max).max(self.min));
            }
        }
        Nanos(self.max)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Nanos {
        Nanos(if self.count == 0 { 0 } else { self.max })
    }

    /// Cumulative distribution evaluated at a set of latency points — the
    /// Fig 7a "accumulated percentage" curve.
    pub fn cdf_at(&self, points: &[Nanos]) -> Vec<f64> {
        points
            .iter()
            .map(|p| {
                if self.count == 0 {
                    return 0.0;
                }
                let limit = Self::bucket_of(p.as_nanos());
                let below: u64 = self.buckets[..=limit].iter().sum();
                below as f64 / self.count as f64
            })
            .collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), Nanos::ZERO);
        assert_eq!(h.quantile(0.5), Nanos::ZERO);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 300] {
            h.record(Nanos(ns));
        }
        assert_eq!(h.mean(), Nanos(200));
    }

    #[test]
    fn quantiles_are_order_of_magnitude_right() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(Nanos(i));
        }
        let p50 = h.quantile(0.5).as_nanos();
        let p99 = h.quantile(0.99).as_nanos();
        assert!((490..=515).contains(&p50), "p50 {}", p50);
        assert!((960..=1000).contains(&p99), "p99 {}", p99);
    }

    #[test]
    fn quantile_respects_bucket_resolution() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(Nanos(1_000_000));
        }
        let p99 = h.quantile(0.99).as_nanos();
        // Within one sub-bucket (≈1.6 %) of the true value.
        assert!((985_000..=1_000_000).contains(&p99), "p99 {}", p99);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let mut h = LatencyHistogram::new();
        for i in [50u64, 100, 500, 2000, 2000, 8000] {
            h.record(Nanos(i));
        }
        let pts: Vec<Nanos> = [64u64, 256, 1024, 4096, 16384].map(Nanos).to_vec();
        let cdf = h.cdf_at(&pts);
        for w in cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(cdf[0] > 0.0);
        assert!((cdf[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Nanos(100));
        b.record(Nanos(300));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Nanos(200));
        assert_eq!(a.max(), Nanos(300));
    }

    #[test]
    fn huge_latencies_saturate_gracefully() {
        let mut h = LatencyHistogram::new();
        h.record(Nanos(u64::MAX / 2));
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0).as_nanos() > 0);
    }
}
