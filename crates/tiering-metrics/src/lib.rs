#![warn(missing_docs)]
//! Measurement utilities for the Chrono reproduction's evaluation.
//!
//! - [`hist`]: log-bucketed latency histograms with percentile extraction
//!   (the Fig 7 average/median/P99 statistics and the Fig 7a CDF).
//! - [`classify`]: hot-page identification scoring — precision, recall,
//!   F1-score and the page promotion ratio (PPR) of Fig 2a.
//! - [`series`]: time-series recording for histories like the Fig 9 DRAM
//!   page percentages and the Fig 10b/10c parameter traces.
//! - [`table`]: fixed-width plain-text table rendering for harness output.

pub mod classify;
pub mod hist;
pub mod series;
pub mod table;

pub use classify::{Classification, ConfusionCounts};
pub use hist::LatencyHistogram;
pub use series::TimeSeries;
pub use table::Table;
