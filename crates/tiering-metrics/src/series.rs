//! Time-series recording for run histories.
//!
//! Backs Fig 9 (per-cgroup DRAM page percentage over time), Fig 10b/10c (CIT
//! threshold and rate-limit traces), and any other sampled run statistic.

use sim_clock::Nanos;

/// A named sequence of `(time, value)` samples.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    name: String,
    samples: Vec<(Nanos, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> TimeSeries {
        TimeSeries {
            name: name.into(),
            samples: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample. Times must be non-decreasing.
    pub fn push(&mut self, at: Nanos, value: f64) {
        if let Some(&(last, _)) = self.samples.last() {
            debug_assert!(at >= last, "time series must be appended in order");
        }
        self.samples.push((at, value));
    }

    /// All samples.
    pub fn samples(&self) -> &[(Nanos, f64)] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The last value, if any.
    pub fn last(&self) -> Option<f64> {
        self.samples.last().map(|&(_, v)| v)
    }

    /// Mean of the values in the closed time window `[from, to]`.
    pub fn window_mean(&self, from: Nanos, to: Nanos) -> Option<f64> {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|(t, _)| *t >= from && *t <= to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Mean of the final `frac` (0–1] of samples — "steady-state" values like
    /// the converged CIT threshold in Fig 10b.
    pub fn tail_mean(&self, frac: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let skip = (self.samples.len() as f64 * (1.0 - frac)) as usize;
        let tail = &self.samples[skip.min(self.samples.len() - 1)..];
        Some(tail.iter().map(|&(_, v)| v).sum::<f64>() / tail.len() as f64)
    }

    /// Downsamples to at most `n` evenly spaced points (for compact printing).
    pub fn downsample(&self, n: usize) -> Vec<(Nanos, f64)> {
        if self.samples.len() <= n || n == 0 {
            return self.samples.clone();
        }
        let step = self.samples.len() as f64 / n as f64;
        (0..n)
            .map(|i| self.samples[(i as f64 * step) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut s = TimeSeries::new("threshold");
        s.push(Nanos(0), 1000.0);
        s.push(Nanos(10), 500.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some(500.0));
        assert_eq!(s.name(), "threshold");
    }

    #[test]
    fn window_mean_filters_by_time() {
        let mut s = TimeSeries::new("x");
        for i in 0..10u64 {
            s.push(Nanos(i * 10), i as f64);
        }
        // Samples at t=30,40,50 → values 3,4,5.
        assert_eq!(s.window_mean(Nanos(30), Nanos(50)), Some(4.0));
        assert_eq!(s.window_mean(Nanos(1000), Nanos(2000)), None);
    }

    #[test]
    fn tail_mean_takes_the_suffix() {
        let mut s = TimeSeries::new("x");
        for v in [100.0, 100.0, 100.0, 10.0, 10.0, 10.0, 10.0, 10.0] {
            s.push(Nanos(s.len() as u64), v);
        }
        // Last 50 % = four 10.0 samples.
        assert_eq!(s.tail_mean(0.5), Some(10.0));
    }

    #[test]
    fn tail_mean_of_empty_is_none() {
        let s = TimeSeries::new("x");
        assert_eq!(s.tail_mean(0.5), None);
    }

    #[test]
    fn downsample_bounds_length() {
        let mut s = TimeSeries::new("x");
        for i in 0..1000u64 {
            s.push(Nanos(i), i as f64);
        }
        let d = s.downsample(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0].0, Nanos(0));
        // Short series pass through unchanged.
        let mut short = TimeSeries::new("y");
        short.push(Nanos(0), 1.0);
        assert_eq!(short.downsample(10).len(), 1);
    }
}
