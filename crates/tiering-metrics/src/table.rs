//! Fixed-width plain-text tables for harness output.
//!
//! The harness regenerates every figure and table of the paper as text; this
//! module renders aligned tables so the "rows/series the paper reports" are
//! directly readable in a terminal or log file.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; shorter rows are padded with empty cells.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Appends a row of displayable values.
    pub fn row_fmt<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Table {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line: String = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:<w$}", h, w = widths[i] + 2))
            .collect();
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let line: String = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i] + 2))
                .collect();
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

/// Formats a float with 3 significant decimals — the precision the paper's
/// figures can actually be read at.
pub fn f3(x: f64) -> String {
    format!("{:.3}", x)
}

/// Formats a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a normalized speedup like the paper ("2.49x").
pub fn speedup(x: f64) -> String {
    format!("{:.2}x", x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Fig X", &["policy", "throughput"]);
        t.row(&["Linux-NB".into(), "1.00".into()]);
        t.row(&["Chrono".into(), "3.16".into()]);
        let s = t.render();
        assert!(s.contains("== Fig X =="));
        assert!(s.contains("Linux-NB"));
        assert!(s.contains("Chrono"));
        // Columns align: both data rows have the throughput at the same byte
        // offset.
        let lines: Vec<&str> = s.lines().collect();
        let off1 = lines[3].find("1.00").unwrap();
        let off2 = lines[4].find("3.16").unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("t", &["a", "b", "c"]);
        t.row(&["x".into()]);
        assert_eq!(t.rows(), 1);
        let s = t.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.4567), "45.7%");
        assert_eq!(speedup(2.491), "2.49x");
    }

    #[test]
    fn row_fmt_displays_values() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row_fmt(&[1.5, 2.5]);
        assert!(t.render().contains("1.5"));
    }
}
