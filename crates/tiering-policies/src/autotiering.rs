//! Auto-Tiering (Kim et al., USENIX ATC '21), OPM-BD mode.
//!
//! Keeps an 8-bit LAP (least accessed page) vector per page, shifted once per
//! scan period, with the low bit set when the page hint-faulted during that
//! period (Section 2.3). Pages whose LAP vector shows enough recent activity
//! are promoted opportunistically on fault; a background daemon demotes cold
//! fast-tier pages. The effective frequency resolution is 0–1 access per
//! scan period per page — exactly the coarseness the paper criticizes — and
//! maintaining the LAP lists costs extra kernel time (the 14 % kernel
//! overhead of Fig 8).

use sim_clock::Nanos;
use tiered_mem::{
    scan_budget_pages, AccessResult, MigrateMode, PageFlags, ProcessId, TierId, TieredSystem, Vpn,
};

use crate::policy::{decode_token, encode_token, ScanCursor, TieringPolicy};

const EV_SCAN: u16 = 1;
const EV_DEMOTE: u16 = 2;

/// Auto-Tiering configuration.
#[derive(Debug, Clone)]
pub struct AutoTieringConfig {
    /// Scan (LAP shift) period.
    pub scan_period: Nanos,
    /// Pages marked per scan event.
    pub scan_step_pages: u32,
    /// Bits that must be set in the LAP vector for a page to count as hot.
    pub hot_lap_bits: u32,
    /// Background demotion check interval.
    pub demote_interval: Nanos,
}

impl Default for AutoTieringConfig {
    fn default() -> Self {
        AutoTieringConfig {
            scan_period: Nanos::from_secs(60),
            scan_step_pages: 4096,
            hot_lap_bits: 2,
            demote_interval: Nanos::from_secs(5),
        }
    }
}

/// The Auto-Tiering baseline policy.
pub struct AutoTiering {
    cfg: AutoTieringConfig,
    cursors: Vec<ScanCursor>,
}

impl AutoTiering {
    /// Creates the policy.
    pub fn new(cfg: AutoTieringConfig) -> AutoTiering {
        AutoTiering {
            cfg,
            cursors: Vec::new(),
        }
    }
}

impl TieringPolicy for AutoTiering {
    fn name(&self) -> &'static str {
        "AutoTiering"
    }

    fn init(&mut self, sys: &mut TieredSystem) {
        self.cursors.clear();
        for pid in sys.pids().collect::<Vec<_>>() {
            let pages = sys.process(pid).space.pages();
            let cursor = ScanCursor::new(pages, self.cfg.scan_step_pages, self.cfg.scan_period);
            sys.schedule_in(cursor.event_interval, encode_token(EV_SCAN, pid.0, 0));
            self.cursors.push(cursor);
        }
        sys.schedule_in(self.cfg.demote_interval, encode_token(EV_DEMOTE, 0, 0));
    }

    fn on_event(&mut self, sys: &mut TieredSystem, token: u64) {
        let (kind, pid_raw, _) = decode_token(token);
        match kind {
            EV_SCAN => {
                let pid = ProcessId(pid_raw);
                let cur = &mut self.cursors[pid_raw as usize];
                let mut visited = 0u64;
                cur.cursor =
                    sys.process_mut(pid)
                        .space
                        .walk_range(cur.cursor, cur.step_pages, |_vpn, e| {
                            // Shift the LAP vector; a fault during the coming
                            // period will set bit 0.
                            e.policy_extra = (e.policy_extra << 1) & 0xFF;
                            e.flags.set(PageFlags::PROT_NONE);
                            visited += 1;
                        });
                // LAP maintenance is far costlier than a plain PTE visit:
                // the vector update plus reshuffling pages across the
                // per-level LAP lists (the overhead behind Auto-Tiering's
                // 14 % kernel time in Fig 8, 2.2× the Linux-NB baseline).
                sys.charge_scan(pid, visited.saturating_mul(6).max(1));
                let interval = cur.event_interval;
                sys.schedule_in(interval, encode_token(EV_SCAN, pid.0, 0));
            }
            EV_DEMOTE => {
                // Age the LRU at scan-period timescale, then demote.
                let age_budget = scan_budget_pages(
                    sys.total_frames(TierId::FAST),
                    self.cfg.demote_interval,
                    self.cfg.scan_period,
                );
                sys.age_active_list(TierId::FAST, age_budget.max(16));
                // Background demotion (the BD in OPM-BD) keeps fast-tier
                // headroom well above the plain watermarks so opportunistic
                // promotions usually find a free frame.
                let target = sys
                    .watermarks
                    .high
                    .saturating_add(sys.total_frames(TierId::FAST) / 32);
                let mut budget = 128u32;
                while sys.free_frames(TierId::FAST) < target && budget > 0 {
                    budget -= 1;
                    match sys.pop_inactive_victim(TierId::FAST) {
                        Some((pid, vpn)) => {
                            let _ = sys.migrate(pid, vpn, TierId::SLOW, MigrateMode::Async);
                        }
                        None => break,
                    }
                }
                sys.trace_period(Default::default());
                sys.schedule_in(self.cfg.demote_interval, encode_token(EV_DEMOTE, 0, 0));
            }
            _ => unreachable!("unknown AutoTiering event {}", kind),
        }
    }

    fn on_hint_fault(
        &mut self,
        sys: &mut TieredSystem,
        pid: ProcessId,
        vpn: Vpn,
        _write: bool,
        _res: &AccessResult,
    ) {
        let pte = sys.process(pid).space.pte_page(vpn);
        let e = sys.process_mut(pid).space.entry_mut(pte);
        e.policy_extra |= 1;
        let hot = (e.policy_extra & 0xFF).count_ones() >= self.cfg.hot_lap_bits;
        if hot && e.tier() == TierId::SLOW {
            // Opportunistic promotion (OPM): migrate if the fast tier has a
            // free frame; otherwise rely on the background demotion daemon
            // to open headroom for a later attempt.
            let _ = sys.migrate(pid, pte, TierId::FAST, MigrateMode::Sync(pid));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DriverConfig, SimulationDriver};
    use tiered_mem::{PageSize, SystemConfig};
    use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

    fn run_at(run_ms: u64) -> TieredSystem {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(1024, 4096));
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = AutoTiering::new(AutoTieringConfig {
            scan_period: Nanos::from_millis(50),
            scan_step_pages: 512,
            hot_lap_bits: 2,
            demote_interval: Nanos::from_millis(20),
        });
        SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(run_ms),
            ..Default::default()
        })
        .run(&mut sys, &mut wls, &mut policy);
        sys
    }

    #[test]
    fn lap_vector_gates_promotion() {
        // A page needs ≥2 faulting periods before promotion, so promotions
        // must be fewer than hint faults on slow pages.
        let sys = run_at(300);
        assert!(sys.stats.promoted_pages > 0);
        assert!(sys.stats.promoted_pages < sys.stats.hint_faults);
    }

    #[test]
    fn background_demotion_maintains_headroom() {
        let sys = run_at(500);
        assert!(sys.free_frames(TierId::FAST) > 0);
        assert!(sys.stats.demoted_pages > 0);
    }

    #[test]
    fn kernel_overhead_exceeds_linux_nb() {
        // LAP maintenance makes Auto-Tiering's kernel share the highest of
        // the baselines (Fig 8: 14.1 % vs 6.4 %).
        let at = run_at(300);
        let nb = {
            let mut sys = TieredSystem::new(SystemConfig::dram_pmem(1024, 4096));
            let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
            sys.add_process(w.address_space_pages(), PageSize::Base);
            let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
            let mut policy =
                crate::linux_nb::LinuxNumaBalancing::new(crate::linux_nb::LinuxNbConfig {
                    scan_period: Nanos::from_millis(50),
                    scan_step_pages: 512,
                    promote_tier_frac_per_period: 0.23,
                });
            SimulationDriver::new(DriverConfig {
                run_for: Nanos::from_millis(300),
                ..Default::default()
            })
            .run(&mut sys, &mut wls, &mut policy);
            sys
        };
        assert!(
            at.stats.kernel_time_fraction() > nb.stats.kernel_time_fraction(),
            "AT {} vs NB {}",
            at.stats.kernel_time_fraction(),
            nb.stats.kernel_time_fraction()
        );
    }

    #[test]
    fn lap_shift_keeps_history_bounded() {
        let sys = run_at(300);
        // All LAP vectors must fit in 8 bits.
        let pid = ProcessId(0);
        for i in 0..sys.process(pid).space.pages() {
            assert!(sys.process(pid).space.entry(Vpn(i)).policy_extra <= 0xFF);
        }
    }
}
