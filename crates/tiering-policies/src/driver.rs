//! The generic simulation driver.
//!
//! Interleaves workload accesses with policy daemon events on the simulated
//! timeline: the runnable process with the smallest virtual time executes
//! next (fair concurrency, each process on its own hardware context, as in
//! the paper's multi-process runs), and daemon events fire whenever
//! simulated time passes their deadline.

use sim_clock::Nanos;
use tiered_mem::{ProcessId, TierId, TieredSystem, Vpn};
use tiering_metrics::{LatencyHistogram, TimeSeries};
use workloads::Workload;

use crate::policy::TieringPolicy;

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Stop once simulated time reaches this horizon.
    pub run_for: Nanos,
    /// Stop after this many accesses (safety valve; default unbounded).
    pub max_accesses: u64,
    /// Record per-process fast-tier page fractions at this interval (Fig 9).
    pub sample_interval: Option<Nanos>,
    /// Track the distinct slow-tier pages accessed (PPR denominator, Fig 2a).
    pub track_slow_accesses: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            run_for: Nanos::from_secs(60),
            max_accesses: u64::MAX,
            sample_interval: None,
            track_slow_accesses: false,
        }
    }
}

impl DriverConfig {
    /// A driver that runs for the given number of simulated seconds.
    pub fn for_secs(secs: u64) -> DriverConfig {
        DriverConfig {
            run_for: Nanos::from_secs(secs),
            ..Default::default()
        }
    }
}

/// Results of one simulation run.
#[derive(Debug)]
pub struct RunResult {
    /// Total accesses executed.
    pub accesses: u64,
    /// Simulated makespan (max process virtual time).
    pub makespan: Nanos,
    /// Access latency distribution (all accesses).
    pub latency: LatencyHistogram,
    /// Load latency distribution.
    pub latency_reads: LatencyHistogram,
    /// Store latency distribution.
    pub latency_writes: LatencyHistogram,
    /// Per-process fast-tier page fraction histories (if sampling enabled).
    pub fast_fraction_series: Vec<TimeSeries>,
    /// Distinct slow-tier pages that were accessed (if tracking enabled).
    pub accessed_slow_pages: u64,
    /// Whether every workload ran to completion (vs. hitting the horizon).
    pub workloads_finished: bool,
}

impl RunResult {
    /// Throughput in accesses per simulated second.
    pub fn throughput(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.accesses as f64 / secs
        }
    }
}

/// Distinct `(pid, page)` tracking as per-process bitsets: `insert` is two
/// indexes and an OR, replacing an ordered set whose tree descent sat on the
/// per-access path whenever `track_slow_accesses` was enabled. Traversal (if
/// ever added) is row-major and therefore deterministic, same as the ordered
/// set it replaces.
#[derive(Default)]
struct SlowPageSet {
    bits: Vec<Vec<u64>>,
    distinct: u64,
}

impl SlowPageSet {
    fn insert(&mut self, pid: ProcessId, vpn: Vpn) {
        let p = pid.0 as usize;
        if p >= self.bits.len() {
            self.bits.resize_with(p + 1, Vec::new);
        }
        let row = &mut self.bits[p];
        let word = (vpn.0 / 64) as usize;
        if word >= row.len() {
            row.resize(word + 1, 0);
        }
        let mask = 1u64 << (vpn.0 % 64);
        if row[word] & mask == 0 {
            row[word] |= mask;
            self.distinct += 1;
        }
    }
}

/// A paused, resumable simulation over one (system, workloads, policy)
/// triple.
///
/// [`SimulationDriver::run_inspected`] is a thin wrapper over this: it opens
/// a session, steps it straight to the configured horizon, and finishes it.
/// The multi-tenant sharded runner instead steps each tenant's session to
/// the next barrier (`step_until`), applies cross-shard effects between
/// steps, and resumes — and because re-entry restarts at exactly the program
/// point the previous step broke at, a session stepped in any number of
/// increments replays the same operation sequence as one uninterrupted run.
/// That idempotence is what makes single-tenant sharded runs byte-identical
/// to the classic driver, and N-thread runs byte-identical to 1-thread runs.
pub struct DriverSession {
    cfg: DriverConfig,
    latency: LatencyHistogram,
    latency_reads: LatencyHistogram,
    latency_writes: LatencyHistogram,
    accesses: u64,
    slow_pages: SlowPageSet,
    series: Vec<TimeSeries>,
    next_sample: Nanos,
    started: bool,
    finished: bool,
}

impl DriverSession {
    /// Opens a session. No simulation work happens until `step_until`.
    pub fn new(cfg: DriverConfig) -> DriverSession {
        let next_sample = cfg.sample_interval.unwrap_or(Nanos::MAX);
        DriverSession {
            cfg,
            latency: LatencyHistogram::new(),
            latency_reads: LatencyHistogram::new(),
            latency_writes: LatencyHistogram::new(),
            accesses: 0,
            slow_pages: SlowPageSet::default(),
            series: Vec::new(),
            next_sample,
            started: false,
            finished: false,
        }
    }

    /// Accesses executed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Whether the run hit a terminal stop condition (horizon, access cap,
    /// or all workloads finished) — further `step_until` calls are no-ops.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Advances the simulation until the next runnable access would start at
    /// or beyond `horizon` (clamped to the configured `run_for`), a stop
    /// condition fires, or every workload completes. An intermediate-horizon
    /// break happens at the very top of the classic loop body — before due
    /// daemon events fire or the clock advances — so calling again with a
    /// later horizon re-fetches the identical `(pid, t)` and replays the
    /// body verbatim; a session stepped in any number of increments is
    /// byte-identical to one uninterrupted run.
    pub fn step_until<F, G>(
        &mut self,
        horizon: Nanos,
        sys: &mut TieredSystem,
        workloads: &mut [Box<dyn Workload>],
        policy: &mut dyn TieringPolicy,
        mut observer: F,
        mut inspect: G,
    ) where
        F: FnMut(ProcessId, tiered_mem::Vpn, bool, TierId),
        G: FnMut(&TieredSystem),
    {
        if self.finished {
            return;
        }
        if !self.started {
            assert_eq!(
                workloads.len(),
                sys.num_processes(),
                "one workload per process"
            );
            policy.init(sys);
            self.series = (0..workloads.len())
                .map(|i| TimeSeries::new(format!("proc{}", i)))
                .collect();
            self.started = true;
        }
        let horizon = horizon.min(self.cfg.run_for);

        // Runs until every workload finishes or a stop condition fires.
        loop {
            let Some((pid, t)) = sys.min_vtime_process_and_time() else {
                self.finished = true;
                return;
            };
            // Intermediate-horizon break, *before* firing due daemon events
            // or advancing the clock: event handlers may charge daemon time
            // to the process vtime, and the classic loop keeps using the
            // pre-charge `t` for the access that follows — so re-entry must
            // re-fetch the same pre-charge value and replay the loop body
            // verbatim. The terminal horizon instead keeps the classic
            // post-event stop below, so end-of-run state (events due at the
            // final access time included) matches an uninterrupted run.
            if t >= horizon && horizon < self.cfg.run_for {
                return;
            }
            // Fire daemon events due before this access.
            while let Some(deadline) = sys.events.next_deadline() {
                if deadline > t {
                    break;
                }
                let fire_at = deadline.max(sys.clock.now());
                sys.clock.advance_to(fire_at);
                // Retire in-flight migrations that became due before the
                // daemon runs, so the policy observes post-completion state.
                sys.complete_due_migrations();
                let (_, token) = sys
                    .events
                    .pop_due(deadline)
                    .expect("deadline was just peeked");
                sys.count_daemon_wakeup();
                policy.on_event(sys, token);
                inspect(sys);
            }
            if t > sys.clock.now() {
                sys.clock.advance_to(t);
                sys.complete_due_migrations();
            }

            if t >= horizon || self.accesses >= self.cfg.max_accesses {
                self.finished = t >= self.cfg.run_for || self.accesses >= self.cfg.max_accesses;
                return;
            }

            // Fig 9 style sampling of per-process placement.
            if sys.clock.now() >= self.next_sample {
                let interval = self.cfg.sample_interval.expect("sampling enabled");
                for (i, s) in self.series.iter_mut().enumerate() {
                    let frac = sys
                        .process(ProcessId(i as u16))
                        .space
                        .fast_tier_fraction()
                        .unwrap_or(0.0);
                    s.push(sys.clock.now(), frac);
                }
                self.next_sample = sys.clock.now() + interval;
            }

            let Some(req) = workloads[pid.0 as usize].next_access() else {
                sys.process_mut(pid).running = false;
                continue;
            };

            if req.think > Nanos::ZERO {
                sys.process_mut(pid).vtime += req.think;
                sys.stats.user_time += req.think;
            }

            let res = sys.access(pid, req.vpn, req.write);
            self.accesses += 1;
            // One sample lands in two histograms (all accesses + the
            // read/write split); compute the log-scale bucket once.
            let bucket = LatencyHistogram::bucket_index(res.latency);
            self.latency.record_in_bucket(res.latency, bucket);
            if req.write {
                self.latency_writes.record_in_bucket(res.latency, bucket);
            } else {
                self.latency_reads.record_in_bucket(res.latency, bucket);
            }
            observer(pid, req.vpn, req.write, res.tier);
            // Any non-top tier counts as "slow" for the FMAR-style tally, so
            // the metric generalizes to chains longer than two tiers.
            if self.cfg.track_slow_accesses && res.tier != TierId::FAST {
                self.slow_pages.insert(pid, req.vpn);
            }
            if res.hint_fault {
                policy.on_hint_fault(sys, pid, req.vpn, req.write, &res);
            }
            policy.on_access(sys, pid, req.vpn, req.write);
            inspect(sys);
        }
    }

    /// Closes the session and produces the run result.
    pub fn finish(self, sys: &mut TieredSystem) -> RunResult {
        // Policies without a periodic tune event (Static, the baselines'
        // quiet configurations) would otherwise export zero rows; close the
        // run with a final whole-run sample so every traced run has one.
        if sys.trace.is_enabled() && sys.trace.periods().is_empty() {
            sys.trace_period(Default::default());
        }

        let workloads_finished = sys.pids().all(|p| !sys.process(p).running);
        RunResult {
            accesses: self.accesses,
            makespan: sys.makespan(),
            latency: self.latency,
            latency_reads: self.latency_reads,
            latency_writes: self.latency_writes,
            fast_fraction_series: self.series,
            accessed_slow_pages: self.slow_pages.distinct,
            workloads_finished,
        }
    }
}

/// Drives one (system, workloads, policy) triple to completion.
pub struct SimulationDriver {
    cfg: DriverConfig,
}

impl SimulationDriver {
    /// Creates a driver with the given configuration.
    pub fn new(cfg: DriverConfig) -> SimulationDriver {
        SimulationDriver { cfg }
    }

    /// Runs the simulation. `workloads[i]` feeds the process with pid `i`;
    /// callers must have created the processes in the same order.
    pub fn run(
        &self,
        sys: &mut TieredSystem,
        workloads: &mut [Box<dyn Workload>],
        policy: &mut dyn TieringPolicy,
    ) -> RunResult {
        self.run_observed(sys, workloads, policy, |_, _, _, _| {})
    }

    /// Like [`SimulationDriver::run`], additionally invoking `observer` for
    /// every access with `(pid, vpn, write, tier served)` — the hook behind
    /// access-weighted classification scoring (Fig 2a) and the Fig 1
    /// per-region frequency profiling.
    pub fn run_observed<F>(
        &self,
        sys: &mut TieredSystem,
        workloads: &mut [Box<dyn Workload>],
        policy: &mut dyn TieringPolicy,
        observer: F,
    ) -> RunResult
    where
        F: FnMut(ProcessId, tiered_mem::Vpn, bool, TierId),
    {
        self.run_inspected(sys, workloads, policy, observer, |_| {})
    }

    /// Like [`SimulationDriver::run_observed`], additionally invoking
    /// `inspect` with a shared view of the system after every fired daemon
    /// event and every completed access — the hook behind the
    /// `tiering-verify` invariant oracle, which re-checks substrate
    /// consistency after each step of a fuzzed run.
    pub fn run_inspected<F, G>(
        &self,
        sys: &mut TieredSystem,
        workloads: &mut [Box<dyn Workload>],
        policy: &mut dyn TieringPolicy,
        observer: F,
        inspect: G,
    ) -> RunResult
    where
        F: FnMut(ProcessId, tiered_mem::Vpn, bool, TierId),
        G: FnMut(&TieredSystem),
    {
        let mut session = DriverSession::new(self.cfg.clone());
        session.step_until(self.cfg.run_for, sys, workloads, policy, observer, inspect);
        session.finish(sys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NullPolicy;
    use tiered_mem::{PageSize, SystemConfig};
    use workloads::{PmbenchConfig, PmbenchWorkload};

    fn build(pages: u32, n_procs: usize) -> (TieredSystem, Vec<Box<dyn Workload>>) {
        let mut sys = TieredSystem::new(SystemConfig::quarter_fast(pages * n_procs as u32 * 2));
        let mut wls: Vec<Box<dyn Workload>> = Vec::new();
        for i in 0..n_procs {
            let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(pages, 0.7, i as u64));
            sys.add_process(w.address_space_pages(), PageSize::Base);
            wls.push(Box::new(w));
        }
        (sys, wls)
    }

    #[test]
    fn run_reaches_horizon() {
        let (mut sys, mut wls) = build(512, 2);
        let mut policy = NullPolicy;
        let driver = SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(10),
            ..Default::default()
        });
        let r = driver.run(&mut sys, &mut wls, &mut policy);
        assert!(r.accesses > 1000);
        assert!(r.makespan >= Nanos::from_millis(10));
        assert!(!r.workloads_finished);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn finite_workloads_finish() {
        let mut sys = TieredSystem::new(SystemConfig::quarter_fast(4096));
        let mut cfg = PmbenchConfig::paper_skewed(256, 0.5, 1);
        cfg.total_accesses = 500;
        let w = PmbenchWorkload::new(cfg);
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = NullPolicy;
        let r =
            SimulationDriver::new(DriverConfig::for_secs(100)).run(&mut sys, &mut wls, &mut policy);
        // 256 sequential-init accesses + 500 measured ones.
        assert_eq!(r.accesses, 256 + 500);
        assert!(r.workloads_finished);
    }

    #[test]
    fn max_accesses_caps_the_run() {
        let (mut sys, mut wls) = build(256, 1);
        let mut policy = NullPolicy;
        let driver = SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_secs(100),
            max_accesses: 100,
            ..Default::default()
        });
        let r = driver.run(&mut sys, &mut wls, &mut policy);
        assert_eq!(r.accesses, 100);
    }

    #[test]
    fn sampling_produces_series() {
        let (mut sys, mut wls) = build(256, 2);
        let mut policy = NullPolicy;
        let driver = SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(50),
            sample_interval: Some(Nanos::from_millis(10)),
            ..Default::default()
        });
        let r = driver.run(&mut sys, &mut wls, &mut policy);
        assert_eq!(r.fast_fraction_series.len(), 2);
        assert!(r.fast_fraction_series[0].len() >= 3);
    }

    #[test]
    fn slow_access_tracking() {
        // Force slow-tier residency: tiny fast tier.
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(32, 4096));
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(1024, 0.5, 3));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = NullPolicy;
        let driver = SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(20),
            track_slow_accesses: true,
            ..Default::default()
        });
        let r = driver.run(&mut sys, &mut wls, &mut policy);
        assert!(r.accessed_slow_pages > 100);
    }

    #[test]
    fn deterministic_runs() {
        let result = |seed| {
            let mut sys = TieredSystem::new(SystemConfig::quarter_fast(2048));
            let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(512, 0.7, seed));
            sys.add_process(w.address_space_pages(), PageSize::Base);
            let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
            let mut policy = NullPolicy;
            let r = SimulationDriver::new(DriverConfig {
                run_for: Nanos::from_millis(5),
                ..Default::default()
            })
            .run(&mut sys, &mut wls, &mut policy);
            (r.accesses, r.makespan, sys.stats.fmar().to_bits())
        };
        assert_eq!(result(9), result(9));
        assert_ne!(result(9), result(10));
    }
}
