//! The generic simulation driver.
//!
//! Interleaves workload accesses with policy daemon events on the simulated
//! timeline: the runnable process with the smallest virtual time executes
//! next (fair concurrency, each process on its own hardware context, as in
//! the paper's multi-process runs), and daemon events fire whenever
//! simulated time passes their deadline.

use sim_clock::Nanos;
use tiered_mem::{ProcessId, TierId, TieredSystem, Vpn};
use tiering_metrics::{LatencyHistogram, TimeSeries};
use workloads::Workload;

use crate::policy::TieringPolicy;

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Stop once simulated time reaches this horizon.
    pub run_for: Nanos,
    /// Stop after this many accesses (safety valve; default unbounded).
    pub max_accesses: u64,
    /// Record per-process fast-tier page fractions at this interval (Fig 9).
    pub sample_interval: Option<Nanos>,
    /// Track the distinct slow-tier pages accessed (PPR denominator, Fig 2a).
    pub track_slow_accesses: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            run_for: Nanos::from_secs(60),
            max_accesses: u64::MAX,
            sample_interval: None,
            track_slow_accesses: false,
        }
    }
}

impl DriverConfig {
    /// A driver that runs for the given number of simulated seconds.
    pub fn for_secs(secs: u64) -> DriverConfig {
        DriverConfig {
            run_for: Nanos::from_secs(secs),
            ..Default::default()
        }
    }
}

/// Results of one simulation run.
#[derive(Debug)]
pub struct RunResult {
    /// Total accesses executed.
    pub accesses: u64,
    /// Simulated makespan (max process virtual time).
    pub makespan: Nanos,
    /// Access latency distribution (all accesses).
    pub latency: LatencyHistogram,
    /// Load latency distribution.
    pub latency_reads: LatencyHistogram,
    /// Store latency distribution.
    pub latency_writes: LatencyHistogram,
    /// Per-process fast-tier page fraction histories (if sampling enabled).
    pub fast_fraction_series: Vec<TimeSeries>,
    /// Distinct slow-tier pages that were accessed (if tracking enabled).
    pub accessed_slow_pages: u64,
    /// Whether every workload ran to completion (vs. hitting the horizon).
    pub workloads_finished: bool,
}

impl RunResult {
    /// Throughput in accesses per simulated second.
    pub fn throughput(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.accesses as f64 / secs
        }
    }
}

/// Distinct `(pid, page)` tracking as per-process bitsets: `insert` is two
/// indexes and an OR, replacing an ordered set whose tree descent sat on the
/// per-access path whenever `track_slow_accesses` was enabled. Traversal (if
/// ever added) is row-major and therefore deterministic, same as the ordered
/// set it replaces.
#[derive(Default)]
struct SlowPageSet {
    bits: Vec<Vec<u64>>,
    distinct: u64,
}

impl SlowPageSet {
    fn insert(&mut self, pid: ProcessId, vpn: Vpn) {
        let p = pid.0 as usize;
        if p >= self.bits.len() {
            self.bits.resize_with(p + 1, Vec::new);
        }
        let row = &mut self.bits[p];
        let word = (vpn.0 / 64) as usize;
        if word >= row.len() {
            row.resize(word + 1, 0);
        }
        let mask = 1u64 << (vpn.0 % 64);
        if row[word] & mask == 0 {
            row[word] |= mask;
            self.distinct += 1;
        }
    }
}

/// Drives one (system, workloads, policy) triple to completion.
pub struct SimulationDriver {
    cfg: DriverConfig,
}

impl SimulationDriver {
    /// Creates a driver with the given configuration.
    pub fn new(cfg: DriverConfig) -> SimulationDriver {
        SimulationDriver { cfg }
    }

    /// Runs the simulation. `workloads[i]` feeds the process with pid `i`;
    /// callers must have created the processes in the same order.
    pub fn run(
        &self,
        sys: &mut TieredSystem,
        workloads: &mut [Box<dyn Workload>],
        policy: &mut dyn TieringPolicy,
    ) -> RunResult {
        self.run_observed(sys, workloads, policy, |_, _, _, _| {})
    }

    /// Like [`SimulationDriver::run`], additionally invoking `observer` for
    /// every access with `(pid, vpn, write, tier served)` — the hook behind
    /// access-weighted classification scoring (Fig 2a) and the Fig 1
    /// per-region frequency profiling.
    pub fn run_observed<F>(
        &self,
        sys: &mut TieredSystem,
        workloads: &mut [Box<dyn Workload>],
        policy: &mut dyn TieringPolicy,
        observer: F,
    ) -> RunResult
    where
        F: FnMut(ProcessId, tiered_mem::Vpn, bool, TierId),
    {
        self.run_inspected(sys, workloads, policy, observer, |_| {})
    }

    /// Like [`SimulationDriver::run_observed`], additionally invoking
    /// `inspect` with a shared view of the system after every fired daemon
    /// event and every completed access — the hook behind the
    /// `tiering-verify` invariant oracle, which re-checks substrate
    /// consistency after each step of a fuzzed run.
    pub fn run_inspected<F, G>(
        &self,
        sys: &mut TieredSystem,
        workloads: &mut [Box<dyn Workload>],
        policy: &mut dyn TieringPolicy,
        mut observer: F,
        mut inspect: G,
    ) -> RunResult
    where
        F: FnMut(ProcessId, tiered_mem::Vpn, bool, TierId),
        G: FnMut(&TieredSystem),
    {
        assert_eq!(
            workloads.len(),
            sys.num_processes(),
            "one workload per process"
        );
        policy.init(sys);

        let mut latency = LatencyHistogram::new();
        let mut latency_reads = LatencyHistogram::new();
        let mut latency_writes = LatencyHistogram::new();
        let mut accesses = 0u64;
        let mut slow_pages = SlowPageSet::default();
        let mut series: Vec<TimeSeries> = (0..workloads.len())
            .map(|i| TimeSeries::new(format!("proc{}", i)))
            .collect();
        let mut next_sample = self.cfg.sample_interval.unwrap_or(Nanos::MAX);

        // Runs until every workload finishes or a stop condition fires.
        while let Some((pid, t)) = sys.min_vtime_process_and_time() {
            // Fire daemon events due before this access.
            while let Some(deadline) = sys.events.next_deadline() {
                if deadline > t {
                    break;
                }
                let fire_at = deadline.max(sys.clock.now());
                sys.clock.advance_to(fire_at);
                // Retire in-flight migrations that became due before the
                // daemon runs, so the policy observes post-completion state.
                sys.complete_due_migrations();
                let (_, token) = sys
                    .events
                    .pop_due(deadline)
                    .expect("deadline was just peeked");
                sys.count_daemon_wakeup();
                policy.on_event(sys, token);
                inspect(sys);
            }
            if t > sys.clock.now() {
                sys.clock.advance_to(t);
                sys.complete_due_migrations();
            }

            if t >= self.cfg.run_for || accesses >= self.cfg.max_accesses {
                break;
            }

            // Fig 9 style sampling of per-process placement.
            if sys.clock.now() >= next_sample {
                let interval = self.cfg.sample_interval.expect("sampling enabled");
                for (i, s) in series.iter_mut().enumerate() {
                    let frac = sys
                        .process(ProcessId(i as u16))
                        .space
                        .fast_tier_fraction()
                        .unwrap_or(0.0);
                    s.push(sys.clock.now(), frac);
                }
                next_sample = sys.clock.now() + interval;
            }

            let Some(req) = workloads[pid.0 as usize].next_access() else {
                sys.process_mut(pid).running = false;
                continue;
            };

            if req.think > Nanos::ZERO {
                sys.process_mut(pid).vtime += req.think;
                sys.stats.user_time += req.think;
            }

            let res = sys.access(pid, req.vpn, req.write);
            accesses += 1;
            // One sample lands in two histograms (all accesses + the
            // read/write split); compute the log-scale bucket once.
            let bucket = LatencyHistogram::bucket_index(res.latency);
            latency.record_in_bucket(res.latency, bucket);
            if req.write {
                latency_writes.record_in_bucket(res.latency, bucket);
            } else {
                latency_reads.record_in_bucket(res.latency, bucket);
            }
            observer(pid, req.vpn, req.write, res.tier);
            if self.cfg.track_slow_accesses && res.tier == TierId::Slow {
                slow_pages.insert(pid, req.vpn);
            }
            if res.hint_fault {
                policy.on_hint_fault(sys, pid, req.vpn, req.write, &res);
            }
            policy.on_access(sys, pid, req.vpn, req.write);
            inspect(sys);
        }

        // Policies without a periodic tune event (Static, the baselines'
        // quiet configurations) would otherwise export zero rows; close the
        // run with a final whole-run sample so every traced run has one.
        if sys.trace.is_enabled() && sys.trace.periods().is_empty() {
            sys.trace_period(Default::default());
        }

        let workloads_finished = sys.pids().all(|p| !sys.process(p).running);
        RunResult {
            accesses,
            makespan: sys.makespan(),
            latency,
            latency_reads,
            latency_writes,
            fast_fraction_series: series,
            accessed_slow_pages: slow_pages.distinct,
            workloads_finished,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NullPolicy;
    use tiered_mem::{PageSize, SystemConfig};
    use workloads::{PmbenchConfig, PmbenchWorkload};

    fn build(pages: u32, n_procs: usize) -> (TieredSystem, Vec<Box<dyn Workload>>) {
        let mut sys = TieredSystem::new(SystemConfig::quarter_fast(pages * n_procs as u32 * 2));
        let mut wls: Vec<Box<dyn Workload>> = Vec::new();
        for i in 0..n_procs {
            let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(pages, 0.7, i as u64));
            sys.add_process(w.address_space_pages(), PageSize::Base);
            wls.push(Box::new(w));
        }
        (sys, wls)
    }

    #[test]
    fn run_reaches_horizon() {
        let (mut sys, mut wls) = build(512, 2);
        let mut policy = NullPolicy;
        let driver = SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(10),
            ..Default::default()
        });
        let r = driver.run(&mut sys, &mut wls, &mut policy);
        assert!(r.accesses > 1000);
        assert!(r.makespan >= Nanos::from_millis(10));
        assert!(!r.workloads_finished);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn finite_workloads_finish() {
        let mut sys = TieredSystem::new(SystemConfig::quarter_fast(4096));
        let mut cfg = PmbenchConfig::paper_skewed(256, 0.5, 1);
        cfg.total_accesses = 500;
        let w = PmbenchWorkload::new(cfg);
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = NullPolicy;
        let r =
            SimulationDriver::new(DriverConfig::for_secs(100)).run(&mut sys, &mut wls, &mut policy);
        // 256 sequential-init accesses + 500 measured ones.
        assert_eq!(r.accesses, 256 + 500);
        assert!(r.workloads_finished);
    }

    #[test]
    fn max_accesses_caps_the_run() {
        let (mut sys, mut wls) = build(256, 1);
        let mut policy = NullPolicy;
        let driver = SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_secs(100),
            max_accesses: 100,
            ..Default::default()
        });
        let r = driver.run(&mut sys, &mut wls, &mut policy);
        assert_eq!(r.accesses, 100);
    }

    #[test]
    fn sampling_produces_series() {
        let (mut sys, mut wls) = build(256, 2);
        let mut policy = NullPolicy;
        let driver = SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(50),
            sample_interval: Some(Nanos::from_millis(10)),
            ..Default::default()
        });
        let r = driver.run(&mut sys, &mut wls, &mut policy);
        assert_eq!(r.fast_fraction_series.len(), 2);
        assert!(r.fast_fraction_series[0].len() >= 3);
    }

    #[test]
    fn slow_access_tracking() {
        // Force slow-tier residency: tiny fast tier.
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(32, 4096));
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(1024, 0.5, 3));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = NullPolicy;
        let driver = SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(20),
            track_slow_accesses: true,
            ..Default::default()
        });
        let r = driver.run(&mut sys, &mut wls, &mut policy);
        assert!(r.accessed_slow_pages > 100);
    }

    #[test]
    fn deterministic_runs() {
        let result = |seed| {
            let mut sys = TieredSystem::new(SystemConfig::quarter_fast(2048));
            let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(512, 0.7, seed));
            sys.add_process(w.address_space_pages(), PageSize::Base);
            let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
            let mut policy = NullPolicy;
            let r = SimulationDriver::new(DriverConfig {
                run_for: Nanos::from_millis(5),
                ..Default::default()
            })
            .run(&mut sys, &mut wls, &mut policy);
            (r.accesses, r.makespan, sys.stats.fmar().to_bits())
        };
        assert_eq!(result(9), result(9));
        assert_ne!(result(9), result(10));
    }
}
