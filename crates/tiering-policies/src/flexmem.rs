//! FlexMem (Xu et al., USENIX ATC '24).
//!
//! A synthetic criterion combining Memtis's PEBS histogram statistics with
//! the software page-fault method: PEBS counters supply the frequency
//! ranking, while NUMA hint faults supply *timeliness* — a sampled-hot page
//! that also hint-faults recently is promoted immediately instead of
//! waiting for the next migration epoch. Table 1 classifies it with Memtis
//! (0–10 access/sec effective scale, huge pages by default); the paper
//! describes it as "enhancing Memtis with timely migration decisions".

use sim_clock::Nanos;
use tiered_mem::{
    scan_budget_pages, AccessResult, MigrateMode, PageFlags, ProcessId, TierId, TieredSystem, Vpn,
};

use crate::pebs::PebsSampler;
use crate::policy::{decode_token, encode_token, ScanCursor, TieringPolicy};

const EV_SCAN: u16 = 1;
const EV_MIGRATE: u16 = 2;
const EV_COOL: u16 = 3;
const EV_DEMOTE: u16 = 4;

/// FlexMem configuration.
#[derive(Debug, Clone)]
pub struct FlexMemConfig {
    /// Mean accesses per PEBS sample.
    pub sample_period: u64,
    /// NUMA scan period (slow tier only, for the timeliness faults).
    pub scan_period: Nanos,
    /// Pages marked per scan event.
    pub scan_step_pages: u32,
    /// Deferred-promotion drain interval.
    pub migrate_interval: Nanos,
    /// Counter cooling interval.
    pub cooling_interval: Nanos,
    /// Counter value at which a page is sampled-hot.
    pub hot_counter: u32,
    /// Demotion daemon interval.
    pub demote_interval: Nanos,
    /// Sampler seed.
    pub seed: u64,
}

impl Default for FlexMemConfig {
    fn default() -> Self {
        FlexMemConfig {
            sample_period: 997,
            scan_period: Nanos::from_secs(60),
            scan_step_pages: 4096,
            migrate_interval: Nanos::from_millis(100),
            cooling_interval: Nanos::from_secs(2),
            hot_counter: 4,
            demote_interval: Nanos::from_secs(2),
            seed: 0xF1E,
        }
    }
}

/// The FlexMem baseline policy.
pub struct FlexMem {
    cfg: FlexMemConfig,
    sampler: PebsSampler,
    cursors: Vec<ScanCursor>,
    deferred: Vec<(ProcessId, Vpn)>,
}

impl FlexMem {
    /// Creates the policy.
    pub fn new(cfg: FlexMemConfig) -> FlexMem {
        let sampler = PebsSampler::new(cfg.sample_period, cfg.seed);
        FlexMem {
            cfg,
            sampler,
            cursors: Vec::new(),
            deferred: Vec::new(),
        }
    }
}

impl TieringPolicy for FlexMem {
    fn name(&self) -> &'static str {
        "FlexMem"
    }

    fn init(&mut self, sys: &mut TieredSystem) {
        self.cursors.clear();
        for pid in sys.pids().collect::<Vec<_>>() {
            let pages = sys.process(pid).space.pages();
            let cursor = ScanCursor::new(pages, self.cfg.scan_step_pages, self.cfg.scan_period);
            sys.schedule_in(cursor.event_interval, encode_token(EV_SCAN, pid.0, 0));
            self.cursors.push(cursor);
        }
        sys.schedule_in(self.cfg.migrate_interval, encode_token(EV_MIGRATE, 0, 0));
        sys.schedule_in(self.cfg.cooling_interval, encode_token(EV_COOL, 0, 0));
        sys.schedule_in(self.cfg.demote_interval, encode_token(EV_DEMOTE, 0, 0));
    }

    fn on_event(&mut self, sys: &mut TieredSystem, token: u64) {
        let (kind, pid_raw, _) = decode_token(token);
        match kind {
            EV_SCAN => {
                let pid = ProcessId(pid_raw);
                let cur = &mut self.cursors[pid_raw as usize];
                let mut visited = 0u64;
                cur.cursor =
                    sys.process_mut(pid)
                        .space
                        .walk_range(cur.cursor, cur.step_pages, |_vpn, e| {
                            visited += 1;
                            if e.tier() == TierId::SLOW {
                                e.flags.set(PageFlags::PROT_NONE);
                            }
                        });
                sys.charge_scan(pid, visited.max(1));
                let interval = cur.event_interval;
                sys.schedule_in(interval, encode_token(EV_SCAN, pid.0, 0));
            }
            EV_MIGRATE => {
                for (pid, unit) in self.deferred.drain(..) {
                    let e = sys.process_mut(pid).space.entry_mut(unit);
                    e.flags.clear(PageFlags::CANDIDATE);
                    if e.tier() == TierId::SLOW {
                        let _ = sys.promote_with_reclaim(pid, unit, MigrateMode::Async);
                    }
                }
                sys.schedule_in(self.cfg.migrate_interval, encode_token(EV_MIGRATE, 0, 0));
            }
            EV_COOL => {
                for pid in sys.pids().collect::<Vec<_>>() {
                    let pages = sys.process(pid).space.pages();
                    sys.process_mut(pid)
                        .space
                        .walk_range(Vpn(0), pages, |_v, e| {
                            e.policy_extra >>= 1;
                        });
                }
                sys.schedule_in(self.cfg.cooling_interval, encode_token(EV_COOL, 0, 0));
            }
            EV_DEMOTE => {
                let age_budget = scan_budget_pages(
                    sys.total_frames(TierId::FAST),
                    self.cfg.demote_interval,
                    self.cfg.scan_period,
                );
                sys.age_active_list(TierId::FAST, age_budget.max(16));
                // Keep headroom above the plain watermarks so both the
                // deferred drain and the timeliness faults find free frames.
                let target = sys
                    .watermarks
                    .high
                    .saturating_add(sys.total_frames(TierId::FAST) / 32);
                let mut budget = 128u32;
                while sys.free_frames(TierId::FAST) < target && budget > 0 {
                    budget -= 1;
                    match sys.pop_inactive_victim(TierId::FAST) {
                        Some((pid, vpn)) => {
                            let _ = sys.migrate(pid, vpn, TierId::SLOW, MigrateMode::Async);
                        }
                        None => break,
                    }
                }
                sys.trace_period(Default::default());
                sys.schedule_in(self.cfg.demote_interval, encode_token(EV_DEMOTE, 0, 0));
            }
            _ => unreachable!("unknown FlexMem event {}", kind),
        }
    }

    fn on_hint_fault(
        &mut self,
        sys: &mut TieredSystem,
        pid: ProcessId,
        vpn: Vpn,
        _write: bool,
        _res: &AccessResult,
    ) {
        // Synthetic criterion: a hint fault on a *sampled-warm* page
        // promotes immediately (frequency + recency evidence together);
        // pages the rate-capped sampler never saw fall back to the pure
        // page-fault method — promote on the second observed fault.
        let pte = sys.process(pid).space.pte_page(vpn);
        let e = sys.process_mut(pid).space.entry_mut(pte);
        if e.tier() != TierId::SLOW {
            return;
        }
        let sampled_warm = e.policy_extra >= self.cfg.hot_counter / 2;
        let second_fault = e.flags.has(PageFlags::POLICY_BIT);
        if sampled_warm || second_fault {
            e.flags.clear(PageFlags::POLICY_BIT);
            let _ = sys.promote_with_reclaim(pid, pte, MigrateMode::Sync(pid));
        } else {
            e.flags.set(PageFlags::POLICY_BIT);
        }
    }

    fn on_access(&mut self, sys: &mut TieredSystem, pid: ProcessId, vpn: Vpn, _write: bool) {
        if !self.sampler.observe() {
            return;
        }
        let pte = sys.process(pid).space.pte_page(vpn);
        let hot = self.cfg.hot_counter;
        let e = sys.process_mut(pid).space.entry_mut(pte);
        e.policy_extra = e.policy_extra.saturating_add(1);
        if e.policy_extra >= hot && e.tier() == TierId::SLOW && !e.flags.has(PageFlags::CANDIDATE) {
            e.flags.set(PageFlags::CANDIDATE);
            self.deferred.push((pid, pte));
        }
        sys.stats.kernel_time += Nanos(100);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DriverConfig, SimulationDriver};
    use tiered_mem::{PageSize, SystemConfig};
    use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

    fn run_fm(run_ms: u64) -> TieredSystem {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(1024, 4096));
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = FlexMem::new(FlexMemConfig {
            sample_period: 199,
            scan_period: Nanos::from_millis(50),
            scan_step_pages: 512,
            migrate_interval: Nanos::from_millis(5),
            cooling_interval: Nanos::from_millis(200),
            hot_counter: 4,
            demote_interval: Nanos::from_millis(25),
            seed: 3,
        });
        SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(run_ms),
            ..Default::default()
        })
        .run(&mut sys, &mut wls, &mut policy);
        sys
    }

    #[test]
    fn combines_faults_and_sampling() {
        let sys = run_fm(400);
        assert!(sys.stats.hint_faults > 0, "scan faults expected");
        assert!(sys.stats.promoted_pages > 0, "promotions expected");
    }

    #[test]
    fn beats_static_placement() {
        let sys = run_fm(500);
        assert!(sys.stats.fmar() > 0.3, "fmar {}", sys.stats.fmar());
    }

    #[test]
    fn cooling_keeps_counters_bounded() {
        let sys = run_fm(400);
        let pid = ProcessId(0);
        let max_counter = (0..sys.process(pid).space.pages())
            .map(|i| sys.process(pid).space.entry(Vpn(i)).policy_extra)
            .max()
            .unwrap_or(0);
        assert!(max_counter < 1_000_000, "counter runaway: {}", max_counter);
    }
}
