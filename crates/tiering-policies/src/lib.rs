#![warn(missing_docs)]
//! Tiering policies: the trait all policies implement, a generic simulation
//! driver, and the paper's five baselines.
//!
//! | Policy | Paper | Mechanism (Table 1) |
//! |---|---|---|
//! | [`LinuxNumaBalancing`] | Linux-NB | NUMA hint faults, MRU promotion |
//! | [`AutoTiering`] | Kim et al., ATC '21 | 8-bit LAP page-fault vectors |
//! | [`MultiClock`] | Maruf et al., HPCA '22 | multi-level accessed-bit lists |
//! | [`Tpp`] | Maruf et al., ASPLOS '23 | hint faults + LRU recency gate |
//! | [`Memtis`] | Lee et al., SOSP '23 | PEBS sampling + histogram, huge pages |
//! | [`Telescope`] | Nair et al., ATC '24 | tree-structured region profiling |
//! | [`FlexMem`] | Xu et al., ATC '24 | PEBS statistics + hint-fault timeliness |
//!
//! Chrono itself lives in the `chrono-core` crate and implements the same
//! [`TieringPolicy`] trait.

pub mod autotiering;
pub mod driver;
pub mod flexmem;
pub mod linux_nb;
pub mod memtis;
pub mod multiclock;
pub mod pebs;
pub mod policy;
pub mod shard;
pub mod telescope;
pub mod tpp;

pub use autotiering::AutoTiering;
pub use driver::{DriverConfig, DriverSession, RunResult, SimulationDriver};
pub use flexmem::{FlexMem, FlexMemConfig};
pub use linux_nb::LinuxNumaBalancing;
pub use memtis::{Memtis, MemtisConfig};
pub use multiclock::{MultiClock, MultiClockConfig};
pub use pebs::PebsSampler;
pub use policy::{decode_token, encode_token, NullPolicy, ScanCursor, TieringPolicy};
pub use shard::{
    admission_grants, gini, AdmissionConfig, BarrierAudit, ShardedConfig, ShardedRunResult,
    ShardedSim, SlotClaim, TenantOutcome, TenantShard,
};
pub use telescope::{Telescope, TelescopeConfig};
pub use tpp::{Tpp, TppConfig};
