//! Linux NUMA balancing on tiered memory (the paper's Linux-NB baseline).
//!
//! The vanilla `numa_balancing=2` scheme of Section 2.1: `task_numa_work`
//! periodically poisons a chunk of each task's address space with
//! `PROT_NONE`; any subsequent access hint-faults, and a fault on a page
//! resident in the CPU-less slow node triggers an immediate synchronous
//! promotion. This is effectively *most-recently-used* promotion — no
//! frequency information whatsoever — which is exactly the weakness the
//! paper builds on: every page, however lukewarm, gets promoted once per
//! scan period, churning the fast tier.

use sim_clock::Nanos;
use tiered_mem::{
    scan_budget_pages, AccessResult, MigrateMode, PageFlags, ProcessId, TierId, TieredSystem, Vpn,
};

use crate::policy::{decode_token, encode_token, ScanCursor, TieringPolicy};

const EV_SCAN: u16 = 1;
const EV_KSWAPD: u16 = 2;

/// Configuration of the NUMA-balancing scanner.
#[derive(Debug, Clone)]
pub struct LinuxNbConfig {
    /// Full pass period over each address space (`scan_period_max`-ish).
    pub scan_period: Nanos,
    /// Pages marked per scan event (the kernel's 256 MB default = 65536
    /// base pages; scaled-down systems use proportionally smaller steps).
    pub scan_step_pages: u32,
    /// Promotion rate limit as a fraction of the fast tier per scan period.
    /// The kernel's tiering mode caps promotion at 256 MB/s
    /// (`numa_balancing_promote_rate_limit_MBps`), ≈ 23 % of the paper's
    /// 64 GB DRAM per 60 s scan period.
    pub promote_tier_frac_per_period: f64,
}

impl Default for LinuxNbConfig {
    fn default() -> Self {
        LinuxNbConfig {
            scan_period: Nanos::from_secs(60),
            scan_step_pages: 4096,
            promote_tier_frac_per_period: 0.23,
        }
    }
}

/// The Linux-NB baseline policy.
pub struct LinuxNumaBalancing {
    cfg: LinuxNbConfig,
    cursors: Vec<ScanCursor>,
    /// Remaining promotion budget in the current pacing window (pages).
    promo_budget: u32,
}

impl LinuxNumaBalancing {
    /// Creates the policy with kernel-default parameters.
    pub fn new(cfg: LinuxNbConfig) -> LinuxNumaBalancing {
        LinuxNumaBalancing {
            cfg,
            cursors: Vec::new(),
            promo_budget: 0,
        }
    }

    /// Kernel defaults, with the scan step scaled so a pass over `pages`
    /// takes roughly the kernel's default number of chunks.
    pub fn with_defaults() -> LinuxNumaBalancing {
        LinuxNumaBalancing::new(LinuxNbConfig::default())
    }
}

impl TieringPolicy for LinuxNumaBalancing {
    fn name(&self) -> &'static str {
        "Linux-NB"
    }

    fn init(&mut self, sys: &mut TieredSystem) {
        self.cursors.clear();
        for pid in sys.pids().collect::<Vec<_>>() {
            let pages = sys.process(pid).space.pages();
            let cursor = ScanCursor::new(pages, self.cfg.scan_step_pages, self.cfg.scan_period);
            sys.schedule_in(cursor.event_interval, encode_token(EV_SCAN, pid.0, 0));
            self.cursors.push(cursor);
        }
        sys.schedule_in(self.cfg.scan_period / 16, encode_token(EV_KSWAPD, 0, 0));
    }

    fn on_event(&mut self, sys: &mut TieredSystem, token: u64) {
        let (kind, pid_raw, _) = decode_token(token);
        match kind {
            EV_SCAN => {
                let pid = ProcessId(pid_raw);
                let cur = &mut self.cursors[pid_raw as usize];

                // Poison the next chunk with PROT_NONE; NUMA balancing marks
                // every present page regardless of tier (faults on fast pages
                // are "local" and migrate nothing, but still cost a fault —
                // part of NB's overhead).
                let mut marked = 0u64;
                cur.cursor =
                    sys.process_mut(pid)
                        .space
                        .walk_range(cur.cursor, cur.step_pages, |_vpn, e| {
                            e.flags.set(PageFlags::PROT_NONE);
                            marked += 1;
                        });
                sys.charge_scan(pid, marked.max(1));
                // LRU aging at scan-period timescale, spread across chunks.
                let age_budget = scan_budget_pages(
                    sys.total_frames(TierId::FAST),
                    cur.event_interval,
                    self.cfg.scan_period,
                );
                sys.age_active_list(TierId::FAST, age_budget.max(16));
                let interval = cur.event_interval;
                sys.schedule_in(interval, encode_token(EV_SCAN, pid.0, 0));
            }
            EV_KSWAPD => {
                // kswapd with v5.18 tiering-mode reclaim-demotion and
                // watermark boosting: refill the paced promotion budget and
                // demote enough inactive pages to serve it. The kernel caps
                // promotion at `numa_balancing_promote_rate_limit_MBps`
                // (256 MB/s); the resulting steady churn — promote whatever
                // faulted most recently, demote whatever kswapd found — is
                // what turns NB's placement into an MRU lottery.
                let refill = (sys.total_frames(TierId::FAST) as f64
                    * self.cfg.promote_tier_frac_per_period
                    / 16.0) as u32;
                self.promo_budget = refill;
                let target = sys.watermarks.high.saturating_add(refill);
                if sys.free_frames(TierId::FAST) < target {
                    let mut budget = refill.saturating_mul(2).max(64);
                    while sys.free_frames(TierId::FAST) < target && budget > 0 {
                        budget -= 1;
                        match sys.pop_inactive_victim(TierId::FAST) {
                            Some((vp, vv)) => {
                                let _ = sys.migrate(vp, vv, TierId::SLOW, MigrateMode::Async);
                            }
                            None => break,
                        }
                    }
                }
                sys.trace_period(Default::default());
                sys.schedule_in(self.cfg.scan_period / 16, encode_token(EV_KSWAPD, 0, 0));
            }
            _ => unreachable!("unknown Linux-NB event {}", kind),
        }
    }

    fn on_hint_fault(
        &mut self,
        sys: &mut TieredSystem,
        pid: ProcessId,
        vpn: Vpn,
        _write: bool,
        _res: &AccessResult,
    ) {
        // MRU promotion: the touched page migrates synchronously, within the
        // pacing budget and only if the fast tier has free frames —
        // `migrate_misplaced_page` does not reclaim on its own.
        let pte = sys.process(pid).space.pte_page(vpn);
        if self.promo_budget > 0
            && sys.process(pid).space.entry(pte).tier() == TierId::SLOW
            && sys
                .migrate(pid, pte, TierId::FAST, MigrateMode::Sync(pid))
                .is_ok()
        {
            self.promo_budget -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DriverConfig, SimulationDriver};
    use tiered_mem::{PageSize, SystemConfig};
    use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

    fn run_nb(run_ms: u64) -> (TieredSystem, crate::driver::RunResult) {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(1024, 4096));
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
        sys.add_process(w.address_space_pages(), PageSize::Base);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = LinuxNumaBalancing::new(LinuxNbConfig {
            scan_period: Nanos::from_millis(50),
            scan_step_pages: 512,
            promote_tier_frac_per_period: 0.23,
        });
        let r = SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(run_ms),
            ..Default::default()
        })
        .run(&mut sys, &mut wls, &mut policy);
        (sys, r)
    }

    #[test]
    fn scanning_generates_hint_faults() {
        let (sys, _r) = run_nb(200);
        assert!(sys.stats.hint_faults > 100, "{}", sys.stats.hint_faults);
        assert!(sys.stats.scanned_ptes > 1000);
    }

    #[test]
    fn faults_trigger_promotions() {
        let (sys, _r) = run_nb(200);
        assert!(
            sys.stats.promoted_pages > 50,
            "{}",
            sys.stats.promoted_pages
        );
    }

    #[test]
    fn promotion_is_mru_and_churns() {
        // With a working set far exceeding the fast tier and a scan-driven
        // fault rate, NB promotes far more pages than the fast tier can
        // hold — churn, visible as demotions of recently promoted pages.
        let (sys, _r) = run_nb(400);
        assert!(
            sys.stats.demoted_pages > 0,
            "reclaim should demote to make room"
        );
    }

    #[test]
    fn improves_fmar_over_nothing_on_skewed_load() {
        // Even MRU beats static placement on a skewed workload: hot pages
        // fault often and end up in DRAM more than cold ones.
        let (sys, _r) = run_nb(400);
        let static_fmar = {
            let mut sys2 = TieredSystem::new(SystemConfig::dram_pmem(1024, 4096));
            let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(4096, 0.7, 1));
            sys2.add_process(w.address_space_pages(), PageSize::Base);
            let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
            let mut p = crate::policy::NullPolicy;
            SimulationDriver::new(DriverConfig {
                run_for: Nanos::from_millis(400),
                ..Default::default()
            })
            .run(&mut sys2, &mut wls, &mut p);
            sys2.stats.fmar()
        };
        assert!(
            sys.stats.fmar() > static_fmar,
            "NB {} vs static {}",
            sys.stats.fmar(),
            static_fmar
        );
    }
}
