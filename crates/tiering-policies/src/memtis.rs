//! Memtis (Lee et al., SOSP '23).
//!
//! PEBS-driven tiering with a global histogram: sampled accesses increment a
//! per-unit counter (a *unit* is a 2 MiB huge block in Memtis's recommended
//! configuration, or a base page when forced); units are binned by
//! log2(counter) into a histogram; the hot threshold is chosen so the hot
//! set just fits the fast tier; counters cool (halve) periodically. The
//! paper's Fig 2b observation emerges directly: with the hardware-capped
//! sampling rate spread over ~512× more base pages, counters concentrate in
//! the lowest bins and classification turns unstable, while huge units get
//! healthy counters but suffer hotness fragmentation (half-empty hot
//! blocks) under strided workloads.

use sim_clock::Nanos;
use tiered_mem::{
    scan_budget_pages, AccessResult, MigrateMode, PageFlags, ProcessId, TierId, TieredSystem, Vpn,
    HUGE_2M_PAGES,
};

use crate::pebs::PebsSampler;
use crate::policy::{decode_token, encode_token, TieringPolicy};

const EV_MIGRATE: u16 = 1;
const EV_COOL: u16 = 2;
const EV_ADJUST: u16 = 3;

/// Number of log2 histogram bins.
pub const BINS: usize = 16;

/// Memtis configuration.
#[derive(Debug, Clone)]
pub struct MemtisConfig {
    /// Mean accesses per PEBS sample (hardware rate cap model).
    pub sample_period: u64,
    /// Promotion-queue drain interval.
    pub migrate_interval: Nanos,
    /// Counter cooling (halving) interval.
    pub cooling_interval: Nanos,
    /// Hot-threshold recomputation interval.
    pub adjust_interval: Nanos,
    /// Fraction of fast-tier frames the hot set may occupy.
    pub fast_fill_ratio: f64,
    /// Enable hot huge-page splitting (Memtis's bloat mitigation).
    pub split_enabled: bool,
    /// RNG seed for the sampler.
    pub seed: u64,
}

impl Default for MemtisConfig {
    fn default() -> Self {
        MemtisConfig {
            sample_period: 997,
            migrate_interval: Nanos::from_millis(100),
            cooling_interval: Nanos::from_secs(2),
            adjust_interval: Nanos::from_millis(500),
            fast_fill_ratio: 0.95,
            split_enabled: true,
            seed: 0x4D454D54,
        }
    }
}

/// The Memtis baseline policy.
pub struct Memtis {
    cfg: MemtisConfig,
    sampler: PebsSampler,
    /// Pages (not units) per log2-counter bin, the Fig 2b distribution.
    hist_pages: [u64; BINS],
    /// Current hot threshold (minimum counter value deemed hot).
    hot_threshold: u32,
    /// Promotion queue of (pid, unit head) marked with `CANDIDATE`.
    promote_queue: Vec<(ProcessId, Vpn)>,
    splits: u64,
}

fn bin_of(counter: u32) -> usize {
    if counter == 0 {
        0
    } else {
        ((32 - counter.leading_zeros()) as usize).min(BINS - 1)
    }
}

impl Memtis {
    /// Creates the policy.
    pub fn new(cfg: MemtisConfig) -> Memtis {
        let sampler = PebsSampler::new(cfg.sample_period, cfg.seed);
        Memtis {
            cfg,
            sampler,
            hist_pages: [0; BINS],
            hot_threshold: 8,
            promote_queue: Vec::new(),
            splits: 0,
        }
    }

    /// The page-weighted histogram over log2-counter bins (Fig 2b data):
    /// `hist[0]` holds never-sampled pages, `hist[b]` pages whose unit
    /// counter is in `[2^(b-1), 2^b)`.
    pub fn bin_distribution(&self) -> [u64; BINS] {
        self.hist_pages
    }

    /// The current hot threshold.
    pub fn hot_threshold(&self) -> u32 {
        self.hot_threshold
    }

    /// Huge-block splits performed.
    pub fn splits(&self) -> u64 {
        self.splits
    }

    fn unit_pages(sys: &TieredSystem, pid: ProcessId, unit: Vpn) -> u64 {
        if sys.process(pid).space.is_huge_mapped(unit) {
            HUGE_2M_PAGES as u64
        } else {
            1
        }
    }

    /// Recomputes the hot threshold so the hot set ≤ fill ratio × fast tier.
    fn adjust_threshold(&mut self, sys: &TieredSystem) {
        let budget = (sys.total_frames(TierId::FAST) as f64 * self.cfg.fast_fill_ratio) as u64;
        let mut acc = 0u64;
        let mut cut_bin = 1usize; // default: everything sampled is hot
        for b in (1..BINS).rev() {
            if acc + self.hist_pages[b] > budget {
                cut_bin = b + 1;
                break;
            }
            acc += self.hist_pages[b];
        }
        self.hot_threshold = if cut_bin >= BINS {
            u32::MAX // nothing fits: only the very hottest, effectively none
        } else if cut_bin <= 1 {
            1
        } else {
            1 << (cut_bin - 1)
        };
    }

    /// Cooling sweep: halve every unit counter and rebuild the histogram.
    fn cool(&mut self, sys: &mut TieredSystem) {
        let mut hist = [0u64; BINS];
        let mut visited = 0u64;
        for pid in sys.pids().collect::<Vec<_>>() {
            let pages = sys.process(pid).space.pages();
            sys.process_mut(pid)
                .space
                .walk_range(Vpn(0), pages, |_vpn, e| {
                    visited += 1;
                    e.policy_extra >>= 1;
                    // Weight by the unit's size: intact huge heads stand for
                    // 512 base pages; split-block and base entries for one.
                    let unit_pages = if e.flags.has(PageFlags::HUGE_HEAD) {
                        HUGE_2M_PAGES as u64
                    } else {
                        1
                    };
                    hist[bin_of(e.policy_extra)] += unit_pages;
                });
        }
        self.hist_pages = hist;
        // Kernel cost of sweeping every mapped unit.
        sys.stats.kernel_time += Nanos(40).scale(visited.max(1));
    }

    /// Splits hot, fragmented fast-tier huge blocks (bounded per event).
    fn maybe_split(&mut self, sys: &mut TieredSystem) {
        if !self.cfg.split_enabled {
            return;
        }
        // Memtis splits conservatively: only under fast-tier pressure.
        if sys.free_frames(TierId::FAST) >= sys.watermarks.high {
            return;
        }
        let mut budget = 4;
        for pid in sys.pids().collect::<Vec<_>>() {
            if budget == 0 {
                break;
            }
            if !sys.process(pid).space.is_huge() {
                continue;
            }
            let pages = sys.process(pid).space.pages();
            let mut to_split: Vec<Vpn> = Vec::new();
            sys.process_mut(pid)
                .space
                .walk_range(Vpn(0), pages, |vpn, e| {
                    if e.flags.has(PageFlags::HUGE_HEAD)
                        && e.tier() == TierId::FAST
                        && e.policy_extra >= 2
                        && to_split.len() < budget
                    {
                        to_split.push(vpn);
                    }
                });
            for head in to_split {
                sys.split_block(pid, head);
                self.splits += 1;
                budget -= 1;
                sys.stats.kernel_time += Nanos(20_000); // split is expensive
            }
        }
    }
}

impl TieringPolicy for Memtis {
    fn name(&self) -> &'static str {
        "Memtis"
    }

    fn init(&mut self, sys: &mut TieredSystem) {
        // Everything starts in bin 0.
        let mut pages = 0u64;
        for pid in sys.pids().collect::<Vec<_>>() {
            pages += sys.process(pid).space.pages() as u64;
        }
        self.hist_pages = [0; BINS];
        self.hist_pages[0] = pages;
        sys.schedule_in(self.cfg.migrate_interval, encode_token(EV_MIGRATE, 0, 0));
        sys.schedule_in(self.cfg.cooling_interval, encode_token(EV_COOL, 0, 0));
        sys.schedule_in(self.cfg.adjust_interval, encode_token(EV_ADJUST, 0, 0));
    }

    fn on_event(&mut self, sys: &mut TieredSystem, token: u64) {
        let (kind, _, _) = decode_token(token);
        match kind {
            EV_MIGRATE => {
                for (pid, unit) in self.promote_queue.drain(..) {
                    let e = sys.process_mut(pid).space.entry_mut(unit);
                    e.flags.clear(PageFlags::CANDIDATE);
                    if e.tier() == TierId::SLOW {
                        let _ = sys.promote_with_reclaim(pid, unit, MigrateMode::Async);
                    }
                }
                sys.schedule_in(self.cfg.migrate_interval, encode_token(EV_MIGRATE, 0, 0));
            }
            EV_COOL => {
                self.cool(sys);
                sys.schedule_in(self.cfg.cooling_interval, encode_token(EV_COOL, 0, 0));
            }
            EV_ADJUST => {
                // Age the fast-tier LRU so reclaim during promotions has
                // meaningful inactive candidates (kswapd-equivalent).
                let age_budget = scan_budget_pages(
                    sys.total_frames(TierId::FAST),
                    self.cfg.adjust_interval,
                    self.cfg.cooling_interval,
                );
                sys.age_active_list(TierId::FAST, age_budget.max(16));
                self.adjust_threshold(sys);
                self.maybe_split(sys);
                sys.trace_period(Default::default());
                sys.schedule_in(self.cfg.adjust_interval, encode_token(EV_ADJUST, 0, 0));
            }
            _ => unreachable!("unknown Memtis event {}", kind),
        }
    }

    fn on_hint_fault(
        &mut self,
        _sys: &mut TieredSystem,
        _pid: ProcessId,
        _vpn: Vpn,
        _write: bool,
        _res: &AccessResult,
    ) {
        // Memtis relies on PEBS, not hint faults.
    }

    fn on_access(&mut self, sys: &mut TieredSystem, pid: ProcessId, vpn: Vpn, _write: bool) {
        if !self.sampler.observe() {
            return;
        }
        let unit = sys.process(pid).space.pte_page(vpn);
        let unit_pages = Self::unit_pages(sys, pid, unit);
        let threshold = self.hot_threshold;
        let e = sys.process_mut(pid).space.entry_mut(unit);
        let old_bin = bin_of(e.policy_extra);
        e.policy_extra = e.policy_extra.saturating_add(1);
        let new_bin = bin_of(e.policy_extra);
        if new_bin != old_bin {
            self.hist_pages[old_bin] = self.hist_pages[old_bin].saturating_sub(unit_pages);
            self.hist_pages[new_bin] += unit_pages;
        }
        let hot = e.policy_extra >= threshold;
        if hot && e.tier() == TierId::SLOW && !e.flags.has(PageFlags::CANDIDATE) {
            e.flags.set(PageFlags::CANDIDATE);
            self.promote_queue.push((pid, unit));
        }
        // Per-sample kernel handling cost (PEBS buffer drain, ~100 ns).
        sys.stats.kernel_time += Nanos(100);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DriverConfig, SimulationDriver};
    use tiered_mem::{PageSize, SystemConfig};
    use workloads::{PmbenchConfig, PmbenchWorkload, Workload};

    fn fast_cfg(seed: u64) -> MemtisConfig {
        MemtisConfig {
            sample_period: 37, // dense sampling so short tests converge
            migrate_interval: Nanos::from_millis(5),
            cooling_interval: Nanos::from_millis(200),
            adjust_interval: Nanos::from_millis(20),
            fast_fill_ratio: 0.95,
            split_enabled: true,
            seed,
        }
    }

    fn run_memtis(page_size: PageSize, run_ms: u64) -> (TieredSystem, Memtis) {
        let mut sys = TieredSystem::new(SystemConfig::dram_pmem(2048, 8192));
        let w = PmbenchWorkload::new(PmbenchConfig::paper_skewed(8192, 0.7, 1));
        sys.add_process(w.address_space_pages(), page_size);
        let mut wls: Vec<Box<dyn Workload>> = vec![Box::new(w)];
        let mut policy = Memtis::new(fast_cfg(1));
        SimulationDriver::new(DriverConfig {
            run_for: Nanos::from_millis(run_ms),
            ..Default::default()
        })
        .run(&mut sys, &mut wls, &mut policy);
        (sys, policy)
    }

    #[test]
    fn bin_of_is_log2() {
        assert_eq!(bin_of(0), 0);
        assert_eq!(bin_of(1), 1);
        assert_eq!(bin_of(2), 2);
        assert_eq!(bin_of(3), 2);
        assert_eq!(bin_of(8), 4);
        assert_eq!(bin_of(u32::MAX), BINS - 1);
    }

    #[test]
    fn sampling_fills_histogram() {
        let (_sys, policy) = run_memtis(PageSize::Base, 100);
        let dist = policy.bin_distribution();
        let sampled: u64 = dist[1..].iter().sum();
        assert!(sampled > 0, "no pages ever sampled");
    }

    #[test]
    fn promotes_sampled_hot_pages() {
        let (sys, _policy) = run_memtis(PageSize::Base, 300);
        assert!(sys.stats.promoted_pages > 0);
        // No hint faults: Memtis doesn't poison PTEs.
        assert_eq!(sys.stats.hint_faults, 0);
    }

    #[test]
    fn huge_units_reach_higher_bins_than_base() {
        // The Fig 2b effect: same sampling budget, 512× fewer units.
        let weight_high = |dist: &[u64; BINS]| -> f64 {
            let sampled: u64 = dist[1..].iter().sum();
            if sampled == 0 {
                return 0.0;
            }
            let high: u64 = dist[4..].iter().sum(); // counter ≥ 8
            high as f64 / sampled as f64
        };
        let (_s1, base) = run_memtis(PageSize::Base, 150);
        let (_s2, huge) = run_memtis(PageSize::Huge2M, 150);
        assert!(
            weight_high(&huge.bin_distribution()) > weight_high(&base.bin_distribution()),
            "huge {:?} vs base {:?}",
            huge.bin_distribution(),
            base.bin_distribution()
        );
    }

    #[test]
    fn cooling_halves_counters() {
        let mut sys = TieredSystem::new(SystemConfig::quarter_fast(1024));
        let pid = sys.add_process(16, PageSize::Base);
        sys.access(pid, Vpn(0), false);
        sys.process_mut(pid).space.entry_mut(Vpn(0)).policy_extra = 9;
        let mut m = Memtis::new(fast_cfg(2));
        m.cool(&mut sys);
        assert_eq!(sys.process(pid).space.entry(Vpn(0)).policy_extra, 4);
        // Histogram rebuilt: one page in bin_of(4)=3.
        assert_eq!(m.bin_distribution()[3], 1);
    }

    #[test]
    fn threshold_shrinks_hot_set_to_fast_tier() {
        let mut m = Memtis::new(fast_cfg(3));
        let sys = TieredSystem::new(SystemConfig::dram_pmem(100, 1000));
        // 500 pages with counter in bin 5 (16..31), far exceeding 95 frames.
        m.hist_pages = [0; BINS];
        m.hist_pages[5] = 500;
        m.hist_pages[6] = 50;
        m.adjust_threshold(&sys);
        // Bin 6 fits (50 ≤ 95); bin 5 would overflow → threshold = 2^5 = 32.
        assert_eq!(m.hot_threshold(), 32);
    }

    #[test]
    fn threshold_defaults_low_when_everything_fits() {
        let mut m = Memtis::new(fast_cfg(4));
        let sys = TieredSystem::new(SystemConfig::dram_pmem(10_000, 1000));
        m.hist_pages = [0; BINS];
        m.hist_pages[2] = 100;
        m.adjust_threshold(&sys);
        assert_eq!(m.hot_threshold(), 1);
    }
}
